"""Tests for the end-to-end systems and the public API.

Heavier integration-style assertions (quality thresholds, cross-system
shape claims) live in test_integration.py; these tests pin the contract of
every system at small scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import available_methods, embed_graph
from repro.graph import community_graph
from repro.systems import (
    DistDGL,
    DistGER,
    DistGERGPU,
    GPUCostModel,
    HuGED,
    KnightKing,
    PBG,
)


@pytest.fixture(scope="module")
def graph():
    g, _ = community_graph(120, 6, within_degree=8.0, cross_degree=0.8,
                           seed=21)
    return g


FAST_KWARGS = dict(num_machines=2, dim=16, epochs=1, seed=0)


def fast_system(cls, **extra):
    return cls(**{**FAST_KWARGS, **extra})


@pytest.mark.parametrize("cls", [DistGER, HuGED, KnightKing, PBG, DistDGL],
                         ids=lambda c: c.name)
class TestSystemContract:
    def test_embed_shape_and_finiteness(self, cls, graph):
        result = fast_system(cls).embed(graph)
        assert result.embeddings.shape == (graph.num_nodes, 16)
        assert np.all(np.isfinite(result.embeddings))

    def test_result_reporting(self, cls, graph):
        result = fast_system(cls).embed(graph)
        assert result.system == cls.name
        assert result.wall_seconds > 0
        assert result.simulated_seconds > 0
        assert result.peak_memory_bytes > 0
        assert "partition_seconds" in result.stats

    def test_invalid_machine_count(self, cls):
        with pytest.raises(ValueError):
            cls(num_machines=0)


class TestWalkSystemSpecifics:
    def test_distger_phases(self, graph):
        result = fast_system(DistGER).embed(graph)
        for phase in ("partition", "sampling", "training"):
            assert result.phase(phase) > 0
        assert result.stats["avg_walk_length"] > 1
        assert result.stats["corpus_tokens"] > 0

    def test_distger_smaller_corpus_than_knightking(self, graph):
        d = fast_system(DistGER).embed(graph)
        k = fast_system(KnightKing).embed(graph)
        assert d.stats["corpus_tokens"] < k.stats["corpus_tokens"]

    def test_kernel_generality(self, graph):
        """§6.6: DeepWalk/node2vec kernels run under DistGER's
        information-centric termination."""
        for kernel in ("deepwalk", "node2vec", "huge+"):
            result = fast_system(DistGER, kernel=kernel).embed(graph)
            assert np.all(np.isfinite(result.embeddings))

    def test_knightking_routine_lengths(self, graph):
        sys = fast_system(KnightKing, walk_length=15, walks_per_node=2)
        result = sys.embed(graph)
        assert result.stats["avg_walk_length"] == pytest.approx(15.0, abs=1.0)
        assert result.stats["rounds"] == 2


class TestPBGSpecifics:
    def test_bucket_count(self, graph):
        result = fast_system(PBG).embed(graph)
        assert 1 <= result.stats["buckets"] <= 4  # 2x2 machine buckets

    def test_parameter_server_traffic(self, graph):
        result = fast_system(PBG).embed(graph)
        assert result.metrics.sync_bytes > 0


class TestDistDGLSpecifics:
    def test_sampling_time_reported(self, graph):
        result = fast_system(DistDGL).embed(graph)
        assert result.stats["sampling_seconds"] > 0
        assert 0.0 <= result.stats["sampling_fraction"] <= 1.0

    def test_gradient_sync_traffic(self, graph):
        result = fast_system(DistDGL).embed(graph)
        assert result.metrics.sync_bytes > 0


class TestGPUVariant:
    def test_speedup_when_fits(self, graph):
        gpu = GPUCostModel(speedup=10.0, device_memory_bytes=1 << 40)
        result = fast_system(DistGERGPU, gpu=gpu).embed(graph)
        assert result.stats["gpu_training_seconds"] < \
            result.stats["cpu_training_seconds"]
        assert result.stats["device_spill_bytes"] == 0

    def test_spill_erases_speedup(self, graph):
        """Table 9's Twitter effect: state beyond device memory pays PCIe."""
        gpu = GPUCostModel(speedup=10.0, device_memory_bytes=1,
                           pcie_bandwidth=1e4)
        result = fast_system(DistGERGPU, gpu=gpu).embed(graph)
        assert result.stats["gpu_training_seconds"] > \
            result.stats["cpu_training_seconds"]
        assert result.stats["device_spill_bytes"] > 0


class TestPublicAPI:
    def test_methods_listed(self):
        methods = available_methods()
        assert "distger" in methods
        assert len(methods) == 6

    def test_embed_graph_runs(self, graph):
        result = embed_graph(graph, method="distger", **FAST_KWARGS)
        assert result.embeddings.shape[0] == graph.num_nodes

    def test_embed_graph_kernel_passthrough(self, graph):
        result = embed_graph(graph, method="knightking", kernel="deepwalk",
                             **FAST_KWARGS)
        assert result.system == "KnightKing"

    def test_embed_graph_rejects_unknown(self, graph):
        with pytest.raises(KeyError):
            embed_graph(graph, method="gnn-magic")

    def test_embed_graph_rejects_kernel_for_pbg(self, graph):
        with pytest.raises(ValueError):
            embed_graph(graph, method="pbg", kernel="huge")
