"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import load_embeddings


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed"])
        assert args.dataset == "LJ"
        assert args.method == "distger"
        assert args.machines == 4

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["embed", "--method", "gcn"])

    def test_edges_overrides_dataset(self):
        args = build_parser().parse_args(
            ["embed", "--dataset", "LJ", "--edges", "x.txt"]
        )
        assert args.edges == "x.txt"  # _load_graph prefers the file


class TestCommands:
    def test_embed_writes_output(self, tmp_path, capsys):
        out = str(tmp_path / "emb.txt")
        code = main([
            "embed", "--dataset", "FL", "--scale", "0.2",
            "--method", "distger", "--dim", "8", "--epochs", "1",
            "--machines", "2", "--out", out,
        ])
        assert code == 0
        emb = load_embeddings(out)
        assert emb.shape[1] == 8
        assert np.all(np.isfinite(emb))
        assert "walker messages" in capsys.readouterr().out

    def test_embed_saves_corpus(self, tmp_path, capsys):
        from repro.walks import Corpus

        out = str(tmp_path / "walks.npz")
        code = main([
            "embed", "--dataset", "FL", "--scale", "0.2",
            "--method", "distger", "--dim", "8", "--epochs", "1",
            "--machines", "2", "--save-corpus", out,
        ])
        assert code == 0
        assert "walk corpus" in capsys.readouterr().out
        corpus = Corpus.load(out)
        assert corpus.num_walks > 0
        # Flat invariants survive the round trip.
        assert corpus.offsets[-1] == corpus.tokens.size

    def test_save_corpus_rejected_for_corpusless_methods(self, capsys):
        """The check runs before the embedding, so a long run is never
        wasted on a flag that cannot be honoured."""
        code = main([
            "embed", "--dataset", "FL", "--scale", "0.2",
            "--method", "pbg", "--dim", "8", "--epochs", "1",
            "--machines", "2", "--save-corpus", "/tmp/never.npz",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "no walk corpus" in captured.err
        assert "Embedding" not in captured.out  # failed fast, no run

    def test_embed_from_edge_list(self, tmp_path, capsys):
        edge_file = tmp_path / "g.txt"
        rng = np.random.default_rng(0)
        lines = set()
        for _ in range(200):
            u, v = rng.integers(0, 40, size=2)
            if u != v:
                lines.add(f"{min(u, v)} {max(u, v)}")
        edge_file.write_text("\n".join(sorted(lines)) + "\n")
        code = main([
            "embed", "--edges", str(edge_file), "--method", "knightking",
            "--dim", "8", "--epochs", "1", "--machines", "2",
        ])
        assert code == 0

    def test_evaluate_prints_auc(self, capsys):
        code = main([
            "evaluate", "--dataset", "FL", "--scale", "0.25",
            "--method", "distger", "--dim", "8", "--epochs", "1",
            "--machines", "2", "--trials", "1",
        ])
        assert code == 0
        assert "AUC" in capsys.readouterr().out

    def test_partition_table(self, capsys):
        code = main([
            "partition", "--dataset", "FL", "--scale", "0.25",
            "--machines", "2", "--schemes", "hash", "mpgp",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mpgp" in out
        assert "hash" in out

    def test_update_requires_one_stream_source(self, capsys):
        code = main(["update", "--dataset", "FL", "--scale", "0.2"])
        assert code == 2
        assert "--stream" in capsys.readouterr().err
        code = main(["update", "--dataset", "FL", "--scale", "0.2",
                     "--churn", "0.01", "--stream", "x.txt"])
        assert code == 2

    def test_update_with_random_churn(self, tmp_path, capsys):
        out = str(tmp_path / "upd.emb")
        code = main([
            "update", "--dataset", "FL", "--scale", "0.2",
            "--method", "distger", "--dim", "8", "--epochs", "1",
            "--machines", "2", "--churn", "0.02", "--audit", "arc",
            "--out", out,
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "walks resampled" in text
        assert "speedup vs full recompute" in text
        matrix = load_embeddings(out)
        assert matrix.shape[1] == 8
        assert np.isfinite(matrix).all()

    def test_update_from_stream_file(self, tmp_path, capsys):
        stream = tmp_path / "edits.txt"
        stream.write_text("- 0 1\n+ 2 40\n")
        code = main([
            "update", "--dataset", "FL", "--scale", "0.2",
            "--method", "distger", "--dim", "8", "--epochs", "1",
            "--machines", "2", "--stream", str(stream),
        ])
        assert code == 0
        assert "1 insertions + 1 deletions" in capsys.readouterr().out


class TestServe:
    @pytest.fixture
    def saved_embeddings(self, tmp_path):
        rng = np.random.default_rng(6)
        matrix = rng.integers(-2, 3, size=(30, 8)).astype(np.float32)
        path = tmp_path / "emb.npy"
        np.save(path, matrix)
        return str(path), matrix

    def test_serve_requires_a_query_mode(self, saved_embeddings, capsys):
        path, _ = saved_embeddings
        code = main(["serve", "--embeddings", path])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err

    def test_serve_answers_node_queries(self, saved_embeddings, capsys):
        path, matrix = saved_embeddings
        code = main(["serve", "--embeddings", path,
                     "--nodes", "0,3", "--k", "4", "--metric", "dot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 30 x 8 embeddings" in out
        # Answers match the library path byte-for-byte.
        from repro.serving import BatchTopKScorer

        want = BatchTopKScorer(matrix).top_k(
            np.array([0, 3]), k=4, metric="dot").as_lists()
        for row, expected in zip(out.strip().splitlines()[1:], want):
            for node_id, _ in expected:
                assert f"{node_id}:" in row

    def test_serve_rejects_out_of_range_node(self, saved_embeddings,
                                             capsys):
        path, _ = saved_embeddings
        code = main(["serve", "--embeddings", path, "--nodes", "999"])
        assert code == 2
        assert "outside" in capsys.readouterr().err

    def test_serve_replays_trace_with_workers(self, saved_embeddings,
                                              capsys):
        path, _ = saved_embeddings
        code = main(["serve", "--embeddings", path, "--trace", "200",
                     "--batch", "32", "--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed 200 queries" in out
        assert "queries/s" in out
        assert "p99" in out

    def test_serve_word2vec_text_in_process_trace(self, tmp_path,
                                                  capsys):
        from repro.graph.io import save_embeddings

        rng = np.random.default_rng(2)
        path = tmp_path / "vectors.emb"
        save_embeddings(str(path), rng.standard_normal((12, 4)))
        code = main(["serve", "--embeddings", str(path), "--trace", "50",
                     "--batch", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "in-process" in out
        assert "replayed 50 queries" in out
