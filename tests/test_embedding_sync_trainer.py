"""Tests for synchronisation strategies and the distributed trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    DistributedTrainer,
    EmbeddingModel,
    FullSync,
    HotnessBlockSync,
    NoSync,
    TrainConfig,
    Vocabulary,
    make_sync,
)
from repro.runtime import Cluster, ClusterMetrics
from repro.walks import Corpus


def fixture_models(num_machines=3, counts=(5, 5, 3, 1, 1, 0), dim=4):
    corpus = Corpus(len(counts))
    for node, n in enumerate(counts):
        for _ in range(n):
            corpus.add_walk([node])
    vocab = Vocabulary.from_corpus(corpus)
    base = EmbeddingModel(vocab, dim, seed=0)
    return [base if i == 0 else base.clone() for i in range(num_machines)]


class TestSyncStrategies:
    def test_factory(self):
        assert isinstance(make_sync("full"), FullSync)
        assert isinstance(make_sync("hotness"), HotnessBlockSync)
        assert isinstance(make_sync("none"), NoSync)
        with pytest.raises(KeyError):
            make_sync("sometimes")

    def test_full_sync_aligns_replicas(self, rng):
        models = fixture_models()
        sync = FullSync()
        sync.start(models)
        models[1].phi_in += 1.0
        sync.sync(models, rng)
        np.testing.assert_allclose(models[0].phi_in, models[1].phi_in)
        np.testing.assert_allclose(models[0].phi_in, models[2].phi_in)

    def test_average_rule_divides_step(self, rng):
        """Averaging: one machine's +3 delta becomes +1 across 3 replicas."""
        models = fixture_models()
        sync = FullSync(combine="average")
        sync.start(models)
        before = models[0].phi_in[0].copy()
        models[1].phi_in[0] = before + 3.0
        sync.sync(models, rng)
        np.testing.assert_allclose(models[0].phi_in[0], before + 1.0)

    def test_delta_rule_preserves_single_machine_updates(self, rng):
        """Delta-sum: a row touched by one machine is adopted exactly."""
        models = fixture_models()
        sync = FullSync(combine="delta")
        sync.start(models)
        before = models[0].phi_in[0].copy()
        models[1].phi_in[0] = before + 3.0
        sync.sync(models, rng)
        np.testing.assert_allclose(models[0].phi_in[0], before + 3.0)

    def test_hotness_skips_untrained_rows(self, rng):
        models = fixture_models()
        vocab = models[0].vocab
        sync = HotnessBlockSync()
        sync.start(models)
        rows = sync._select_rows(models, rng)
        # One row per non-zero block; zero-count block skipped.
        nonzero_blocks = [b for b in vocab.hotness_blocks()
                          if vocab.row_counts[b[0]] > 0]
        assert rows.size == len(nonzero_blocks)
        for row in rows:
            assert vocab.row_counts[row] > 0

    def test_hotness_traffic_less_than_full(self, rng):
        models = fixture_models()
        m_full, m_hot = ClusterMetrics(3), ClusterMetrics(3)
        full, hot = FullSync(), HotnessBlockSync()
        full.start(models)
        hot.start(models)
        full.sync(models, rng, m_full)
        hot.sync(models, rng, m_hot)
        assert m_hot.sync_bytes < m_full.sync_bytes

    def test_no_sync_does_nothing(self, rng):
        models = fixture_models()
        sync = NoSync()
        sync.start(models)
        models[1].phi_in += 1.0
        snapshot = models[0].phi_in.copy()
        sync.sync(models, rng)
        np.testing.assert_array_equal(models[0].phi_in, snapshot)

    def test_finalize_merges_all_contributions(self, rng):
        models = fixture_models()
        sync = NoSync()
        sync.start(models)
        base = models[0].phi_in[2].copy()
        models[0].phi_in[2] = base + 1.0
        models[1].phi_in[2] = base + 2.0
        final = sync.finalize(models)
        np.testing.assert_allclose(final.phi_in[2], base + 3.0)

    def test_invalid_combine(self):
        with pytest.raises(ValueError):
            FullSync(combine="median")


class TestDistributedTrainer:
    def make_corpus(self, num_nodes=30, seed=5):
        rng = np.random.default_rng(seed)
        corpus = Corpus(num_nodes)
        for _ in range(20):
            corpus.add_walk(rng.integers(0, num_nodes, size=12))
        return corpus

    def test_produces_embeddings(self):
        corpus = self.make_corpus()
        cluster = Cluster(2, np.zeros(30, dtype=np.int64), seed=0)
        cfg = TrainConfig(dim=8, window=2, negatives=2, epochs=1)
        result = DistributedTrainer(corpus, cluster, cfg).train()
        assert result.embeddings.shape == (30, 8)
        assert np.all(np.isfinite(result.embeddings))
        assert result.tokens_processed == corpus.total_tokens
        assert result.throughput > 0

    def test_epochs_multiply_tokens(self):
        corpus = self.make_corpus()
        cluster = Cluster(2, np.zeros(30, dtype=np.int64), seed=0)
        cfg = TrainConfig(dim=8, window=2, negatives=2, epochs=3)
        result = DistributedTrainer(corpus, cluster, cfg).train()
        assert result.tokens_processed == 3 * corpus.total_tokens

    def test_walk_machines_validated(self):
        corpus = self.make_corpus()
        cluster = Cluster(2, np.zeros(30, dtype=np.int64), seed=0)
        with pytest.raises(ValueError, match="align"):
            DistributedTrainer(corpus, cluster, TrainConfig(dim=4),
                               walk_machines=[0])

    def test_shard_rebalancing(self):
        """Skewed walk placement gets rebalanced within ~10% by tokens."""
        corpus = Corpus(10)
        for _ in range(40):
            corpus.add_walk([0, 1, 2, 3, 4])
        machines = [0] * 36 + [1] * 4  # heavy skew to machine 0
        cluster = Cluster(2, np.zeros(10, dtype=np.int64), seed=0)
        trainer = DistributedTrainer(corpus, cluster, TrainConfig(dim=4),
                                     walk_machines=machines)
        shards = trainer._shards()
        tokens = [sum(w.size for w in s) for s in shards]
        assert max(tokens) <= 1.2 * min(tokens)

    def test_unknown_learner(self):
        corpus = self.make_corpus()
        cluster = Cluster(1, np.zeros(30, dtype=np.int64), seed=0)
        with pytest.raises(KeyError):
            DistributedTrainer(corpus, cluster, learner="doc2vec")

    def test_sync_traffic_recorded(self):
        corpus = self.make_corpus()
        cluster = Cluster(2, np.zeros(30, dtype=np.int64), seed=0)
        cfg = TrainConfig(dim=8, window=2, negatives=2, epochs=1,
                          sync_mode="full", sync_period_tokens=50)
        DistributedTrainer(corpus, cluster, cfg).train()
        assert cluster.metrics.sync_bytes > 0

    def test_hotness_cheaper_than_full(self):
        corpus = self.make_corpus()
        results = {}
        for mode in ("full", "hotness"):
            cluster = Cluster(2, np.zeros(30, dtype=np.int64), seed=0)
            cfg = TrainConfig(dim=8, window=2, negatives=2, epochs=1,
                              sync_mode=mode, sync_period_tokens=50)
            DistributedTrainer(corpus, cluster, cfg).train()
            results[mode] = cluster.metrics.sync_bytes
        assert results["hotness"] < results["full"]


class TestSubsampling:
    def test_disabled_by_default(self):
        corpus = Corpus(5)
        for _ in range(5):
            corpus.add_walk([0, 1, 2, 3, 4])
        cluster = Cluster(1, np.zeros(5, dtype=np.int64), seed=0)
        cfg = TrainConfig(dim=4, window=2, negatives=1, epochs=1)
        result = DistributedTrainer(corpus, cluster, cfg).train()
        assert result.tokens_processed == corpus.total_tokens

    def test_subsampling_drops_frequent_tokens(self):
        corpus = Corpus(5)
        # Node 0 dominates the corpus.
        for _ in range(20):
            corpus.add_walk([0, 0, 0, 0, 1, 2, 3, 4])
        cluster = Cluster(1, np.zeros(5, dtype=np.int64), seed=0)
        cfg = TrainConfig(dim=4, window=2, negatives=1, epochs=1,
                          subsample=0.05)
        result = DistributedTrainer(corpus, cluster, cfg).train()
        assert 0 < result.tokens_processed < corpus.total_tokens

    def test_keep_probabilities_shape(self):
        corpus = Corpus(3)
        corpus.add_walk([0, 0, 0, 1])
        cluster = Cluster(1, np.zeros(3, dtype=np.int64), seed=0)
        trainer = DistributedTrainer(
            corpus, cluster, TrainConfig(dim=4, subsample=0.1)
        )
        keep = trainer._keep_probabilities()
        assert keep.shape == (3,)
        # The most frequent node has the lowest keep probability.
        assert keep[0] == min(keep[0], keep[1])
        assert np.all((0.0 <= keep) & (keep <= 1.0))

    def test_invalid_subsample_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(subsample=-1.0)
