"""Reference parity: the batched trainer backends vs the loop learners.

Under the shared RNG protocol (counter-based per-machine negative streams
from :mod:`repro.utils.rng`), ``TrainConfig.backend="vectorized"`` must
reproduce ``backend="loop"`` exactly: identical negative draws, identical
token accounting, and embeddings equal to far below float32 resolution
(the contract is ``atol=1e-10``; in practice the backends are bit-equal
because every gather, matrix product and scatter runs on identical
operands in the same order).  The suite covers every batched learner on
undirected, weighted and directed graphs across 1/2/4 simulated machines,
plus the backend/protocol resolution rules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    LEARNERS,
    VECTORIZED_LEARNERS,
    DistributedTrainer,
    EmbeddingModel,
    NegativeSampler,
    TrainConfig,
    Vocabulary,
)
from repro.graph import powerlaw_cluster
from repro.partition import MPGPPartitioner, WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.utils.rng import CounterStream
from repro.walks import Corpus, DistributedWalkEngine, WalkConfig

PARITY_LEARNERS = sorted(VECTORIZED_LEARNERS)
ATOL = 1e-10


def make_corpus(num_nodes=40, num_walks=30, seed=3, min_len=1, max_len=18):
    """Mixed-length corpus, including length-1 walks (no windows)."""
    rng = np.random.default_rng(seed)
    corpus = Corpus(num_nodes)
    for _ in range(num_walks):
        corpus.add_walk(rng.integers(0, num_nodes,
                                     size=rng.integers(min_len, max_len)))
    return corpus


def walk_corpus(graph, machines=2, seed=9):
    """A corpus actually sampled by the (vectorized) walk engine."""
    part = WorkloadBalancePartitioner().partition(graph, machines)
    cluster = Cluster(machines, part.assignment, seed=seed)
    cfg = WalkConfig.distger(max_rounds=2, min_rounds=1)
    return DistributedWalkEngine(graph, cluster, cfg).run()


def train_embeddings(corpus, backend, machines=2, walk_machines=None,
                     learner="dsgl", **overrides):
    assignment = np.zeros(corpus.occurrences.size, dtype=np.int64)
    cluster = Cluster(machines, assignment, seed=0)
    cfg = TrainConfig(dim=16, window=4, negatives=3, epochs=2,
                      backend=backend, **overrides)
    trainer = DistributedTrainer(corpus, cluster, cfg, learner=learner,
                                 walk_machines=walk_machines)
    return trainer.train()


class TestLearnerParity:
    """Direct learner-level parity: same model, sampler and stream."""

    @pytest.mark.parametrize("learner", PARITY_LEARNERS)
    def test_loop_equals_vectorized(self, learner):
        corpus = make_corpus()
        vocab = Vocabulary.from_corpus(corpus)
        sampler = NegativeSampler(vocab)
        cfg = TrainConfig(dim=16, window=3, negatives=4, multi_windows=2)
        results = {}
        for kind, registry in (("loop", LEARNERS),
                               ("vectorized", VECTORIZED_LEARNERS)):
            model = EmbeddingModel(vocab, cfg.dim, seed=1)
            inst = registry[learner](model, sampler, cfg,
                                     np.random.default_rng(0),
                                     neg_stream=CounterStream(12345))
            tokens = inst.train_walks(corpus.walks, lr=0.05)
            results[kind] = (model.phi_in.copy(), model.phi_out.copy(),
                             tokens)
        assert results["loop"][2] == results["vectorized"][2] \
            == corpus.total_tokens
        np.testing.assert_allclose(results["loop"][0],
                                   results["vectorized"][0], atol=ATOL)
        np.testing.assert_allclose(results["loop"][1],
                                   results["vectorized"][1], atol=ATOL)

    @pytest.mark.parametrize("learner", PARITY_LEARNERS)
    def test_identical_negative_draws(self, learner):
        """Both backends consume the very same negative rows.

        A recording sampler captures every draw; the concatenated streams
        must be identical because draws are a pure function of the
        counter stream, not of how either backend batches them.
        """
        corpus = make_corpus(seed=5)
        vocab = Vocabulary.from_corpus(corpus)

        class RecordingSampler(NegativeSampler):
            def __init__(self, vocab):
                super().__init__(vocab)
                self.drawn = []

            def sample_rows_stream(self, count, stream):
                rows = super().sample_rows_stream(count, stream)
                self.drawn.append(rows)
                return rows

        cfg = TrainConfig(dim=8, window=3, negatives=3)
        draws = {}
        for kind, registry in (("loop", LEARNERS),
                               ("vectorized", VECTORIZED_LEARNERS)):
            sampler = RecordingSampler(vocab)
            model = EmbeddingModel(vocab, cfg.dim, seed=1)
            inst = registry[learner](model, sampler, cfg,
                                     np.random.default_rng(0),
                                     neg_stream=CounterStream(777))
            inst.train_walks(corpus.walks, lr=0.05)
            draws[kind] = np.concatenate(sampler.drawn)
        np.testing.assert_array_equal(draws["loop"], draws["vectorized"])

    def test_dsgl_multi_window_sizes(self):
        corpus = make_corpus(seed=11)
        vocab = Vocabulary.from_corpus(corpus)
        sampler = NegativeSampler(vocab)
        for mw in (1, 2, 4):
            cfg = TrainConfig(dim=8, window=2, negatives=2, multi_windows=mw)
            outs = {}
            for kind, registry in (("loop", LEARNERS),
                                   ("vectorized", VECTORIZED_LEARNERS)):
                model = EmbeddingModel(vocab, cfg.dim, seed=1)
                registry["dsgl"](model, sampler, cfg,
                                 np.random.default_rng(0),
                                 neg_stream=CounterStream(5)).train_walks(
                                     corpus.walks, lr=0.05)
                outs[kind] = model.phi_in.copy()
            np.testing.assert_allclose(outs["loop"], outs["vectorized"],
                                       atol=ATOL)


class TestTrainerParity:
    """End-to-end DistributedTrainer parity across machine counts."""

    @pytest.mark.parametrize("machines", (1, 2, 4))
    @pytest.mark.parametrize("learner", PARITY_LEARNERS)
    def test_machine_counts(self, learner, machines):
        corpus = make_corpus(num_nodes=50, num_walks=40, seed=7)
        results = {
            backend: train_embeddings(corpus, backend, machines=machines,
                                      learner=learner)
            for backend in ("loop", "vectorized")
        }
        assert results["loop"].tokens_processed == \
            results["vectorized"].tokens_processed
        np.testing.assert_allclose(results["loop"].embeddings,
                                   results["vectorized"].embeddings,
                                   atol=ATOL)

    @pytest.mark.parametrize("kind", ("undirected", "weighted", "directed"))
    def test_graph_families(self, kind):
        graph = powerlaw_cluster(120, attach=3, triangle_prob=0.4, seed=2)
        if kind == "weighted":
            graph = graph.with_random_weights(np.random.default_rng(3))
        elif kind == "directed":
            graph = graph.as_directed()
        walk_result = walk_corpus(graph)
        results = {}
        for backend in ("loop", "vectorized"):
            part = WorkloadBalancePartitioner().partition(graph, 2)
            cluster = Cluster(2, part.assignment, seed=0)
            cfg = TrainConfig(dim=16, epochs=1, backend=backend)
            results[backend] = DistributedTrainer(
                walk_result.corpus, cluster, cfg, learner="dsgl",
                walk_machines=walk_result.walk_machines).train()
        np.testing.assert_allclose(results["loop"].embeddings,
                                   results["vectorized"].embeddings,
                                   atol=ATOL)

    def test_sync_and_compute_accounting_identical(self):
        """Simulated cluster metrics stay comparable across backends."""
        corpus = make_corpus(num_nodes=50, num_walks=40, seed=7)
        metrics = {}
        for backend in ("loop", "vectorized"):
            assignment = np.zeros(50, dtype=np.int64)
            cluster = Cluster(2, assignment, seed=0)
            cfg = TrainConfig(dim=8, window=3, negatives=2, epochs=1,
                              backend=backend, sync_mode="full",
                              sync_period_tokens=100)
            DistributedTrainer(corpus, cluster, cfg).train()
            metrics[backend] = cluster.metrics
        a, b = metrics["loop"], metrics["vectorized"]
        assert a.compute_units == b.compute_units
        assert a.sync_bytes == b.sync_bytes

    def test_dsgl_threads_change_results_not_validity(self):
        corpus = make_corpus(num_nodes=50, num_walks=40, seed=7)
        outs = []
        for threads in (1, 4, 16):
            res = train_embeddings(corpus, "vectorized",
                                   dsgl_threads=threads)
            assert np.all(np.isfinite(res.embeddings))
            outs.append(res.embeddings)
        # Concurrency width is a semantic knob: widths differ ...
        assert not np.allclose(outs[0], outs[2], atol=1e-6)
        # ... but loop and vectorized agree at every width.
        for threads, emb in zip((1, 4, 16), outs):
            loop = train_embeddings(corpus, "loop", dsgl_threads=threads)
            np.testing.assert_allclose(loop.embeddings, emb, atol=ATOL)


class TestBackendResolution:
    def test_auto_resolves_vectorized_for_batched_learners(self):
        cfg = TrainConfig()
        for learner in PARITY_LEARNERS:
            assert cfg.resolved_backend(learner) == "vectorized"

    def test_auto_resolves_loop_for_psgnscc(self):
        assert TrainConfig().resolved_backend("psgnscc") == "loop"

    def test_explicit_vectorized_psgnscc_rejected(self):
        with pytest.raises(ValueError, match="psgnscc"):
            TrainConfig(backend="vectorized").resolved_backend("psgnscc")

    def test_vectorized_requires_shared_protocol(self):
        with pytest.raises(ValueError, match="shared"):
            TrainConfig(backend="vectorized", rng_protocol="cluster")

    def test_auto_protocol_is_shared(self):
        assert TrainConfig().resolved_rng_protocol() == "shared"

    def test_cluster_protocol_forces_loop(self):
        # The legacy protocol is serial-only by design, so pin execution
        # (REPRO_EXECUTION=process would otherwise reject the combination).
        cfg = TrainConfig(rng_protocol="cluster", execution="serial")
        assert cfg.resolved_backend("dsgl") == "loop"

    def test_invalid_names(self):
        with pytest.raises(ValueError, match="backend"):
            TrainConfig(backend="gpu")
        with pytest.raises(ValueError, match="rng_protocol"):
            TrainConfig(rng_protocol="magic")
        with pytest.raises(ValueError, match="dsgl_threads"):
            TrainConfig(dsgl_threads=0)

    def test_trainer_exposes_resolution(self):
        corpus = make_corpus()
        cluster = Cluster(1, np.zeros(40, dtype=np.int64), seed=0)
        trainer = DistributedTrainer(corpus, cluster, TrainConfig(dim=4))
        assert trainer.backend == "vectorized"
        assert trainer.rng_protocol == "shared"
        legacy = DistributedTrainer(
            corpus, cluster, TrainConfig(dim=4, rng_protocol="cluster",
                                         execution="serial"))
        assert legacy.backend == "loop"

    def test_legacy_cluster_protocol_unchanged(self):
        """The cluster protocol still produces the historical seeds'
        results (stateful per-machine generator draws, sequential
        lifetimes)."""
        corpus = make_corpus(seed=13)
        outs = []
        for _ in range(2):
            res = train_embeddings(corpus, "loop", rng_protocol="cluster",
                                   execution="serial")
            outs.append(res.embeddings)
        np.testing.assert_array_equal(outs[0], outs[1])


class TestSharedDrawPrimitives:
    def test_counter_stream_batch_invariant(self):
        a = CounterStream(42)
        b = CounterStream(42)
        chunks = np.concatenate([a.uniforms(3), a.uniforms(5), a.uniforms(2)])
        whole = b.uniforms(10)
        np.testing.assert_array_equal(chunks, whole)

    def test_sampler_stream_batch_invariant(self):
        corpus = make_corpus()
        sampler = NegativeSampler(Vocabulary.from_corpus(corpus))
        a, b = CounterStream(9), CounterStream(9)
        chunked = np.concatenate([sampler.sample_rows_stream(4, a),
                                  sampler.sample_rows_stream(6, a)])
        whole = sampler.sample_rows_stream(10, b)
        np.testing.assert_array_equal(chunked, whole)

    def test_stream_draw_distribution(self):
        corpus = make_corpus(num_walks=60, seed=21)
        sampler = NegativeSampler(Vocabulary.from_corpus(corpus))
        draws = sampler.sample_rows_stream(120_000, CounterStream(3))
        empirical = np.bincount(draws, minlength=len(sampler.probabilities))
        np.testing.assert_allclose(empirical / 120_000,
                                   sampler.probabilities, atol=5e-3)
