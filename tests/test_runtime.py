"""Tests for the simulated runtime: messages, metrics, cluster, BSP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    BSPEngine,
    Cluster,
    ClusterMetrics,
    CostModel,
    DeepWalkMessage,
    FullPathMessage,
    IncrementalMessage,
    Node2VecMessage,
    SyncMessage,
    message_size_ratio,
)


class TestMessageSizes:
    """The paper's message-size analysis, byte for byte (§3.1, Example 1)."""

    def test_node2vec_constant_32_bytes(self):
        assert Node2VecMessage(1, 2, 3, 4).byte_size() == 32

    def test_deepwalk_constant_24_bytes(self):
        assert DeepWalkMessage(1, 2, 3).byte_size() == 24

    def test_fullpath_linear_in_length(self):
        for length in (0, 1, 10, 80):
            msg = FullPathMessage(1, length, 3, path=list(range(length)))
            assert msg.byte_size() == 24 + 8 * length

    def test_incremental_constant_80_bytes(self):
        msg = IncrementalMessage(1, 50, 3)
        assert msg.byte_size() == 80

    def test_example1_ratio_at_80(self):
        """Example 1: at L=80 one DistGER message is 8.3x smaller."""
        assert message_size_ratio(80) == pytest.approx(8.3)

    def test_sync_message_size(self):
        # 10 rows of 64 float32 + 8-byte ids.
        assert SyncMessage(10, 64).byte_size() == 10 * (64 * 4 + 8)


class TestClusterMetrics:
    def test_recording(self):
        m = ClusterMetrics(2)
        m.record_compute(0, 5.0)
        m.record_compute(1, 3.0)
        m.record_message(100)
        m.record_sync(50, n_messages=2)
        m.record_local_step(0, 4)
        assert m.total_compute == 8.0
        assert m.max_compute == 5.0
        assert m.messages_sent == 1
        assert m.message_bytes == 100
        assert m.sync_bytes == 50
        assert m.total_bytes == 150
        assert m.total_local_steps == 4

    def test_imbalance(self):
        m = ClusterMetrics(2)
        m.record_compute(0, 10.0)
        m.record_compute(1, 0.0)
        assert m.compute_imbalance == pytest.approx(2.0)

    def test_memory_peak(self):
        m = ClusterMetrics(1)
        m.record_memory(0, 100)
        m.record_memory(0, 50)
        assert m.peak_memory_bytes[0] == 100

    def test_merge(self):
        a, b = ClusterMetrics(2), ClusterMetrics(2)
        a.record_compute(0, 1.0)
        b.record_compute(0, 2.0)
        b.record_message(10)
        a.merge(b)
        assert a.compute_units[0] == 3.0
        assert a.messages_sent == 1

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            ClusterMetrics(2).merge(ClusterMetrics(3))

    def test_invalid_machine_count(self):
        with pytest.raises(ValueError):
            ClusterMetrics(0)


class TestCostModel:
    def test_makespan_composition(self):
        m = ClusterMetrics(2)
        m.record_compute(0, 1000.0)
        m.record_message(1_000_000)
        cost = CostModel(compute_rate=1000.0, bandwidth=1e6, latency=0.0)
        assert cost.makespan(m) == pytest.approx(1.0 + 1.0)

    def test_more_machines_reduce_makespan(self):
        """Splitting the same work across machines cuts compute time."""
        cost = CostModel()
        small, large = ClusterMetrics(1), ClusterMetrics(4)
        small.record_compute(0, 8000.0)
        for i in range(4):
            large.record_compute(i, 2000.0)
        assert cost.makespan(large) < cost.makespan(small)


class TestCluster:
    def test_placement(self):
        c = Cluster(2, np.array([0, 1, 0, 1]), seed=0)
        assert c.machine_of(1) == 1
        assert c.is_local(0, 2)
        assert not c.is_local(0, 1)
        np.testing.assert_array_equal(c.nodes_of(0), [0, 2])
        np.testing.assert_array_equal(c.partition_sizes(), [2, 2])

    def test_invalid_assignment(self):
        with pytest.raises(ValueError):
            Cluster(2, np.array([0, 5]))

    def test_reset_metrics(self):
        c = Cluster(1, np.zeros(3, dtype=np.int64))
        c.metrics.record_message(10)
        c.reset_metrics()
        assert c.metrics.messages_sent == 0


class TestBSPEngine:
    def test_items_run_to_completion(self):
        c = Cluster(2, np.array([0, 1]), seed=0)
        engine = BSPEngine(c)

        def advance(machine, item):
            # Each item hops to the other machine `item["hops"]` times.
            if item["hops"] == 0:
                return None
            item["hops"] -= 1
            return (1 - machine, item, 8)

        items = [(0, {"hops": 3}), (1, {"hops": 0})]
        stats = engine.run(items, advance)
        assert stats.items_completed == 2
        assert stats.messages_delivered == 3
        assert c.metrics.messages_sent == 3
        assert c.metrics.message_bytes == 24

    def test_non_terminating_raises(self):
        c = Cluster(2, np.array([0, 1]), seed=0)
        engine = BSPEngine(c)

        def forever(machine, item):
            return (1 - machine, item, 1)

        with pytest.raises(RuntimeError, match="converge"):
            engine.run([(0, {})], forever, max_supersteps=10)
