"""Tests for batch statistics helpers (reference implementations)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    degree_distribution,
    entropy_of_counts,
    entropy_of_sequence,
    kl_divergence,
    occurrence_distribution,
    r_squared,
)


class TestEntropy:
    def test_uniform_counts(self):
        assert entropy_of_counts([5, 5, 5, 5]) == pytest.approx(2.0)

    def test_empty(self):
        assert entropy_of_counts([]) == 0.0
        assert entropy_of_sequence([]) == 0.0

    def test_zero_counts_ignored(self):
        assert entropy_of_counts([4, 0, 4]) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            entropy_of_counts([1, -1])

    def test_sequence_matches_counts(self):
        seq = ["a", "b", "a", "c", "a"]
        assert entropy_of_sequence(seq) == pytest.approx(
            entropy_of_counts([3, 1, 1])
        )

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=20).filter(lambda c: sum(c) > 0))
    @settings(max_examples=100, deadline=None)
    def test_entropy_bounds(self, counts):
        h = entropy_of_counts(counts)
        support = sum(1 for c in counts if c > 0)
        assert -1e-9 <= h <= np.log2(max(support, 1)) + 1e-9


class TestKLDivergence:
    def test_identical_distributions_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_non_negative(self, rng):
        for _ in range(20):
            p = rng.random(8) + 0.01
            q = rng.random(8) + 0.01
            assert kl_divergence(p, q) >= -1e-9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            kl_divergence(np.ones(3), np.ones(4))

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError, match="positive mass"):
            kl_divergence(np.zeros(3), np.ones(3))

    def test_handles_zero_q_entries(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert np.isfinite(kl_divergence(p, q))


class TestRSquared:
    def test_perfect_line(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [3.0, 5.0, 7.0, 9.0]
        assert r_squared(x, y) == pytest.approx(1.0)

    def test_degenerate_short(self):
        assert r_squared([1.0], [2.0]) == 1.0

    def test_constant_series(self):
        assert r_squared([5.0] * 4, [1.0, 2.0, 3.0, 4.0]) == 1.0

    def test_matches_numpy_corrcoef(self, rng):
        for _ in range(20):
            x = rng.random(15)
            y = rng.random(15)
            expected = float(np.corrcoef(x, y)[0, 1]) ** 2
            assert r_squared(x, y) == pytest.approx(expected, abs=1e-9)


class TestDistributions:
    def test_degree_distribution_normalises(self):
        p = degree_distribution(np.array([1, 2, 3, 4]))
        assert p.sum() == pytest.approx(1.0)

    def test_degree_distribution_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            degree_distribution(np.zeros(5))

    def test_occurrence_distribution(self):
        q = occurrence_distribution(np.array([10, 30]))
        np.testing.assert_allclose(q, [0.25, 0.75])
