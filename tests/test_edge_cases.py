"""Failure injection and degenerate-input behaviour across the stack.

A production library's edges: isolated nodes, empty corpora, dead-end
directed graphs, single-node partitions, zero-occurrence vocabularies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    DistributedTrainer,
    EmbeddingModel,
    NegativeSampler,
    TrainConfig,
    Vocabulary,
)
from repro.graph import CSRGraph, star
from repro.runtime import Cluster
from repro.systems import DistGER
from repro.walks import (
    Corpus,
    DistributedWalkEngine,
    WalkConfig,
    Walker,
    WalkStats,
)


class TestIsolatedNodes:
    def test_walk_engine_skips_isolated_sources(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=4)  # 2, 3 isolated
        cluster = Cluster(1, np.zeros(4, dtype=np.int64), seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=5, walks_per_node=1)
        result = DistributedWalkEngine(g, cluster, cfg).run()
        starts = {int(w[0]) for w in result.corpus.walks}
        assert starts == {0, 1}

    def test_isolated_nodes_get_embeddings_anyway(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=5)
        result = DistGER(num_machines=1, dim=8, epochs=1, seed=0).embed(g)
        assert result.embeddings.shape == (5, 8)
        assert np.all(np.isfinite(result.embeddings))


class TestDirectedDeadEnds:
    def test_star_out_edges_only(self):
        # All arcs point hub -> leaves; every walk dies after one hop.
        edges = [(0, i) for i in range(1, 6)]
        g = CSRGraph.from_edges(edges, directed=True)
        cluster = Cluster(1, np.zeros(6, dtype=np.int64), seed=0)
        cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
        result = DistributedWalkEngine(g, cluster, cfg).run()
        assert max(result.stats.walk_lengths) <= 2


class TestEmptyAndTiny:
    def test_trainer_on_single_walk(self):
        corpus = Corpus(3)
        corpus.add_walk([0, 1, 2])
        cluster = Cluster(2, np.zeros(3, dtype=np.int64), seed=0)
        result = DistributedTrainer(
            corpus, cluster, TrainConfig(dim=4, window=2, negatives=1,
                                         epochs=1)
        ).train()
        assert result.embeddings.shape == (3, 4)

    def test_vocabulary_all_zero_counts(self):
        corpus = Corpus(4)  # nothing added
        vocab = Vocabulary.from_corpus(corpus)
        assert vocab.max_occurrence == 0
        sampler = NegativeSampler(vocab)  # falls back to uniform
        rows = sampler.sample_rows(10, np.random.default_rng(0))
        assert rows.size == 10

    def test_model_on_tiny_vocab(self):
        corpus = Corpus(1)
        corpus.add_walk([0])
        vocab = Vocabulary.from_corpus(corpus)
        model = EmbeddingModel(vocab, dim=4, seed=0)
        assert model.embeddings_node_space().shape == (1, 4)

    def test_system_on_triangle(self, triangle):
        result = DistGER(num_machines=1, dim=4, epochs=1, seed=0).embed(triangle)
        assert result.embeddings.shape == (3, 4)


class TestWalkerState:
    def test_start_includes_source(self):
        w = Walker.start(5, 7)
        assert w.path == [7]
        assert w.length == 1
        assert w.steps == 0

    def test_advance_tracks_previous(self):
        w = Walker.start(0, 1)
        w.advance(4)
        assert w.previous == 1
        assert w.current == 4
        assert w.steps == 1
        w.advance(2)
        assert w.previous == 4
        assert w.length == 3

    def test_stats_aggregates(self):
        s = WalkStats()
        s.walk_lengths = [10, 20]
        s.total_steps = 28
        s.total_trials = 56
        assert s.average_length == 15.0
        assert s.acceptance_rate == 0.5

    def test_stats_empty(self):
        s = WalkStats()
        assert s.average_length == 0.0
        assert s.acceptance_rate == 1.0


class TestHubGraph:
    def test_star_walks_bounce_through_hub(self, star_graph):
        cluster = Cluster(1, np.zeros(star_graph.num_nodes, dtype=np.int64),
                          seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=9, walks_per_node=1)
        result = DistributedWalkEngine(star_graph, cluster, cfg).run()
        for walk in result.corpus.walks:
            # Alternates hub/leaf: every other position is the hub.
            positions = np.flatnonzero(np.asarray(walk) == 0)
            assert np.all(np.diff(positions) == 2)

    def test_hub_dominates_corpus_frequency(self, star_graph):
        cluster = Cluster(1, np.zeros(star_graph.num_nodes, dtype=np.int64),
                          seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=6, walks_per_node=2)
        result = DistributedWalkEngine(star_graph, cluster, cfg).run()
        vocab = Vocabulary.from_corpus(result.corpus)
        assert vocab.row_to_node[0] == 0  # the hub is the hottest row


class TestVectorizedEngineEdges:
    """Degenerate inputs through the batched InCoM backend (and, where the
    behaviour must match, through the loop backend too)."""

    @staticmethod
    def _run(graph, cfg, machines=1, seed=0, sources=None):
        cluster = Cluster(
            machines,
            np.arange(graph.num_nodes, dtype=np.int64) % machines,
            seed=seed,
        )
        return DistributedWalkEngine(graph, cluster, cfg).run(sources=sources)

    def test_isolated_vertices_skipped_by_default(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], num_nodes=6)  # 3..5 isolated
        result = self._run(g, WalkConfig.distger(max_rounds=1, min_rounds=1))
        starts = {int(w[0]) for w in result.corpus.walks}
        assert starts == {0, 1, 2}

    def test_isolated_vertex_as_explicit_source(self):
        """An explicitly requested dead source yields a length-1 walk in
        both backends (the walker dies where it stands)."""
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)  # node 2 isolated
        for backend in ("loop", "vectorized"):
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1,
                                     backend=backend, rng_protocol="walker")
            result = self._run(g, cfg, sources=np.array([2, 0]))
            assert [len(w) for w in result.corpus.walks][0] == 1
            assert int(result.corpus.walks[0][0]) == 2

    def test_single_node_graph(self):
        g = CSRGraph.from_edges([], num_nodes=1)
        result = self._run(g, WalkConfig.distger())
        assert result.corpus.num_walks == 0
        assert result.stats.total_walks == 0

    def test_empty_graph_routine(self):
        g = CSRGraph.from_edges([], num_nodes=4)
        result = self._run(g, WalkConfig.routine("deepwalk"))
        assert result.corpus.num_walks == 0

    def test_self_loop_graph(self):
        """A raw CSR self-loop pins the walker to one node: zero entropy
        growth keeps R² degenerate at 1, so the walk runs to max_length --
        identically in both backends."""
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)  # 0 -> 0
        g = CSRGraph(indptr, indices, directed=True)
        walks = {}
        for backend in ("loop", "vectorized"):
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1,
                                     max_length=12, backend=backend,
                                     rng_protocol="walker")
            result = self._run(g, cfg)
            assert result.stats.walk_lengths == [12]
            walks[backend] = [tuple(int(v) for v in w)
                              for w in result.corpus.walks]
        assert walks["loop"] == walks["vectorized"]
        assert walks["loop"][0] == (0,) * 12

    def test_mu_zero_every_walker_hits_max_length(self, small_graph):
        """mu = 0 disables the R² rule (R² < 0 is impossible), so every
        walk on a dead-end-free graph runs to max_length exactly."""
        cfg = WalkConfig.distger(mu=0.0, max_length=17, max_rounds=1,
                                 min_rounds=1)
        result = self._run(small_graph, cfg)
        assert result.stats.walk_lengths == [17] * small_graph.num_nodes

    def test_mu_one_stops_at_min_length(self, small_graph):
        """mu = 1 stops as soon as the length floor admits any non-perfect
        R²; no walk may exceed a perfectly-linear entropy ramp's length."""
        cfg = WalkConfig.distger(mu=1.0, min_length=4, max_length=40,
                                 max_rounds=1, min_rounds=1)
        result = self._run(small_graph, cfg)
        assert all(l >= 4 for l in result.stats.walk_lengths)
        # R² of a 4-token walk is almost never exactly 1.0: the bulk must
        # stop right at the floor.
        assert np.median(result.stats.walk_lengths) == 4

    def test_mu_extremes_parity(self, small_graph):
        for mu in (0.0, 1.0):
            runs = []
            for backend in ("loop", "vectorized"):
                cfg = WalkConfig.distger(mu=mu, max_rounds=1, min_rounds=1,
                                         backend=backend,
                                         rng_protocol="walker")
                result = self._run(small_graph, cfg, machines=2, seed=5)
                runs.append([tuple(int(v) for v in w)
                             for w in result.corpus.walks])
            assert runs[0] == runs[1]

    def test_min_walk_length_one_routine(self, triangle):
        cfg = WalkConfig.routine("deepwalk", walk_length=1, walks_per_node=2)
        result = self._run(triangle, cfg)
        assert all(l == 1 for l in result.stats.walk_lengths)
        assert result.corpus.num_walks == 2 * triangle.num_nodes


class TestSingleMachineEquivalence:
    def test_one_machine_sync_modes_agree(self):
        """With one machine every sync strategy is a no-op: identical
        embeddings regardless of mode."""
        corpus = Corpus(10)
        rng = np.random.default_rng(3)
        for _ in range(10):
            corpus.add_walk(rng.integers(0, 10, size=8))
        outs = []
        for mode in ("none", "full", "hotness"):
            cluster = Cluster(1, np.zeros(10, dtype=np.int64), seed=0)
            cfg = TrainConfig(dim=4, window=2, negatives=1, epochs=1,
                              sync_mode=mode)
            outs.append(DistributedTrainer(corpus, cluster, cfg)
                        .train().embeddings)
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])
