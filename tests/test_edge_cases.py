"""Failure injection and degenerate-input behaviour across the stack.

A production library's edges: isolated nodes, empty corpora, dead-end
directed graphs, single-node partitions, zero-occurrence vocabularies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    DistributedTrainer,
    EmbeddingModel,
    NegativeSampler,
    TrainConfig,
    Vocabulary,
)
from repro.graph import CSRGraph, star
from repro.runtime import Cluster
from repro.systems import DistGER
from repro.walks import (
    Corpus,
    DistributedWalkEngine,
    WalkConfig,
    Walker,
    WalkStats,
)


class TestIsolatedNodes:
    def test_walk_engine_skips_isolated_sources(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=4)  # 2, 3 isolated
        cluster = Cluster(1, np.zeros(4, dtype=np.int64), seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=5, walks_per_node=1)
        result = DistributedWalkEngine(g, cluster, cfg).run()
        starts = {int(w[0]) for w in result.corpus.walks}
        assert starts == {0, 1}

    def test_isolated_nodes_get_embeddings_anyway(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=5)
        result = DistGER(num_machines=1, dim=8, epochs=1, seed=0).embed(g)
        assert result.embeddings.shape == (5, 8)
        assert np.all(np.isfinite(result.embeddings))


class TestDirectedDeadEnds:
    def test_star_out_edges_only(self):
        # All arcs point hub -> leaves; every walk dies after one hop.
        edges = [(0, i) for i in range(1, 6)]
        g = CSRGraph.from_edges(edges, directed=True)
        cluster = Cluster(1, np.zeros(6, dtype=np.int64), seed=0)
        cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
        result = DistributedWalkEngine(g, cluster, cfg).run()
        assert max(result.stats.walk_lengths) <= 2


class TestEmptyAndTiny:
    def test_trainer_on_single_walk(self):
        corpus = Corpus(3)
        corpus.add_walk([0, 1, 2])
        cluster = Cluster(2, np.zeros(3, dtype=np.int64), seed=0)
        result = DistributedTrainer(
            corpus, cluster, TrainConfig(dim=4, window=2, negatives=1,
                                         epochs=1)
        ).train()
        assert result.embeddings.shape == (3, 4)

    def test_vocabulary_all_zero_counts(self):
        corpus = Corpus(4)  # nothing added
        vocab = Vocabulary.from_corpus(corpus)
        assert vocab.max_occurrence == 0
        sampler = NegativeSampler(vocab)  # falls back to uniform
        rows = sampler.sample_rows(10, np.random.default_rng(0))
        assert rows.size == 10

    def test_model_on_tiny_vocab(self):
        corpus = Corpus(1)
        corpus.add_walk([0])
        vocab = Vocabulary.from_corpus(corpus)
        model = EmbeddingModel(vocab, dim=4, seed=0)
        assert model.embeddings_node_space().shape == (1, 4)

    def test_system_on_triangle(self, triangle):
        result = DistGER(num_machines=1, dim=4, epochs=1, seed=0).embed(triangle)
        assert result.embeddings.shape == (3, 4)


class TestWalkerState:
    def test_start_includes_source(self):
        w = Walker.start(5, 7)
        assert w.path == [7]
        assert w.length == 1
        assert w.steps == 0

    def test_advance_tracks_previous(self):
        w = Walker.start(0, 1)
        w.advance(4)
        assert w.previous == 1
        assert w.current == 4
        assert w.steps == 1
        w.advance(2)
        assert w.previous == 4
        assert w.length == 3

    def test_stats_aggregates(self):
        s = WalkStats()
        s.walk_lengths = [10, 20]
        s.total_steps = 28
        s.total_trials = 56
        assert s.average_length == 15.0
        assert s.acceptance_rate == 0.5

    def test_stats_empty(self):
        s = WalkStats()
        assert s.average_length == 0.0
        assert s.acceptance_rate == 1.0


class TestHubGraph:
    def test_star_walks_bounce_through_hub(self, star_graph):
        cluster = Cluster(1, np.zeros(star_graph.num_nodes, dtype=np.int64),
                          seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=9, walks_per_node=1)
        result = DistributedWalkEngine(star_graph, cluster, cfg).run()
        for walk in result.corpus.walks:
            # Alternates hub/leaf: every other position is the hub.
            positions = np.flatnonzero(np.asarray(walk) == 0)
            assert np.all(np.diff(positions) == 2)

    def test_hub_dominates_corpus_frequency(self, star_graph):
        cluster = Cluster(1, np.zeros(star_graph.num_nodes, dtype=np.int64),
                          seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=6, walks_per_node=2)
        result = DistributedWalkEngine(star_graph, cluster, cfg).run()
        vocab = Vocabulary.from_corpus(result.corpus)
        assert vocab.row_to_node[0] == 0  # the hub is the hottest row


class TestSingleMachineEquivalence:
    def test_one_machine_sync_modes_agree(self):
        """With one machine every sync strategy is a no-op: identical
        embeddings regardless of mode."""
        corpus = Corpus(10)
        rng = np.random.default_rng(3)
        for _ in range(10):
            corpus.add_walk(rng.integers(0, 10, size=8))
        outs = []
        for mode in ("none", "full", "hotness"):
            cluster = Cluster(1, np.zeros(10, dtype=np.int64), seed=0)
            cfg = TrainConfig(dim=4, window=2, negatives=1, epochs=1,
                              sync_mode=mode)
            outs.append(DistributedTrainer(corpus, cluster, cfg)
                        .train().embeddings)
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])
