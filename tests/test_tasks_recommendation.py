"""Tests for the bipartite generator and the recommendation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import BipartiteInfo, bipartite_preference_graph
from repro.tasks import (
    evaluate_recommendation,
    random_baseline_precision,
    rank_items,
    split_interactions,
)


@pytest.fixture(scope="module")
def shop():
    """A 60-user, 40-item preference graph with 4 planted groups."""
    return bipartite_preference_graph(
        num_users=60, num_items=40, num_groups=4,
        interactions_per_user=8, affinity=0.9, seed=3,
    )


class TestBipartiteGenerator:
    def test_structure(self, shop):
        graph, info = shop
        assert graph.num_nodes == 100
        assert info.num_users == 60 and info.num_items == 40
        assert info.user_ids[-1] == 59
        assert info.item_ids[0] == 60
        assert not info.is_item(59)
        assert info.is_item(60)

    def test_strictly_bipartite(self, shop):
        graph, info = shop
        for user in info.user_ids:
            assert all(info.is_item(int(v)) for v in graph.neighbors(user))
        for item in info.item_ids:
            assert all(not info.is_item(int(v)) for v in graph.neighbors(item))

    def test_interactions_per_user(self, shop):
        graph, info = shop
        degrees = graph.degrees[info.user_ids]
        assert np.all(degrees >= 1)
        assert np.all(degrees <= 8)
        assert degrees.mean() > 5  # near-complete baskets at this affinity

    def test_affinity_concentrates_groups(self, shop):
        graph, info = shop
        in_group = 0
        total = 0
        for user in info.user_ids:
            g = info.user_groups[user]
            for item in graph.neighbors(user):
                total += 1
                if info.item_groups[int(item) - info.num_users] == g:
                    in_group += 1
        assert in_group / total > 0.7

    def test_every_group_has_items(self, shop):
        _, info = shop
        assert set(info.item_groups.tolist()) == {0, 1, 2, 3}

    def test_deterministic(self):
        a = bipartite_preference_graph(20, 15, 3, 4, seed=7)
        b = bipartite_preference_graph(20, 15, 3, 4, seed=7)
        assert np.array_equal(a[0].indices, b[0].indices)
        assert np.array_equal(a[1].user_groups, b[1].user_groups)

    def test_validation(self):
        with pytest.raises(ValueError):
            bipartite_preference_graph(0, 10)
        with pytest.raises(ValueError):
            bipartite_preference_graph(10, 2, num_groups=5)
        with pytest.raises(ValueError):
            bipartite_preference_graph(10, 10, zipf_exponent=0.0)
        with pytest.raises(ValueError):
            bipartite_preference_graph(10, 10, affinity=1.5)


class TestSplitInteractions:
    def test_holdout_fraction(self, shop):
        graph, info = shop
        split = split_interactions(graph, info, test_fraction=0.3, seed=0)
        held = sum(v.size for v in split.test_items.values())
        total = int(graph.degrees[info.user_ids].sum())
        assert 0.15 * total < held < 0.45 * total

    def test_every_user_keeps_a_training_item(self, shop):
        graph, info = shop
        split = split_interactions(graph, info, test_fraction=0.9, seed=0)
        for user in split.test_items:
            assert split.train_graph.degree(user) >= 1

    def test_train_graph_lost_exactly_held_edges(self, shop):
        graph, info = shop
        split = split_interactions(graph, info, test_fraction=0.3, seed=1)
        held = sum(v.size for v in split.test_items.values())
        assert graph.num_edges - split.train_graph.num_edges == held

    def test_test_items_disjoint_from_train_items(self, shop):
        graph, info = shop
        split = split_interactions(graph, info, test_fraction=0.4, seed=2)
        for user, held in split.test_items.items():
            kept = set(split.train_items[user].tolist())
            assert not kept.intersection(held.tolist())

    def test_zero_fraction(self, shop):
        graph, info = shop
        split = split_interactions(graph, info, test_fraction=0.0, seed=0)
        assert not split.test_items
        assert split.train_graph.num_edges == graph.num_edges


class TestRankItems:
    def test_orders_by_score(self):
        emb = np.zeros((5, 2))
        emb[0] = [1.0, 0.0]             # the user
        emb[2] = [0.9, 0.0]             # best item
        emb[3] = [0.5, 0.0]
        emb[4] = [0.1, 0.0]
        items = np.array([2, 3, 4])
        recs = rank_items(emb, 0, items, np.empty(0, dtype=np.int64), k=2)
        assert list(recs) == [2, 3]

    def test_excludes_training_items(self):
        emb = np.zeros((5, 2))
        emb[0] = [1.0, 0.0]
        emb[2] = [0.9, 0.0]
        emb[3] = [0.5, 0.0]
        emb[4] = [0.1, 0.0]
        items = np.array([2, 3, 4])
        recs = rank_items(emb, 0, items, np.array([2]), k=2)
        assert 2 not in recs
        assert list(recs) == [3, 4]

    def test_k_capped_at_catalogue(self):
        emb = np.random.default_rng(0).normal(size=(4, 3))
        recs = rank_items(emb, 0, np.array([1, 2, 3]),
                          np.empty(0, dtype=np.int64), k=10)
        assert recs.size == 3


class TestEvaluateRecommendation:
    def test_oracle_embedding_wins(self, shop):
        """Group-one-hot embeddings must beat the random baseline."""
        graph, info = shop

        def oracle(train_graph):
            emb = np.zeros((graph.num_nodes, 4))
            emb[info.user_ids] = np.eye(4)[info.user_groups]
            emb[info.item_ids] = np.eye(4)[info.item_groups]
            return emb

        report = evaluate_recommendation(graph, info, oracle, k=10,
                                         test_fraction=0.3, seed=0)
        split = split_interactions(graph, info, test_fraction=0.3, seed=0)
        floor = random_baseline_precision(info, split, k=10)
        assert report.precision_at_k > 2 * floor
        assert report.hit_rate_at_k > 0.5
        assert 0.0 <= report.mrr <= 1.0
        assert report.num_users_evaluated == len(split.test_items)

    def test_random_embedding_near_floor(self, shop):
        graph, info = shop
        rng = np.random.default_rng(9)

        def random_embed(train_graph):
            return rng.normal(size=(graph.num_nodes, 8))

        report = evaluate_recommendation(graph, info, random_embed, k=10,
                                         test_fraction=0.3, seed=0)
        split = split_interactions(graph, info, test_fraction=0.3, seed=0)
        floor = random_baseline_precision(info, split, k=10)
        # Random scores hover near the floor (allow generous noise).
        assert report.precision_at_k < floor + 0.15

    def test_end_to_end_with_distger(self, shop):
        """The real system beats random recommendations on the stand-in."""
        from repro.api import embed_graph

        graph, info = shop

        def embed(train_graph):
            return embed_graph(train_graph, method="distger", num_machines=2,
                               dim=16, epochs=2, seed=0).embeddings

        report = evaluate_recommendation(graph, info, embed, k=10,
                                         test_fraction=0.3, seed=0)
        split = split_interactions(graph, info, test_fraction=0.3, seed=0)
        floor = random_baseline_precision(info, split, k=10)
        assert report.precision_at_k > floor
        assert report.recall_at_k > 0.0

    def test_wrong_embedding_shape_rejected(self, shop):
        graph, info = shop
        with pytest.raises(ValueError, match="every node"):
            evaluate_recommendation(
                graph, info, lambda g: np.zeros((3, 2)), k=5, seed=0)

    def test_all_singleton_users_rejected(self):
        graph, info = bipartite_preference_graph(
            num_users=5, num_items=10, num_groups=2,
            interactions_per_user=1, seed=0)
        with pytest.raises(ValueError, match="hold any out"):
            evaluate_recommendation(
                graph, info, lambda g: np.zeros((graph.num_nodes, 2)),
                k=5, test_fraction=0.3, seed=0)
