"""Tests for graph transformations (induced subgraph, components, k-core)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRGraph,
    core_number,
    induced_subgraph,
    k_core,
    largest_component_subgraph,
    powerlaw_cluster,
    ring_of_cliques,
    star,
)


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = ring_of_cliques(2, 4)  # two K4s, one bridge per ring step
        sub, old_ids = induced_subgraph(g, np.arange(4))
        assert sub.num_nodes == 4
        assert sub.num_edges == 6  # the K4, bridge endpoints cut away
        assert np.array_equal(old_ids, np.arange(4))

    def test_relabelling_is_compact(self, medium_graph):
        nodes = np.array([5, 50, 100, 150])
        sub, old_ids = induced_subgraph(medium_graph, nodes)
        assert sub.num_nodes == 4
        assert np.array_equal(old_ids, nodes)

    def test_weights_carried_over(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], weights=[5.0, 7.0])
        sub, old_ids = induced_subgraph(g, np.array([1, 2]))
        assert sub.is_weighted
        assert sub.edge_weight(0, 1) == pytest.approx(7.0)

    def test_duplicate_nodes_deduped(self, triangle):
        sub, old_ids = induced_subgraph(triangle, np.array([0, 0, 1]))
        assert sub.num_nodes == 2

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ValueError, match="outside"):
            induced_subgraph(triangle, np.array([9]))

    def test_empty_selection(self, triangle):
        sub, old_ids = induced_subgraph(triangle, np.empty(0, dtype=np.int64))
        assert sub.num_nodes == 0
        assert old_ids.size == 0


class TestLargestComponent:
    def test_extracts_largest(self):
        # K4 plus a disjoint edge.
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5)]
        g = CSRGraph.from_edges(edges)
        sub, old_ids = largest_component_subgraph(g)
        assert sub.num_nodes == 4
        assert set(old_ids.tolist()) == {0, 1, 2, 3}

    def test_connected_graph_unchanged_sizes(self, small_graph):
        sub, old_ids = largest_component_subgraph(small_graph)
        assert sub.num_nodes == small_graph.num_nodes
        assert sub.num_edges == small_graph.num_edges


class TestKCore:
    def test_star_one_core(self):
        g = star(5)
        core1, ids1 = k_core(g, 1)
        assert core1.num_nodes == 6  # everything has degree >= 1
        core2, ids2 = k_core(g, 2)
        assert core2.num_nodes == 0  # leaves peel, then the hub

    def test_clique_survives_its_core(self):
        g = ring_of_cliques(3, 5)  # K5s: internal degree 4 (+ ring)
        core4, ids = k_core(g, 4)
        assert core4.num_nodes == 15  # all clique nodes survive
        core5, _ = k_core(g, 5)
        assert core5.num_nodes < 15

    def test_core_property_holds(self, medium_graph):
        for k in (2, 3, 4):
            core, ids = k_core(medium_graph, k)
            if core.num_nodes:
                assert core.degrees.min() >= k

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            k_core(g, 1)
        with pytest.raises(ValueError, match="undirected"):
            core_number(g)


class TestCoreNumber:
    def test_star(self):
        assert core_number(star(4)).tolist() == [1, 1, 1, 1, 1]

    def test_clique(self):
        g = ring_of_cliques(1, 5)
        assert np.all(core_number(g) == 4)

    def test_isolated_zero(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        assert core_number(g)[2] == 0

    def test_consistent_with_k_core(self, medium_graph):
        cores = core_number(medium_graph)
        for k in (2, 3):
            sub, ids = k_core(medium_graph, k)
            assert set(ids.tolist()) == set(
                np.flatnonzero(cores >= k).tolist())

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_core_bounded_by_degree(self, seed):
        g = powerlaw_cluster(40, attach=2, seed=seed)
        cores = core_number(g)
        assert np.all(cores <= g.degrees)
        assert np.all(cores >= 0)
