"""Smoke tests for the documented entry points in ``examples/``.

The README and quickstart point users at these scripts, so they must
stay executable: each test runs an example as a real subprocess (its own
interpreter, the same ``PYTHONPATH=src`` convention CI uses) on a tiny
graph via the examples' ``REPRO_EXAMPLE_*`` shrink knobs, and asserts on
the printed markers rather than exact numbers -- the golden pipeline
suite owns quality, this suite owns "the documented commands run".
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def run_example(name: str, extra_env: dict, timeout: float = 600.0):
    env = dict(os.environ)
    python_path = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = os.path.abspath(SRC_DIR) + (
        os.pathsep + python_path if python_path else "")
    env.update(extra_env)
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=timeout, env=env)
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}"
    )
    return result.stdout


def test_quickstart_runs_on_a_tiny_graph():
    stdout = run_example("quickstart.py", {
        "REPRO_EXAMPLE_SCALE": "0.1",
        "REPRO_EXAMPLE_DIM": "16",
        "REPRO_EXAMPLE_EPOCHS": "1",
    })
    assert "Embeddings: (" in stdout
    assert "Information-oriented sampling:" in stdout
    assert "average walk length" in stdout
    # Phase breakdown printed for all three phases.
    for phase in ("partition", "sampling", "training"):
        assert phase in stdout


def test_scalability_study_runs_in_fast_mode():
    stdout = run_example("scalability_study.py",
                         {"REPRO_EXAMPLE_FAST": "1"})
    assert "Machine sweep" in stdout
    assert "Graph-size sweep" in stdout
    assert "Executor sweep" in stdout
    # Every executor row must confirm byte-parity with the serial run.
    parity_lines = [line for line in stdout.splitlines()
                    if "byte-identical to serial" in line]
    assert parity_lines, stdout
    assert all(line.rstrip().endswith("True") for line in parity_lines), \
        stdout


@pytest.mark.parametrize("example", ("quickstart.py",
                                     "scalability_study.py"))
def test_examples_exist_and_are_python(example):
    """Guard the README's pointers: the documented files exist."""
    path = os.path.join(EXAMPLES_DIR, example)
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    assert first.startswith("#!") or first.startswith('"""')
