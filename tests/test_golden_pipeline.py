"""Golden-run regression: a tiny end-to-end pipeline with pinned metrics.

One fixed pipeline -- FL stand-in at scale 0.5, 30% of edges held out,
DistGER on 2 simulated machines -- is checked against committed expected
metrics with tolerances, so future refactors of the walk engine, trainer
or partitioner cannot silently shift embedding quality.  The bands are
wide enough for cross-platform libm noise (HuGE's acceptance
probabilities go through ``tanh``) but tight enough to catch real
regressions: when this test fails, quality moved -- treat the new numbers
as a finding, not as an inconvenience.

The second half pins the machine-count invariance the walker RNG protocol
guarantees (the documented default for all new code paths): sampled
corpora, and therefore trained embeddings, do not depend on how many
machines the walks were sharded across.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import embed_graph
from repro.embedding import DistributedTrainer, TrainConfig
from repro.graph import load, powerlaw_cluster
from repro.partition import WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.tasks import auc_from_split, split_edges
from repro.walks import DistributedWalkEngine, WalkConfig

#: Committed expectations (measured at the introduction of this test).
#: Tolerances are absolute for AUC, relative elsewhere.
GOLDEN = {
    "auc": (0.9386, 0.05),
    "corpus_tokens": (35333, 0.03),
    "avg_walk_length": (23.56, 0.10),
    "embedding_norm": (1.5147, 0.15),
}


@pytest.fixture(scope="module")
def golden_run():
    graph = load("FL", scale=0.5).graph
    split = split_edges(graph, test_fraction=0.3, seed=1)
    result = embed_graph(split.train_graph, method="distger",
                         num_machines=2, dim=24, epochs=4, seed=7)
    return result, split


class TestGoldenMetrics:
    def test_link_prediction_auc(self, golden_run):
        result, split = golden_run
        auc = auc_from_split(result.embeddings, split)
        expected, tol = GOLDEN["auc"]
        assert abs(auc - expected) <= tol, \
            f"AUC {auc:.4f} left the golden band {expected}±{tol}"

    def test_corpus_tokens(self, golden_run):
        result, _ = golden_run
        expected, rtol = GOLDEN["corpus_tokens"]
        assert abs(result.stats["corpus_tokens"] - expected) <= \
            rtol * expected

    def test_average_walk_length(self, golden_run):
        result, _ = golden_run
        expected, rtol = GOLDEN["avg_walk_length"]
        assert abs(result.stats["avg_walk_length"] - expected) <= \
            rtol * expected

    def test_embedding_norms(self, golden_run):
        result, _ = golden_run
        norm = float(np.linalg.norm(result.embeddings, axis=1).mean())
        expected, rtol = GOLDEN["embedding_norm"]
        assert abs(norm - expected) <= rtol * expected
        assert np.all(np.isfinite(result.embeddings))

    def test_backends_reproduce_the_golden_run(self, golden_run):
        """The loop backends land inside the same bands (they are the
        parity references, so this is nearly free but guards the wiring:
        a backend silently diverging from its reference shows up here
        even if the parity suite is skipped)."""
        _, split = golden_run
        result = embed_graph(split.train_graph, method="distger",
                             num_machines=2, dim=24, epochs=4, seed=7,
                             backend="loop", train_backend="loop",
                             partition_backend="loop")
        auc = auc_from_split(result.embeddings, split)
        expected, tol = GOLDEN["auc"]
        assert abs(auc - expected) <= tol

    def test_process_execution_reproduces_the_golden_run(self, golden_run):
        """Executor choice is quality-invariant: ``execution="process"``
        lands byte-identically on the serial golden embeddings, and
        therefore inside the same committed AUC band."""
        result, split = golden_run
        process = embed_graph(split.train_graph, method="distger",
                              num_machines=2, dim=24, epochs=4, seed=7,
                              execution="process", workers=2)
        np.testing.assert_array_equal(result.embeddings, process.embeddings)
        auc = auc_from_split(process.embeddings, split)
        expected, tol = GOLDEN["auc"]
        assert abs(auc - expected) <= tol

    def test_pipeline_execution_reproduces_the_golden_run(self, golden_run):
        """The streaming executor -- MPGP partitioning overlapped with
        sampling, rounds flushed while the next round samples, deferred
        metric reconstruction, feed-gated slice training -- still lands
        byte-identically on the serial golden embeddings."""
        result, split = golden_run
        pipeline = embed_graph(split.train_graph, method="distger",
                               num_machines=2, dim=24, epochs=4, seed=7,
                               execution="pipeline", workers=2)
        np.testing.assert_array_equal(result.embeddings, pipeline.embeddings)
        np.testing.assert_array_equal(result.corpus.tokens,
                                      pipeline.corpus.tokens)
        np.testing.assert_array_equal(result.corpus.offsets,
                                      pipeline.corpus.offsets)
        auc = auc_from_split(pipeline.embeddings, split)
        expected, tol = GOLDEN["auc"]
        assert abs(auc - expected) <= tol


class TestMachineCountInvariance:
    """Corpora and embeddings are invariant to the walk-phase machine
    count under the walker protocol (the default)."""

    @pytest.fixture(scope="class")
    def corpora(self):
        graph = powerlaw_cluster(120, attach=4, triangle_prob=0.4, seed=3)
        out = {}
        for machines in (1, 2, 4):
            part = WorkloadBalancePartitioner().partition(graph, machines)
            cluster = Cluster(machines, part.assignment, seed=5)
            cfg = WalkConfig.distger(max_rounds=3, min_rounds=2)
            out[machines] = DistributedWalkEngine(graph, cluster, cfg).run()
        return out

    def test_corpora_byte_identical(self, corpora):
        ref = corpora[1].corpus
        for machines in (2, 4):
            other = corpora[machines].corpus
            assert len(ref.walks) == len(other.walks)
            for a, b in zip(ref.walks, other.walks):
                np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(ref.occurrences, other.occurrences)

    def test_embeddings_invariant_to_walk_machine_count(self, corpora):
        """Training the (identical) corpora on a fixed training cluster
        yields identical embeddings -- the sampling shard count leaves no
        trace in the final model."""
        embeddings = {}
        for machines, walk_result in corpora.items():
            cluster = Cluster(2, np.zeros(120, dtype=np.int64), seed=0)
            cfg = TrainConfig(dim=16, epochs=1, seed=11)
            trainer = DistributedTrainer(walk_result.corpus, cluster, cfg)
            embeddings[machines] = trainer.train().embeddings
        np.testing.assert_array_equal(embeddings[1], embeddings[2])
        np.testing.assert_array_equal(embeddings[1], embeddings[4])

    def test_fullpath_walks_also_invariant(self):
        """The walker protocol now covers the loop-only fullpath mode
        too (it is the default for every backend)."""
        graph = powerlaw_cluster(60, attach=3, seed=9)
        tokens = set()
        for machines in (1, 3):
            part = WorkloadBalancePartitioner().partition(graph, machines)
            cluster = Cluster(machines, part.assignment, seed=2)
            cfg = WalkConfig.huge_d(max_rounds=1, min_rounds=1)
            result = DistributedWalkEngine(graph, cluster, cfg).run()
            tokens.add(tuple(int(x) for walk in result.corpus.walks
                             for x in walk))
        assert len(tokens) == 1
