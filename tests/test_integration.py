"""Integration tests: the paper's cross-system shape claims, end to end.

These are the assertions that make the reproduction a reproduction --
each corresponds to a quantitative claim in the paper's evaluation (§6).
They run on reduced-scale stand-ins to stay test-suite friendly; the full
benchmark harness in benchmarks/ measures the same claims at full
stand-in scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import load
from repro.systems import DistGER, HuGED, KnightKing
from repro.tasks import auc_from_split, split_edges


@pytest.fixture(scope="module")
def lj_split():
    ds = load("LJ", scale=0.5)
    split = split_edges(ds.graph, test_fraction=0.5, seed=0)
    return split


@pytest.fixture(scope="module")
def system_results(lj_split):
    """One run of each walk-based system on the same residual graph."""
    results = {}
    for cls in (DistGER, HuGED, KnightKing):
        system = cls(num_machines=4, dim=32, epochs=4, seed=0)
        results[cls.name] = system.embed(lj_split.train_graph)
    return results


class TestEfficiencyShapes:
    def test_distger_faster_than_huged(self, system_results):
        """Fig. 5: InCoM removes HuGE-D's quadratic measurement cost."""
        assert system_results["DistGER"].wall_seconds < \
            system_results["HuGE-D"].wall_seconds

    def test_distger_faster_than_knightking(self, system_results):
        """Fig. 5: information-oriented walks shrink sampling + training."""
        assert system_results["DistGER"].wall_seconds < \
            system_results["KnightKing"].wall_seconds

    def test_distger_fewer_messages_than_huged(self, system_results):
        """Fig. 10(c): MPGP keeps walkers local."""
        assert system_results["DistGER"].metrics.messages_sent < \
            system_results["HuGE-D"].metrics.messages_sent

    def test_distger_message_bytes_constant_sized(self, system_results):
        m = system_results["DistGER"].metrics
        assert m.message_bytes == m.messages_sent * 80

    def test_huged_messages_linear_in_path(self, system_results):
        m = system_results["HuGE-D"].metrics
        # Average message is strictly larger than the constant 80 bytes at
        # the measured average walk length.
        assert m.message_bytes / max(1, m.messages_sent) > 80

    def test_walk_length_reduction_vs_routine(self, system_results):
        """§6.5: information-oriented walks are much shorter than L=80."""
        avg = system_results["DistGER"].stats["avg_walk_length"]
        assert avg < 0.6 * 80

    def test_corpus_reduction(self, system_results):
        """Smaller corpus is the training-speed lever (17-28x in §6.5)."""
        assert system_results["DistGER"].stats["corpus_tokens"] < \
            0.5 * system_results["KnightKing"].stats["corpus_tokens"]

    def test_sync_traffic_reduction(self, system_results):
        """Improvement-III: hotness blocks vs full-model sync."""
        d = system_results["DistGER"].metrics
        k = system_results["KnightKing"].metrics
        # Per sync message, DistGER ships fewer bytes.
        d_per = d.sync_bytes / max(1, d.sync_messages)
        k_per = k.sync_bytes / max(1, k.sync_messages)
        assert d_per < k_per


class TestEffectivenessShapes:
    def test_distger_auc_competitive(self, system_results, lj_split):
        """Table 4's headline: DistGER reaches the strongest AUC tier
        while doing a fraction of the work."""
        aucs = {
            name: auc_from_split(res.embeddings, lj_split)
            for name, res in system_results.items()
        }
        assert aucs["DistGER"] > 0.8
        assert aucs["DistGER"] >= max(aucs.values()) - 0.05

    def test_embeddings_cluster_communities(self):
        """Nodes of one community embed closer than cross-community pairs."""
        ds = load("FL", scale=0.5)
        result = DistGER(num_machines=2, dim=32, epochs=2, seed=0).embed(ds.graph)
        emb = result.embeddings
        comm = ds.communities
        rng = np.random.default_rng(0)
        same, diff = [], []
        for _ in range(300):
            a, b = rng.integers(0, ds.graph.num_nodes, size=2)
            if a == b:
                continue
            sim = float(emb[a] @ emb[b])
            (same if comm[a] == comm[b] else diff).append(sim)
        assert np.mean(same) > np.mean(diff)


class TestInformationOrientedProperty:
    def test_walk_lengths_adapt_to_structure(self):
        """The heart of the paper: walk lengths are decided by information
        convergence, so denser graphs (more structure to cover) get longer
        walks than sparse ones under identical settings."""
        from repro.partition import MPGPPartitioner
        from repro.runtime import Cluster
        from repro.walks import DistributedWalkEngine, WalkConfig

        lengths = {}
        for name in ("FL", "YT"):
            ds = load(name, scale=0.5)
            assignment = MPGPPartitioner().partition(ds.graph, 2).assignment
            cluster = Cluster(2, assignment, seed=1)
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
            result = DistributedWalkEngine(ds.graph, cluster, cfg).run()
            lengths[name] = result.stats.average_length
        assert lengths["FL"] > lengths["YT"], (
            "dense FL should walk longer than sparse YT under the "
            "information-convergence rule"
        )

    def test_end_to_end_determinism(self):
        ds = load("FL", scale=0.4)
        runs = []
        for _ in range(2):
            res = DistGER(num_machines=2, dim=8, epochs=1, seed=5).embed(ds.graph)
            runs.append(res.embeddings)
        np.testing.assert_array_equal(runs[0], runs[1])


class TestScalabilityShape:
    def test_simulated_time_improves_with_machines(self):
        """Fig. 6: the simulated makespan drops as machines are added."""
        ds = load("LJ", scale=0.4)
        times = {}
        for m in (1, 4):
            res = DistGER(num_machines=m, dim=16, epochs=1, seed=0).embed(ds.graph)
            times[m] = res.simulated_seconds
        assert times[4] < times[1]
