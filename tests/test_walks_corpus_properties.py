"""Corpus-invariants property suite for the flat walk storage.

The corpus is a CSR-style flat token block + monotone offsets with the
list API preserved as views (see :mod:`repro.walks.corpus`).  This suite
pins the representation invariants that every consumer (vocab build,
window planner, sync-round slicing, the shared-memory slice-descriptor
protocol) relies on:

* offsets are monotone and exhaustive -- every token belongs to exactly
  one walk, walk ``i`` is ``tokens[offsets[i]:offsets[i + 1]]``;
* ``add_walk`` and ``add_walks`` build byte-identical flat state;
* flat ↔ list views round trip losslessly (including through save/load
  in both the npz flat format and the legacy text format, zero-length
  walks and empty corpora included);
* iteration order is stable under process execution -- the parent's
  ``add_walks`` flush preserves walk-id order no matter how many workers
  produced the padded path rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import powerlaw_cluster
from repro.partition.balance import WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.walks import Corpus, DistributedWalkEngine, WalkConfig

NUM_NODES = 23

walk_lists = st.lists(
    st.lists(st.integers(0, NUM_NODES - 1), min_size=1, max_size=12),
    min_size=0, max_size=20,
)


def build_corpus(walks) -> Corpus:
    corpus = Corpus(NUM_NODES)
    for walk in walks:
        corpus.add_walk(walk)
    return corpus


def padded_matrix(walks):
    """The (paths, lengths) layout the batch engines flush through."""
    lengths = np.array([len(w) for w in walks], dtype=np.int64)
    cap = max(1, int(lengths.max()) if lengths.size else 1)
    paths = np.full((len(walks), cap), -1, dtype=np.int64)
    for i, walk in enumerate(walks):
        paths[i, :len(walk)] = walk
    return paths, lengths


def assert_flat_equal(a: Corpus, b: Corpus) -> None:
    assert a.num_nodes == b.num_nodes
    np.testing.assert_array_equal(a.tokens, b.tokens)
    np.testing.assert_array_equal(a.offsets, b.offsets)
    np.testing.assert_array_equal(a.occurrences, b.occurrences)


class TestOffsetsInvariants:
    @given(walks=walk_lists)
    @settings(max_examples=50, deadline=None)
    def test_offsets_monotone_and_exhaustive(self, walks):
        corpus = build_corpus(walks)
        offsets = corpus.offsets
        assert offsets[0] == 0
        assert np.all(np.diff(offsets) >= 0)
        assert offsets[-1] == corpus.total_tokens == corpus.tokens.size
        np.testing.assert_array_equal(
            corpus.walk_lengths, [len(w) for w in walks])
        np.testing.assert_array_equal(
            corpus.tokens,
            np.concatenate([np.asarray(w) for w in walks])
            if walks else np.empty(0, dtype=np.int64))

    @given(walks=walk_lists)
    @settings(max_examples=50, deadline=None)
    def test_occurrences_match_token_block(self, walks):
        corpus = build_corpus(walks)
        np.testing.assert_array_equal(
            corpus.occurrences,
            np.bincount(corpus.tokens, minlength=NUM_NODES))

    @given(walks=walk_lists)
    @settings(max_examples=50, deadline=None)
    def test_walk_views_cover_the_block(self, walks):
        corpus = build_corpus(walks)
        assert len(corpus.walks) == len(walks)
        for i, walk in enumerate(walks):
            np.testing.assert_array_equal(corpus.walks[i], walk)
            np.testing.assert_array_equal(corpus.walk(i), walk)
        # Views alias the flat block -- zero copy.
        if walks and len(walks[0]):
            assert corpus.walk(0).base is not None


class TestAddWalkAddWalksParity:
    @given(walks=walk_lists.filter(len))
    @settings(max_examples=50, deadline=None)
    def test_batch_flush_equals_serial_appends(self, walks):
        serial = build_corpus(walks)
        batched = Corpus(NUM_NODES)
        paths, lengths = padded_matrix(walks)
        batched.add_walks(paths, lengths)
        assert_flat_equal(serial, batched)

    @given(walks=walk_lists.filter(lambda ws: len(ws) >= 2),
           split=st.integers(1, 19))
    @settings(max_examples=50, deadline=None)
    def test_chunked_batches_equal_one_batch(self, walks, split):
        split = min(split, len(walks) - 1)
        chunked = Corpus(NUM_NODES)
        for chunk in (walks[:split], walks[split:]):
            paths, lengths = padded_matrix(chunk)
            chunked.add_walks(paths, lengths)
        assert_flat_equal(build_corpus(walks), chunked)

    def test_add_walks_rejects_empty_rows_and_bad_ids(self):
        corpus = Corpus(4)
        with pytest.raises(ValueError, match="at least one token"):
            corpus.add_walks(np.zeros((1, 3), dtype=np.int64),
                             np.array([0]))
        with pytest.raises(ValueError, match="outside the universe"):
            corpus.add_walks(np.array([[7, 1]]), np.array([2]))
        with pytest.raises(ValueError, match="exceeds the path"):
            # A length wider than the matrix would silently desync
            # offsets from the token block; it must be rejected.
            corpus.add_walks(np.array([[1, 2]]), np.array([5]))
        assert corpus.num_walks == 0  # rejected batches leave no trace
        # A batch whose padding holds out-of-range garbage is fine: only
        # the valid prefixes are read.
        paths = np.array([[1, 99, -5], [2, 3, 99]], dtype=np.int64)
        corpus.add_walks(paths, np.array([1, 2]))
        np.testing.assert_array_equal(corpus.tokens, [1, 2, 3])


class TestFlatListRoundTrips:
    @given(walks=walk_lists)
    @settings(max_examples=50, deadline=None)
    def test_from_flat_round_trip(self, walks):
        corpus = build_corpus(walks)
        rebuilt = Corpus.from_flat(NUM_NODES, corpus.tokens, corpus.offsets)
        assert_flat_equal(corpus, rebuilt)
        # ... and the rebuilt corpus stays growable.
        rebuilt.add_walk([0, 1])
        assert rebuilt.num_walks == corpus.num_walks + 1

    @given(walks=walk_lists)
    @settings(max_examples=50, deadline=None)
    def test_list_view_rebuild_round_trip(self, walks):
        corpus = build_corpus(walks)
        rebuilt = Corpus(NUM_NODES)
        for walk in corpus.walks:
            rebuilt.add_walk(walk)
        assert_flat_equal(corpus, rebuilt)

    def test_from_flat_accepts_zero_length_walks(self):
        corpus = Corpus.from_flat(5, [0, 1, 2], [0, 0, 2, 2, 3])
        assert corpus.num_walks == 4
        np.testing.assert_array_equal(corpus.walk_lengths, [0, 2, 0, 1])
        assert corpus.walk(0).size == 0
        np.testing.assert_array_equal(corpus.occurrences, [1, 1, 1, 0, 0])

    def test_from_flat_validation(self):
        with pytest.raises(ValueError, match="start at 0"):
            Corpus.from_flat(3, [0, 1], [1, 2])
        with pytest.raises(ValueError, match="token block"):
            Corpus.from_flat(3, [0, 1], [0, 1])
        with pytest.raises(ValueError, match="monotone"):
            Corpus.from_flat(3, [0, 1], [0, 2, 1, 2])
        with pytest.raises(ValueError, match="outside the universe"):
            Corpus.from_flat(3, [0, 5], [0, 2])

    def test_merge_preserves_flat_layout(self):
        a = build_corpus([[0, 1], [2]])
        b = Corpus.from_flat(NUM_NODES, [3, 4], [0, 0, 2])
        a.merge(b)
        np.testing.assert_array_equal(a.tokens, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(a.offsets, [0, 2, 3, 3, 5])

    def test_empty_and_single_token_walks(self):
        corpus = Corpus(3)
        corpus.add_walk([])            # documented no-op
        assert corpus.num_walks == 0
        corpus.add_walk([2])
        assert corpus.num_walks == 1
        np.testing.assert_array_equal(corpus.walk(0), [2])
        np.testing.assert_array_equal(corpus.walk(-1), [2])
        with pytest.raises(IndexError):
            corpus.walk(1)


class TestSaveLoadRoundTrips:
    @pytest.mark.parametrize("suffix", ("npz", "txt"))
    @given(walks=walk_lists)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_both_formats(self, tmp_path_factory, suffix, walks):
        corpus = build_corpus(walks)
        path = str(tmp_path_factory.mktemp("corpus") / f"c.{suffix}")
        corpus.save(path)
        assert_flat_equal(corpus, Corpus.load(path))

    @pytest.mark.parametrize("suffix", ("npz", "txt"))
    def test_empty_corpus_round_trip(self, tmp_path, suffix):
        corpus = Corpus(7)
        path = str(tmp_path / f"empty.{suffix}")
        corpus.save(path)
        loaded = Corpus.load(path)
        assert loaded.num_nodes == 7
        assert loaded.num_walks == 0
        assert loaded.total_tokens == 0

    @pytest.mark.parametrize("suffix", ("npz", "txt"))
    def test_zero_length_walks_round_trip(self, tmp_path, suffix):
        """The regression this PR fixes: zero-length walks used to be
        silently dropped by the text loader (and had no flat encoding)."""
        corpus = Corpus.from_flat(6, [4, 5, 1], [0, 0, 2, 2, 2, 3])
        path = str(tmp_path / f"zeros.{suffix}")
        corpus.save(path)
        loaded = Corpus.load(path)
        assert_flat_equal(corpus, loaded)
        np.testing.assert_array_equal(loaded.walk_lengths, [0, 2, 0, 0, 1])

    def test_legacy_text_files_still_load(self, tmp_path):
        """Files written by the pre-flat revision (header + one walk per
        line) load through the same entry point."""
        path = tmp_path / "legacy.txt"
        path.write_text("# num_nodes=9\n0 1 2\n8 7\n")
        corpus = Corpus.load(str(path))
        assert corpus.num_nodes == 9
        np.testing.assert_array_equal(corpus.tokens, [0, 1, 2, 8, 7])
        np.testing.assert_array_equal(corpus.offsets, [0, 3, 5])

    def test_headerless_text_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="header"):
            Corpus.load(str(path))

    def test_npz_default_and_txt_opt_in(self, tmp_path):
        """Non-.txt paths get the flat npz format (sniffed on load)."""
        corpus = build_corpus([[1, 2], [3]])
        flat = tmp_path / "corpus.npz"
        corpus.save(str(flat))
        assert flat.read_bytes()[:2] == b"PK"
        text = tmp_path / "corpus.txt"
        corpus.save(str(text))
        assert text.read_text().startswith("# num_nodes=")
        assert_flat_equal(Corpus.load(str(flat)), Corpus.load(str(text)))


class TestFlushOrdering:
    """``add_walks`` flush ordering: walk-id order is preserved no matter
    how the padded rows were produced (worker slices write their rows
    independently; the parent flushes the whole round once)."""

    @given(walks=walk_lists.filter(lambda ws: len(ws) >= 4),
           workers=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_worker_sliced_writes_flush_in_row_order(self, walks, workers):
        from repro.runtime.executor import split_ranges

        paths, lengths = padded_matrix(walks)
        shared_paths = np.full_like(paths, -7)   # the shared output buffer
        shared_lengths = np.zeros_like(lengths)
        ranges = split_ranges(len(walks), workers)
        # Workers complete in arbitrary order; each writes only its slice.
        for lo, hi in reversed(ranges):
            shared_paths[lo:hi] = paths[lo:hi]
            shared_lengths[lo:hi] = lengths[lo:hi]
        flushed = Corpus(NUM_NODES)
        flushed.add_walks(shared_paths, shared_lengths)
        assert_flat_equal(build_corpus(walks), flushed)

    @pytest.mark.parametrize("workers", (1, 2, 4))
    @pytest.mark.parametrize("kind", ("directed", "weighted"))
    def test_engine_corpora_byte_exact_across_workers(self, kind, workers):
        """End to end: process rounds with 1/2/4 workers flush the same
        flat corpus, byte for byte, as the serial engine -- on directed
        and weighted graphs (the cases with dead ends / non-uniform
        draws)."""
        corpora = {}
        for execution, n_workers in (("serial", 0), ("process", workers)):
            graph = powerlaw_cluster(90, attach=3, triangle_prob=0.3, seed=6)
            if kind == "weighted":
                graph = graph.with_random_weights(np.random.default_rng(8))
            else:
                graph = graph.as_directed()
            part = WorkloadBalancePartitioner().partition(graph, 3)
            cluster = Cluster(3, part.assignment, seed=4)
            cfg = WalkConfig.distger(max_rounds=2, min_rounds=2,
                                     execution=execution, workers=n_workers)
            corpora[execution] = DistributedWalkEngine(
                graph, cluster, cfg).run().corpus
        assert_flat_equal(corpora["serial"], corpora["process"])

    def test_descriptor_rounds_ship_constant_bytes(self):
        """Process training over the flat corpus ships slice descriptors:
        the recorded per-round task bytes stay O(machines), not O(slice
        tokens)."""
        from repro.embedding import DistributedTrainer, TrainConfig

        graph = powerlaw_cluster(120, attach=4, triangle_prob=0.4, seed=2)
        part = WorkloadBalancePartitioner().partition(graph, 2)
        cluster = Cluster(2, part.assignment, seed=5)
        cfg = WalkConfig.distger(max_rounds=2, min_rounds=2)
        walk_result = DistributedWalkEngine(graph, cluster, cfg).run()
        train_cluster = Cluster(2, part.assignment, seed=9)
        result = DistributedTrainer(
            walk_result.corpus, train_cluster,
            TrainConfig(dim=8, epochs=1, seed=11, execution="process",
                        workers=2),
            walk_machines=walk_result.walk_machines).train()
        rounds = result.extras["ipc_rounds"]
        assert rounds > 0
        # A descriptor task is six scalars; even with pickle framing a
        # round of two machines stays far below one pickled walk batch.
        assert result.extras["ipc_task_bytes"] / rounds < 1024

    def test_iteration_order_stable_under_process_execution(self):
        """The list view iterates walks in walk-id order for both
        executors -- the property the trainer's shard slicing rests on."""
        graph = powerlaw_cluster(70, attach=3, seed=1)
        part = WorkloadBalancePartitioner().partition(graph, 2)
        out = {}
        for execution, workers in (("serial", 0), ("process", 2)):
            cluster = Cluster(2, part.assignment, seed=3)
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1,
                                     execution=execution, workers=workers)
            result = DistributedWalkEngine(graph, cluster, cfg).run()
            out[execution] = [walk.tolist() for walk in result.corpus.walks]
        assert out["serial"] == out["process"]


class TestFlatConsumers:
    """The trainer-side consumers read flat state, never the walk list."""

    @given(walks=walk_lists)
    @settings(max_examples=25, deadline=None)
    def test_vocab_from_occurrences_matches_from_corpus(self, walks):
        from repro.embedding import Vocabulary

        corpus = build_corpus(walks)
        a = Vocabulary.from_corpus(corpus)
        b = Vocabulary.from_occurrences(corpus.occurrences)
        np.testing.assert_array_equal(a.row_to_node, b.row_to_node)
        np.testing.assert_array_equal(a.node_to_row, b.node_to_row)
        np.testing.assert_array_equal(a.row_counts, b.row_counts)

    @given(walks=walk_lists)
    @settings(max_examples=25, deadline=None)
    def test_count_windows_flat_matches_loop(self, walks):
        from repro.embedding import count_windows, count_windows_flat

        corpus = build_corpus(walks)
        assert count_windows_flat(corpus.walk_lengths, window=3) == \
            count_windows(list(corpus.walks), window=3)


class TestStreamingContract:
    """Ready-prefix accessor, round listeners, and the CorpusFeed
    handshake the pipeline executor's walk→train hand-off rides on."""

    def test_ready_prefix_tracks_flushed_rounds(self):
        corpus = Corpus(NUM_NODES)
        assert corpus.ready_prefix == 0
        seen = []
        corpus.add_round_listener(lambda c: seen.append(c.ready_prefix))
        paths, lengths = padded_matrix([[1, 2], [3]])
        corpus.add_walks(paths, lengths)
        assert corpus.ready_prefix == 2
        corpus.add_walks(paths, lengths)
        assert corpus.ready_prefix == 4
        # One notification per flushed round, carrying the new prefix.
        assert seen == [2, 4]

    def test_feed_publishes_on_flush_and_gates_waiters(self):
        import threading

        from repro.walks.corpus import CorpusFeed

        corpus = Corpus(NUM_NODES)
        feed = CorpusFeed(corpus)
        assert feed.ready_walks() == 0 and not feed.finished
        observed = []

        def consumer():
            observed.append(feed.wait_ready(2, timeout=10.0))
            observed.append(feed.wait_finished(timeout=10.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        paths, lengths = padded_matrix([[0, 1], [2, 3, 4]])
        corpus.add_walks(paths, lengths)  # listener publishes prefix 2
        feed.finish()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert observed == [2, 2]

    def test_feed_rejects_shrinking_prefix(self):
        from repro.walks.corpus import CorpusFeed

        corpus = Corpus(NUM_NODES)
        feed = CorpusFeed(corpus)
        feed.publish(3)
        with pytest.raises(ValueError, match="only grow"):
            feed.publish(1)

    def test_wait_ready_past_the_final_prefix_is_an_error(self):
        """Asking for walks the finished producer never made is a
        plan/corpus mismatch, not a timing issue."""
        from repro.walks.corpus import CorpusFeed

        corpus = Corpus(NUM_NODES)
        feed = CorpusFeed(corpus)
        corpus.add_walk([1, 2, 3])
        feed.finish()
        assert feed.wait_ready(1) == 1
        with pytest.raises(RuntimeError, match="finished at 1"):
            feed.wait_ready(5)

    def test_wait_ready_timeout(self):
        from repro.walks.corpus import CorpusFeed

        feed = CorpusFeed(Corpus(NUM_NODES))
        with pytest.raises(TimeoutError):
            feed.wait_ready(1, timeout=0.01)
