"""Failure-injection and degenerate-input tests across subsystems.

Every reproduced component must fail loudly (a clear exception) or
degrade gracefully (a defined no-op) on the inputs real deployments hit:
empty graphs, non-terminating kernels, mismatched cluster shapes,
truncated checkpoints, and exhausted sampling budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, star
from repro.runtime import BSPEngine, Cluster, ClusterMetrics
from repro.walks import Corpus, DistributedWalkEngine, WalkConfig


class TestBSPFailureModes:
    def test_nonterminating_kernel_raises(self):
        cluster = Cluster(2, np.array([0, 1]), seed=0)
        engine = BSPEngine(cluster)

        def ping_pong(machine, item):
            return (1 - machine, item, 8)  # bounce forever

        with pytest.raises(RuntimeError, match="did not converge"):
            engine.run([(0, "walker")], ping_pong, max_supersteps=10)

    def test_empty_initial_items(self):
        cluster = Cluster(2, np.array([0, 1]), seed=0)
        stats = BSPEngine(cluster).run([], lambda m, i: None)
        assert stats.supersteps == 0
        assert stats.items_completed == 0

    def test_immediate_termination_counts_items(self):
        cluster = Cluster(1, np.array([0]), seed=0)
        stats = BSPEngine(cluster).run(
            [(0, i) for i in range(5)], lambda m, i: None)
        assert stats.items_completed == 5
        assert stats.messages_delivered == 0


class TestClusterFailureModes:
    def test_assignment_out_of_range(self):
        with pytest.raises(ValueError, match="outside the cluster"):
            Cluster(2, np.array([0, 1, 2]))

    def test_zero_machines(self):
        with pytest.raises(ValueError, match="positive"):
            Cluster(0, np.array([], dtype=np.int64))

    def test_engine_rejects_wrong_assignment_size(self, triangle):
        cluster = Cluster(1, np.zeros(5, dtype=np.int64), seed=0)
        with pytest.raises(ValueError, match="cover the graph"):
            DistributedWalkEngine(triangle, cluster)

    def test_metrics_reset_preserves_placement(self, triangle):
        cluster = Cluster(1, np.zeros(3, dtype=np.int64), seed=0)
        cluster.metrics.record_compute(0, 10.0)
        cluster.reset_metrics()
        assert cluster.metrics.total_compute == 0.0
        assert cluster.assignment.size == 3

    def test_metrics_merge_size_mismatch(self):
        with pytest.raises(ValueError, match="different cluster sizes"):
            ClusterMetrics(2).merge(ClusterMetrics(3))


class TestWalkEngineFailureModes:
    def test_empty_graph_produces_empty_corpus(self):
        g = CSRGraph.from_edges([], num_nodes=4)
        cluster = Cluster(1, np.zeros(4, dtype=np.int64), seed=0)
        result = DistributedWalkEngine(g, cluster, WalkConfig.distger()).run()
        assert result.corpus.num_walks == 0

    def test_rejection_cap_forces_progress(self):
        """Even a kernel that always rejects cannot stall the engine."""
        g = star(4)
        cluster = Cluster(1, np.zeros(5, dtype=np.int64), seed=0)
        config = WalkConfig.routine(kernel="node2vec", walk_length=5,
                                    walks_per_node=1, p=1000.0, q=1000.0,
                                    max_trials_per_step=2)
        result = DistributedWalkEngine(g, cluster, config).run()
        # All walks reached the full routine length despite the rejections.
        assert all(len(w) == 5 for w in result.corpus.walks)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            WalkConfig(mode="telepathy")

    def test_unknown_kernel_rejected(self, triangle):
        cluster = Cluster(1, np.zeros(3, dtype=np.int64), seed=0)
        with pytest.raises(KeyError, match="unknown kernel"):
            DistributedWalkEngine(triangle, cluster,
                                  WalkConfig(kernel="quantum"))


class TestCorpusFailureModes:
    def test_walk_outside_universe(self):
        corpus = Corpus(3)
        with pytest.raises(ValueError, match="outside the universe"):
            corpus.add_walk([0, 7])

    def test_merge_universe_mismatch(self):
        with pytest.raises(ValueError, match="different universes"):
            Corpus(3).merge(Corpus(4))

    def test_load_rejects_missing_header(self, tmp_path):
        bad = tmp_path / "corpus.txt"
        bad.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="header"):
            Corpus.load(str(bad))

    def test_empty_walk_is_noop(self):
        corpus = Corpus(3)
        corpus.add_walk([])
        assert corpus.num_walks == 0


class TestSystemFailureModes:
    def test_unknown_method(self, triangle):
        from repro.api import embed_graph

        with pytest.raises(KeyError, match="unknown method"):
            embed_graph(triangle, method="gnn-transformer")

    def test_kernel_on_non_walk_method(self, triangle):
        from repro.api import embed_graph

        with pytest.raises(ValueError, match="does not accept a kernel"):
            embed_graph(triangle, method="pbg", kernel="huge")

    def test_flat_hyperparameters_validated(self, triangle):
        from repro.api import embed_graph

        with pytest.raises(ValueError, match="lr_schedule"):
            embed_graph(triangle, method="distger", num_machines=1,
                        lr_schedule="warp")

    def test_more_machines_than_nodes_fails_loudly(self, triangle):
        from repro.api import embed_graph

        with pytest.raises(ValueError, match="cannot split"):
            embed_graph(triangle, method="distger", num_machines=8,
                        dim=4, epochs=1)

    def test_single_edge_graph(self):
        from repro.api import embed_graph

        g = CSRGraph.from_edges([(0, 1)])
        result = embed_graph(g, method="distger", num_machines=2, dim=4,
                             epochs=1)
        assert result.embeddings.shape == (2, 4)


class TestCheckpointFailureModes:
    def test_truncated_file(self, tmp_path):
        from repro.embedding import load_model

        bad = tmp_path / "ckpt.npz"
        bad.write_bytes(b"PK\x03\x04 this is not a real npz")
        with pytest.raises(Exception):
            load_model(str(bad))

    def test_missing_file(self, tmp_path):
        from repro.embedding import load_model

        with pytest.raises(FileNotFoundError):
            load_model(str(tmp_path / "nope.npz"))
