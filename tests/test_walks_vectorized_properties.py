"""Property-based invariants of the batched InCoM walk engine.

Seeded-random parametrization (graph family × seed grid) rather than
free-form fuzzing: every case is deterministic and CI-reproducible.
Invariants covered:

* entropy accumulators are non-negative and bounded by ``log2 L``;
* walk lengths always fall in ``[min_length, max_length]`` (dead ends are
  the one sanctioned early exit);
* corpus visit counters sum to the total accepted steps plus one source
  token per walk;
* stats are conserved across machines: per-machine counters sum to the
  global trial/step counts, and the corpus itself is invariant to the
  machine count under the walker RNG protocol;
* determinism: same seed ⇒ byte-identical corpus, per backend and across
  backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import community_graph, powerlaw_cluster, ring_of_cliques
from repro.runtime import Cluster
from repro.utils.rng import WalkerStream, stream_uniforms, walker_stream_keys
from repro.walks import DistributedWalkEngine, WalkConfig

GRAPHS = {
    "ring": lambda seed: ring_of_cliques(4, 6),
    "powerlaw": lambda seed: powerlaw_cluster(80, attach=3, seed=seed),
    "community": lambda seed: community_graph(60, 3, within_degree=8.0,
                                              cross_degree=0.5,
                                              seed=seed)[0],
}
SEEDS = (0, 7, 42)


def run_vectorized(graph, seed, machines=2, **overrides):
    assignment = np.arange(graph.num_nodes, dtype=np.int64) % machines
    cluster = Cluster(machines, assignment, seed=seed)
    cfg = WalkConfig.distger(max_rounds=2, min_rounds=1, **overrides)
    engine = DistributedWalkEngine(graph, cluster, cfg)
    assert engine.backend == "vectorized"
    return engine.run(), cluster, engine


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", sorted(GRAPHS))
class TestInvariants:
    def test_walk_lengths_within_bounds(self, family, seed):
        graph = GRAPHS[family](seed)
        result, _, _ = run_vectorized(graph, seed, min_length=4, max_length=24)
        # These graph families have no dead ends, so the bounds are exact.
        assert all(4 <= l <= 24 for l in result.stats.walk_lengths)

    def test_visit_counters_sum_to_steps(self, family, seed):
        graph = GRAPHS[family](seed)
        result, _, _ = run_vectorized(graph, seed)
        # tokens = one source token per walk + one per accepted step.
        assert result.corpus.total_tokens == (
            result.stats.total_walks + result.stats.total_steps)
        assert int(result.corpus.occurrences.sum()) == result.corpus.total_tokens
        assert sum(result.stats.walk_lengths) == result.corpus.total_tokens

    def test_entropy_accumulators_nonnegative(self, family, seed):
        graph = GRAPHS[family](seed)
        _, _, engine = run_vectorized(graph, seed)
        runner = engine._batch_runner
        # The final round's batch state is still attached to the runner.
        lengths = np.array([1.0])  # guard: arrays exist and are finite
        assert np.all(runner._S >= 0.0)
        assert np.all(np.isfinite(runner._S))
        # E(H) is a mean of entropies: non-negative, at most log2(max len).
        assert np.all(runner._e_h >= 0.0)
        assert np.all(runner._e_h <= np.log2(80.0))
        # Moment consistency: E(H²) ≥ E(H)² and E(L²) ≥ E(L)² (variances).
        assert np.all(runner._e_h2 - runner._e_h * runner._e_h >= -1e-12)
        assert np.all(runner._e_l2 - runner._e_l * runner._e_l >= -1e-9)
        assert lengths.size == 1

    def test_stats_conserved_across_machines(self, family, seed):
        graph = GRAPHS[family](seed)
        result, cluster, _ = run_vectorized(graph, seed, machines=3)
        m = cluster.metrics
        assert sum(m.local_steps) == result.stats.total_steps
        # Every trial credits one compute unit; every accepted InCoM step
        # credits one more for the O(1) measurement.
        assert sum(m.compute_units) == pytest.approx(
            result.stats.total_trials + result.stats.total_steps)
        assert sum(sum(row) for row in m.message_byte_matrix) == m.message_bytes
        assert m.message_bytes == m.messages_sent * 80

    def test_machine_count_invariance(self, family, seed):
        graph = GRAPHS[family](seed)
        corpora = []
        for machines in (1, 2, 4):
            result, _, _ = run_vectorized(graph, seed, machines=machines)
            corpora.append([tuple(int(v) for v in w) for w in result.corpus.walks])
        assert corpora[0] == corpora[1] == corpora[2]


class TestDeterminism:
    """Satellite: same seed ⇒ byte-identical corpus, loop and vectorized."""

    @pytest.mark.parametrize("backend", ("loop", "vectorized"))
    def test_same_seed_same_corpus(self, backend, small_graph):
        outs = []
        for _ in range(2):
            assignment = np.arange(small_graph.num_nodes, dtype=np.int64) % 2
            cluster = Cluster(2, assignment, seed=13)
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1,
                                     backend=backend, rng_protocol="walker")
            result = DistributedWalkEngine(small_graph, cluster, cfg).run()
            outs.append([w.tobytes() for w in result.corpus.walks])
        assert outs[0] == outs[1]

    def test_different_seeds_differ(self, small_graph):
        outs = []
        for seed in (1, 2):
            assignment = np.zeros(small_graph.num_nodes, dtype=np.int64)
            cluster = Cluster(1, assignment, seed=seed)
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
            result = DistributedWalkEngine(small_graph, cluster, cfg).run()
            outs.append([tuple(int(v) for v in w) for w in result.corpus.walks])
        assert outs[0] != outs[1]

    def test_seed_root_derivation_is_shared(self, small_graph):
        """Loop and vectorized backends derive walker streams through the
        same repro.utils.rng helpers, from the same cluster root."""
        assignment = np.zeros(small_graph.num_nodes, dtype=np.int64)
        c1 = Cluster(1, assignment, seed=99)
        c2 = Cluster(1, assignment, seed=99)
        assert c1.walk_seed_root == c2.walk_seed_root
        keys = walker_stream_keys(c1.walk_seed_root, np.arange(5))
        again = walker_stream_keys(c2.walk_seed_root, np.arange(5))
        np.testing.assert_array_equal(keys, again)

    def test_none_seed_stays_nondeterministic(self, small_graph):
        roots = {Cluster(1, np.zeros(small_graph.num_nodes, dtype=np.int64),
                         seed=None).walk_seed_root for _ in range(4)}
        assert len(roots) > 1


class TestCounterStreams:
    """The shared seed protocol itself (repro.utils.rng)."""

    def test_uniforms_in_unit_interval(self):
        keys = walker_stream_keys(1234, np.arange(1000))
        u = stream_uniforms(keys, np.zeros(1000, dtype=np.uint64))
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_streams_are_order_independent(self):
        keys = walker_stream_keys(5, np.arange(8))
        counters = np.arange(8, dtype=np.uint64)
        batched = stream_uniforms(keys, counters)
        one_by_one = np.array([
            float(stream_uniforms(np.array([k], dtype=np.uint64),
                                  np.array([c], dtype=np.uint64))[0])
            for k, c in zip(keys, counters)
        ])
        np.testing.assert_array_equal(batched, one_by_one)

    def test_walker_stream_matches_array_path(self):
        """The loop backend's integer fast path is bit-identical to the
        vectorized uint64 ufunc path, pair by pair."""
        keys = walker_stream_keys(777, np.arange(16))
        for key in keys:
            stream = WalkerStream(int(key))
            scalar = []
            for _ in range(25):
                scalar.extend(stream.next_pair())
            batched = stream_uniforms(
                np.full(50, key, dtype=np.uint64),
                np.arange(50, dtype=np.uint64),
            )
            np.testing.assert_array_equal(np.array(scalar), batched)

    def test_streams_look_uniform(self):
        keys = walker_stream_keys(0, np.arange(200))
        u = np.concatenate([
            stream_uniforms(keys, np.full(200, t, dtype=np.uint64))
            for t in range(200)
        ])
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(np.quantile(u, 0.25) - 0.25) < 0.02
