"""Tests for the retrieval metrics (average precision, precision@k)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import auc_score, average_precision, precision_at_k


class TestAveragePrecision:
    def test_perfect_ranking(self):
        ap = average_precision(np.array([3.0, 2.0]), np.array([1.0, 0.5]))
        assert ap == pytest.approx(1.0)

    def test_worst_ranking(self):
        # Both positives below both negatives: P@3 = 1/3, P@4 = 2/4.
        ap = average_precision(np.array([0.1, 0.2]), np.array([0.8, 0.9]))
        assert ap == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_interleaved(self):
        # Ranking: pos(4), neg(3), pos(2), neg(1) -> (1/1 + 2/3) / 2.
        ap = average_precision(np.array([4.0, 2.0]), np.array([3.0, 1.0]))
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_ties_pessimistic(self):
        # One positive tied with one negative: negative ranks first.
        ap = average_precision(np.array([1.0]), np.array([1.0]))
        assert ap == pytest.approx(0.5)

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError, match="at least one score"):
            average_precision(np.array([]), np.array([1.0]))

    def test_sensitive_to_imbalance_where_auc_is_not(self):
        """AP drops with more negatives at equal AUC -- its point."""
        rng = np.random.default_rng(0)
        pos = rng.normal(1.0, 1.0, size=50)
        few_neg = rng.normal(0.0, 1.0, size=50)
        many_neg = rng.normal(0.0, 1.0, size=5000)
        auc_few = auc_score(pos, few_neg)
        auc_many = auc_score(pos, many_neg)
        assert auc_many == pytest.approx(auc_few, abs=0.06)
        assert average_precision(pos, many_neg) < \
            average_precision(pos, few_neg) - 0.2

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_pos=st.integers(min_value=1, max_value=30),
        n_neg=st.integers(min_value=1, max_value=30),
    )
    def test_property_bounded_and_floor(self, seed, n_pos, n_neg):
        """AP lies in (0, 1] and never falls below the positive rate."""
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=n_pos)
        neg = rng.normal(size=n_neg)
        ap = average_precision(pos, neg)
        assert 0.0 < ap <= 1.0
        # Random-ranking expectation is ~the positive prevalence; the
        # exact floor (all positives last) is slightly below it.
        floor = n_pos / (n_pos + n_neg)
        worst = average_precision(np.full(n_pos, -1.0), np.zeros(n_neg))
        assert ap >= worst
        assert worst <= floor + 1e-9


class TestPrecisionAtK:
    def test_top_heavy_ranking(self):
        pos = np.array([5.0, 4.0])
        neg = np.array([3.0, 2.0, 1.0])
        assert precision_at_k(pos, neg, 2) == pytest.approx(1.0)
        assert precision_at_k(pos, neg, 4) == pytest.approx(0.5)

    def test_k_capped(self):
        pos = np.array([2.0])
        neg = np.array([1.0])
        assert precision_at_k(pos, neg, 100) == pytest.approx(0.5)

    def test_ties_pessimistic(self):
        assert precision_at_k(np.array([1.0]), np.array([1.0]), 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            precision_at_k(np.array([1.0]), np.array([0.0]), 0)
        with pytest.raises(ValueError, match="at least one"):
            precision_at_k(np.array([]), np.array([0.0]), 1)

    def test_on_link_prediction_split(self, medium_graph):
        """End-to-end: P@k of a real embedding beats the prevalence."""
        from repro.api import embed_graph
        from repro.tasks import pair_scores, split_edges

        split = split_edges(medium_graph, test_fraction=0.3, seed=0)
        emb = embed_graph(split.train_graph, method="distger",
                          num_machines=2, dim=16, epochs=2, seed=0).embeddings
        pos = pair_scores(emb, split.test_positive)
        neg = pair_scores(emb, split.test_negative)
        prevalence = len(pos) / (len(pos) + len(neg))
        assert precision_at_k(pos, neg, 20) > prevalence
        assert average_precision(pos, neg) > prevalence
