"""Tests for all partitioners: coverage, balance, quality relationships."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import ring_of_cliques
from repro.partition import (
    ChunkPartitioner,
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    MPGPPartitioner,
    MetisLikePartitioner,
    ParallelMPGPPartitioner,
    WorkloadBalancePartitioner,
    edge_cut,
    evaluate,
    expected_walk_locality,
    node_balance,
)

ALL_PARTITIONERS = [
    HashPartitioner(),
    ChunkPartitioner(),
    WorkloadBalancePartitioner(),
    LDGPartitioner(),
    FennelPartitioner(),
    MetisLikePartitioner(),
    MPGPPartitioner(),
    ParallelMPGPPartitioner(num_segments=2),
]


@pytest.mark.parametrize("partitioner", ALL_PARTITIONERS,
                         ids=lambda p: p.name)
class TestPartitionerContract:
    def test_covers_all_nodes(self, partitioner, medium_graph):
        res = partitioner.partition(medium_graph, 4)
        assert res.assignment.shape == (medium_graph.num_nodes,)
        assert res.assignment.min() >= 0
        assert res.assignment.max() < 4

    def test_single_part(self, partitioner, small_graph):
        res = partitioner.partition(small_graph, 1)
        assert np.all(res.assignment == 0)

    def test_balance_within_slack(self, partitioner, medium_graph):
        res = partitioner.partition(medium_graph, 4)
        # All schemes here target node or edge balance; allow generous
        # slack (MPGP's gamma=2 permits up to 2x mean).
        assert node_balance(res.assignment, 4) <= 2.5

    def test_rejects_bad_num_parts(self, partitioner, small_graph):
        with pytest.raises(ValueError):
            partitioner.partition(small_graph, 0)

    def test_deterministic(self, partitioner, medium_graph):
        a = partitioner.partition(medium_graph, 3).assignment
        b = partitioner.partition(medium_graph, 3).assignment
        np.testing.assert_array_equal(a, b)


class TestQualityRelationships:
    """Structural quality claims from the paper (§3.2, §6.5)."""

    def test_mpgp_beats_workload_balancing_on_locality(self, medium_graph):
        """The headline claim behind Fig. 10(c): MPGP keeps walkers local."""
        mpgp = MPGPPartitioner().partition(medium_graph, 4)
        bal = WorkloadBalancePartitioner().partition(medium_graph, 4)
        loc_mpgp = expected_walk_locality(medium_graph, mpgp.assignment)
        loc_bal = expected_walk_locality(medium_graph, bal.assignment)
        assert loc_mpgp > loc_bal * 1.2

    def test_mpgp_respects_cliques(self):
        """Cliques >> ring edges: MPGP's cut should be a fraction of the
        structure-blind workload-balancing cut (Fig. 13's γ=2 regime)."""
        g = ring_of_cliques(4, 8)
        mpgp_cut = edge_cut(g, MPGPPartitioner().partition(g, 4).assignment)
        bal_cut = edge_cut(
            g, WorkloadBalancePartitioner().partition(g, 4).assignment
        )
        assert mpgp_cut <= bal_cut / 3

    def test_metis_like_good_cut_on_cliques(self):
        g = ring_of_cliques(4, 8)
        res = MetisLikePartitioner().partition(g, 4)
        assert edge_cut(g, res.assignment) <= 10

    def test_gamma_one_is_stricter_than_gamma_ten(self, medium_graph):
        """Fig. 13: small gamma = strict balance, large gamma = skew."""
        strict = MPGPPartitioner(gamma=1.0).partition(medium_graph, 4)
        loose = MPGPPartitioner(gamma=10.0).partition(medium_graph, 4)
        assert node_balance(strict.assignment, 4) <= \
            node_balance(loose.assignment, 4) + 1e-9

    def test_evaluate_summary(self, medium_graph):
        res = MPGPPartitioner().partition(medium_graph, 4)
        q = evaluate(medium_graph, res.assignment, 4)
        assert 0.0 <= q.cut_fraction <= 1.0
        assert 0.0 <= q.expected_walk_locality <= 1.0
        assert q.edge_cut >= 0
        d = q.as_dict()
        assert d["num_parts"] == 4

    def test_workload_balancing_balances_edges(self, medium_graph):
        res = WorkloadBalancePartitioner().partition(medium_graph, 4)
        loads = res.edge_loads(medium_graph)
        assert loads.max() / max(1.0, loads.mean()) < 1.3


class TestParallelMPGP:
    def test_matches_graph_coverage(self, medium_graph):
        res = ParallelMPGPPartitioner(num_segments=3).partition(medium_graph, 4)
        assert np.all(res.assignment >= 0)

    def test_thread_and_serial_agree(self, medium_graph):
        serial = ParallelMPGPPartitioner(num_segments=3, use_threads=False)
        threaded = ParallelMPGPPartitioner(num_segments=3, use_threads=True)
        np.testing.assert_array_equal(
            serial.partition(medium_graph, 4).assignment,
            threaded.partition(medium_graph, 4).assignment,
        )
