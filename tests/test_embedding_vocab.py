"""Tests for the frequency-ordered vocabulary and negative sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import NegativeSampler, Vocabulary
from repro.walks import Corpus


def corpus_with_counts(counts):
    """Corpus whose node occurrence counts equal ``counts``."""
    c = Corpus(len(counts))
    for node, n in enumerate(counts):
        for _ in range(n):
            c.add_walk([node])
    return c


class TestVocabulary:
    def test_frequency_order_descending(self):
        c = corpus_with_counts([3, 7, 1, 5])
        v = Vocabulary.from_corpus(c)
        assert list(v.row_to_node) == [1, 3, 0, 2]
        assert list(v.row_counts) == [7, 5, 3, 1]

    def test_inverse_mapping(self):
        c = corpus_with_counts([3, 7, 1, 5])
        v = Vocabulary.from_corpus(c)
        for node in range(4):
            assert v.row_to_node[v.node_to_row[node]] == node

    def test_rows_of_vectorised(self):
        c = corpus_with_counts([3, 7, 1])
        v = Vocabulary.from_corpus(c)
        rows = v.rows_of(np.array([1, 1, 2]))
        assert list(rows) == [0, 0, 2]

    def test_hotness_blocks_partition_rows(self):
        c = corpus_with_counts([5, 5, 3, 3, 3, 1, 0])
        v = Vocabulary.from_corpus(c)
        blocks = v.hotness_blocks()
        # Blocks: counts 5 (rows 0-1), 3 (2-4), 1 (5), 0 (6).
        assert blocks == [(0, 2), (2, 5), (5, 6), (6, 7)]
        # Blocks exactly cover the row space.
        assert blocks[0][0] == 0
        assert blocks[-1][1] == v.size
        for (s1, e1), (s2, e2) in zip(blocks, blocks[1:]):
            assert e1 == s2

    def test_max_occurrence(self):
        c = corpus_with_counts([5, 2])
        assert Vocabulary.from_corpus(c).max_occurrence == 5

    def test_block_count_bounded_by_max_occurrence(self):
        """The paper's O(ocn_max) bound on hotness-block count."""
        c = corpus_with_counts([9, 4, 4, 2, 1, 1, 1])
        v = Vocabulary.from_corpus(c)
        nonzero_blocks = [b for b in v.hotness_blocks()
                          if v.row_counts[b[0]] > 0]
        assert len(nonzero_blocks) <= v.max_occurrence

    def test_reorder_to_node_space(self):
        c = corpus_with_counts([1, 3, 2])
        v = Vocabulary.from_corpus(c)
        matrix = np.arange(v.size * 2, dtype=float).reshape(v.size, 2)
        node_matrix = v.reorder_to_node_space(matrix)
        for node in range(3):
            np.testing.assert_array_equal(
                node_matrix[node], matrix[v.node_to_row[node]]
            )


class TestNegativeSampler:
    def test_distribution_follows_power(self, rng):
        c = corpus_with_counts([16, 1, 0])
        sampler = NegativeSampler(Vocabulary.from_corpus(c), power=0.75)
        probs = sampler.probabilities
        # row 0 = node 0 (count 16), row 1 = node 1 (count 1).
        expected0 = 16**0.75 / (16**0.75 + 1.0)
        assert probs[0] == pytest.approx(expected0, abs=1e-9)

    def test_zero_count_rows_never_sampled(self, rng):
        c = corpus_with_counts([5, 5, 0])
        sampler = NegativeSampler(Vocabulary.from_corpus(c))
        nodes = sampler.sample_nodes(2000, rng)
        assert 2 not in set(int(x) for x in nodes)

    def test_power_zero_is_uniform_over_support(self, rng):
        c = corpus_with_counts([100, 1])
        sampler = NegativeSampler(Vocabulary.from_corpus(c), power=0.0)
        rows = sampler.sample_rows(4000, rng)
        freq = np.bincount(rows, minlength=2) / 4000
        np.testing.assert_allclose(freq, [0.5, 0.5], atol=0.05)

    def test_invalid_power(self):
        c = corpus_with_counts([1, 1])
        with pytest.raises(ValueError):
            NegativeSampler(Vocabulary.from_corpus(c), power=2.0)
