"""Tests for alias-table samplers and the vectorised batch walkers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, path, powerlaw_cluster, ring_of_cliques
from repro.walks import (
    KERNELS,
    FirstOrderAliasSampler,
    Node2VecAliasKernel,
    Node2VecKernel,
    SecondOrderAliasSampler,
    WalkConfig,
    batch_walk_matrix,
    empirical_transition_matrix,
    make_kernel,
    second_order_table_entries,
    vectorized_routine_corpus,
)


def _exact_node2vec_distribution(
    graph: CSRGraph, previous: int, current: int, p: float, q: float
) -> dict:
    """Normalised second-order transition probabilities, by definition."""
    weights = {}
    for v in graph.neighbors(current):
        v = int(v)
        if v == previous:
            pi = 1.0 / p
        elif graph.has_edge(previous, v):
            pi = 1.0
        else:
            pi = 1.0 / q
        weights[v] = pi * graph.edge_weight(current, v)
    total = sum(weights.values())
    return {v: w / total for v, w in weights.items()}


class TestFirstOrderAlias:
    def test_samples_are_neighbors(self, small_graph, rng):
        sampler = FirstOrderAliasSampler(small_graph)
        nodes = np.array([0, 1, 5, 9])
        for _ in range(20):
            out = sampler.sample(nodes, rng)
            for u, v in zip(nodes, out):
                assert small_graph.has_edge(int(u), int(v))

    def test_unweighted_uniform(self, rng):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        sampler = FirstOrderAliasSampler(g)
        draws = sampler.sample(np.zeros(6000, dtype=np.int64), rng)
        counts = np.bincount(draws, minlength=4)[1:]
        assert counts.min() > 0.8 * counts.max()

    def test_weighted_proportional(self, rng):
        g = CSRGraph.from_edges([(0, 1), (0, 2)], weights=[3.0, 1.0])
        sampler = FirstOrderAliasSampler(g)
        draws = sampler.sample(np.zeros(8000, dtype=np.int64), rng)
        ratio = np.sum(draws == 1) / max(1, np.sum(draws == 2))
        assert 2.4 < ratio < 3.8

    def test_degree_zero_raises(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        sampler = FirstOrderAliasSampler(g)
        with pytest.raises(ValueError, match="degree-0"):
            sampler.sample(np.array([2]), np.random.default_rng(0))

    def test_memory_and_setup_accounting(self, medium_graph):
        sampler = FirstOrderAliasSampler(medium_graph)
        assert sampler.memory_bytes() > 0
        assert sampler.build_seconds >= 0.0

    def test_sample_one(self, triangle, rng):
        sampler = FirstOrderAliasSampler(triangle)
        assert sampler.sample_one(0, rng) in (1, 2)


class TestSecondOrderAlias:
    def test_table_entry_count_matches_prediction(self, small_graph):
        sampler = SecondOrderAliasSampler(small_graph)
        assert sampler.num_table_entries == second_order_table_entries(small_graph)

    def test_entries_formula(self):
        # Triangle: 6 arcs, each endpoint has degree 2 -> 12 entries.
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert second_order_table_entries(g) == 12

    def test_memory_exceeds_first_order(self, medium_graph):
        second = SecondOrderAliasSampler(medium_graph)
        first = FirstOrderAliasSampler(medium_graph)
        assert second.memory_bytes() > first.memory_bytes()

    def test_arc_index_roundtrip(self, small_graph):
        sampler = SecondOrderAliasSampler(small_graph)
        t = 0
        for k, u in enumerate(small_graph.neighbors(t)):
            assert sampler.arc_index(t, int(u)) == small_graph.indptr[t] + k

    def test_arc_index_missing_raises(self, path_graph):
        sampler = SecondOrderAliasSampler(path_graph)
        with pytest.raises(KeyError):
            sampler.arc_index(0, 5)

    def test_matches_exact_distribution(self, rng):
        g = ring_of_cliques(3, 5)
        p, q = 0.5, 2.0
        sampler = SecondOrderAliasSampler(g, p=p, q=q)
        previous, current = 0, 1
        exact = _exact_node2vec_distribution(g, previous, current, p, q)
        draws = [sampler.sample_step(current, previous, rng) for _ in range(4000)]
        counts = {v: draws.count(v) / len(draws) for v in exact}
        for v, prob in exact.items():
            assert counts[v] == pytest.approx(prob, abs=0.04)

    def test_matches_rejection_kernel_distribution(self, rng):
        """Alias tables and rejection sampling target the same distribution."""
        g = ring_of_cliques(3, 4)
        p, q = 2.0, 0.5
        alias = SecondOrderAliasSampler(g, p=p, q=q)
        rejection = Node2VecKernel(g, p=p, q=q)
        previous, current = 0, 1
        n = 4000
        a_draws = np.array([alias.sample_step(current, previous, rng)
                            for _ in range(n)])
        r_draws = []
        while len(r_draws) < n:
            out = rejection.step(current, previous, rng)
            if out is not None:
                r_draws.append(out)
        r_draws = np.array(r_draws)
        for v in np.unique(a_draws):
            fa = np.mean(a_draws == v)
            fr = np.mean(r_draws == v)
            assert fa == pytest.approx(fr, abs=0.05)

    def test_first_step_is_first_order(self, triangle, rng):
        sampler = SecondOrderAliasSampler(triangle)
        draws = {sampler.sample_step(0, -1, rng) for _ in range(50)}
        assert draws == {1, 2}

    def test_weighted_graph(self, weighted_triangle, rng):
        sampler = SecondOrderAliasSampler(weighted_triangle, p=1.0, q=1.0)
        out = sampler.sample_step(1, 0, rng)
        assert out in (0, 2)

    def test_small_p_prefers_backtracking(self, rng):
        g = ring_of_cliques(3, 5)
        sampler = SecondOrderAliasSampler(g, p=0.05, q=1.0)
        draws = [sampler.sample_step(1, 0, rng) for _ in range(800)]
        back_rate = draws.count(0) / len(draws)
        uniform_rate = 1.0 / g.degree(1)
        assert back_rate > 2 * uniform_rate


class TestAliasKernel:
    def test_registered(self):
        assert "node2vec-alias" in KERNELS

    def test_make_kernel(self, small_graph):
        k = make_kernel("node2vec-alias", small_graph, p=0.5, q=2.0)
        assert isinstance(k, Node2VecAliasKernel)
        assert k.message_fields == 4

    def test_never_rejects(self, small_graph, rng):
        k = Node2VecAliasKernel(small_graph, p=4.0, q=4.0)
        for _ in range(50):
            assert k.step(1, 0, rng) is not None

    def test_runs_in_engine(self, small_graph):
        from repro.partition import HashPartitioner
        from repro.runtime.cluster import Cluster
        from repro.walks import DistributedWalkEngine

        assignment = HashPartitioner().partition(small_graph, 2).assignment
        cluster = Cluster(2, assignment, seed=0)
        cfg = WalkConfig.routine(kernel="node2vec-alias", walk_length=8,
                                 walks_per_node=1, p=0.5, q=2.0)
        result = DistributedWalkEngine(small_graph, cluster, cfg).run()
        assert result.corpus.num_walks == small_graph.num_nodes
        assert all(len(w) == 8 for w in result.corpus.walks)


class TestBatchWalkMatrix:
    def test_shape_and_first_column(self, small_graph):
        sources = np.arange(10, dtype=np.int64)
        paths = batch_walk_matrix(small_graph, sources, 7, rng=3)
        assert paths.shape == (10, 8)
        assert np.array_equal(paths[:, 0], sources)

    def test_steps_follow_edges(self, small_graph):
        paths = batch_walk_matrix(small_graph, np.arange(20), 10, rng=5)
        for row in paths:
            for a, b in zip(row[:-1], row[1:]):
                if b < 0:
                    break
                assert small_graph.has_edge(int(a), int(b))

    def test_dead_end_padding(self):
        # Directed path 0->1->2: a walk from 0 stops at 2.
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        paths = batch_walk_matrix(g, np.array([0]), 5, rng=0)
        assert list(paths[0][:3]) == [0, 1, 2]
        assert np.all(paths[0][3:] == -1)

    def test_source_with_no_edges_stays(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        paths = batch_walk_matrix(g, np.array([2]), 4, rng=0)
        assert paths[0][0] == 2
        assert np.all(paths[0][1:] == -1)

    def test_deterministic_given_seed(self, medium_graph):
        a = batch_walk_matrix(medium_graph, np.arange(30), 12, rng=99)
        b = batch_walk_matrix(medium_graph, np.arange(30), 12, rng=99)
        assert np.array_equal(a, b)

    def test_invalid_sources_raise(self, triangle):
        with pytest.raises(ValueError, match="outside the graph"):
            batch_walk_matrix(triangle, np.array([7]), 3)

    def test_empty_sources(self, triangle):
        paths = batch_walk_matrix(triangle, np.empty(0, dtype=np.int64), 3)
        assert paths.shape == (0, 4)

    def test_weighted_graph_uses_alias(self, rng):
        g = CSRGraph.from_edges([(0, 1), (0, 2)], weights=[50.0, 1.0])
        paths = batch_walk_matrix(g, np.zeros(400, dtype=np.int64), 1, rng=rng)
        picks = paths[:, 1]
        assert np.sum(picks == 1) > 5 * np.sum(picks == 2)


class TestVectorizedCorpus:
    def test_counts(self, small_graph):
        corpus = vectorized_routine_corpus(small_graph, walk_length=9,
                                           walks_per_node=3, seed=1)
        assert corpus.num_walks == 3 * small_graph.num_nodes
        assert corpus.average_walk_length == pytest.approx(9.0)

    def test_matches_engine_statistics(self, medium_graph):
        """Batch corpus should look like the per-walker routine corpus."""
        from repro.runtime.cluster import Cluster
        from repro.walks import DistributedWalkEngine

        corpus_fast = vectorized_routine_corpus(medium_graph, walk_length=20,
                                                walks_per_node=5, seed=2)
        cluster = Cluster(1, np.zeros(medium_graph.num_nodes, dtype=np.int64),
                          seed=2)
        cfg = WalkConfig.routine(kernel="deepwalk", walk_length=20,
                                 walks_per_node=5)
        corpus_slow = DistributedWalkEngine(medium_graph, cluster, cfg).run().corpus
        assert corpus_fast.num_walks == corpus_slow.num_walks
        assert corpus_fast.total_tokens == corpus_slow.total_tokens
        # Both corpora must track the walk's stationary distribution, which
        # is proportional to degree on an undirected graph.
        deg = medium_graph.degrees.astype(float)
        for corpus in (corpus_fast, corpus_slow):
            occ = corpus.occurrences.astype(float)
            assert np.corrcoef(occ, deg)[0, 1] > 0.9

    def test_custom_sources(self, small_graph):
        corpus = vectorized_routine_corpus(small_graph, walk_length=4,
                                           walks_per_node=2,
                                           sources=np.array([0, 1]), seed=0)
        assert corpus.num_walks == 4

    def test_rejects_bad_params(self, triangle):
        with pytest.raises(ValueError):
            vectorized_routine_corpus(triangle, walk_length=0)
        with pytest.raises(ValueError):
            vectorized_routine_corpus(triangle, walks_per_node=0)


class TestEmpiricalTransitionMatrix:
    def test_rows_stochastic(self, triangle):
        mat = empirical_transition_matrix(triangle, num_walks=500, seed=0)
        assert np.allclose(mat.sum(axis=1), 1.0)

    def test_uniform_on_triangle(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        mat = empirical_transition_matrix(g, num_walks=4000, seed=1)
        assert mat[0, 1] == pytest.approx(0.5, abs=0.05)
        assert mat[0, 2] == pytest.approx(0.5, abs=0.05)

    def test_dead_end_row_zero(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        mat = empirical_transition_matrix(g, num_walks=100, seed=0)
        assert np.all(mat[2] == 0.0)


@settings(max_examples=25, deadline=None)
@given(
    num_cliques=st.integers(min_value=2, max_value=4),
    clique_size=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_alias_samples_valid_neighbors(num_cliques, clique_size, seed):
    """Every alias-table draw lands on an actual neighbour."""
    g = ring_of_cliques(num_cliques, clique_size)
    rng = np.random.default_rng(seed)
    sampler = SecondOrderAliasSampler(g, p=0.5, q=2.0)
    current = int(rng.integers(0, g.num_nodes))
    previous = int(g.neighbors(current)[0])
    for _ in range(10):
        out = sampler.sample_step(current, previous, rng)
        assert g.has_edge(current, out)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    walk_length=st.integers(min_value=1, max_value=12),
)
def test_property_batch_walks_are_paths(seed, walk_length):
    """Every consecutive pair in a batch walk is an edge of the graph."""
    g = powerlaw_cluster(40, attach=2, seed=seed % 7)
    paths = batch_walk_matrix(g, np.arange(g.num_nodes), walk_length, rng=seed)
    for row in paths[:10]:
        for a, b in zip(row[:-1], row[1:]):
            if b < 0:
                break
            assert g.has_edge(int(a), int(b))
