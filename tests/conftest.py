"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    community_graph,
    path,
    powerlaw_cluster,
    ring_of_cliques,
    star,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def triangle() -> CSRGraph:
    """The smallest interesting graph: a triangle."""
    return CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_graph() -> CSRGraph:
    """Deterministic 40-node ring of 5 cliques."""
    return ring_of_cliques(5, 8)


@pytest.fixture
def medium_graph() -> CSRGraph:
    """~200-node power-law graph with clustering."""
    return powerlaw_cluster(200, attach=4, triangle_prob=0.5, seed=42)


@pytest.fixture
def community_graph_with_labels():
    """Community-structured graph plus its ground-truth communities."""
    return community_graph(150, 6, within_degree=10.0, cross_degree=0.8,
                           seed=7)


@pytest.fixture
def star_graph() -> CSRGraph:
    return star(10)


@pytest.fixture
def path_graph() -> CSRGraph:
    return path(12)


@pytest.fixture
def weighted_triangle() -> CSRGraph:
    return CSRGraph.from_edges(
        [(0, 1), (1, 2), (0, 2)], weights=[1.0, 2.0, 3.0]
    )
