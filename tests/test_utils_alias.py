"""Tests for the alias-method sampler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.alias import AliasTable


class TestAliasTableConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            AliasTable(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            AliasTable(np.array([1.0, -0.5]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="zero"):
            AliasTable(np.array([0.0, 0.0]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            AliasTable(np.array([1.0, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            AliasTable(np.ones((2, 2)))

    def test_len(self):
        assert len(AliasTable(np.array([1.0, 2.0, 3.0]))) == 3


class TestAliasTableDistribution:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=20).filter(lambda w: sum(w) > 0))
    @settings(max_examples=100, deadline=None)
    def test_reconstructed_probabilities_match(self, weights):
        """The alias structure encodes exactly the normalised weights."""
        table = AliasTable(np.array(weights))
        expected = np.array(weights) / np.sum(weights)
        np.testing.assert_allclose(table.probabilities, expected, atol=1e-9)

    def test_empirical_frequencies(self, rng):
        weights = np.array([1.0, 2.0, 7.0])
        table = AliasTable(weights)
        samples = table.sample(rng, size=60_000)
        freq = np.bincount(samples, minlength=3) / 60_000
        np.testing.assert_allclose(freq, weights / 10.0, atol=0.02)

    def test_scalar_sample(self, rng):
        table = AliasTable(np.array([1.0, 1.0]))
        s = table.sample(rng)
        assert s in (0, 1)

    def test_deterministic_given_seed(self):
        table = AliasTable(np.array([3.0, 1.0, 2.0]))
        a = table.sample(np.random.default_rng(5), size=100)
        b = table.sample(np.random.default_rng(5), size=100)
        np.testing.assert_array_equal(a, b)

    def test_single_element(self, rng):
        table = AliasTable(np.array([42.0]))
        assert np.all(table.sample(rng, size=10) == 0)

    def test_zero_weight_entries_never_sampled(self, rng):
        table = AliasTable(np.array([0.0, 1.0, 0.0, 1.0]))
        samples = table.sample(rng, size=5000)
        assert set(np.unique(samples)) <= {1, 3}
