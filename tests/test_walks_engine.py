"""Tests for the distributed walk engine, termination rules and corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, ring_of_cliques
from repro.partition import MPGPPartitioner, WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.walks import (
    Corpus,
    DistributedWalkEngine,
    WalkConfig,
    WalkCountRule,
    WalkLengthRule,
    IncrementalWalkMeasure,
)


def make_cluster(graph, machines=2, seed=0, partitioner=None):
    p = (partitioner or MPGPPartitioner()).partition(graph, machines)
    return Cluster(machines, p.assignment, seed=seed)


class TestWalkConfig:
    def test_presets(self):
        assert WalkConfig.distger().mode == "incom"
        assert WalkConfig.huge_d().mode == "fullpath"
        routine = WalkConfig.routine("deepwalk")
        assert routine.mode == "routine"
        assert routine.kernel == "deepwalk"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            WalkConfig(mode="magic")


class TestCorpus:
    def test_add_and_occurrences(self):
        c = Corpus(5)
        c.add_walk([0, 1, 1, 2])
        c.add_walk([2, 3])
        np.testing.assert_array_equal(c.occurrences, [1, 2, 2, 1, 0])
        assert c.num_walks == 2
        assert c.total_tokens == 6
        assert c.average_walk_length == 3.0

    def test_out_of_range_rejected(self):
        c = Corpus(3)
        with pytest.raises(ValueError):
            c.add_walk([0, 5])

    def test_empty_walk_ignored(self):
        c = Corpus(3)
        c.add_walk([])
        assert c.num_walks == 0

    def test_merge(self):
        a, b = Corpus(4), Corpus(4)
        a.add_walk([0, 1])
        b.add_walk([2, 3])
        a.merge(b)
        assert a.num_walks == 2
        assert a.total_tokens == 4

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            Corpus(3).merge(Corpus(4))

    def test_frequency_order(self):
        c = Corpus(4)
        c.add_walk([2, 2, 2, 1, 1, 0])
        order = c.frequency_order()
        assert list(order[:3]) == [2, 1, 0]

    def test_kl_divergence_finite(self):
        c = Corpus(4)
        c.add_walk([0, 1, 2, 3])
        kl = c.kl_from_degree_distribution(np.array([1, 2, 3, 4]))
        assert np.isfinite(kl)

    def test_save_load_roundtrip(self, tmp_path):
        c = Corpus(5)
        c.add_walk([0, 1, 1, 2])
        c.add_walk([4, 3])
        path = str(tmp_path / "corpus.txt")
        c.save(path)
        loaded = Corpus.load(path)
        assert loaded.num_nodes == 5
        assert loaded.num_walks == 2
        np.testing.assert_array_equal(loaded.occurrences, c.occurrences)
        for a, b in zip(loaded.walks, c.walks):
            np.testing.assert_array_equal(a, b)

    def test_load_rejects_headerless(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="header"):
            Corpus.load(str(path))


class TestTerminationRules:
    def test_length_rule_bounds(self):
        rule = WalkLengthRule(mu=0.9, min_length=3, max_length=5)
        m = IncrementalWalkMeasure()
        m.observe(0)
        assert not rule.should_stop(m)  # below min length
        for node in [1, 2, 3, 4]:
            m.observe(node)
        assert rule.should_stop(m)  # at max length

    def test_length_rule_validation(self):
        with pytest.raises(ValueError):
            WalkLengthRule(mu=1.5)
        with pytest.raises(ValueError):
            WalkLengthRule(max_length=2, min_length=5)

    def test_count_rule_stops_on_converged_kl(self):
        rule = WalkCountRule(delta=1e9, min_rounds=2, max_rounds=10)
        c = Corpus(3)
        degrees = np.array([2, 2, 2])
        c.add_walk([0, 1, 2])
        assert not rule.observe_round(c, degrees)  # round 1: min not met
        c.add_walk([0, 1, 2])
        assert rule.observe_round(c, degrees)      # huge delta always stops

    def test_count_rule_max_rounds(self):
        rule = WalkCountRule(delta=1e-12, min_rounds=1, max_rounds=3)
        c = Corpus(3)
        degrees = np.array([1, 2, 3])
        # The corpus keeps shifting between rounds, so the KL keeps moving
        # and only the max_rounds cap can stop the loop.
        c.add_walk([0, 1, 2])
        assert not rule.observe_round(c, degrees)
        c.add_walk([0, 0, 0])
        assert not rule.observe_round(c, degrees)
        c.add_walk([1, 1, 1])
        assert rule.observe_round(c, degrees)  # hits max_rounds
        assert rule.rounds_observed == 3


class TestEngine:
    def test_routine_walk_lengths_fixed(self, small_graph):
        cluster = make_cluster(small_graph)
        cfg = WalkConfig.routine("deepwalk", walk_length=12, walks_per_node=2)
        result = DistributedWalkEngine(small_graph, cluster, cfg).run()
        assert result.stats.rounds == 2
        assert all(l == 12 for l in result.stats.walk_lengths)
        assert result.corpus.num_walks == 2 * small_graph.num_nodes

    def test_info_walks_within_bounds(self, medium_graph):
        cluster = make_cluster(medium_graph)
        cfg = WalkConfig.distger(min_length=4, max_length=30, max_rounds=2,
                                 min_rounds=1)
        result = DistributedWalkEngine(medium_graph, cluster, cfg).run()
        assert all(4 <= l <= 30 for l in result.stats.walk_lengths)
        assert result.stats.rounds <= 2

    def test_walks_start_at_sources(self, small_graph):
        cluster = make_cluster(small_graph)
        cfg = WalkConfig.routine("deepwalk", walk_length=5, walks_per_node=1)
        result = DistributedWalkEngine(small_graph, cluster, cfg).run()
        starts = sorted(int(w[0]) for w in result.corpus.walks)
        assert starts == list(range(small_graph.num_nodes))

    def test_walks_follow_edges(self, small_graph):
        cluster = make_cluster(small_graph)
        cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
        result = DistributedWalkEngine(small_graph, cluster, cfg).run()
        for walk in result.corpus.walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert small_graph.has_edge(int(a), int(b))

    def test_messages_counted_on_machine_crossing(self, small_graph):
        cluster = make_cluster(small_graph, machines=2)
        cfg = WalkConfig.routine("deepwalk", walk_length=20, walks_per_node=1)
        DistributedWalkEngine(small_graph, cluster, cfg).run()
        # A ring of cliques split across 2 machines must cross sometimes.
        assert cluster.metrics.messages_sent > 0
        assert cluster.metrics.message_bytes == \
            cluster.metrics.messages_sent * 24  # deepwalk message size

    def test_single_machine_no_messages(self, small_graph):
        p = np.zeros(small_graph.num_nodes, dtype=np.int64)
        cluster = Cluster(1, p, seed=0)
        cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
        DistributedWalkEngine(small_graph, cluster, cfg).run()
        assert cluster.metrics.messages_sent == 0

    def test_incom_messages_constant_80(self, small_graph):
        cluster = make_cluster(small_graph, machines=2)
        cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
        DistributedWalkEngine(small_graph, cluster, cfg).run()
        m = cluster.metrics
        if m.messages_sent:
            assert m.message_bytes == m.messages_sent * 80

    def test_fullpath_messages_exceed_incom(self, medium_graph):
        """HuGE-D messages are linear in walk length; InCoM constant."""
        c1 = make_cluster(medium_graph, machines=4, seed=3)
        DistributedWalkEngine(
            medium_graph, c1, WalkConfig.distger(max_rounds=1, min_rounds=1)
        ).run()
        c2 = make_cluster(medium_graph, machines=4, seed=3)
        DistributedWalkEngine(
            medium_graph, c2, WalkConfig.huge_d(max_rounds=1, min_rounds=1)
        ).run()
        bytes_per_msg_incom = c1.metrics.message_bytes / max(1, c1.metrics.messages_sent)
        bytes_per_msg_full = c2.metrics.message_bytes / max(1, c2.metrics.messages_sent)
        assert bytes_per_msg_incom == pytest.approx(80.0)
        assert bytes_per_msg_full > bytes_per_msg_incom

    def test_mpgp_fewer_messages_than_balance(self, medium_graph):
        """Fig. 10(c): proximity-aware partitioning cuts walker traffic."""
        cfg = WalkConfig.routine("deepwalk", walk_length=20, walks_per_node=2)
        c_mpgp = make_cluster(medium_graph, machines=4, seed=5)
        DistributedWalkEngine(medium_graph, c_mpgp, cfg).run()
        c_bal = make_cluster(medium_graph, machines=4, seed=5,
                             partitioner=WorkloadBalancePartitioner())
        DistributedWalkEngine(medium_graph, c_bal, cfg).run()
        assert c_mpgp.metrics.messages_sent < c_bal.metrics.messages_sent

    def test_dead_end_terminates_walk(self):
        # Directed path: 0 -> 1 -> 2; node 2 is a dead end.
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        cluster = Cluster(1, np.zeros(3, dtype=np.int64), seed=0)
        cfg = WalkConfig.routine("deepwalk", walk_length=50, walks_per_node=1)
        result = DistributedWalkEngine(g, cluster, cfg).run()
        # Walks from 0 and 1 stop at node 2 before reaching length 50.
        assert max(result.stats.walk_lengths) <= 3

    def test_assignment_size_mismatch_rejected(self, small_graph):
        cluster = Cluster(2, np.zeros(3, dtype=np.int64), seed=0)
        with pytest.raises(ValueError, match="cover"):
            DistributedWalkEngine(small_graph, cluster, WalkConfig.distger())

    def test_deterministic_given_seed(self, small_graph):
        results = []
        for _ in range(2):
            cluster = make_cluster(small_graph, machines=2, seed=9)
            cfg = WalkConfig.distger(max_rounds=1, min_rounds=1)
            r = DistributedWalkEngine(small_graph, cluster, cfg).run()
            results.append([tuple(w) for w in r.corpus.walks])
        assert results[0] == results[1]

    def test_deterministic_given_seed_all_backend_protocols(self, small_graph):
        """Byte-identical corpora for the same seed under every
        backend × protocol combination the config admits."""
        combos = (
            ("vectorized", "walker"),
            ("loop", "walker"),
            ("loop", "cluster"),
        )
        for backend, protocol in combos:
            results = []
            for _ in range(2):
                cluster = make_cluster(small_graph, machines=2, seed=9)
                cfg = WalkConfig.distger(max_rounds=1, min_rounds=1,
                                         backend=backend,
                                         rng_protocol=protocol)
                r = DistributedWalkEngine(small_graph, cluster, cfg).run()
                results.append([w.tobytes() for w in r.corpus.walks])
            assert results[0] == results[1], (backend, protocol)

    def test_default_backend_is_vectorized_for_incom(self, small_graph):
        cluster = make_cluster(small_graph)
        engine = DistributedWalkEngine(small_graph, cluster,
                                       WalkConfig.distger())
        assert engine.backend == "vectorized"
        assert engine.rng_protocol == "walker"

    def test_fullpath_stays_on_loop_backend(self, small_graph):
        cluster = make_cluster(small_graph)
        engine = DistributedWalkEngine(small_graph, cluster,
                                       WalkConfig.huge_d())
        assert engine.backend == "loop"
