"""Tests for BSP superstep tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import BSPEngine, Cluster
from repro.runtime.bsp import SuperstepRecord


def _hop_n_times(n: int):
    """Item = remaining hop count; hops alternate machines, then stop."""

    def advance(machine, remaining):
        if remaining <= 0:
            return None
        return (1 - machine, remaining - 1, 8)

    return advance


class TestTracing:
    def test_disabled_by_default(self):
        cluster = Cluster(2, np.array([0, 1]), seed=0)
        engine = BSPEngine(cluster)
        engine.run([(0, 2)], _hop_n_times(2))
        assert engine.stats.trace is None

    def test_record_per_superstep(self):
        cluster = Cluster(2, np.array([0, 1]), seed=0)
        engine = BSPEngine(cluster, trace=True)
        stats = engine.run([(0, 3)], _hop_n_times(3))
        assert stats.trace is not None
        assert len(stats.trace) == stats.supersteps
        # Totals in the trace match the aggregate counters.
        assert sum(r.completed for r in stats.trace) == stats.items_completed
        assert sum(r.messages for r in stats.trace) == stats.messages_delivered

    def test_items_drain_monotonically(self):
        """With no fan-out, resident items can only shrink."""
        cluster = Cluster(2, np.array([0, 1]), seed=0)
        engine = BSPEngine(cluster, trace=True)
        seeds = [(0, 4), (0, 2), (1, 1)]
        stats = engine.run(
            seeds, lambda m, r: None if r <= 0 else (1 - m, r - 1, 8))
        active = [r.active_items for r in stats.trace]
        assert active[0] == len(seeds)
        assert all(a >= b for a, b in zip(active, active[1:]))

    def test_record_properties(self):
        record = SuperstepRecord(items_per_machine=[3, 1], completed=1,
                                 messages=2)
        assert record.active_items == 4
        assert record.machine_imbalance == pytest.approx(3 / 2.0)
        empty = SuperstepRecord(items_per_machine=[0, 0], completed=0,
                                messages=0)
        assert empty.machine_imbalance == 1.0

    def test_walk_engine_counters_unchanged_by_tracing(self, medium_graph):
        """The walk engine (which runs BSP untraced) is unaffected."""
        from repro.walks import DistributedWalkEngine, WalkConfig

        cluster = Cluster(2, np.arange(medium_graph.num_nodes) % 2, seed=0)
        result = DistributedWalkEngine(
            medium_graph, cluster, WalkConfig.distger(max_rounds=2)).run()
        assert result.corpus.num_walks > 0
        assert cluster.metrics.messages_sent > 0
