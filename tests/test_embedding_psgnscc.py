"""Tests for pSGNScc's inverted-index window combining."""

from __future__ import annotations

import numpy as np

from repro.embedding import (
    EmbeddingModel,
    NegativeSampler,
    PSGNSccLearner,
    TrainConfig,
    Vocabulary,
)
from repro.walks import Corpus


def fixture(seed=3):
    rng = np.random.default_rng(seed)
    corpus = Corpus(12)
    for _ in range(8):
        corpus.add_walk(rng.integers(0, 12, size=14))
    vocab = Vocabulary.from_corpus(corpus)
    return corpus, vocab, NegativeSampler(vocab)


class TestPSGNScc:
    def test_processes_every_window_once(self):
        """Combined or not, each window contributes exactly once: the token
        count returned must equal the corpus token count."""
        corpus, vocab, sampler = fixture()
        cfg = TrainConfig(dim=8, window=3, negatives=4)
        model = EmbeddingModel(vocab, cfg.dim, seed=1)
        learner = PSGNSccLearner(model, sampler, cfg,
                                 np.random.default_rng(0))
        tokens = learner.train_walks(corpus.walks, lr=0.05)
        assert tokens == corpus.total_tokens

    def test_pairing_actually_happens(self):
        """With a repetitive walk, negatives frequently hit other windows'
        targets, so partner windows must be found and merged (observable
        through the deterministic update trace differing from Pword2vec)."""
        from repro.embedding import Pword2vecLearner
        corpus = Corpus(4)
        for _ in range(5):
            corpus.add_walk(np.array([0, 1, 2, 3] * 4))
        vocab = Vocabulary.from_corpus(corpus)
        sampler = NegativeSampler(vocab)
        cfg = TrainConfig(dim=8, window=2, negatives=3)
        out = {}
        for name, cls in (("psgnscc", PSGNSccLearner),
                          ("pword2vec", Pword2vecLearner)):
            model = EmbeddingModel(vocab, cfg.dim, seed=1)
            learner = cls(model, sampler, cfg, np.random.default_rng(0))
            learner.train_walks(corpus.walks, lr=0.05)
            out[name] = model.phi_in.copy()
        # Same seed, same corpus -- but the combined batches change the
        # update order, so the traces must differ if pairing ever fired.
        assert not np.allclose(out["psgnscc"], out["pword2vec"])

    def test_updates_stay_finite_under_repetition(self):
        corpus = Corpus(3)
        for _ in range(10):
            corpus.add_walk(np.array([0, 1, 0, 1, 2] * 3))
        vocab = Vocabulary.from_corpus(corpus)
        sampler = NegativeSampler(vocab)
        cfg = TrainConfig(dim=8, window=2, negatives=2)
        model = EmbeddingModel(vocab, cfg.dim, seed=1)
        learner = PSGNSccLearner(model, sampler, cfg,
                                 np.random.default_rng(0))
        for _ in range(5):
            learner.train_walks(corpus.walks, lr=0.1)
        assert np.all(np.isfinite(model.phi_in))
