"""Cross-process parity: ``execution="process"`` vs ``"serial"``, byte for byte.

The process runtime (:mod:`repro.runtime.executor`) schedules real OS
processes, yet every result must be **byte-identical** to the serial
backends: all randomness flows through counter-based streams, so walks,
MPGP assignments and trained embeddings are pure functions of the seed --
never of scheduling.  This suite pins that contract for 1/2/4 workers
across undirected/weighted/directed graphs, plus the executor's failure
semantics (worker exceptions surface promptly, no deadlock, no orphaned
pool) and pickling round trips for the shared-memory buffers the phases
communicate through.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import DistributedTrainer, TrainConfig
from repro.graph import powerlaw_cluster
from repro.partition import ParallelMPGPPartitioner, PartitionConfig
from repro.partition.balance import WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.runtime.executor import (
    ProcessExecutor,
    SharedArray,
    attach_shared_array,
    resolve_execution,
    resolved_worker_count,
    split_ranges,
)
from repro.walks import DistributedWalkEngine, WalkConfig

WORKER_COUNTS = (1, 2, 4)
GRAPHS = ("undirected", "weighted", "directed")


def graph_family(kind):
    if kind == "undirected":
        return powerlaw_cluster(150, attach=4, triangle_prob=0.4, seed=2)
    if kind == "weighted":
        return powerlaw_cluster(130, attach=3, seed=3).with_random_weights(
            np.random.default_rng(4))
    if kind == "directed":
        return powerlaw_cluster(130, attach=3, triangle_prob=0.3,
                                seed=5).as_directed()
    raise KeyError(kind)


def run_walks(graph, execution, workers=0, machines=3, **overrides):
    part = WorkloadBalancePartitioner().partition(graph, machines)
    cluster = Cluster(machines, part.assignment, seed=5)
    cfg = WalkConfig.distger(**{"max_rounds": 2, "min_rounds": 2,
                                "execution": execution, "workers": workers,
                                **overrides})
    return DistributedWalkEngine(graph, cluster, cfg).run(), cluster


def assert_corpora_equal(ref, other):
    assert len(ref.walks) == len(other.walks)
    for a, b in zip(ref.walks, other.walks):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(ref.occurrences, other.occurrences)


class TestWalkParity:
    """Process walk rounds reproduce the serial corpus bit for bit."""

    @pytest.fixture(scope="class")
    def serial_runs(self):
        return {kind: run_walks(graph_family(kind), "serial")
                for kind in GRAPHS}

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("kind", GRAPHS)
    def test_corpora_byte_identical(self, serial_runs, kind, workers):
        ref, ref_cluster = serial_runs[kind]
        result, cluster = run_walks(graph_family(kind), "process", workers)
        assert_corpora_equal(ref.corpus, result.corpus)
        assert ref.walk_machines == result.walk_machines
        assert ref.stats.total_trials == result.stats.total_trials
        assert ref.stats.total_steps == result.stats.total_steps
        assert ref.stats.walk_lengths == result.stats.walk_lengths
        # Every metric increment is an integer-valued float, so even the
        # simulated cost counters merge exactly.
        assert ref_cluster.metrics.as_dict() == cluster.metrics.as_dict()

    def test_routine_mode_parity(self):
        graph = graph_family("undirected")
        cfg = dict(kernel="node2vec", mode="routine", walk_length=20,
                   walks_per_node=2, p=2.0, q=0.5)
        ref, _ = run_walks(graph, "serial", **cfg)
        result, _ = run_walks(graph, "process", 2, **cfg)
        assert_corpora_equal(ref.corpus, result.corpus)

    def test_node2vec_alias_shared_tables_parity(self):
        """Walk workers build their node2vec-alias kernel from the
        parent's exported flat tables (no per-worker Σ deg(u) rebuild);
        loop, vectorized and process corpora stay byte-identical."""
        graph = graph_family("weighted")
        cfg = dict(kernel="node2vec-alias", p=2.0, q=0.5)
        loop, _ = run_walks(graph, "serial", backend="loop", **cfg)
        vec, _ = run_walks(graph, "serial", **cfg)
        for workers in (1, 2):
            proc, _ = run_walks(graph, "process", workers, **cfg)
            assert_corpora_equal(loop.corpus, proc.corpus)
        assert_corpora_equal(loop.corpus, vec.corpus)

    def test_alias_sampler_table_export_roundtrip(self):
        """from_tables(export_tables()) reproduces the building sampler's
        draws exactly (the shared-memory reuse contract)."""
        from repro.walks.alias_sampling import SecondOrderAliasSampler

        graph = graph_family("weighted")
        built = SecondOrderAliasSampler(graph, p=2.0, q=0.5)
        wrapped = SecondOrderAliasSampler.from_tables(
            graph, 2.0, 0.5, built.export_tables())
        assert wrapped.build_seconds == 0.0
        assert wrapped.num_table_entries == built.num_table_entries
        rng = np.random.default_rng(7)
        for _ in range(50):
            cur = int(rng.integers(0, graph.num_nodes))
            while graph.degree(cur) == 0:
                cur = int(rng.integers(0, graph.num_nodes))
            # First-order (walk start) half the time, otherwise a real
            # arc (prev -> cur): any neighbour works, the graph is
            # undirected so the reverse arc is stored too.
            prev = -1
            if rng.random() < 0.5:
                nbrs = graph.neighbors(cur)
                prev = int(nbrs[int(rng.integers(0, nbrs.size))])
            u1, u2 = float(rng.random()), float(rng.random())
            assert built.sample_step_with_uniforms(cur, prev, u1, u2) == \
                wrapped.sample_step_with_uniforms(cur, prev, u1, u2)

    def test_kl_round_termination_matches(self):
        """The walk-count rule sees identical corpora, so both executors
        stop after the same number of rounds."""
        graph = graph_family("undirected")
        ref, _ = run_walks(graph, "serial", max_rounds=6)
        result, _ = run_walks(graph, "process", 2, max_rounds=6)
        assert ref.stats.rounds == result.stats.rounds
        assert ref.stats.kl_trace == result.stats.kl_trace


class TestTrainParity:
    """Process slice training reproduces serial embeddings bit for bit."""

    @pytest.fixture(scope="class")
    def walk_result(self):
        graph = powerlaw_cluster(140, attach=4, triangle_prob=0.4, seed=3)
        part = WorkloadBalancePartitioner().partition(graph, 4)
        cluster = Cluster(4, part.assignment, seed=5)
        cfg = WalkConfig.distger(max_rounds=2, min_rounds=2)
        result = DistributedWalkEngine(graph, cluster, cfg).run()
        return result, part.assignment

    def train(self, walk_result, execution, workers=0, **overrides):
        result, assignment = walk_result
        learner = overrides.pop("learner", "dsgl")
        cluster = Cluster(4, assignment, seed=9)
        cfg = TrainConfig(dim=16, epochs=2, seed=11, execution=execution,
                          workers=workers, **overrides)
        trainer = DistributedTrainer(result.corpus, cluster, cfg,
                                     learner=learner,
                                     walk_machines=result.walk_machines)
        return trainer.train(), cluster

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_dsgl_embeddings_bit_equal(self, walk_result, workers):
        ref, ref_cluster = self.train(walk_result, "serial")
        result, cluster = self.train(walk_result, "process", workers)
        np.testing.assert_array_equal(ref.embeddings, result.embeddings)
        np.testing.assert_array_equal(ref.model.phi_out,
                                      result.model.phi_out)
        assert ref.tokens_processed == result.tokens_processed
        assert ref.sync_rounds == result.sync_rounds
        assert ref_cluster.metrics.as_dict() == cluster.metrics.as_dict()

    def test_loop_backend_and_subsampling_parity(self, walk_result):
        """The loop learners and the parent-side subsampling draws go
        through the same process path unchanged."""
        kwargs = dict(backend="loop", subsample=1e-3)
        ref, _ = self.train(walk_result, "serial", **dict(kwargs))
        result, _ = self.train(walk_result, "process", 2, **dict(kwargs))
        np.testing.assert_array_equal(ref.embeddings, result.embeddings)

    @pytest.mark.parametrize("learner", ("pword2vec", "sgns"))
    def test_other_learners_bit_equal(self, walk_result, learner):
        result, assignment = walk_result
        out = {}
        for execution, workers in (("serial", 0), ("process", 2)):
            cluster = Cluster(4, assignment, seed=9)
            cfg = TrainConfig(dim=12, epochs=1, seed=11,
                              execution=execution, workers=workers)
            out[execution] = DistributedTrainer(
                result.corpus, cluster, cfg, learner=learner,
                walk_machines=result.walk_machines).train()
        np.testing.assert_array_equal(out["serial"].embeddings,
                                      out["process"].embeddings)


class TestPartitionParity:
    """Process-partitioned MPGP segments merge to identical assignments."""

    @pytest.mark.parametrize("kind", GRAPHS)
    def test_assignments_byte_identical(self, kind):
        graph = graph_family(kind)
        serial = ParallelMPGPPartitioner().partition(graph, 4).assignment
        for workers in (2, 4):
            proc = ParallelMPGPPartitioner(
                execution="process",
                workers=workers).partition(graph, 4).assignment
            np.testing.assert_array_equal(serial, proc)

    def test_loop_backend_process_parity(self):
        graph = graph_family("undirected")
        serial = ParallelMPGPPartitioner(backend="loop").partition(
            graph, 4).assignment
        proc = ParallelMPGPPartitioner(
            backend="loop", execution="process",
            workers=2).partition(graph, 4).assignment
        np.testing.assert_array_equal(serial, proc)

    def test_from_config_carries_execution(self):
        cfg = PartitionConfig(execution="process", workers=3)
        par = ParallelMPGPPartitioner.from_config(cfg)
        assert (par.execution, par.workers) == ("process", 3)


class TestPipelineParity:
    """``execution="pipeline"`` streams rounds (bounded queue, deferred
    accounting, speculative sampling past the KL check) yet must land on
    the serial bytes: corpora, walk placement, stats, and every simulated
    metric counter."""

    @pytest.fixture(scope="class")
    def serial_runs(self):
        return {kind: run_walks(graph_family(kind), "serial")
                for kind in GRAPHS}

    @pytest.mark.parametrize("workers", (1, 2))
    @pytest.mark.parametrize("kind", GRAPHS)
    def test_walk_corpora_byte_identical(self, serial_runs, kind, workers):
        ref, ref_cluster = serial_runs[kind]
        result, cluster = run_walks(graph_family(kind), "pipeline", workers)
        assert_corpora_equal(ref.corpus, result.corpus)
        assert ref.walk_machines == result.walk_machines
        assert ref.stats.total_trials == result.stats.total_trials
        assert ref.stats.total_steps == result.stats.total_steps
        assert ref.stats.walk_lengths == result.stats.walk_lengths
        # Deferred accounting reconstructs the counters exactly: trials
        # and steps from the per-step trial buffers, messages from the
        # per-arc traversal counts -- all integer-valued.
        assert ref_cluster.metrics.as_dict() == cluster.metrics.as_dict()
        assert ref_cluster.metrics.message_byte_matrix == \
            cluster.metrics.message_byte_matrix

    def test_speculative_rounds_leave_no_trace(self, serial_runs):
        """The producer samples ahead of the KL check; rounds past the
        stop are discarded, so round counts and KL traces match."""
        graph = graph_family("undirected")
        ref, _ = run_walks(graph, "serial", max_rounds=6)
        result, _ = run_walks(graph, "pipeline", 2, max_rounds=6)
        assert ref.stats.rounds == result.stats.rounds
        assert ref.stats.kl_trace == result.stats.kl_trace
        assert_corpora_equal(ref.corpus, result.corpus)

    @pytest.mark.parametrize("depth", ("1", "4"))
    def test_queue_depth_is_result_invariant(self, serial_runs, depth,
                                             monkeypatch):
        """Backpressure bound (REPRO_PIPELINE_DEPTH) trades memory and
        overlap only -- any depth produces the same bytes."""
        monkeypatch.setenv("REPRO_PIPELINE_DEPTH", depth)
        ref, _ = serial_runs["undirected"]
        result, _ = run_walks(graph_family("undirected"), "pipeline", 2)
        assert_corpora_equal(ref.corpus, result.corpus)
        assert ref.stats.walk_lengths == result.stats.walk_lengths

    def test_node2vec_alias_pipeline_parity(self):
        graph = graph_family("weighted")
        cfg = dict(kernel="node2vec-alias", p=2.0, q=0.5)
        ref, _ = run_walks(graph, "serial", **cfg)
        result, _ = run_walks(graph, "pipeline", 2, **cfg)
        assert_corpora_equal(ref.corpus, result.corpus)

    def test_routine_mode_parity(self):
        graph = graph_family("undirected")
        cfg = dict(kernel="node2vec", mode="routine", walk_length=20,
                   walks_per_node=3, p=2.0, q=0.5)
        ref, ref_cluster = run_walks(graph, "serial", **cfg)
        result, cluster = run_walks(graph, "pipeline", 2, **cfg)
        assert_corpora_equal(ref.corpus, result.corpus)
        assert ref_cluster.metrics.as_dict() == cluster.metrics.as_dict()

    def test_async_partition_matches_direct_call(self):
        from repro.partition.mpgp import MPGPPartitioner
        from repro.runtime.executor import run_partition_async

        graph = graph_family("undirected")
        direct = MPGPPartitioner(seed=3).partition(graph, 4)
        handle = run_partition_async(MPGPPartitioner(seed=3), graph, 4)
        async_result = handle.result()
        np.testing.assert_array_equal(direct.assignment,
                                      async_result.assignment)

    def test_system_pipeline_embeddings_byte_identical(self):
        """End to end (MPGP ∥ sampling, streamed rounds, gated trainer):
        pipeline == process == serial, embeddings, metrics and stats."""
        from repro import embed_graph

        graph = graph_family("undirected")
        runs = {
            execution: embed_graph(graph, num_machines=3, dim=12, epochs=1,
                                   seed=7, execution=execution, workers=2)
            for execution in ("serial", "process", "pipeline")
        }
        np.testing.assert_array_equal(runs["serial"].embeddings,
                                      runs["pipeline"].embeddings)
        np.testing.assert_array_equal(runs["process"].embeddings,
                                      runs["pipeline"].embeddings)
        assert runs["serial"].metrics.as_dict() == \
            runs["pipeline"].metrics.as_dict()
        for key, value in runs["serial"].stats.items():
            if key not in ("train_throughput", "partition_seconds"):
                assert runs["pipeline"].stats[key] == value, key

    def test_trainer_streams_behind_a_live_producer(self):
        """The feed's walk→train handshake: a trainer constructed over a
        still-growing corpus blocks on readiness, then produces the same
        bytes as training the finished corpus."""
        import threading
        import time as _time

        from repro.walks.corpus import Corpus, CorpusFeed

        graph = powerlaw_cluster(120, attach=4, triangle_prob=0.4, seed=3)
        complete, _ = run_walks(graph, "serial", machines=2)
        reference = complete.corpus

        def train(corpus, feed=None):
            cluster = Cluster(2, np.zeros(graph.num_nodes, dtype=np.int64),
                              seed=9)
            cfg = TrainConfig(dim=12, epochs=1, seed=11)
            return DistributedTrainer(corpus, cluster, cfg,
                                      feed=feed).train()

        expected = train(reference)
        streaming = Corpus(graph.num_nodes)
        feed = CorpusFeed(streaming)

        def produce():
            chunk = max(1, reference.num_walks // 5)
            for start in range(0, reference.num_walks, chunk):
                for i in range(start,
                               min(start + chunk, reference.num_walks)):
                    streaming.add_walk(reference.walk(i))
                feed.publish(streaming.num_walks)
                _time.sleep(0.005)
            feed.finish()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            result = train(streaming, feed=feed)
        finally:
            producer.join()
        np.testing.assert_array_equal(expected.embeddings, result.embeddings)

    def test_engine_surfaces_worker_failure_and_cleans_up(self, monkeypatch):
        """A failure inside a streaming walk worker re-raises from
        ``engine.run`` and the producer's shared segments are released."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("failure injection relies on fork inheritance")
        from repro.walks.vectorized import BatchWalkRunner

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected pipeline worker failure")

        monkeypatch.setattr(BatchWalkRunner, "run_walks", explode)
        graph = graph_family("undirected")
        part = WorkloadBalancePartitioner().partition(graph, 2)
        cluster = Cluster(2, part.assignment, seed=1)
        cfg = WalkConfig.distger(max_rounds=2, min_rounds=2,
                                 execution="pipeline", workers=2)
        engine = DistributedWalkEngine(graph, cluster, cfg)
        with pytest.raises(RuntimeError, match="injected pipeline"):
            engine.run()


# ------------------------------------------------------------------ #
# Crash safety
# ------------------------------------------------------------------ #


def _boom(x):
    raise ValueError(f"boom {x}")


def _square(x):
    return x * x


def _hard_exit():
    os._exit(13)


def _add_one_inplace(handle):
    array = attach_shared_array(handle)
    array += 1
    return int(array.sum())


class TestCrashSafety:
    def test_worker_exception_surfaces(self):
        """A raising task propagates to the parent and shuts the pool
        down -- the batch neither hangs nor half-completes silently."""
        pool = ProcessExecutor(2)
        with pytest.raises(ValueError, match="boom"):
            pool.run(_boom, [(1,), (2,), (3,)])
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run(_square, [(2,)])

    def test_pool_usable_after_failed_batch_elsewhere(self):
        """A failure tears down only its own pool; fresh pools work."""
        with ProcessExecutor(2) as pool:
            with pytest.raises(ValueError):
                pool.run(_boom, [(0,)])
        with ProcessExecutor(2) as pool:
            assert pool.run(_square, [(3,), (4,)]) == [9, 16]

    def test_hard_worker_death_surfaces(self):
        """A worker dying mid-task (os._exit) surfaces as
        BrokenProcessPool instead of deadlocking the parent."""
        with ProcessExecutor(1) as pool:
            with pytest.raises(BrokenProcessPool):
                pool.run(_hard_exit, [()])

    def test_engine_surfaces_worker_failure_and_cleans_up(self, monkeypatch):
        """A failure inside a walk worker re-raises from ``engine.run``
        and the runner's shared segments are released on the way out."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("failure injection relies on fork inheritance")
        from repro.walks.vectorized import BatchWalkRunner

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected worker failure")

        # Patch before the pool forks so the workers inherit the fault.
        monkeypatch.setattr(BatchWalkRunner, "run_walks", explode)
        graph = graph_family("undirected")
        part = WorkloadBalancePartitioner().partition(graph, 2)
        cluster = Cluster(2, part.assignment, seed=1)
        cfg = WalkConfig.distger(max_rounds=1, min_rounds=1,
                                 execution="process", workers=2)
        engine = DistributedWalkEngine(graph, cluster, cfg)
        with pytest.raises(RuntimeError, match="injected worker failure"):
            engine.run()


# ------------------------------------------------------------------ #
# Shared-memory buffers
# ------------------------------------------------------------------ #


class TestSharedBuffers:
    @given(shape=st.lists(st.integers(1, 6), min_size=1, max_size=3),
           dtype=st.sampled_from(["int64", "float64", "float32", "uint8"]),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_handle_pickle_roundtrip(self, shape, dtype, seed):
        """A pickled handle re-attaches to the same bytes, and writes
        through the attached view land in the owner's array."""
        rng = np.random.default_rng(seed)
        source = (rng.random(shape) * 100).astype(dtype)
        shared = SharedArray.create(source)
        try:
            handle = pickle.loads(pickle.dumps(shared.handle))
            assert handle == shared.handle
            view = attach_shared_array(handle)
            assert view.dtype == source.dtype
            np.testing.assert_array_equal(view, source)
            view[...] = view + 1
            np.testing.assert_array_equal(
                shared.array, source.astype(dtype) + 1)
        finally:
            shared.close()

    def test_cross_process_write_visibility(self):
        shared = SharedArray.create(np.arange(8, dtype=np.int64))
        try:
            with ProcessExecutor(1) as pool:
                total = pool.run(_add_one_inplace, [(shared.handle,)])[0]
            assert total == int(np.arange(1, 9).sum())
            np.testing.assert_array_equal(shared.array,
                                          np.arange(1, 9, dtype=np.int64))
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        shared = SharedArray.create(np.ones(3))
        shared.close()
        shared.close()


# ------------------------------------------------------------------ #
# Knob resolution
# ------------------------------------------------------------------ #


class TestKnobs:
    def test_invalid_execution_rejected_everywhere(self):
        with pytest.raises(ValueError, match="execution"):
            resolve_execution("threads")
        with pytest.raises(ValueError, match="execution"):
            WalkConfig(execution="gpu")
        with pytest.raises(ValueError, match="execution"):
            TrainConfig(execution="gpu")
        with pytest.raises(ValueError, match="execution"):
            PartitionConfig(execution="gpu")
        with pytest.raises(ValueError, match="workers"):
            WalkConfig(workers=-1)

    def test_walk_execution_degrades_with_loop_backend(self):
        """The loop reference and fullpath mode are inherently serial."""
        assert WalkConfig(execution="process").resolved_execution() == \
            "process"
        assert WalkConfig(execution="process",
                          backend="loop").resolved_execution() == "serial"
        assert WalkConfig.huge_d(
            execution="process").resolved_execution() == "serial"

    def test_pipeline_execution_resolution(self):
        """Pipeline applies to vectorized walks, degrades exactly like
        process elsewhere, and resolves to the process slice path for
        training (the trainer is the streaming consumer, not a producer)."""
        from repro.partition import PartitionConfig

        assert WalkConfig(execution="pipeline").resolved_execution() == \
            "pipeline"
        assert WalkConfig(execution="pipeline",
                          backend="loop").resolved_execution() == "serial"
        assert WalkConfig.huge_d(
            execution="pipeline").resolved_execution() == "serial"
        assert TrainConfig(execution="pipeline").resolved_execution() == \
            "process"
        PartitionConfig(execution="pipeline")  # accepted for uniformity

    def test_pipeline_depth_validation(self, monkeypatch):
        from repro.runtime.executor import pipeline_depth

        monkeypatch.setenv("REPRO_PIPELINE_DEPTH", "3")
        assert pipeline_depth() == 3
        monkeypatch.setenv("REPRO_PIPELINE_DEPTH", "0")
        with pytest.raises(ValueError, match="REPRO_PIPELINE_DEPTH"):
            pipeline_depth()

    def test_partition_join_requires_pipeline_execution(self):
        graph = graph_family("undirected")
        part = WorkloadBalancePartitioner().partition(graph, 2)
        cluster = Cluster(2, part.assignment, seed=1)
        engine = DistributedWalkEngine(graph, cluster,
                                       WalkConfig.distger(max_rounds=1,
                                                          min_rounds=1,
                                                          execution="serial"))
        with pytest.raises(ValueError, match="partition_join"):
            engine.run(partition_join=lambda: part.assignment)

    def test_train_process_requires_shared_protocol(self):
        with pytest.raises(ValueError, match="shared"):
            TrainConfig(execution="process", rng_protocol="cluster")
        with pytest.raises(ValueError, match="shared"):
            TrainConfig(execution="pipeline", rng_protocol="cluster")
        assert TrainConfig(execution="process").resolved_execution() == \
            "process"

    def test_worker_count_resolution(self):
        assert resolved_worker_count(3) == 3
        assert resolved_worker_count(0) >= 1
        with pytest.raises(ValueError, match="workers"):
            resolved_worker_count(-2)

    def test_split_ranges_partition_the_index_space(self):
        for n, parts in ((10, 3), (4, 8), (1, 1), (100, 4)):
            ranges = split_ranges(n, parts)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo

    def test_env_default_execution(self, monkeypatch):
        """REPRO_EXECUTION pushes the default onto the process backend
        (the CI tier-1 process job relies on this)."""
        monkeypatch.setenv("REPRO_EXECUTION", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert WalkConfig().execution == "process"
        assert TrainConfig().workers == 2
        assert PartitionConfig().execution == "process"
