"""Delta-CSR property suite: the overlay must equal a rebuild.

The whole dynamic-update path leans on one identity: applying an edge
stream through :class:`~repro.dynamic.delta.DeltaCSR` and compacting
must produce **the same bytes** as throwing the merged logical edge list
at ``CSRGraph.from_edges``.  This suite pins that identity across
directed/undirected and weighted/unweighted bases under randomized
insert/delete/re-insert streams (hypothesis), plus the stream-format and
overlay-semantics unit contracts the orchestration relies on.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic.delta import DeltaCSR, EdgeStream, random_churn
from repro.graph import powerlaw_cluster
from repro.graph.csr import CSRGraph


def assert_graphs_byte_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert a.directed == b.directed
    assert a.num_nodes == b.num_nodes
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    assert a.indptr.dtype == b.indptr.dtype
    assert a.indices.dtype == b.indices.dtype
    if a.is_weighted or b.is_weighted:
        assert a.is_weighted and b.is_weighted
        assert a.weights.dtype == b.weights.dtype
        assert np.array_equal(a.weights, b.weights)


# --------------------------------------------------------------------- #
# EdgeStream format
# --------------------------------------------------------------------- #


class TestEdgeStream:
    def test_from_edits_order_and_counts(self):
        stream = EdgeStream.from_edits(inserts=[(0, 1), (2, 3)],
                                       deletes=[(4, 5)],
                                       insert_weights=[2.0, 3.0])
        assert len(stream) == 3
        assert stream.num_inserts == 2
        assert stream.num_deletes == 1
        ops = list(stream)
        assert ops[0] == (-1, 4, 5, 1.0)  # deletes first
        assert ops[1] == (1, 0, 1, 2.0)
        assert ops[2] == (1, 2, 3, 3.0)

    def test_text_round_trip(self):
        text = "# churn step\n+ 0 1\n- 2 3\n+ 4 5 2.5\n\n"
        stream = EdgeStream.from_text(io.StringIO(text))
        assert list(stream) == [(1, 0, 1, 1.0), (-1, 2, 3, 1.0),
                                (1, 4, 5, 2.5)]
        again = EdgeStream.from_text(io.StringIO(stream.to_text()))
        assert list(again) == list(stream)

    def test_text_rejects_garbage(self):
        with pytest.raises(ValueError, match="expected"):
            EdgeStream.from_text(io.StringIO("* 1 2\n"))
        with pytest.raises(ValueError, match="no weight"):
            EdgeStream.from_text(io.StringIO("- 1 2 3.0\n"))

    def test_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            EdgeStream(np.array([0]), np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError, match="ops"):
            EdgeStream(np.array([0]), np.array([1]), np.array([2]))
        with pytest.raises(ValueError, match="non-negative"):
            EdgeStream(np.array([-1]), np.array([1]), np.array([1]))

    def test_random_churn_deterministic(self):
        graph = powerlaw_cluster(60, attach=3, triangle_prob=0.3, seed=4)
        a = random_churn(graph, 0.05, seed=9)
        b = random_churn(graph, 0.05, seed=9)
        assert list(a) == list(b)
        assert len(a) == round(0.05 * graph.num_edges)
        # deletions name real edges, inserts name real non-edges
        for op, u, v, _ in a:
            assert graph.has_edge(u, v) == (op == -1)


# --------------------------------------------------------------------- #
# Overlay semantics
# --------------------------------------------------------------------- #


class TestDeltaSemantics:
    def base(self, directed=False):
        return CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)],
                                   directed=directed)

    def test_insert_delete_query(self):
        delta = DeltaCSR(self.base())
        assert delta.has_edge(0, 1)
        delta.delete(0, 1)
        assert not delta.has_edge(0, 1)
        assert not delta.has_edge(1, 0)  # undirected tombstone covers both
        delta.insert(1, 3)
        assert delta.has_edge(3, 1)
        np.testing.assert_array_equal(delta.neighbors(1), [2, 3])
        assert delta.degree(1) == 2

    def test_delete_absent_edge_leaves_no_trace(self):
        delta = DeltaCSR(self.base())
        delta.delete(0, 2)
        assert delta.num_edits == 0
        assert delta.compact() is delta.base  # nothing changed

    def test_reinsert_after_delete_wins(self):
        delta = DeltaCSR(self.base())
        delta.delete(0, 1)
        delta.insert(0, 1)
        assert delta.has_edge(0, 1)
        assert_graphs_byte_equal(delta.compact(), self.base())

    def test_self_loop_grows_universe_only(self):
        delta = DeltaCSR(self.base())
        delta.insert(7, 7)
        assert delta.self_loops_ignored == 1
        assert delta.num_nodes == 8
        compacted = delta.compact()
        assert compacted.num_nodes == 8
        assert compacted.degree(7) == 0

    def test_new_node_edge(self):
        delta = DeltaCSR(self.base())
        delta.insert(3, 6)
        compacted = delta.compact()
        assert compacted.num_nodes == 7
        np.testing.assert_array_equal(compacted.neighbors(6), [3])
        np.testing.assert_array_equal(compacted.neighbors(3), [0, 2, 6])

    def test_changed_arcs_undirected_lists_both_directions(self):
        delta = DeltaCSR(self.base())
        delta.delete(0, 1)
        arcs = {tuple(a) for a in delta.changed_arcs()}
        assert arcs == {(0, 1), (1, 0)}

    def test_noop_edits_produce_no_changed_arcs(self):
        delta = DeltaCSR(self.base())
        delta.insert(0, 1)  # already present, unweighted: no-op
        delta.delete(1, 3)  # absent: no-op
        assert len(delta.changed_arcs()) == 0

    def test_reweight_counts_as_change(self):
        base = CSRGraph.from_edges([(0, 1), (1, 2)], weights=[1.0, 2.0])
        delta = DeltaCSR(base)
        delta.insert(0, 1, weight=5.0)
        assert len(delta.changed_arcs()) == 2
        compacted = delta.compact()
        assert compacted.edge_weight(0, 1) == 5.0
        assert compacted.edge_weight(1, 0) == 5.0


# --------------------------------------------------------------------- #
# compact() byte-identity (hypothesis)
# --------------------------------------------------------------------- #


def reference_rebuild(delta: DeltaCSR) -> CSRGraph:
    edges, weights = delta.merged_edges()
    return CSRGraph.from_edges(edges, num_nodes=delta.num_nodes,
                               weights=weights,
                               directed=delta.base.directed)


@st.composite
def base_and_stream(draw):
    n = draw(st.integers(4, 12))
    directed = draw(st.booleans())
    weighted = draw(st.booleans())
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)) \
        .filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, min_size=1, max_size=25))
    # canonical de-dup the way from_edges would merge them anyway
    keys = {(u, v) if directed or u < v else (v, u) for u, v in edges}
    edges = sorted(keys)
    weights = (draw(st.lists(st.floats(0.5, 4.0), min_size=len(edges),
                             max_size=len(edges)))
               if weighted else None)
    graph = CSRGraph.from_edges(edges, num_nodes=n, weights=weights,
                                directed=directed)
    # the stream may touch ids slightly above the base universe
    op_pairs = st.tuples(st.integers(0, n + 2), st.integers(0, n + 2))
    ops = draw(st.lists(
        st.tuples(st.sampled_from((1, -1)), op_pairs,
                  st.floats(0.5, 4.0)),
        min_size=0, max_size=30))
    return graph, ops


@given(base_and_stream())
@settings(max_examples=60, deadline=None)
def test_compact_byte_identical_to_rebuild(case):
    graph, ops = case
    delta = DeltaCSR(graph)
    for op, (u, v), w in ops:
        if op == 1:
            delta.insert(u, v, weight=w if graph.is_weighted else 1.0)
        else:
            delta.delete(u, v)
    compacted = delta.compact()
    assert_graphs_byte_equal(compacted, reference_rebuild(delta))
    # merged view answers match the compacted graph row for row
    for node in range(delta.num_nodes):
        np.testing.assert_array_equal(delta.neighbors(node),
                                      compacted.neighbors(node))


@given(st.integers(0, 2 ** 31 - 1), st.booleans())
@settings(max_examples=15, deadline=None)
def test_compact_under_random_churn(seed, directed):
    graph = powerlaw_cluster(40, attach=3, triangle_prob=0.4, seed=5)
    if directed:
        graph = graph.as_directed()
    stream = random_churn(graph, 0.1, seed=seed)
    delta = DeltaCSR(graph).apply(stream)
    assert_graphs_byte_equal(delta.compact(), reference_rebuild(delta))
