"""Tests for graph downsampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, powerlaw_cluster
from repro.graph.sampling import (
    sample_edges_uniform,
    sample_nodes_uniform,
    snowball_sample,
)


class TestNodeSampling:
    def test_size_and_relabelling(self, medium_graph):
        sub, old_ids = sample_nodes_uniform(medium_graph, 50, seed=0)
        assert sub.num_nodes == 50
        assert old_ids.size == 50
        assert old_ids.max() < medium_graph.num_nodes

    def test_edges_are_original_edges(self, medium_graph):
        sub, old_ids = sample_nodes_uniform(medium_graph, 60, seed=1)
        for u, v in sub.unique_edges()[:50]:
            assert medium_graph.has_edge(int(old_ids[u]), int(old_ids[v]))

    def test_deterministic(self, medium_graph):
        a = sample_nodes_uniform(medium_graph, 30, seed=5)[1]
        b = sample_nodes_uniform(medium_graph, 30, seed=5)[1]
        assert np.array_equal(a, b)

    def test_too_many_rejected(self, triangle):
        with pytest.raises(ValueError, match="cannot sample"):
            sample_nodes_uniform(triangle, 10)


class TestEdgeSampling:
    def test_node_set_unchanged(self, medium_graph):
        sub = sample_edges_uniform(medium_graph, 0.5, seed=0)
        assert sub.num_nodes == medium_graph.num_nodes

    def test_fraction_approximate(self, medium_graph):
        sub = sample_edges_uniform(medium_graph, 0.5, seed=0)
        ratio = sub.num_edges / medium_graph.num_edges
        assert 0.4 < ratio < 0.6

    def test_extremes(self, medium_graph):
        none = sample_edges_uniform(medium_graph, 0.0, seed=0)
        assert none.num_edges == 0
        # keep_fraction=1.0 keeps everything (rng.random() < 1.0 always).
        full = sample_edges_uniform(medium_graph, 1.0, seed=0)
        assert full.num_edges == medium_graph.num_edges

    def test_weights_survive(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)],
                                weights=[2.0, 4.0, 8.0])
        sub = sample_edges_uniform(g, 1.0, seed=0)
        assert sub.is_weighted
        assert sub.edge_weight(1, 2) == pytest.approx(4.0)

    def test_degree_proportions_roughly_preserved(self, medium_graph):
        """Edge sampling thins every node's degree by the same factor."""
        sub = sample_edges_uniform(medium_graph, 0.5, seed=3)
        orig = medium_graph.degrees.astype(float)
        new = sub.degrees.astype(float)
        mask = orig >= 8  # enough degree for the ratio to concentrate
        ratios = new[mask] / orig[mask]
        assert 0.3 < ratios.mean() < 0.7


class TestSnowballSampling:
    def test_reaches_target(self, medium_graph):
        sub, old_ids = snowball_sample(medium_graph, 80, seed=0)
        assert sub.num_nodes == 80

    def test_ball_is_locally_dense(self, medium_graph):
        """BFS balls keep more internal edges than uniform node samples."""
        ball, _ = snowball_sample(medium_graph, 80, seed=0)
        uniform, _ = sample_nodes_uniform(medium_graph, 80, seed=0)
        assert ball.num_edges > uniform.num_edges

    def test_explicit_seeds_included(self, medium_graph):
        sub, old_ids = snowball_sample(medium_graph, 40,
                                       seeds=np.array([7]), seed=0)
        assert 7 in old_ids

    def test_disconnected_graph_draws_new_seeds(self):
        # Two disjoint triangles; a ball from one must jump to the other.
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        g = CSRGraph.from_edges(edges)
        sub, old_ids = snowball_sample(g, 6, seeds=np.array([0]), seed=0)
        assert sub.num_nodes == 6

    def test_target_too_large(self, triangle):
        with pytest.raises(ValueError, match="cannot sample"):
            snowball_sample(triangle, 10)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    size=st.integers(min_value=5, max_value=35),
)
def test_property_samplers_produce_valid_graphs(seed, size):
    """Every sampler yields a structurally valid compact graph."""
    g = powerlaw_cluster(40, attach=2, seed=seed % 9)
    for sub, ids in (
        sample_nodes_uniform(g, size, seed=seed),
        snowball_sample(g, size, seed=seed),
    ):
        assert sub.num_nodes == size
        assert ids.size == size
        assert len(set(ids.tolist())) == size
        if sub.num_stored_edges:
            assert sub.indices.max() < sub.num_nodes
