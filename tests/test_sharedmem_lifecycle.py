"""mmap-lifecycle contract of :mod:`repro.utils.sharedmem`.

Three bugs anchored this suite, each pinned by a regression test here:

* ``attach_shared_array`` cached mmap attaches by path and never
  invalidated, so a store rewritten with a different shape kept serving
  the stale generation (or failed) forever;
* ``SharedArray.close()`` in mmap mode only dropped the Python
  reference, leaving the underlying map -- and its file descriptor --
  open until GC (fd exhaustion in long-lived serving processes);
* the ``create_file`` failure path unlinked the half-written file while
  the map was still open, leaking the mapping.

The fd/map assertions read ``/proc/self/fd`` directly (psutil-free) and
skip on platforms without procfs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.utils.sharedmem import (
    SharedArray,
    SharedArrayHandle,
    SharedGroup,
    attach_shared_array,
    attached_count,
    default_backing,
    default_spill_dir,
    detach_shared_array,
    resolve_backing,
)


def fd_targets():
    """Resolved paths of every open fd (skip the test without procfs)."""
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):
        pytest.skip("/proc/self/fd not available")
    targets = []
    for entry in os.listdir(fd_dir):
        try:
            targets.append(os.readlink(os.path.join(fd_dir, entry)))
        except OSError:
            # The listing fd itself, or a raced-away descriptor.
            continue
    return targets


def fds_at(path) -> int:
    real = os.path.realpath(path)
    return sum(1 for target in fd_targets() if target == real)


# ------------------------------------------------------------------ #
# Bugfix 1: stale cache entries are invalidated, not served forever
# ------------------------------------------------------------------ #


class TestAttachCacheInvalidation:
    def test_attach_after_rewrite_serves_new_generation(self, tmp_path):
        """Regression: rewriting a spill file with a new shape must not
        keep serving the cached first-generation map."""
        path = str(tmp_path / "store.npy")
        first = SharedArray.create_file(path, np.arange(4, dtype=np.int64))
        view = attach_shared_array(first.handle)
        np.testing.assert_array_equal(view, np.arange(4))
        first.close()

        os.unlink(path)
        second = SharedArray.create_file(
            path, np.arange(8, dtype=np.float32))
        try:
            reopened = attach_shared_array(second.handle)
            assert reopened.shape == (8,)
            assert reopened.dtype == np.float32
            np.testing.assert_array_equal(
                reopened, np.arange(8, dtype=np.float32))
        finally:
            detach_shared_array(path)
            second.close()

    def test_genuine_mismatch_raises_without_poisoning_cache(self, tmp_path):
        """A handle that disagrees with the bytes on disk fails cleanly:
        no fd left open, no cache entry, and a good handle still works."""
        path = str(tmp_path / "store.npy")
        owner = SharedArray.create_file(path, np.arange(6, dtype=np.int64))
        try:
            bogus = SharedArrayHandle("", (17,), "<i8", path=path)
            before = attached_count()
            with pytest.raises(ValueError, match="holds"):
                attach_shared_array(bogus)
            assert attached_count() == before
            good = attach_shared_array(owner.handle)
            np.testing.assert_array_equal(good, np.arange(6))
        finally:
            detach_shared_array(path)
            owner.close()

    def test_same_handle_attach_is_cached(self, tmp_path):
        path = str(tmp_path / "store.npy")
        owner = SharedArray.create_file(path, np.ones(3))
        try:
            first = attach_shared_array(owner.handle)
            second = attach_shared_array(owner.handle)
            assert first is second
        finally:
            detach_shared_array(path)
            owner.close()


# ------------------------------------------------------------------ #
# Bugfix 2: close() really releases the map and its fd
# ------------------------------------------------------------------ #


class TestCloseReleasesResources:
    def test_owner_close_releases_fd(self, tmp_path):
        path = str(tmp_path / "owned.npy")
        shared = SharedArray.create_file(path, np.zeros(1024))
        assert fds_at(path) >= 1
        shared.close()
        assert fds_at(path) == 0
        assert os.path.exists(path)  # persistent unless delete_on_close

    def test_delete_on_close_removes_spill_file(self, tmp_path):
        path = str(tmp_path / "spill.npy")
        shared = SharedArray.create_file(path, np.zeros(16),
                                         delete_on_close=True)
        shared.close()
        assert fds_at(path) == 0
        assert not os.path.exists(path)

    def test_close_is_idempotent_in_mmap_mode(self, tmp_path):
        path = str(tmp_path / "twice.npy")
        shared = SharedArray.create_file(path, np.zeros(4))
        shared.close()
        shared.close()
        assert fds_at(path) == 0

    def test_detach_releases_fd(self, tmp_path):
        path = str(tmp_path / "attached.npy")
        owner = SharedArray.create_file(path, np.arange(32, dtype=np.int64))
        try:
            attach_shared_array(owner.handle)
            with_attach = fds_at(path)
            assert detach_shared_array(path)
            assert fds_at(path) == with_attach - 1
            assert not detach_shared_array(path)  # already gone
        finally:
            owner.close()

    def test_escaped_view_survives_close(self, tmp_path):
        """Views that escaped before close keep reading (GC fallback);
        close must not invalidate live memory out from under them."""
        path = str(tmp_path / "escaped.npy")
        owner = SharedArray.create_file(path, np.arange(5, dtype=np.int64))
        view = owner.array[1:4]
        owner.close()
        np.testing.assert_array_equal(view, [1, 2, 3])

    def test_release_pages_keeps_bytes_readable(self, tmp_path):
        path = str(tmp_path / "advised.npy")
        source = np.arange(4096, dtype=np.int64)
        shared = SharedArray.create_file(path, source)
        try:
            shared.release_pages()
            np.testing.assert_array_equal(shared.array, source)
            np.testing.assert_array_equal(
                np.lib.format.open_memmap(path, mode="r"), source)
        finally:
            shared.close()


# ------------------------------------------------------------------ #
# Bugfix 3: create_file failure closes the map before unlinking
# ------------------------------------------------------------------ #


class TestCreateFileFaultInjection:
    def test_failure_removes_partial_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "partial.npy")

        def explode(self):
            raise OSError("injected flush failure")

        monkeypatch.setattr(np.memmap, "flush", explode)
        with pytest.raises(OSError, match="injected flush"):
            SharedArray.create_file(path, np.zeros(64))
        assert not os.path.exists(path)

    def test_failure_closes_map_before_unlink(self, tmp_path, monkeypatch):
        """The ordering half of the fix: at unlink time no descriptor may
        still reference the partial file (unlinking a mapped file leaks
        the mapping; some platforms refuse outright)."""
        path = str(tmp_path / "ordered.npy")
        real_unlink = os.unlink
        observed = {}

        def checking_unlink(target, *args, **kwargs):
            if os.fspath(target) == path:
                observed["open_fds"] = fds_at(path)
            return real_unlink(target, *args, **kwargs)

        def explode(self):
            raise OSError("injected flush failure")

        monkeypatch.setattr(os, "unlink", checking_unlink)
        monkeypatch.setattr(np.memmap, "flush", explode)
        with pytest.raises(OSError, match="injected flush"):
            SharedArray.create_file(path, np.zeros(64))
        assert observed["open_fds"] == 0
        assert not os.path.exists(path)


# ------------------------------------------------------------------ #
# SharedGroup spill lifecycle
# ------------------------------------------------------------------ #


class TestSharedGroupSpill:
    def test_mmap_group_round_trips_and_cleans_spill_dir(self, tmp_path):
        group = SharedGroup(backing="mmap", spill_dir=str(tmp_path))
        source = np.arange(100, dtype=np.float64)
        handle = group.share(source)
        assert handle.path is not None
        assert handle.path.startswith(str(tmp_path))
        view = attach_shared_array(handle)
        np.testing.assert_array_equal(view, source)
        detach_shared_array(handle.path)
        group.close()
        assert not os.path.exists(os.path.dirname(handle.path))
        # Only the empty spill root the test supplied remains.
        assert os.listdir(str(tmp_path)) == []

    def test_zero_size_share_falls_back_to_shm(self, tmp_path):
        group = SharedGroup(backing="mmap", spill_dir=str(tmp_path))
        try:
            handle = group.share(np.empty(0, dtype=np.int64))
            assert handle.path is None  # shm: empty files cannot be mapped
            view = attach_shared_array(handle)
            assert view.size == 0
        finally:
            detach_shared_array(handle.name)
            group.close()

    def test_empty_buffers_stay_shm_under_mmap_backing(self, tmp_path):
        group = SharedGroup(backing="mmap", spill_dir=str(tmp_path))
        try:
            buf = group.empty((4,), np.int64)
            assert buf.kind == "shm"  # workers write these
        finally:
            group.close()

    def test_shm_group_shares_no_files(self):
        group = SharedGroup(backing="shm")
        try:
            handle = group.share(np.arange(10))
            assert handle.path is None
        finally:
            detach_shared_array(handle.name)
            group.close()


# ------------------------------------------------------------------ #
# Knob resolution
# ------------------------------------------------------------------ #


class TestBackingKnobs:
    def test_resolve_backing(self):
        assert resolve_backing("shm") == "shm"
        assert resolve_backing("mmap") == "mmap"
        with pytest.raises(ValueError, match="backing"):
            resolve_backing("disk")
        with pytest.raises(ValueError, match="backing"):
            SharedGroup(backing="tmpfs")

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKING", raising=False)
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        assert default_backing() == "shm"
        assert default_spill_dir() is None
        monkeypatch.setenv("REPRO_BACKING", "mmap")
        monkeypatch.setenv("REPRO_SPILL_DIR", "/tmp/spill-root")
        assert default_backing() == "mmap"
        assert default_spill_dir() == "/tmp/spill-root"
