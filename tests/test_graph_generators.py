"""Tests for synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    community_graph,
    erdos_renyi,
    multi_labels_from_communities,
    path,
    planted_partition,
    power_law_exponent,
    powerlaw_cluster,
    ring_of_cliques,
    rmat,
    star,
)
from repro.graph.stats import connected_components


class TestBasicGenerators:
    def test_erdos_renyi_edge_count(self):
        g = erdos_renyi(100, 300, seed=1)
        assert g.num_nodes == 100
        assert g.num_edges == 300

    def test_erdos_renyi_caps_at_complete(self):
        g = erdos_renyi(5, 100, seed=1)
        assert g.num_edges == 10  # complete graph on 5 nodes

    def test_barabasi_albert_properties(self):
        g = barabasi_albert(300, attach=3, seed=2)
        assert g.num_nodes == 300
        # Preferential attachment: heavy-tailed degrees.
        assert g.degrees.max() > 4 * g.degrees.mean()

    def test_barabasi_albert_rejects_small_n(self):
        with pytest.raises(ValueError, match="exceed"):
            barabasi_albert(3, attach=3)

    def test_rmat_shape(self):
        g = rmat(scale=8, edge_factor=4, seed=3)
        assert g.num_nodes == 256
        assert g.num_edges > 0

    def test_rmat_determinism(self):
        a = rmat(scale=6, seed=7)
        b = rmat(scale=6, seed=7)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_rmat_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            rmat(scale=4, a=0.8, b=0.3, c=0.3)

    def test_powerlaw_cluster(self):
        g = powerlaw_cluster(200, attach=3, triangle_prob=0.5, seed=4)
        assert g.num_nodes == 200
        assert g.degrees.min() >= 1

    def test_deterministic_structures(self):
        assert ring_of_cliques(4, 5).num_nodes == 20
        assert star(6).num_nodes == 7
        assert star(6).degree(0) == 6
        assert path(9).num_edges == 8


class TestCommunityGraph:
    def test_returns_communities(self):
        g, comm = community_graph(200, 8, within_degree=8.0,
                                  cross_degree=1.0, seed=5)
        assert comm.shape == (200,)
        assert comm.max() < 8

    def test_cross_edge_fraction_controlled(self):
        g, comm = community_graph(300, 10, within_degree=10.0,
                                  cross_degree=1.0, seed=5)
        edges = g.unique_edges()
        cross = np.mean(comm[edges[:, 0]] != comm[edges[:, 1]])
        # Expected ~1/11 ~= 0.09 cross edges.
        assert cross < 0.2

    def test_heavy_tail(self):
        g, _ = community_graph(400, 10, within_degree=10.0,
                               cross_degree=1.0, exponent=2.2, seed=6)
        assert power_law_exponent(g) < 4.0
        assert g.degrees.max() > 3 * g.degrees.mean()

    def test_zero_cross_degree_allowed(self):
        g, comm = community_graph(100, 4, within_degree=6.0,
                                  cross_degree=0.0, seed=7)
        edges = g.unique_edges()
        assert np.all(comm[edges[:, 0]] == comm[edges[:, 1]])


class TestPlantedPartition:
    def test_shapes(self):
        g, comm = planted_partition(120, 6, p_in=0.3, p_out=0.01, seed=8)
        assert g.num_nodes == 120
        assert comm.shape == (120,)

    def test_in_density_exceeds_out(self):
        g, comm = planted_partition(150, 5, p_in=0.4, p_out=0.01, seed=9)
        edges = g.unique_edges()
        same = comm[edges[:, 0]] == comm[edges[:, 1]]
        assert same.mean() > 0.5


class TestLabels:
    def test_every_node_labelled(self):
        comm = np.array([0, 0, 1, 1, 2])
        labels = multi_labels_from_communities(comm, num_labels=6, seed=10)
        assert labels.shape == (5, 6)
        assert labels.any(axis=1).all()

    def test_community_members_share_labels(self):
        comm = np.repeat(np.arange(4), 25)
        labels = multi_labels_from_communities(comm, num_labels=12,
                                               noise=0.0, seed=11)
        for c in range(4):
            rows = labels[comm == c]
            assert (rows == rows[0]).all()

    def test_deterministic(self):
        comm = np.repeat(np.arange(3), 10)
        a = multi_labels_from_communities(comm, 8, seed=12)
        b = multi_labels_from_communities(comm, 8, seed=12)
        np.testing.assert_array_equal(a, b)


class TestConnectivity:
    def test_ring_of_cliques_connected(self):
        g = ring_of_cliques(6, 4)
        assert len(np.unique(connected_components(g))) == 1

    def test_powerlaw_cluster_connected(self):
        g = powerlaw_cluster(150, attach=3, triangle_prob=0.3, seed=13)
        assert len(np.unique(connected_components(g))) == 1
