"""Tests for the CSR graph structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph

edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=15)),
    min_size=0, max_size=60,
)


class TestConstruction:
    def test_triangle(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.num_stored_edges == 6  # undirected: both arcs

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_nodes=5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_merged(self):
        g = CSRGraph.from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_duplicate_weights_summed(self):
        g = CSRGraph.from_edges([(0, 1), (0, 1)], weights=[2.0, 3.0],
                                directed=True)
        assert g.edge_weight(0, 1) == pytest.approx(5.0)

    def test_duplicate_weights_mirror_arcs_byte_equal(self):
        # Duplicates listed in both directions must sum in one canonical
        # order, so the two stored arcs carry bit-identical weights.
        w = [0.1, 0.2, 0.30000000000000004, 1.7, 2.9]
        g = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1), (1, 0), (0, 1)],
                                weights=w)
        assert g.edge_weight(0, 1) == g.edge_weight(1, 0)  # exact, not approx

    def test_num_nodes_too_small_rejected(self):
        with pytest.raises(ValueError, match="num_nodes"):
            CSRGraph.from_edges([(0, 5)], num_nodes=3)

    def test_all_self_loops_keeps_nodes(self):
        # Node 5 exists even though its only mention is a dropped loop.
        g = CSRGraph.from_edges([(5, 5)])
        assert g.num_nodes == 6
        assert g.num_edges == 0
        assert g.degree(5) == 0

    def test_self_loop_ids_validated_against_num_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            CSRGraph.from_edges([(5, 5)], num_nodes=3)

    def test_isolated_node_from_loop_plus_edges(self):
        g = CSRGraph.from_edges([(0, 1), (7, 7)])
        assert g.num_nodes == 8
        assert g.degree(7) == 0
        assert g.has_edge(0, 1)

    def test_empty_weighted_graph_weight_dtype(self):
        g = CSRGraph.from_edges([], num_nodes=4, weights=[])
        assert g.is_weighted
        assert g.weights.dtype == np.float64

    def test_all_self_loops_weighted_dtype(self):
        g = CSRGraph.from_edges([(2, 2)], weights=[3.0])
        assert g.num_nodes == 3
        assert g.weights is not None and g.weights.dtype == np.float64

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CSRGraph.from_edges([(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            CSRGraph.from_edges(np.array([[1, 2, 3]]))

    def test_weights_length_mismatch(self):
        with pytest.raises(ValueError, match="weights length"):
            CSRGraph.from_edges([(0, 1)], weights=[1.0, 2.0])

    @given(edge_lists)
    @settings(max_examples=150, deadline=None)
    def test_invariants(self, edges):
        g = CSRGraph.from_edges(edges, num_nodes=16)
        # indptr monotone, ends at len(indices)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.indices.size
        assert np.all(np.diff(g.indptr) >= 0)
        # adjacency sorted per node, no self loops, symmetric
        for u in range(g.num_nodes):
            nbrs = g.neighbors(u)
            assert np.all(np.diff(nbrs) > 0)  # sorted & unique
            assert u not in nbrs
            for v in nbrs:
                assert g.has_edge(int(v), u)  # symmetry


class TestAccessors:
    def test_neighbors_sorted(self, small_graph):
        for u in range(small_graph.num_nodes):
            nbrs = small_graph.neighbors(u)
            assert np.all(np.diff(nbrs) > 0)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)
        assert not triangle.has_edge(0, 0)

    def test_edge_weight_unweighted(self, triangle):
        assert triangle.edge_weight(0, 1) == 1.0

    def test_edge_weight_missing(self, triangle):
        with pytest.raises(KeyError):
            triangle.edge_weight(0, 3 - 3)  # self pair absent

    def test_edge_weight_weighted(self, weighted_triangle):
        assert weighted_triangle.edge_weight(0, 1) == pytest.approx(1.0)
        assert weighted_triangle.edge_weight(2, 0) == pytest.approx(3.0)

    def test_common_neighbors(self, small_graph):
        # Nodes 0 and 1 are in the same 8-clique: share the other 6 members.
        assert small_graph.common_neighbor_count(0, 1) >= 6

    def test_degrees_match_neighbors(self, medium_graph):
        for u in range(0, medium_graph.num_nodes, 17):
            assert medium_graph.degree(u) == medium_graph.neighbors(u).size


class TestTransformations:
    def test_edge_array_roundtrip(self, small_graph):
        arcs = small_graph.edge_array()
        rebuilt = CSRGraph.from_edges(
            arcs[arcs[:, 0] < arcs[:, 1]], num_nodes=small_graph.num_nodes
        )
        np.testing.assert_array_equal(rebuilt.indptr, small_graph.indptr)
        np.testing.assert_array_equal(rebuilt.indices, small_graph.indices)

    def test_unique_edges_half_of_arcs(self, small_graph):
        assert len(small_graph.unique_edges()) == small_graph.num_edges

    def test_with_random_weights_symmetric(self, small_graph, rng):
        wg = small_graph.with_random_weights(rng)
        for u, v in wg.unique_edges()[:20]:
            assert wg.edge_weight(int(u), int(v)) == pytest.approx(
                wg.edge_weight(int(v), int(u))
            )
            assert 1.0 <= wg.edge_weight(int(u), int(v)) < 5.0

    def test_as_directed_preserves_arcs(self, triangle):
        d = triangle.as_directed()
        assert d.directed
        assert d.num_edges == 6  # each stored arc counts

    def test_as_undirected_roundtrip(self):
        d = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        u = d.as_undirected()
        assert not u.directed
        assert u.has_edge(1, 0)

    def test_subgraph_without_edges(self, triangle):
        g = triangle.subgraph_without_edges([(0, 1)])
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.has_edge(1, 2)
        assert g.num_edges == 2

    def test_memory_bytes_positive(self, small_graph):
        assert small_graph.memory_bytes() > 0
