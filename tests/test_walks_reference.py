"""Oracle-vs-implementation tests: samplers must match the exact
distributions computed by repro.walks.reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, ring_of_cliques, star
from repro.walks import Node2VecKernel, SecondOrderAliasSampler
from repro.walks.reference import (
    expected_walk_entropy,
    first_order_stationary_distribution,
    huge_acceptance_matrix,
    huge_effective_transition_matrix,
    node2vec_transition_distribution,
    stationary_distribution_power_iteration,
)


class TestNode2VecOracle:
    def test_sums_to_one(self, medium_graph):
        current = 0
        previous = int(medium_graph.neighbors(0)[0])
        dist = node2vec_transition_distribution(medium_graph, previous,
                                                current, p=0.5, q=2.0)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_first_step_is_uniform(self, triangle):
        dist = node2vec_transition_distribution(triangle, -1, 0)
        assert dist == {1: pytest.approx(0.5), 2: pytest.approx(0.5)}

    def test_p_controls_return_mass(self):
        g = ring_of_cliques(2, 5)
        low_p = node2vec_transition_distribution(g, 0, 1, p=0.1, q=1.0)
        high_p = node2vec_transition_distribution(g, 0, 1, p=10.0, q=1.0)
        assert low_p[0] > high_p[0]

    def test_dead_end_raises(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(ValueError, match="walkable"):
            node2vec_transition_distribution(g, 0, 2)

    def test_rejection_kernel_matches_oracle(self, rng):
        g = ring_of_cliques(3, 4)
        p, q = 0.5, 2.0
        kernel = Node2VecKernel(g, p=p, q=q)
        previous, current = 0, 1
        oracle = node2vec_transition_distribution(g, previous, current,
                                                  p=p, q=q)
        draws = []
        while len(draws) < 4000:
            out = kernel.step(current, previous, rng)
            if out is not None:
                draws.append(int(out))
        draws = np.array(draws)
        for v, prob in oracle.items():
            assert np.mean(draws == v) == pytest.approx(prob, abs=0.04)

    def test_alias_sampler_matches_oracle(self, rng):
        g = ring_of_cliques(3, 4)
        p, q = 4.0, 0.25
        sampler = SecondOrderAliasSampler(g, p=p, q=q)
        previous, current = 0, 1
        oracle = node2vec_transition_distribution(g, previous, current,
                                                  p=p, q=q)
        draws = np.array([sampler.sample_step(current, previous, rng)
                          for _ in range(4000)])
        for v, prob in oracle.items():
            assert np.mean(draws == v) == pytest.approx(prob, abs=0.04)


class TestHuGEOracles:
    def test_acceptance_matrix_bounds(self, medium_graph):
        accept = huge_acceptance_matrix(medium_graph)
        assert accept.min() >= 0.0
        assert accept.max() <= 1.0
        # Non-zero exactly on arcs.
        arcs = medium_graph.edge_array()
        assert np.all(accept[arcs[:, 0], arcs[:, 1]] > 0)

    def test_effective_transition_rows_stochastic(self, medium_graph):
        t = huge_effective_transition_matrix(medium_graph)
        sums = t.sum(axis=1)
        walkable = medium_graph.degrees > 0
        assert np.allclose(sums[walkable], 1.0)
        assert np.allclose(sums[~walkable], 0.0)

    def test_huge_kernel_matches_effective_matrix(self, rng):
        g = ring_of_cliques(2, 6)
        from repro.walks import HuGEKernel

        kernel = HuGEKernel(g)
        t = huge_effective_transition_matrix(g)
        u = 0
        draws = []
        while len(draws) < 4000:
            out = kernel.step(u, -1, rng)
            if out is not None:
                draws.append(int(out))
        draws = np.array(draws)
        for v in np.unique(draws):
            assert np.mean(draws == v) == pytest.approx(t[u, v], abs=0.04)


class TestStationaryDistributions:
    def test_closed_form_degree_proportional(self, medium_graph):
        pi = first_order_stationary_distribution(medium_graph)
        assert pi.sum() == pytest.approx(1.0)
        deg = medium_graph.degrees
        assert pi[np.argmax(deg)] == pytest.approx(deg.max() / deg.sum())

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            first_order_stationary_distribution(g)

    def test_power_iteration_agrees_with_closed_form(self, small_graph):
        from repro.walks import empirical_transition_matrix

        # Build the exact uniform-walk transition matrix.
        n = small_graph.num_nodes
        t = np.zeros((n, n))
        for u in range(n):
            nbrs = small_graph.neighbors(u)
            if nbrs.size:
                t[u, nbrs] = 1.0 / nbrs.size
        pi = stationary_distribution_power_iteration(t)
        closed = first_order_stationary_distribution(small_graph)
        assert np.allclose(pi, closed, atol=1e-8)

    def test_power_iteration_handles_dead_ends(self):
        t = np.array([[0.0, 1.0], [0.0, 0.0]])  # 1 is absorbing
        pi = stationary_distribution_power_iteration(t)
        assert pi[1] == pytest.approx(1.0)

    def test_power_iteration_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            stationary_distribution_power_iteration(np.zeros((2, 3)))

    def test_corpus_occupancy_converges_to_stationary(self, medium_graph):
        """Long uniform walks visit nodes ∝ degree (Eq. 6's premise)."""
        from repro.walks import vectorized_routine_corpus

        corpus = vectorized_routine_corpus(medium_graph, walk_length=80,
                                           walks_per_node=10, seed=0)
        occupancy = corpus.occurrences / corpus.total_tokens
        pi = first_order_stationary_distribution(medium_graph)
        # L1 distance small; start-node bias keeps it from vanishing.
        assert np.abs(occupancy - pi).sum() < 0.15


class TestExpectedWalkEntropy:
    def test_uniform_occupancy(self):
        assert expected_walk_entropy(np.ones(8)) == pytest.approx(3.0)

    def test_point_mass(self):
        assert expected_walk_entropy(np.array([0, 5, 0])) == pytest.approx(0.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError, match="positive mass"):
            expected_walk_entropy(np.zeros(3))

    def test_star_walk_entropy_below_uniform(self, star_graph):
        """Walks on a star revisit the hub: entropy far below log2(n)."""
        from repro.walks import vectorized_routine_corpus

        corpus = vectorized_routine_corpus(star_graph, walk_length=40,
                                           walks_per_node=3, seed=0)
        h = expected_walk_entropy(corpus.occurrences)
        assert h < np.log2(star_graph.num_nodes) - 0.5
