"""Tests for evaluation metrics: AUC, F1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import auc_score, f1_binary, macro_f1, micro_f1

scores = st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                  min_size=1, max_size=30)


def brute_force_auc(pos, neg):
    """P(pos > neg) + 0.5 P(pos == neg) by enumeration."""
    wins = ties = 0
    for p in pos:
        for n in neg:
            if p > n:
                wins += 1
            elif p == n:
                ties += 1
    return (wins + 0.5 * ties) / (len(pos) * len(neg))


class TestAUC:
    def test_perfect_separation(self):
        assert auc_score([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_inverted(self):
        assert auc_score([0.0], [1.0]) == 0.0

    def test_random_overlap(self):
        assert auc_score([1.0], [1.0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            auc_score([], [1.0])

    @given(scores, scores)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, pos, neg):
        assert auc_score(np.array(pos), np.array(neg)) == pytest.approx(
            brute_force_auc(pos, neg), abs=1e-9
        )

    def test_tie_handling_mid_rank(self):
        # pos = [1, 0], neg = [1]: one tie, one loss -> (0 + .5 + 0)/2.
        assert auc_score([1.0, 0.0], [1.0]) == pytest.approx(0.25)


class TestF1:
    def test_perfect(self):
        t = np.array([[True, False], [False, True]])
        assert micro_f1(t, t) == 1.0
        assert macro_f1(t, t) == 1.0

    def test_all_wrong(self):
        t = np.array([[True, False]])
        p = np.array([[False, True]])
        assert micro_f1(t, p) == 0.0
        assert macro_f1(t, p) == 0.0

    def test_binary_known_value(self):
        # tp=1, fp=1, fn=1 -> F1 = 2/4.
        true = np.array([True, True, False])
        pred = np.array([True, False, True])
        assert f1_binary(true, pred) == pytest.approx(0.5)

    def test_micro_pools_macro_averages(self):
        true = np.array([[True, False],
                         [True, False],
                         [True, True]])
        pred = np.array([[True, False],
                         [False, False],
                         [True, True]])
        # Label 0: tp=2, fn=1 -> F1 = 4/5.  Label 1: perfect -> 1.
        assert macro_f1(true, pred) == pytest.approx((0.8 + 1.0) / 2)
        # Pooled: tp=3, fn=1, fp=0 -> 6/7.
        assert micro_f1(true, pred) == pytest.approx(6 / 7)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            micro_f1(np.zeros((2, 2), dtype=bool), np.zeros((2, 3), dtype=bool))

    def test_degenerate_empty_predictions(self):
        t = np.zeros((3, 2), dtype=bool)
        assert micro_f1(t, t) == 0.0  # no positives anywhere
