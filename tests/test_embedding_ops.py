"""The array-ops seam: dup-row determinism, dtype guards, eager gates.

Tier-1 coverage for :mod:`repro.embedding.ops` that runs without torch:

* the eager ``TrainConfig`` validation of the optional torch backend --
  a missing install must fail at config-resolve time with the pip hint,
  for every executor (the process/pipeline workers reconstruct learners
  from a config the *parent* already validated);
* :func:`sum_duplicate_rows` / :func:`merge_deltas` accumulation-order
  contract -- repeated destination rows reduce left-to-right in input
  order, byte-identical to a sequential reference loop (property-tested);
* the ``NumpyOps`` float64 tier (the reference the torch-CPU tier is
  pinned against) and the identity fast path of the default float32 ops;
* :func:`repro.embedding.schedules.progress64` -- the lr schedule input
  must be dtype-independent no matter who counted the tokens.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.model import TrainConfig
from repro.embedding.ops import (
    NUMPY_OPS,
    NumpyOps,
    TORCH_INSTALL_HINT,
    resolve_ops,
    sum_duplicate_rows,
    torch_available,
)
from repro.embedding.schedules import SCHEDULES, make_schedule, progress64
from repro.embedding.vectorized import merge_deltas

needs_missing_torch = pytest.mark.skipif(
    torch_available(),
    reason="torch is installed; the missing-dependency gate cannot fire",
)


class TestEagerBackendValidation:
    """Satellite 1: backend knobs fail at config-resolve time."""

    @needs_missing_torch
    def test_torch_backend_raises_install_hint(self):
        with pytest.raises(ValueError, match="pip install torch"):
            TrainConfig(backend="torch")

    @needs_missing_torch
    @pytest.mark.parametrize("execution", ["serial", "process", "pipeline"])
    def test_gate_fires_before_any_worker(self, execution):
        """Process/pipeline runs fail in the parent, not inside a fork.

        The executors pickle an already-constructed config to workers, so
        validation at ``__post_init__`` is the last (and only) gate that
        runs in the parent process -- it must cover every executor.
        """
        with pytest.raises(ValueError, match="pip install torch"):
            TrainConfig(backend="torch", execution=execution, workers=2)

    def test_install_hint_is_actionable(self):
        assert "pip install torch" in TORCH_INSTALL_HINT

    def test_backend_options_list_torch(self):
        with pytest.raises(ValueError, match="torch"):
            TrainConfig(backend="gpu")

    @pytest.mark.parametrize("field,bad", [("torch_device", "gpu"),
                                           ("torch_dtype", "half")])
    def test_invalid_torch_knobs(self, field, bad):
        with pytest.raises(ValueError, match=bad):
            TrainConfig(**{field: bad})

    def test_torch_requires_shared_protocol(self):
        """Protocol check fires first, so it works with torch absent."""
        with pytest.raises(ValueError, match="shared"):
            TrainConfig(backend="torch", rng_protocol="cluster")

    def test_resolve_ops_defaults_to_numpy_singleton(self):
        for cfg in (TrainConfig(), TrainConfig(backend="vectorized"),
                    TrainConfig(backend="loop"), None):
            assert resolve_ops(cfg) is NUMPY_OPS


def reference_merge(rows, deltas):
    """Sequential left-to-right accumulation -- the pinned order."""
    acc = {}
    for row, delta in zip(rows.tolist(), deltas):
        if row in acc:
            acc[row] = acc[row] + delta
        else:
            acc[row] = delta.copy()
    urows = np.array(sorted(acc), dtype=rows.dtype)
    merged = np.stack([acc[int(r)] for r in urows]) if urows.size else \
        np.empty((0, deltas.shape[1]), dtype=deltas.dtype)
    return urows, merged


def deltas_for(rows, dim=5):
    """Deterministic float32 deltas whose sum is order-sensitive."""
    rng = np.random.default_rng(rows.size * 31 + 7)
    scale = 10.0 ** rng.integers(-3, 4, size=(rows.size, 1))
    return (rng.standard_normal((rows.size, dim)) * scale).astype(np.float32)


class TestDuplicateRowAccumulation:
    """Satellite 2: repeated rows reconcile in pinned input order."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    def test_matches_sequential_reference(self, row_list):
        rows = np.asarray(row_list, dtype=np.int64)
        deltas = deltas_for(rows)
        urows, merged = sum_duplicate_rows(rows, deltas)
        ref_rows, ref_merged = reference_merge(rows, deltas)
        np.testing.assert_array_equal(urows, ref_rows)
        # Mathematically the sequential sum; bitwise only the association
        # differs (reduceat's, pinned) -- so compare at float32 ulp scale.
        np.testing.assert_allclose(merged, ref_merged, rtol=1e-5,
                                   atol=1e-5)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    def test_row_result_depends_on_own_subsequence_only(self, row_list):
        """The bitwise contract: a row's merge is a pure function of its
        own delta subsequence in input order, however other rows
        interleave -- reduce each row's subsequence alone and the full
        interleaved input must produce the identical bytes.
        """
        rows = np.asarray(row_list, dtype=np.int64)
        deltas = deltas_for(rows)
        urows, merged = sum_duplicate_rows(rows, deltas)
        for i, row in enumerate(urows.tolist()):
            mask = rows == row
            alone_rows, alone = sum_duplicate_rows(rows[mask], deltas[mask])
            assert alone_rows.tolist() == [row]
            np.testing.assert_array_equal(merged[i], alone[0])

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    def test_merge_deltas_applies_pinned_merge(self, row_list):
        rows = np.asarray(row_list, dtype=np.int64)
        deltas = deltas_for(rows)
        phi_fast = np.zeros((8, deltas.shape[1]), dtype=np.float32)
        merge_deltas(phi_fast, rows, deltas)
        phi_ref = np.zeros_like(phi_fast)
        ref_rows, ref_merged = sum_duplicate_rows(rows, deltas)
        phi_ref[ref_rows] += ref_merged
        np.testing.assert_array_equal(phi_fast, phi_ref)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    def test_index_add_same_contract(self, row_list):
        """``ops.index_add`` follows the identical tie semantics."""
        rows = np.asarray(row_list, dtype=np.int64)
        deltas = deltas_for(rows)
        dst = np.zeros((8, deltas.shape[1]), dtype=np.float32)
        NUMPY_OPS.index_add(dst, rows, deltas)
        ref = np.zeros_like(dst)
        merge_deltas(ref, rows, deltas)
        np.testing.assert_array_equal(dst, ref)

    def test_empty_rows_noop(self):
        phi = np.ones((3, 2), dtype=np.float32)
        merge_deltas(phi, np.empty(0, dtype=np.int64),
                     np.empty((0, 2), dtype=np.float32))
        np.testing.assert_array_equal(phi, np.ones((3, 2), np.float32))

    def test_single_occurrence_rows_copy_through(self):
        rows = np.array([4, 1, 6], dtype=np.int64)
        deltas = np.arange(9, dtype=np.float32).reshape(3, 3)
        urows, merged = sum_duplicate_rows(rows, deltas)
        np.testing.assert_array_equal(urows, [1, 4, 6])
        np.testing.assert_array_equal(merged, deltas[[1, 0, 2]])


class TestNumpyOpsTiers:
    """The f32 default is identity-cheap; the f64 tier is a real cast."""

    def test_default_upload_is_identity(self):
        host = np.zeros((4, 3), dtype=np.float32)
        assert NUMPY_OPS.upload(host) is host
        assert NUMPY_OPS.download(host) is host

    def test_f64_tier_round_trip(self):
        ops = NumpyOps(dtype=np.float64)
        host = np.arange(6, dtype=np.float32).reshape(2, 3)
        dev = ops.upload(host)
        assert dev.dtype == np.float64
        assert dev is not host
        np.testing.assert_array_equal(ops.download(dev), host)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sigmoid_matches_closed_form(self, dtype):
        ops = NumpyOps(dtype=dtype)
        x = np.linspace(-12, 12, 97, dtype=dtype).reshape(1, 97)
        got = ops.sigmoid(ops.upload(x))
        want = 1.0 / (1.0 + np.exp(-np.clip(x.astype(np.float64), -6, 6)))
        np.testing.assert_allclose(got, want, atol=1e-6)
        inplace = ops.upload(x).copy()
        ops.sigmoid_(inplace)
        np.testing.assert_array_equal(inplace, got)

    def test_matmul_family_shapes(self):
        ops = NumpyOps(dtype=np.float64)
        a = ops.upload(np.random.default_rng(0).standard_normal((4, 3)))
        b = ops.upload(np.random.default_rng(1).standard_normal((5, 3)))
        np.testing.assert_allclose(ops.matmul_nt(a, b), a @ b.T)
        np.testing.assert_allclose(ops.matmul_tn(a[:, :2].copy(), a),
                                   a[:, :2].T @ a)


class TestProgress64:
    """Satellite 3: lr progress is float64 whatever counted the tokens."""

    @pytest.mark.parametrize("cast", [int, np.int32, np.int64,
                                      np.float32, np.float64])
    def test_dtype_independent(self, cast):
        assert progress64(cast(12345), cast(54321)) \
            == progress64(12345, 54321)
        assert isinstance(progress64(cast(3), cast(7)), float)

    def test_float32_would_have_drifted(self):
        """The guard matters: a float32 ratio differs at these counts."""
        done, total = 11184811, 33554467
        exact = progress64(done, total)
        drifted = float(np.float32(done) / np.float32(total))
        assert exact != drifted
        assert abs(exact - done / total) == 0.0

    def test_zero_total_guard(self):
        assert progress64(0, 0) == 0.0
        assert progress64(5, 0) == 5.0  # max(1, 0) == 1 floor

    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_schedules_see_identical_progress(self, name):
        schedule = make_schedule(name, lr=0.05)
        for done in (0, 1, 999, 54321):
            assert schedule(progress64(np.float32(done), np.int32(54321))) \
                == schedule(progress64(done, 54321))
