"""Tests for k-means, NMI, modularity and the clustering harness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, community_graph, ring_of_cliques
from repro.tasks import (
    evaluate_clustering,
    kmeans,
    modularity,
    normalized_mutual_information,
)


def _blobs(k: int, per_cluster: int, spread: float = 0.05,
           seed: int = 0) -> tuple:
    """Well-separated Gaussian blobs with ground-truth labels."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(k, 4))
    points = np.concatenate([
        centers[c] + spread * rng.normal(size=(per_cluster, 4))
        for c in range(k)
    ])
    labels = np.repeat(np.arange(k), per_cluster)
    return points, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, truth = _blobs(3, 30)
        labels, centroids, inertia = kmeans(points, 3, seed=1)
        assert normalized_mutual_information(labels, truth) > 0.95
        assert centroids.shape == (3, 4)
        assert inertia < 10.0

    def test_k_equals_n(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        labels, _, inertia = kmeans(points, 4, seed=0)
        assert len(set(labels.tolist())) == 4
        assert inertia == pytest.approx(0.0)

    def test_k1_single_cluster(self):
        points, _ = _blobs(2, 10)
        labels, centroids, _ = kmeans(points, 1, seed=0)
        assert np.all(labels == 0)
        assert np.allclose(centroids[0], points.mean(axis=0))

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            kmeans(np.zeros((3, 2)), 4)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            kmeans(np.zeros(5), 2)

    def test_deterministic_given_seed(self):
        points, _ = _blobs(3, 20, seed=4)
        a = kmeans(points, 3, seed=9)[0]
        b = kmeans(points, 3, seed=9)[0]
        assert np.array_equal(a, b)

    def test_duplicate_points(self):
        points = np.ones((10, 3))
        labels, _, inertia = kmeans(points, 2, seed=0)
        assert inertia == pytest.approx(0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_inertia_matches_labels(self, k, seed):
        """Returned inertia equals the sum of squared assigned distances."""
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(25, 3))
        labels, centroids, inertia = kmeans(points, k, seed=seed)
        recomputed = float(np.sum((points - centroids[labels]) ** 2))
        assert inertia == pytest.approx(recomputed, rel=1e-9, abs=1e-9)


class TestNMI:
    def test_identical_is_one(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 7, 7])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=4000)
        b = rng.integers(0, 4, size=4000)
        assert normalized_mutual_information(a, b) < 0.02

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 5, size=100)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a))

    def test_single_cluster_degenerate(self):
        ones = np.zeros(10)
        varied = np.arange(10)
        assert normalized_mutual_information(ones, ones) == 1.0
        assert normalized_mutual_information(ones, varied) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shape"):
            normalized_mutual_information(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            normalized_mutual_information(np.empty(0), np.empty(0))

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=60),
    )
    def test_property_bounded(self, seed, n):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 5, size=n)
        b = rng.integers(0, 5, size=n)
        nmi = normalized_mutual_information(a, b)
        assert 0.0 <= nmi <= 1.0


class TestModularity:
    def test_perfect_communities(self):
        # 3 disconnected triangles, labelled by triangle: Q = 1 - 1/3.
        edges = []
        for c in range(3):
            base = 3 * c
            edges += [(base, base + 1), (base + 1, base + 2), (base, base + 2)]
        g = CSRGraph.from_edges(edges)
        labels = np.repeat(np.arange(3), 3)
        assert modularity(g, labels) == pytest.approx(2.0 / 3.0)

    def test_single_cluster_zero(self, small_graph):
        labels = np.zeros(small_graph.num_nodes)
        assert modularity(small_graph, labels) == pytest.approx(0.0)

    def test_ring_of_cliques_clique_labels_high(self):
        g = ring_of_cliques(5, 6)
        labels = np.repeat(np.arange(5), 6)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 5, size=g.num_nodes)
        assert modularity(g, labels) > 0.6
        assert modularity(g, labels) > modularity(g, random_labels) + 0.3

    def test_label_size_mismatch(self, triangle):
        with pytest.raises(ValueError, match="every node"):
            modularity(triangle, np.zeros(2))

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            modularity(g, np.zeros(2))

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_nodes=4)
        assert modularity(g, np.zeros(4)) == 0.0


class TestEvaluateClustering:
    def test_structured_embeddings_recover_communities(self):
        graph, comm = community_graph(120, 4, within_degree=8.0,
                                      cross_degree=0.3, seed=5)
        # Idealised embedding: one-hot community membership plus noise.
        rng = np.random.default_rng(5)
        emb = np.eye(4)[comm] + 0.05 * rng.normal(size=(120, 4))
        report = evaluate_clustering(graph, emb, k=4, ground_truth=comm,
                                     seed=0)
        assert report.nmi > 0.9
        assert report.modularity > 0.3
        assert report.labels.shape == (120,)

    def test_without_ground_truth(self, small_graph, rng):
        emb = rng.normal(size=(small_graph.num_nodes, 8))
        report = evaluate_clustering(small_graph, emb, k=5, seed=0)
        assert report.nmi is None
        assert -0.5 <= report.modularity < 1.0

    def test_embedding_size_mismatch(self, triangle):
        with pytest.raises(ValueError, match="every node"):
            evaluate_clustering(triangle, np.zeros((2, 4)), k=2)
