"""numpy ↔ torch byte-parity for the trainer's array-ops seam.

Skips wholesale when the optional torch dependency is absent (tier-1
stays torch-free; CI's ``torch-backend`` job runs this file for real).

The torch-CPU tier is not "approximately" the numpy backend -- it *is*
the numpy arithmetic: reduction and transcendental primitives route
through zero-copy ``tensor.numpy()`` views into the very BLAS/libm calls
``NumpyOps`` makes, and exact-IEEE elementwise work stays on tensors.
So the contract here is byte equality, not a tolerance:

* ``torch_dtype="float32"`` on CPU  ≡  the default numpy backend, for
  every batched learner, at 1/2/4 machines, including negative draws,
  duplicate-row delta reconciliation, the process executor, and the
  full ``embed_graph`` pipeline;
* ``torch_dtype="float64"`` on CPU  ≡  ``NumpyOps(float64)``, the
  reference the parity tier is pinned against.

CUDA (when present) is the quality tier instead: float32 kernels with
their own rounding, gated on the golden AUC band -- see
``benchmarks/bench_table9_gpu.py --backend torch`` for the measured
Table-9-style comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import embed_graph
from repro.embedding import (
    VECTORIZED_LEARNERS,
    DistributedTrainer,
    EmbeddingModel,
    NegativeSampler,
    TrainConfig,
    Vocabulary,
)
from repro.embedding.ops import NUMPY_OPS, NumpyOps, TorchOps, resolve_ops
from repro.graph import load, powerlaw_cluster
from repro.runtime import Cluster
from repro.tasks import auc_from_split, split_edges
from repro.utils.rng import CounterStream
from repro.walks import Corpus

PARITY_LEARNERS = sorted(VECTORIZED_LEARNERS)


def make_corpus(num_nodes=40, num_walks=30, seed=3, min_len=1, max_len=18):
    rng = np.random.default_rng(seed)
    corpus = Corpus(num_nodes)
    for _ in range(num_walks):
        corpus.add_walk(rng.integers(0, num_nodes,
                                     size=rng.integers(min_len, max_len)))
    return corpus


def train_embeddings(corpus, machines=2, learner="dsgl", **overrides):
    assignment = np.zeros(corpus.occurrences.size, dtype=np.int64)
    cluster = Cluster(machines, assignment, seed=0)
    cfg = TrainConfig(dim=16, window=4, negatives=3, epochs=2, **overrides)
    trainer = DistributedTrainer(corpus, cluster, cfg, learner=learner)
    return trainer.train()


def learner_pass(learner, ops, dtype, seed=1):
    """One train_walks pass with explicit ops; returns final matrices."""
    corpus = make_corpus()
    vocab = Vocabulary.from_corpus(corpus)
    cfg = TrainConfig(dim=16, window=3, negatives=4, multi_windows=2)
    model = EmbeddingModel(vocab, cfg.dim, seed=seed)
    inst = VECTORIZED_LEARNERS[learner](
        model, NegativeSampler(vocab), cfg, np.random.default_rng(0),
        neg_stream=CounterStream(12345), ops=ops)
    inst.train_walks(corpus.walks, lr=0.05)
    return model.phi_in.copy(), model.phi_out.copy()


class TestConfigResolution:
    def test_resolve_ops_returns_torch(self):
        cfg = TrainConfig(backend="torch", torch_device="cpu")
        ops = resolve_ops(cfg)
        assert isinstance(ops, TorchOps)
        assert ops.device == "cpu"
        assert ops.dtype == np.dtype(np.float64)  # auto: f64 on CPU

    def test_auto_dtype_is_float64_on_cpu(self):
        cfg = TrainConfig(backend="torch", torch_device="cpu")
        assert cfg.resolved_torch_dtype() == "float64"

    def test_cuda_rejects_forked_executors(self):
        with pytest.raises(ValueError, match="serial"):
            TrainConfig(backend="torch", torch_device="cuda",
                        execution="process", workers=2)

    def test_cuda_without_device_raises_at_ops(self):
        if torch.cuda.is_available():
            pytest.skip("CUDA present; the unavailability path can't fire")
        with pytest.raises(RuntimeError, match="CUDA"):
            TorchOps(device="cuda")


class TestLearnerByteParity:
    """Learner-level: same model, sampler, stream -- only ops differ."""

    @pytest.mark.parametrize("learner", PARITY_LEARNERS)
    def test_torch_cpu_f32_equals_default_numpy(self, learner):
        ref_in, ref_out = learner_pass(learner, NUMPY_OPS, np.float32)
        got_in, got_out = learner_pass(
            learner, TorchOps(device="cpu", dtype=np.float32), np.float32)
        np.testing.assert_array_equal(got_in, ref_in)
        np.testing.assert_array_equal(got_out, ref_out)

    @pytest.mark.parametrize("learner", PARITY_LEARNERS)
    def test_torch_cpu_f64_equals_numpy_f64(self, learner):
        ref_in, ref_out = learner_pass(
            learner, NumpyOps(dtype=np.float64), np.float64)
        got_in, got_out = learner_pass(
            learner, TorchOps(device="cpu", dtype=np.float64), np.float64)
        np.testing.assert_array_equal(got_in, ref_in)
        np.testing.assert_array_equal(got_out, ref_out)


class TestTrainerByteParity:
    """Trainer-level: the full sync/reconciliation machinery rides along."""

    @pytest.mark.parametrize("learner", PARITY_LEARNERS)
    @pytest.mark.parametrize("machines", [1, 2, 4])
    def test_torch_backend_equals_vectorized(self, learner, machines):
        corpus = make_corpus(seed=11)
        ref = train_embeddings(corpus, machines=machines, learner=learner,
                               backend="vectorized")
        got = train_embeddings(corpus, machines=machines, learner=learner,
                               backend="torch", torch_device="cpu",
                               torch_dtype="float32")
        np.testing.assert_array_equal(got, ref)

    def test_identical_negative_draws(self):
        """The torch backend consumes the very same counter draws."""
        corpus = make_corpus(seed=5)
        vocab = Vocabulary.from_corpus(corpus)

        class RecordingSampler(NegativeSampler):
            def __init__(self, vocab):
                super().__init__(vocab)
                self.drawn = []

            def sample_rows_stream(self, count, stream):
                rows = super().sample_rows_stream(count, stream)
                self.drawn.append(rows)
                return rows

        cfg = TrainConfig(dim=8, window=3, negatives=3)
        draws = {}
        for kind, ops in (("numpy", NUMPY_OPS),
                          ("torch", TorchOps(device="cpu",
                                             dtype=np.float32))):
            sampler = RecordingSampler(vocab)
            model = EmbeddingModel(vocab, cfg.dim, seed=1)
            inst = VECTORIZED_LEARNERS["dsgl"](
                model, sampler, cfg, np.random.default_rng(0),
                neg_stream=CounterStream(777), ops=ops)
            inst.train_walks(corpus.walks, lr=0.05)
            draws[kind] = np.concatenate([d.reshape(-1)
                                          for d in sampler.drawn])
        np.testing.assert_array_equal(draws["torch"], draws["numpy"])

    def test_process_executor_parity(self):
        """CPU torch composes with the process executor byte-for-byte."""
        corpus = make_corpus(seed=13)
        ref = train_embeddings(corpus, learner="dsgl",
                               backend="torch", torch_device="cpu",
                               torch_dtype="float32")
        got = train_embeddings(corpus, learner="dsgl",
                               backend="torch", torch_device="cpu",
                               torch_dtype="float32",
                               execution="process", workers=2)
        np.testing.assert_array_equal(got, ref)


class TestOpsByteParity:
    """Primitive-level: the seam's kernels, driven directly."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    def test_index_add_ties_reconcile_identically(self, row_list):
        rows = np.asarray(row_list, dtype=np.int64)
        rng = np.random.default_rng(rows.size * 31 + 7)
        scale = 10.0 ** rng.integers(-3, 4, size=(rows.size, 1))
        deltas = (rng.standard_normal((rows.size, 5)) * scale) \
            .astype(np.float32)
        ref = np.zeros((8, 5), dtype=np.float32)
        NUMPY_OPS.index_add(ref, rows, deltas)
        ops = TorchOps(device="cpu", dtype=np.float32)
        dst = ops.zeros((8, 5))
        ops.index_add(dst, ops.const(rows), ops.upload(deltas))
        np.testing.assert_array_equal(ops.download(dst), ref)

    def test_sigmoid_bytes_match(self):
        x = np.linspace(-12, 12, 97, dtype=np.float32).reshape(1, 97)
        ops = TorchOps(device="cpu", dtype=np.float32)
        got = ops.download(ops.sigmoid(ops.upload(x.copy())))
        np.testing.assert_array_equal(got, NUMPY_OPS.sigmoid(x.copy()))
        t = ops.upload(x.copy())
        ops.sigmoid_(t)
        host = x.copy()
        NUMPY_OPS.sigmoid_(host)
        np.testing.assert_array_equal(ops.download(t), host)

    def test_matmul_bytes_match(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((6, 4)).astype(np.float32)
        b = rng.standard_normal((5, 4)).astype(np.float32)
        ops = TorchOps(device="cpu", dtype=np.float32)
        np.testing.assert_array_equal(
            ops.download(ops.matmul_nt(ops.upload(a), ops.upload(b))),
            NUMPY_OPS.matmul_nt(a, b))
        stack_a = rng.standard_normal((3, 6, 4)).astype(np.float32)
        stack_b = rng.standard_normal((3, 5, 4)).astype(np.float32)
        out = ops.empty((3, 6, 5))
        ops.bmm_nt(ops.upload(stack_a), ops.upload(stack_b), out)
        ref = np.empty((3, 6, 5), dtype=np.float32)
        NUMPY_OPS.bmm_nt(stack_a, stack_b, ref)
        np.testing.assert_array_equal(ops.download(out), ref)


class TestGoldenPipelineTorch:
    """End-to-end: the golden run under ``train_backend="torch"``."""

    @pytest.fixture(scope="class")
    def golden_pair(self):
        graph = load("FL", scale=0.5).graph
        split = split_edges(graph, test_fraction=0.3, seed=1)
        ref = embed_graph(split.train_graph, method="distger",
                          num_machines=2, dim=24, epochs=4, seed=7)
        got = embed_graph(split.train_graph, method="distger",
                          num_machines=2, dim=24, epochs=4, seed=7,
                          train_backend="torch", torch_device="cpu",
                          torch_dtype="float32")
        return ref, got, split

    def test_embeddings_byte_equal(self, golden_pair):
        ref, got, _ = golden_pair
        np.testing.assert_array_equal(got.embeddings, ref.embeddings)

    def test_auc_in_band(self, golden_pair):
        _, got, split = golden_pair
        auc = auc_from_split(got.embeddings, split)
        assert abs(auc - 0.9386) <= 0.05

    def test_f64_tier_stays_in_band(self):
        """auto dtype (f64 on CPU) has no byte contract vs the f32
        default -- it must land in the golden quality band instead."""
        graph = powerlaw_cluster(120, attach=3, triangle_prob=0.4, seed=5)
        split = split_edges(graph, test_fraction=0.3, seed=2)
        got = embed_graph(split.train_graph, method="distger",
                          num_machines=2, dim=24, epochs=4, seed=7,
                          train_backend="torch", torch_device="cpu")
        ref = embed_graph(split.train_graph, method="distger",
                          num_machines=2, dim=24, epochs=4, seed=7)
        got_auc = auc_from_split(got.embeddings, split)
        ref_auc = auc_from_split(ref.embeddings, split)
        assert abs(got_auc - ref_auc) <= 0.05
