"""Reference parity: the vectorized InCoM engine vs the loop engine.

Under the shared walker RNG protocol (per-walker counter streams from
:mod:`repro.utils.rng`), the batched engine must reproduce the per-walker
loop engine *exactly*: same corpus, same walk lengths, same termination
decisions, same trial counts, and the same simulated cluster accounting
(compute units, local steps, message counts/bytes/matrix).  The suite runs
every kernel in both vectorizable modes over undirected, weighted and
directed graphs, and checks the oracles of :mod:`repro.walks.reference`
against both backends alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, powerlaw_cluster, ring_of_cliques
from repro.partition import MPGPPartitioner, WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.walks import (
    DistributedWalkEngine,
    WalkConfig,
    huge_effective_transition_matrix,
)

ALL_KERNELS = ("deepwalk", "node2vec", "node2vec-alias", "huge", "huge+")
VECTOR_MODES = ("incom", "routine")


def run_engine(graph, cfg, machines=2, seed=9, partitioner=None):
    part = (partitioner or MPGPPartitioner()).partition(graph, machines)
    cluster = Cluster(machines, part.assignment, seed=seed)
    engine = DistributedWalkEngine(graph, cluster, cfg)
    return engine.run(), cluster, engine


def assert_runs_identical(a, cluster_a, b, cluster_b):
    """Corpus, stats and metrics equality between two walk runs."""
    assert len(a.corpus.walks) == len(b.corpus.walks)
    for wa, wb in zip(a.corpus.walks, b.corpus.walks):
        np.testing.assert_array_equal(wa, wb)
    np.testing.assert_array_equal(a.corpus.occurrences, b.corpus.occurrences)
    assert a.stats.walk_lengths == b.stats.walk_lengths
    assert a.stats.total_walks == b.stats.total_walks
    assert a.stats.total_steps == b.stats.total_steps
    assert a.stats.total_trials == b.stats.total_trials
    assert a.stats.rounds == b.stats.rounds
    assert a.stats.kl_trace == b.stats.kl_trace
    assert a.walk_machines == b.walk_machines
    ma, mb = cluster_a.metrics, cluster_b.metrics
    assert ma.compute_units == mb.compute_units
    assert ma.local_steps == mb.local_steps
    assert ma.messages_sent == mb.messages_sent
    assert ma.message_bytes == mb.message_bytes
    assert ma.message_byte_matrix == mb.message_byte_matrix


def configs(kernel, mode, **overrides):
    kwargs = dict(kernel=kernel, mode=mode, max_rounds=2, min_rounds=1)
    if mode == "routine":
        kwargs.update(walk_length=15, walks_per_node=2)
    kwargs.update(overrides)
    loop = WalkConfig(backend="loop", rng_protocol="walker", **kwargs)
    vec = WalkConfig(backend="vectorized", **kwargs)
    return loop, vec


class TestBackendParity:
    @pytest.mark.parametrize("mode", VECTOR_MODES)
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_all_kernels_and_modes(self, kernel, mode, small_graph):
        loop_cfg, vec_cfg = configs(kernel, mode)
        a, ca, _ = run_engine(small_graph, loop_cfg)
        b, cb, _ = run_engine(small_graph, vec_cfg)
        assert_runs_identical(a, ca, b, cb)

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_weighted_graph(self, kernel):
        rng = np.random.default_rng(3)
        graph = powerlaw_cluster(100, attach=3, seed=1).with_random_weights(rng)
        loop_cfg, vec_cfg = configs(kernel, "incom", p=0.5, q=2.0)
        a, ca, _ = run_engine(graph, loop_cfg, machines=3)
        b, cb, _ = run_engine(graph, vec_cfg, machines=3)
        assert_runs_identical(a, ca, b, cb)

    @pytest.mark.parametrize("kernel", ("deepwalk", "node2vec", "huge"))
    def test_directed_dead_ends(self, kernel):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 2)], directed=True)
        loop_cfg, vec_cfg = configs(kernel, "incom", max_rounds=1)
        a, ca, _ = run_engine(graph, loop_cfg, machines=1)
        b, cb, _ = run_engine(graph, vec_cfg, machines=1)
        assert_runs_identical(a, ca, b, cb)

    def test_node2vec_biased_parameters(self, medium_graph):
        for p, q in ((0.25, 4.0), (4.0, 0.25)):
            loop_cfg, vec_cfg = configs("node2vec", "incom", p=p, q=q)
            a, ca, _ = run_engine(medium_graph, loop_cfg, machines=4)
            b, cb, _ = run_engine(medium_graph, vec_cfg, machines=4)
            assert_runs_identical(a, ca, b, cb)

    def test_multiple_rounds_and_kl_rule(self, medium_graph):
        """The walk-count rule sees identical corpora, so both backends
        run the same number of rounds."""
        loop_cfg, vec_cfg = configs("huge", "incom", max_rounds=6,
                                    delta=0.05)
        a, ca, _ = run_engine(medium_graph, loop_cfg,
                              partitioner=WorkloadBalancePartitioner())
        b, cb, _ = run_engine(medium_graph, vec_cfg,
                              partitioner=WorkloadBalancePartitioner())
        assert a.stats.rounds == b.stats.rounds
        assert_runs_identical(a, ca, b, cb)

    def test_forced_hop_path(self, star_graph):
        """A tiny trial cap exercises the forced-progress hop in both
        backends identically (HuGE rejects often on hub/leaf ratios)."""
        loop_cfg, vec_cfg = configs("huge", "incom", max_trials_per_step=1)
        a, ca, _ = run_engine(star_graph, loop_cfg)
        b, cb, _ = run_engine(star_graph, vec_cfg)
        assert_runs_identical(a, ca, b, cb)


class TestBackendResolution:
    def test_auto_resolves_vectorized_for_incom_and_routine(self):
        assert WalkConfig.distger().resolved_backend() == "vectorized"
        assert WalkConfig.routine("deepwalk").resolved_backend() == "vectorized"

    def test_auto_resolves_loop_for_fullpath(self):
        cfg = WalkConfig.huge_d()
        assert cfg.resolved_backend() == "loop"
        # Walker streams are the default protocol for every backend (the
        # legacy cluster generators are opt-in only).
        assert cfg.resolved_rng_protocol() == "walker"
        explicit = WalkConfig.huge_d(rng_protocol="cluster")
        assert explicit.resolved_rng_protocol() == "cluster"

    def test_explicit_vectorized_fullpath_rejected(self):
        with pytest.raises(ValueError, match="fullpath"):
            WalkConfig(mode="fullpath", backend="vectorized")

    def test_vectorized_requires_walker_protocol(self):
        with pytest.raises(ValueError, match="walker"):
            WalkConfig(backend="vectorized", rng_protocol="cluster")

    def test_invalid_backend_names(self):
        with pytest.raises(ValueError, match="backend"):
            WalkConfig(backend="gpu")
        with pytest.raises(ValueError, match="rng_protocol"):
            WalkConfig(rng_protocol="magic")

    def test_fullpath_auto_equals_explicit_loop(self, small_graph):
        """backend='auto' on fullpath takes the loop path bit-for-bit."""
        base = dict(max_rounds=1, min_rounds=1)
        a, ca, ea = run_engine(small_graph, WalkConfig.huge_d(**base))
        b, cb, eb = run_engine(small_graph,
                               WalkConfig.huge_d(backend="loop", **base))
        assert ea.backend == eb.backend == "loop"
        assert_runs_identical(a, ca, b, cb)


class TestReferenceOracles:
    """Both backends must follow the paper's exact distributions."""

    def test_huge_empirical_matches_effective_transitions(self, small_graph):
        expected = huge_effective_transition_matrix(small_graph)
        cfg = WalkConfig.distger(max_rounds=4, min_rounds=4, delta=1e-12,
                                 mu=0.0)  # long walks: more transitions
        result, _, _ = run_engine(small_graph, cfg, machines=1, seed=123)
        counts = np.zeros_like(expected)
        for walk in result.corpus.walks:
            for u, v in zip(walk[:-1], walk[1:]):
                counts[int(u), int(v)] += 1.0
        rows = counts.sum(axis=1)
        observed = np.divide(counts, rows[:, None],
                             out=np.zeros_like(counts), where=rows[:, None] > 0)
        heavy = rows >= 200  # only rows with enough mass to compare
        assert heavy.any()
        np.testing.assert_allclose(observed[heavy], expected[heavy], atol=0.08)

    def test_walks_follow_edges_both_backends(self, small_graph):
        for backend in ("loop", "vectorized"):
            cfg = WalkConfig.distger(
                max_rounds=1, min_rounds=1, backend=backend,
                rng_protocol="walker")
            result, _, _ = run_engine(small_graph, cfg)
            for walk in result.corpus.walks:
                for u, v in zip(walk[:-1], walk[1:]):
                    assert small_graph.has_edge(int(u), int(v))
