"""Tests for splits, logistic regression, and the evaluation harnesses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import ring_of_cliques
from repro.tasks import (
    LogisticRegression,
    OneVsRestClassifier,
    evaluate_classification,
    sample_non_edges,
    split_edges,
    split_nodes,
)


class TestEdgeSplit:
    def test_split_sizes(self, medium_graph):
        split = split_edges(medium_graph, test_fraction=0.4, seed=0)
        removed = len(split.test_positive)
        assert removed == pytest.approx(0.4 * medium_graph.num_edges,
                                        rel=0.15)
        assert len(split.test_negative) == removed
        assert split.train_graph.num_edges == medium_graph.num_edges - removed

    def test_no_isolated_nodes(self, medium_graph):
        split = split_edges(medium_graph, test_fraction=0.5, seed=1)
        # Nodes that had edges keep at least one.
        had_edges = medium_graph.degrees > 0
        assert np.all(split.train_graph.degrees[had_edges] >= 1)

    def test_test_edges_absent_from_train(self, medium_graph):
        split = split_edges(medium_graph, test_fraction=0.3, seed=2)
        for u, v in split.test_positive[:30]:
            assert not split.train_graph.has_edge(int(u), int(v))

    def test_negatives_are_non_edges(self, medium_graph):
        split = split_edges(medium_graph, test_fraction=0.3, seed=3)
        for u, v in split.test_negative[:30]:
            assert not medium_graph.has_edge(int(u), int(v))
            assert u != v

    def test_deterministic(self, medium_graph):
        a = split_edges(medium_graph, seed=7)
        b = split_edges(medium_graph, seed=7)
        np.testing.assert_array_equal(a.test_positive, b.test_positive)

    def test_too_small_graph_rejected(self, triangle):
        with pytest.raises(ValueError, match="too small"):
            split_edges(triangle, test_fraction=0.5)

    def test_invalid_fraction(self, medium_graph):
        with pytest.raises(ValueError):
            split_edges(medium_graph, test_fraction=1.0)


class TestNonEdgeSampling:
    def test_count_and_validity(self, medium_graph, rng):
        pairs = sample_non_edges(medium_graph, 50, rng)
        assert pairs.shape == (50, 2)
        for u, v in pairs:
            assert not medium_graph.has_edge(int(u), int(v))

    def test_dense_graph_fails_gracefully(self, triangle, rng):
        with pytest.raises(RuntimeError, match="converge"):
            sample_non_edges(triangle, 100, rng)


class TestNodeSplit:
    def test_partition_of_ids(self):
        train, test = split_nodes(100, 0.3, seed=0)
        assert len(train) + len(test) == 100
        assert len(set(train) & set(test)) == 0
        assert len(train) == 30

    def test_extreme_ratio_keeps_both_sides(self):
        train, test = split_nodes(10, 0.99, seed=0)
        assert len(test) >= 1


class TestLogisticRegression:
    def test_separable_data(self, rng):
        x = np.concatenate([rng.normal(-2, 0.5, size=(50, 3)),
                            rng.normal(2, 0.5, size=(50, 3))])
        y = np.concatenate([np.zeros(50), np.ones(50)])
        model = LogisticRegression().fit(x, y)
        pred = model.predict_proba(x) > 0.5
        assert (pred == y.astype(bool)).mean() > 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function(np.zeros((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))

    def test_regularisation_shrinks_weights(self, rng):
        x = rng.normal(size=(80, 4))
        y = (x[:, 0] > 0).astype(float)
        loose = LogisticRegression(c=100.0).fit(x, y)
        tight = LogisticRegression(c=0.01).fit(x, y)
        assert np.linalg.norm(tight._weights[:-1]) < \
            np.linalg.norm(loose._weights[:-1])


class TestOneVsRest:
    def test_multi_label_prediction(self, rng):
        x = np.concatenate([rng.normal(-2, 0.5, size=(40, 4)),
                            rng.normal(2, 0.5, size=(40, 4))])
        labels = np.zeros((80, 2), dtype=bool)
        labels[:40, 0] = True
        labels[40:, 1] = True
        clf = OneVsRestClassifier().fit(x, labels)
        pred = clf.predict_top_k(x, labels.sum(axis=1))
        assert (pred == labels).mean() > 0.95

    def test_degenerate_label_column(self, rng):
        x = rng.normal(size=(20, 3))
        labels = np.zeros((20, 2), dtype=bool)
        labels[:, 0] = True  # constant-true column
        clf = OneVsRestClassifier().fit(x, labels)
        scores = clf.predict_scores(x)
        assert np.all(scores[:, 0] > scores[:, 1])

    def test_top_k_respects_counts(self, rng):
        x = rng.normal(size=(10, 3))
        labels = np.zeros((10, 4), dtype=bool)
        labels[:, :2] = True
        clf = OneVsRestClassifier().fit(x, labels)
        pred = clf.predict_top_k(x, np.full(10, 2))
        assert np.all(pred.sum(axis=1) == 2)


class TestClassificationHarness:
    def test_structured_embeddings_beat_noise(self, rng):
        # Embeddings that encode the label cleanly vs pure noise.
        labels = np.zeros((60, 3), dtype=bool)
        labels[np.arange(60), np.arange(60) % 3] = True
        good = np.zeros((60, 8))
        good[np.arange(60), np.arange(60) % 3] = 1.0
        good += rng.normal(0, 0.05, size=good.shape)
        noise = rng.normal(size=(60, 8))
        rep_good = evaluate_classification(good, labels, 0.5, trials=2, seed=0)
        rep_noise = evaluate_classification(noise, labels, 0.5, trials=2, seed=0)
        assert rep_good.mean_micro_f1 > rep_noise.mean_micro_f1 + 0.2
