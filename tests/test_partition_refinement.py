"""Tests for greedy boundary refinement of streaming partitions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, community_graph, powerlaw_cluster, ring_of_cliques
from repro.partition import (
    HashPartitioner,
    MPGPPartitioner,
    edge_cut,
    node_balance,
    refine_partition,
    refine_result,
)
from repro.partition.refinement import RefinementStats


class TestRefinePartition:
    def test_repairs_a_scrambled_perfect_partition(self):
        """Cliques assigned almost-correctly must be fully repaired."""
        g = ring_of_cliques(4, 8)
        truth = np.repeat(np.arange(4), 8)
        scrambled = truth.copy()
        rng = np.random.default_rng(0)
        wrong = rng.choice(g.num_nodes, size=6, replace=False)
        scrambled[wrong] = (truth[wrong] + 1) % 4
        refined, stats = refine_partition(g, scrambled, 4, gamma=2.0)
        assert edge_cut(g, refined) <= edge_cut(g, scrambled)
        assert edge_cut(g, refined) <= edge_cut(g, truth) + 2
        assert stats.moves >= 1

    def test_never_increases_cut(self, medium_graph):
        assignment = HashPartitioner().partition(medium_graph, 4).assignment
        refined, stats = refine_partition(medium_graph, assignment, 4)
        assert stats.cut_arcs_after <= stats.cut_arcs_before
        assert edge_cut(medium_graph, refined) <= edge_cut(medium_graph,
                                                           assignment)

    def test_respects_gamma_capacity(self, medium_graph):
        assignment = HashPartitioner().partition(medium_graph, 4).assignment
        for gamma in (1.0, 1.5, 2.0):
            refined, _ = refine_partition(medium_graph, assignment, 4,
                                          gamma=gamma)
            assert node_balance(refined, 4) <= gamma + 1e-9

    def test_input_not_mutated(self, small_graph):
        assignment = HashPartitioner().partition(small_graph, 2).assignment
        before = assignment.copy()
        refine_partition(small_graph, assignment, 2)
        assert np.array_equal(assignment, before)

    def test_stops_early_when_converged(self):
        # A perfectly-partitioned disconnected graph needs zero moves.
        g = ring_of_cliques(2, 5)
        edges = g.unique_edges()
        keep = [(int(u), int(v)) for u, v in edges
                if (u < 5) == (v < 5)]
        disconnected = CSRGraph.from_edges(keep, num_nodes=10)
        truth = np.repeat([0, 1], 5)
        refined, stats = refine_partition(disconnected, truth, 2,
                                          max_passes=5)
        assert stats.moves == 0
        assert stats.passes == 1
        assert np.array_equal(refined, truth)

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            refine_partition(g, np.zeros(3, dtype=np.int64), 2)

    def test_validation(self, triangle):
        with pytest.raises(ValueError, match="gamma"):
            refine_partition(triangle, np.zeros(3, dtype=np.int64), 2,
                             gamma=0.5)
        with pytest.raises(ValueError, match="every node"):
            refine_partition(triangle, np.zeros(2, dtype=np.int64), 2)

    def test_stats_cut_reduction(self):
        stats = RefinementStats(passes=1, moves=3, cut_arcs_before=10,
                                cut_arcs_after=4, seconds=0.0)
        assert stats.cut_reduction == pytest.approx(0.6)
        zero = RefinementStats(passes=1, moves=0, cut_arcs_before=0,
                               cut_arcs_after=0, seconds=0.0)
        assert zero.cut_reduction == 0.0


class TestRefineResult:
    def test_wraps_partition_result(self, medium_graph):
        base = MPGPPartitioner(seed=0).partition(medium_graph, 4)
        refined = refine_result(medium_graph, base)
        assert refined.method == f"{base.method}+refine"
        assert refined.num_parts == 4
        assert refined.seconds >= base.seconds
        assert "refine_moves" in refined.extras
        assert edge_cut(medium_graph, refined.assignment) <= \
            edge_cut(medium_graph, base.assignment)

    def test_improves_hash_partition_substantially(self):
        graph, _ = community_graph(200, 4, within_degree=10.0,
                                   cross_degree=0.4, seed=3)
        base = HashPartitioner().partition(graph, 4)
        refined = refine_result(graph, base, max_passes=5)
        cut_before = edge_cut(graph, base.assignment)
        cut_after = edge_cut(graph, refined.assignment)
        # Hash ignores structure entirely; on a community graph refinement
        # must recover a large share of the locality.
        assert cut_after < 0.7 * cut_before


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_parts=st.integers(min_value=2, max_value=5),
    gamma=st.floats(min_value=1.0, max_value=3.0),
)
def test_property_refinement_invariants(seed, num_parts, gamma):
    """Refinement never increases the cut, keeps γ balance, reassigns only."""
    g = powerlaw_cluster(60, attach=2, seed=seed % 11)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_parts, size=g.num_nodes)
    refined, stats = refine_partition(g, assignment, num_parts, gamma=gamma)
    assert stats.cut_arcs_after <= stats.cut_arcs_before
    assert refined.min() >= 0 and refined.max() < num_parts
    capacity = gamma * g.num_nodes / num_parts
    sizes = np.bincount(refined, minlength=num_parts)
    # Parts that were already over capacity can only shrink; parts the
    # refiner filled must respect the bound.
    before_sizes = np.bincount(assignment, minlength=num_parts)
    for part in range(num_parts):
        assert sizes[part] <= max(capacity, before_sizes[part])
