"""Tests for the message matrix and topology-aware cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    ClusterMetrics,
    CostModel,
    HeterogeneousCostModel,
    RackTopologyCostModel,
    rack_assignment,
)


def _metrics_with_traffic() -> ClusterMetrics:
    m = ClusterMetrics(4)
    m.record_compute(0, 1000.0)
    m.record_compute(1, 500.0)
    m.record_message(80, src=0, dst=1)   # same rack under [0,0,1,1]
    m.record_message(80, src=2, dst=3)   # same rack
    m.record_message(80, src=0, dst=2)   # cross rack
    m.record_message(80, src=3, dst=1)   # cross rack
    return m


class TestMessageMatrix:
    def test_records_pairs(self):
        m = _metrics_with_traffic()
        assert m.message_byte_matrix[0][1] == 80
        assert m.message_byte_matrix[0][2] == 80
        assert m.message_byte_matrix[1][0] == 0
        assert m.messages_sent == 4
        assert m.message_bytes == 320

    def test_endpoint_free_recording_still_counts(self):
        m = ClusterMetrics(2)
        m.record_message(64)
        assert m.messages_sent == 1
        assert m.message_bytes == 64
        assert sum(sum(row) for row in m.message_byte_matrix) == 0

    def test_merge_folds_matrix(self):
        a = _metrics_with_traffic()
        b = _metrics_with_traffic()
        a.merge(b)
        assert a.message_byte_matrix[0][1] == 160
        assert a.message_bytes == 640

    def test_bsp_engine_fills_matrix(self, small_graph):
        from repro.runtime.cluster import Cluster
        from repro.walks import DistributedWalkEngine, WalkConfig

        assignment = np.arange(small_graph.num_nodes) % 2
        cluster = Cluster(2, assignment, seed=0)
        cfg = WalkConfig.routine(kernel="deepwalk", walk_length=10,
                                 walks_per_node=1)
        DistributedWalkEngine(small_graph, cluster, cfg).run()
        matrix = cluster.metrics.message_byte_matrix
        attributed = sum(sum(row) for row in matrix)
        assert attributed == cluster.metrics.message_bytes
        assert matrix[0][0] == 0 and matrix[1][1] == 0  # no self messages


class TestRackAssignment:
    def test_even_split(self):
        assert rack_assignment(4, 2) == [0, 0, 1, 1]
        assert rack_assignment(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_split(self):
        racks = rack_assignment(5, 2)
        assert sorted(set(racks)) == [0, 1]
        assert racks == sorted(racks)

    def test_one_rack(self):
        assert rack_assignment(3, 1) == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            rack_assignment(0, 1)
        with pytest.raises(ValueError):
            rack_assignment(2, 3)


class TestHeterogeneousCostModel:
    def test_straggler_dominates(self):
        m = ClusterMetrics(2)
        m.record_compute(0, 1000.0)
        m.record_compute(1, 1000.0)
        uniform = HeterogeneousCostModel(speed_factors=(1.0, 1.0))
        straggler = HeterogeneousCostModel(speed_factors=(1.0, 0.25))
        assert straggler.makespan(m) == pytest.approx(4 * uniform.makespan(m))

    def test_matches_base_model_when_uniform(self):
        m = _metrics_with_traffic()
        base = CostModel()
        hetero = HeterogeneousCostModel(speed_factors=(1.0,) * 4)
        assert hetero.makespan(m) == pytest.approx(base.makespan(m))

    def test_balanced_work_on_imbalanced_cluster_straggles(self):
        """Equal work is not optimal when speeds differ -- the motivation
        for workload-aware placement."""
        balanced = ClusterMetrics(2)
        balanced.record_compute(0, 500.0)
        balanced.record_compute(1, 500.0)
        skewed = ClusterMetrics(2)
        skewed.record_compute(0, 800.0)  # more work on the fast machine
        skewed.record_compute(1, 200.0)
        model = HeterogeneousCostModel(speed_factors=(4.0, 1.0))
        assert model.makespan(skewed) < model.makespan(balanced)

    def test_validation(self):
        with pytest.raises(ValueError, match="every machine"):
            HeterogeneousCostModel(speed_factors=())
        with pytest.raises(ValueError, match="positive"):
            HeterogeneousCostModel(speed_factors=(1.0, 0.0))
        m = ClusterMetrics(3)
        with pytest.raises(ValueError, match="machines"):
            HeterogeneousCostModel(speed_factors=(1.0,)).makespan(m)


class TestRackTopologyCostModel:
    def test_split_bytes(self):
        m = _metrics_with_traffic()
        model = RackTopologyCostModel(racks=(0, 0, 1, 1),
                                      oversubscription=4.0)
        intra, inter = model.split_bytes(m)
        assert intra == 160
        assert inter == 160

    def test_oversubscription_raises_cost(self):
        m = _metrics_with_traffic()
        flat = RackTopologyCostModel(racks=(0, 0, 1, 1), oversubscription=1.0)
        tight = RackTopologyCostModel(racks=(0, 0, 1, 1), oversubscription=8.0)
        assert tight.makespan(m) > flat.makespan(m)

    def test_flat_oversubscription_matches_base(self):
        m = _metrics_with_traffic()
        base = CostModel()
        flat = RackTopologyCostModel(racks=(0, 0, 1, 1), oversubscription=1.0)
        assert flat.makespan(m) == pytest.approx(base.makespan(m))

    def test_locality_pays_off(self):
        """The same byte volume costs less when it stays inside racks."""
        local = ClusterMetrics(4)
        local.record_message(1000, src=0, dst=1)
        local.record_message(1000, src=2, dst=3)
        remote = ClusterMetrics(4)
        remote.record_message(1000, src=0, dst=2)
        remote.record_message(1000, src=1, dst=3)
        model = RackTopologyCostModel(racks=(0, 0, 1, 1),
                                      oversubscription=4.0)
        assert model.makespan(local) < model.makespan(remote)

    def test_unattributed_bytes_priced_as_inter_rack(self):
        m = ClusterMetrics(2)
        m.record_sync(5000)
        model = RackTopologyCostModel(racks=(0, 1), oversubscription=2.0)
        intra, inter = model.split_bytes(m)
        assert intra == 0
        assert inter == 5000

    def test_validation(self):
        with pytest.raises(ValueError, match="every machine"):
            RackTopologyCostModel(racks=())
        with pytest.raises(ValueError, match="oversubscription"):
            RackTopologyCostModel(racks=(0, 1), oversubscription=0.5)
        m = ClusterMetrics(3)
        with pytest.raises(ValueError, match="machines"):
            RackTopologyCostModel(racks=(0, 1)).split_bytes(m)
