"""Leak discipline and backing-mode tests for the shared embedding store.

The contract (see :mod:`repro.utils.sharedmem` and
:mod:`repro.serving.store`): allocation is atomic-or-unlinked.  A crash
anywhere between a segment's raw allocation and its owner's explicit
``close()`` must not orphan ``/dev/shm`` entries -- these tests force
failures at the seams (buffer wrapping, copy-in, group assembly) by
monkeypatching :meth:`SharedArray._wrap_buffer` and count the kernel's
actual segment directory before and after.  The mmap mode is checked for
round-tripping, read-only attaches and file persistence across close.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serving.store import EmbeddingStore, StoreHandle
from repro.utils.sharedmem import (
    SharedArray,
    SharedArrayHandle,
    SharedGroup,
    attach_shared_array,
)

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="leak accounting reads the kernel's shm directory")


def shm_segments() -> set:
    return set(os.listdir(SHM_DIR))


@pytest.fixture
def shm_baseline():
    """Fail the test if it exits with more segments than it entered."""
    before = shm_segments()
    yield before
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class Boom(RuntimeError):
    pass


def _explode(*args, **kwargs):
    raise Boom("injected fault")


# --------------------------------------------------------------------- #
# SharedArray leak discipline
# --------------------------------------------------------------------- #


class TestSharedArrayLeaks:
    def test_empty_unlinks_when_wrap_fails(self, shm_baseline,
                                           monkeypatch):
        monkeypatch.setattr(SharedArray, "_wrap_buffer",
                            staticmethod(_explode))
        with pytest.raises(Boom):
            SharedArray.empty((8,), np.float64)

    def test_create_unlinks_when_copy_fails(self, shm_baseline,
                                            monkeypatch):
        # Let allocation succeed, then fail the copy-in: create() must
        # close (and thereby unlink) the fresh segment.
        source = np.arange(6, dtype=np.float64)
        original = SharedArray._wrap_buffer

        class Hostile(np.ndarray):
            def __setitem__(self, *a):
                raise Boom("injected fault")

        monkeypatch.setattr(
            SharedArray, "_wrap_buffer",
            staticmethod(lambda shape, dtype, buf:
                         original(shape, dtype, buf).view(Hostile)))
        with pytest.raises(Boom):
            SharedArray.create(source)

    def test_close_is_idempotent(self, shm_baseline):
        shared = SharedArray.create(np.arange(4))
        shared.close()
        shared.close()

    def test_del_backstop_reclaims_forgotten_segment(self, shm_baseline):
        shared = SharedArray.create(np.arange(4))
        del shared  # no explicit close(): __del__ must unlink

    def test_group_closes_remaining_arrays_past_a_failure(
            self, shm_baseline, monkeypatch):
        group = SharedGroup()
        first = group.adopt(SharedArray.create(np.arange(3)))
        second = group.adopt(SharedArray.create(np.arange(5)))
        real_close = first.close
        state = {"raised": False}

        def flaky_close():
            if not state["raised"]:
                state["raised"] = True
                raise Boom("injected fault")
            real_close()

        monkeypatch.setattr(first, "close", flaky_close)
        with pytest.raises(Boom):
            group.close()
        # The failure did not strand the *other* member...
        assert second.handle.name not in shm_segments()
        # ...and the failed member stays reclaimable afterwards.
        first.close()
        assert first.handle.name not in shm_segments()


class TestSharedArrayRoundTrip:
    def test_shm_attach_views_same_bytes(self, shm_baseline):
        source = np.arange(12, dtype=np.float32).reshape(3, 4)
        with SharedArray.create(source) as shared:
            view = attach_shared_array(shared.handle)
            np.testing.assert_array_equal(view, source)
            shared.array[0, 0] = 99.0
            assert view[0, 0] == 99.0  # same pages, no copy

    def test_handle_pickles(self, shm_baseline):
        import pickle

        with SharedArray.create(np.arange(3)) as shared:
            clone = pickle.loads(pickle.dumps(shared.handle))
            assert clone == shared.handle
        mm_handle = SharedArrayHandle("", (2, 2), "<f8", path="/tmp/x.npy")
        assert pickle.loads(pickle.dumps(mm_handle)).path == "/tmp/x.npy"


# --------------------------------------------------------------------- #
# File-backed mmap mode
# --------------------------------------------------------------------- #


class TestMmapMode:
    def test_create_file_round_trip(self, tmp_path):
        source = np.arange(20, dtype=np.float32).reshape(4, 5)
        path = str(tmp_path / "emb.npy")
        shared = SharedArray.create_file(path, source)
        assert shared.kind == "mmap"
        np.testing.assert_array_equal(shared.array, source)
        view = attach_shared_array(shared.handle)
        np.testing.assert_array_equal(view, source)
        shared.close()
        # The file is the persistent artifact; close() must keep it.
        assert os.path.exists(path)
        np.testing.assert_array_equal(
            SharedArray.from_file(path).array, source)

    def test_attach_is_read_only(self, tmp_path):
        path = str(tmp_path / "ro.npy")
        shared = SharedArray.create_file(path, np.zeros((2, 2)))
        view = attach_shared_array(shared.handle)
        with pytest.raises((ValueError, OSError)):
            view[0, 0] = 1.0
        shared.close()

    def test_attach_validates_shape_and_dtype(self, tmp_path):
        path = str(tmp_path / "v.npy")
        shared = SharedArray.create_file(path, np.zeros((2, 2)))
        shared.close()
        bad = SharedArrayHandle("", (3, 3), "<f8", path=path)
        with pytest.raises(ValueError, match="handle expects"):
            attach_shared_array(bad)

    def test_from_file_rejects_write_modes(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            SharedArray.from_file(str(tmp_path / "x.npy"), mode="w+")

    def test_create_file_removes_partial_file_on_failure(self, tmp_path,
                                                         monkeypatch):
        path = str(tmp_path / "partial.npy")

        def bad_open_memmap(*args, **kwargs):
            # Simulate dying mid-write with the file already created.
            with open(path, "wb") as fh:
                fh.write(b"partial")
            raise Boom("disk died")

        monkeypatch.setattr(np.lib.format, "open_memmap",
                            bad_open_memmap)
        with pytest.raises(Boom):
            SharedArray.create_file(path, np.zeros(4))
        assert not os.path.exists(path)


# --------------------------------------------------------------------- #
# EmbeddingStore
# --------------------------------------------------------------------- #


class TestEmbeddingStore:
    def test_shared_mode_round_trip(self, shm_baseline):
        emb = np.arange(12, dtype=np.float32).reshape(6, 2)
        with EmbeddingStore.from_array(emb, mode="shared") as store:
            assert (store.num_nodes, store.dim) == (6, 2)
            np.testing.assert_array_equal(store.embeddings, emb)
            attached = EmbeddingStore.attach(store.handle)
            np.testing.assert_array_equal(attached.embeddings, emb)
            np.testing.assert_array_equal(attached.norms, store.norms)
            attached.close()  # attached stores never unlink

    def test_memory_mode_has_no_handle(self):
        store = EmbeddingStore.from_array(np.eye(3), mode="memory")
        with pytest.raises(ValueError, match="no cross-process handle"):
            store.handle
        store.close()

    def test_mmap_mode_serves_from_disk(self, tmp_path, shm_baseline):
        emb = np.arange(8, dtype=np.float64).reshape(4, 2)
        path = str(tmp_path / "store.npy")
        with EmbeddingStore.from_array(emb, mode="mmap",
                                       path=path) as store:
            assert isinstance(store.handle, StoreHandle)
            assert store.handle.embeddings.path == path
        assert os.path.exists(path)
        with EmbeddingStore.open(path) as reopened:
            np.testing.assert_array_equal(reopened.embeddings, emb)
            assert reopened.mode == "mmap"

    def test_open_word2vec_text(self, tmp_path):
        from repro.graph.io import save_embeddings

        emb = np.random.default_rng(0).standard_normal((5, 3))
        path = str(tmp_path / "vectors.emb")
        save_embeddings(path, emb)
        with EmbeddingStore.open(path, mode="memory") as store:
            np.testing.assert_allclose(store.embeddings, emb, rtol=1e-5)

    def test_save_produces_mmap_openable_npy(self, tmp_path):
        emb = np.arange(6, dtype=np.float32).reshape(3, 2)
        path = str(tmp_path / "out" / "emb.npy")
        with EmbeddingStore.from_array(emb, mode="memory") as store:
            store.save(path)
        with EmbeddingStore.open(path) as reopened:
            np.testing.assert_array_equal(reopened.embeddings, emb)

    def test_from_array_rejects_bad_input(self):
        with pytest.raises(ValueError, match="2-D"):
            EmbeddingStore.from_array(np.zeros(4))
        with pytest.raises(ValueError, match="unknown store mode"):
            EmbeddingStore.from_array(np.eye(2), mode="gpu")
        with pytest.raises(ValueError, match="needs a path"):
            EmbeddingStore.from_array(np.eye(2), mode="mmap")

    def test_failed_store_build_leaks_nothing(self, shm_baseline,
                                              monkeypatch):
        calls = {"n": 0}
        original = SharedArray._wrap_buffer

        def fail_second(shape, dtype, buf):
            # First segment (the matrix) succeeds; the norm cache dies.
            calls["n"] += 1
            if calls["n"] >= 2:
                raise Boom("injected fault")
            return original(shape, dtype, buf)

        monkeypatch.setattr(SharedArray, "_wrap_buffer",
                            staticmethod(fail_second))
        with pytest.raises(Boom):
            EmbeddingStore.from_array(np.eye(4), mode="shared")

    def test_norms_match_scorer_definition(self):
        from repro.serving.scorer import row_norms

        emb = np.random.default_rng(1).standard_normal((7, 3))
        with EmbeddingStore.from_array(emb, mode="memory") as store:
            np.testing.assert_array_equal(store.norms, row_norms(emb))
