"""Tests for embedding-space similarity queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    analogy,
    cosine_similarity,
    similarity_matrix,
    top_k_similar,
)


@pytest.fixture
def toy_embeddings():
    """Six nodes in 2-D with known geometry."""
    return np.array([
        [1.0, 0.0],    # 0
        [2.0, 0.0],    # 1: same direction as 0, longer
        [0.0, 1.0],    # 2: orthogonal to 0
        [-1.0, 0.0],   # 3: opposite of 0
        [1.0, 1.0],    # 4: 45 degrees
        [0.0, 0.0],    # 5: zero vector
    ])


class TestCosineSimilarity:
    def test_parallel_is_one(self, toy_embeddings):
        assert cosine_similarity(toy_embeddings, 0, 1) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self, toy_embeddings):
        assert cosine_similarity(toy_embeddings, 0, 2) == pytest.approx(0.0)

    def test_opposite_is_minus_one(self, toy_embeddings):
        assert cosine_similarity(toy_embeddings, 0, 3) == pytest.approx(-1.0)

    def test_zero_vector_is_zero(self, toy_embeddings):
        assert cosine_similarity(toy_embeddings, 0, 5) == 0.0

    def test_symmetric(self, toy_embeddings):
        assert cosine_similarity(toy_embeddings, 0, 4) == pytest.approx(
            cosine_similarity(toy_embeddings, 4, 0))


class TestTopKSimilar:
    def test_ranking_cosine(self, toy_embeddings):
        out = top_k_similar(toy_embeddings, 0, k=3)
        ids = [node for node, _ in out]
        assert ids[0] == 1                   # same direction
        assert ids[1] == 4                   # 45 degrees
        assert 3 not in ids[:2]              # opposite comes last

    def test_excludes_self(self, toy_embeddings):
        out = top_k_similar(toy_embeddings, 0, k=10)
        assert all(node != 0 for node, _ in out)

    def test_dot_metric_rewards_magnitude(self, toy_embeddings):
        out = top_k_similar(toy_embeddings, 1, k=2, metric="dot")
        assert out[0][0] == 0 or out[0][1] >= out[1][1]

    def test_candidate_restriction(self, toy_embeddings):
        out = top_k_similar(toy_embeddings, 0, k=5,
                            candidates=np.array([2, 3]))
        assert {node for node, _ in out} == {2, 3}

    def test_scores_descending(self, toy_embeddings):
        out = top_k_similar(toy_embeddings, 4, k=5)
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)

    def test_empty_candidates(self, toy_embeddings):
        assert top_k_similar(toy_embeddings, 0,
                             candidates=np.array([0])) == []

    def test_bad_metric(self, toy_embeddings):
        with pytest.raises(ValueError, match="metric"):
            top_k_similar(toy_embeddings, 0, metric="euclid")


class TestSimilarityMatrix:
    def test_cosine_diagonal_is_one(self, toy_embeddings):
        mat = similarity_matrix(toy_embeddings, np.array([0, 1, 4]))
        assert np.allclose(np.diag(mat), 1.0)

    def test_symmetric(self, toy_embeddings):
        mat = similarity_matrix(toy_embeddings, np.array([0, 2, 3, 4]))
        assert np.allclose(mat, mat.T)

    def test_dot_metric(self, toy_embeddings):
        mat = similarity_matrix(toy_embeddings, np.array([0, 1]),
                                metric="dot")
        assert mat[0, 1] == pytest.approx(2.0)

    def test_bad_metric(self, toy_embeddings):
        with pytest.raises(ValueError, match="metric"):
            similarity_matrix(toy_embeddings, np.array([0]), metric="x")


class TestAnalogy:
    def test_recovers_direction(self):
        # Clean vector arithmetic: king - man + woman = queen.
        emb = np.array([
            [1.0, 1.0],   # 0 "king"  = royal + male
            [0.0, 1.0],   # 1 "man"   = male
            [0.0, -1.0],  # 2 "woman" = female
            [1.0, -1.0],  # 3 "queen" = royal + female
            [5.0, 5.0],   # 4 distractor
        ])
        out = analogy(emb, positive=[0, 2], negative=[1], k=1)
        assert out[0][0] == 3

    def test_excludes_query_nodes(self, toy_embeddings):
        out = analogy(toy_embeddings, positive=[0], negative=[], k=5)
        assert all(node != 0 for node, _ in out)

    def test_requires_positive(self, toy_embeddings):
        with pytest.raises(ValueError, match="positive"):
            analogy(toy_embeddings, positive=[], negative=[1])

    def test_embedding_neighbors_are_graph_neighbors(self):
        """On a strongly-clustered graph, a node's nearest embedding
        neighbours should come from its own clique."""
        from repro.api import embed_graph
        from repro.graph import ring_of_cliques

        g = ring_of_cliques(4, 8)
        emb = embed_graph(g, method="distger", num_machines=2, dim=16,
                          epochs=3, seed=0).embeddings
        hits = 0
        for node in (0, 8, 16, 24):
            clique = set(range(node, node + 8))
            top = top_k_similar(emb, node, k=3)
            hits += sum(1 for n, _ in top if n in clique)
        assert hits >= 8  # at least 2/3 of neighbours from the right clique
