"""Property suite for the ego-net persona split (Splitter-style).

The contract :func:`repro.graph.persona_graph` documents, pinned here:

* projecting every persona arc through ``base_of`` recovers the original
  graph's arc multiset exactly (weights included);
* the persona↔base mapping is total and compact -- ``base_of`` is
  sorted, covers ``0..P-1``, and agrees with ``persona_offsets``;
* zero-degree nodes keep exactly one persona;
* the persona graph is a plain, well-formed :class:`CSRGraph` --
  relabelling it through :func:`induced_subgraph` round-trips
  byte-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRGraph,
    ego_net_communities,
    induced_subgraph,
    persona_graph,
    powerlaw_cluster,
    ring_of_cliques,
    star,
)


def _random_graph(seed: int) -> CSRGraph:
    """Small random graph, including isolated nodes and parallel inputs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 25))
    m = int(rng.integers(0, 3 * n))
    edges = rng.integers(0, n, size=(m, 2))
    return CSRGraph.from_edges(edges, num_nodes=n)


def _arc_keys(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Sortable multiset fingerprint of an arc list over ``n`` node ids."""
    return np.sort(src.astype(np.int64) * n + dst.astype(np.int64))


def _arcs(graph: CSRGraph):
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                    np.diff(graph.indptr))
    return src, graph.indices.astype(np.int64)


class TestEdgeMultisetProjection:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_projection_recovers_original_arcs(self, seed):
        g = _random_graph(seed)
        pg = persona_graph(g)
        p_src, p_dst = _arcs(pg.graph)
        base_src, base_dst = pg.base_of[p_src], pg.base_of[p_dst]
        src, dst = _arcs(g)
        assert np.array_equal(_arc_keys(base_src, base_dst, g.num_nodes),
                              _arc_keys(src, dst, g.num_nodes))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_projection_on_clustered_graph(self, seed):
        g = powerlaw_cluster(40, attach=2, seed=seed)
        pg = persona_graph(g)
        p_src, p_dst = _arcs(pg.graph)
        src, dst = _arcs(g)
        assert np.array_equal(
            _arc_keys(pg.base_of[p_src], pg.base_of[p_dst], g.num_nodes),
            _arc_keys(src, dst, g.num_nodes))

    def test_weights_carried_over(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)],
                                weights=[1.0, 2.0, 3.0, 4.0])
        pg = persona_graph(g)
        assert pg.graph.is_weighted
        # Total weight mass is conserved by the rewiring.
        assert pg.graph.weights.sum() == pytest.approx(g.weights.sum())
        # Per-arc: project personas back and compare the weight of each
        # base arc (arcs map 1:1, so sorting by base key aligns them).
        p_src, p_dst = _arcs(pg.graph)
        src, dst = _arcs(g)
        n = g.num_nodes
        p_key = pg.base_of[p_src] * n + pg.base_of[p_dst]
        key = src * n + dst
        assert np.array_equal(pg.graph.weights[np.argsort(p_key)],
                              g.weights[np.argsort(key)])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_persona_adjacency_is_subset_of_base(self, seed):
        g = _random_graph(seed)
        pg = persona_graph(g)
        for p in range(pg.num_personas):
            base_nbrs = g.neighbors(int(pg.base_of[p]))
            projected = np.unique(pg.base_of[pg.graph.neighbors(p)])
            assert np.all(np.isin(projected, base_nbrs))


class TestMappingTotalAndCompact:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_offsets_and_base_of_agree(self, seed):
        g = _random_graph(seed)
        pg = persona_graph(g)
        offsets = pg.persona_offsets
        assert offsets[0] == 0
        assert offsets[-1] == pg.num_personas == pg.graph.num_nodes
        counts = np.diff(offsets)
        assert np.all(counts >= 1)  # every base node keeps >= 1 persona
        assert np.array_equal(
            pg.base_of,
            np.repeat(np.arange(g.num_nodes, dtype=np.int64), counts))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_personas_of_tiles_the_id_space(self, seed):
        g = _random_graph(seed)
        pg = persona_graph(g)
        tiled = np.concatenate([pg.personas_of(u)
                                for u in range(g.num_nodes)])
        assert np.array_equal(tiled,
                              np.arange(pg.num_personas, dtype=np.int64))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_persona_count_bounded_by_degree(self, seed):
        g = _random_graph(seed)
        pg = persona_graph(g)
        counts = np.diff(pg.persona_offsets)
        assert np.all(counts <= np.maximum(g.degrees, 1))


class TestZeroDegreeNodes:
    def test_isolated_nodes_keep_one_persona(self):
        # Nodes 3 and 4 have no edges at all.
        g = CSRGraph.from_edges([(0, 1), (1, 2)], num_nodes=5)
        pg = persona_graph(g)
        for u in (3, 4):
            assert pg.personas_of(u).size == 1
            p = int(pg.personas_of(u)[0])
            assert pg.graph.neighbors(p).size == 0

    def test_edgeless_graph(self):
        g = CSRGraph.from_edges([], num_nodes=4)
        pg = persona_graph(g)
        assert pg.num_personas == 4
        assert pg.graph.num_edges == 0
        assert np.array_equal(pg.base_of, np.arange(4))


class TestRelabelRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_induced_subgraph_of_all_personas_is_identity(self, seed):
        g = _random_graph(seed)
        pg = persona_graph(g)
        sub, old_ids = induced_subgraph(
            pg.graph, np.arange(pg.num_personas, dtype=np.int64))
        assert np.array_equal(old_ids,
                              np.arange(pg.num_personas, dtype=np.int64))
        assert np.array_equal(sub.indptr, pg.graph.indptr)
        assert np.array_equal(sub.indices, pg.graph.indices)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_one_base_nodes_personas_induce_an_edgeless_graph(self, seed):
        # Personas of one base node are never adjacent to each other
        # (a node's arcs all leave its ego, never cross personas).
        g = _random_graph(seed)
        pg = persona_graph(g)
        u = int(np.argmax(np.diff(pg.persona_offsets)))
        sub, _ = induced_subgraph(pg.graph, pg.personas_of(u))
        assert sub.num_edges == 0


class TestDeterminismAndKnownGraphs:
    def test_deterministic(self, medium_graph):
        a = persona_graph(medium_graph)
        b = persona_graph(medium_graph)
        assert np.array_equal(a.graph.indptr, b.graph.indptr)
        assert np.array_equal(a.graph.indices, b.graph.indices)
        assert np.array_equal(a.base_of, b.base_of)

    def test_triangle_does_not_split(self, triangle):
        # Every ego-net of a triangle is a single edge: one community.
        pg = persona_graph(triangle)
        assert pg.num_personas == 3
        assert np.array_equal(pg.graph.indptr, triangle.indptr)
        assert np.array_equal(pg.graph.indices, triangle.indices)

    def test_star_centre_splits_per_leaf(self, star_graph):
        # The centre's ego-net is edgeless: one persona per leaf.
        pg = persona_graph(star_graph)
        leaves = star_graph.num_nodes - 1
        assert pg.personas_of(0).size == leaves
        assert pg.num_personas == 2 * leaves
        # Every persona edge is a 2-node component: persona degree 1.
        assert np.all(np.diff(pg.graph.indptr) == 1)

    def test_ring_of_cliques_splits_bridge_nodes(self):
        g = ring_of_cliques(4, 5)
        pg = persona_graph(g)
        # Bridge endpoints see two ego-net components (their clique and
        # the far bridge endpoint), everyone else one.
        counts = np.diff(pg.persona_offsets)
        assert counts.max() >= 2
        assert counts.min() == 1

    def test_single_label_labeler_is_identity(self, medium_graph):
        ones = lambda graph, u, nbrs: np.zeros(nbrs.size, dtype=np.int64)
        pg = persona_graph(medium_graph, communities=ones)
        assert pg.num_personas == medium_graph.num_nodes
        assert np.array_equal(pg.graph.indptr, medium_graph.indptr)
        assert np.array_equal(pg.graph.indices, medium_graph.indices)


class TestEgoNetCommunities:
    def test_star_centre_all_separate(self, star_graph):
        nbrs = star_graph.neighbors(0)
        labels = ego_net_communities(star_graph, 0, nbrs)
        assert np.array_equal(labels, np.arange(nbrs.size))

    def test_clique_single_community(self):
        g = ring_of_cliques(1, 6)
        nbrs = g.neighbors(0)
        labels = ego_net_communities(g, 0, nbrs)
        assert np.array_equal(labels, np.zeros(nbrs.size, dtype=np.int64))

    def test_labels_compact_in_first_appearance_order(self):
        # Two triangles sharing node 0: neighbours sorted = [1, 2, 3, 4];
        # {1, 2} and {3, 4} are the components, labelled 0 and 1.
        g = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2),
                                 (0, 3), (0, 4), (3, 4)])
        labels = ego_net_communities(g, 0, g.neighbors(0))
        assert np.array_equal(labels, [0, 0, 1, 1])


class TestValidation:
    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            persona_graph(g)

    def test_bad_labeler_shape_rejected(self, triangle):
        bad = lambda graph, u, nbrs: np.zeros(nbrs.size + 1, dtype=np.int64)
        with pytest.raises(ValueError, match="shape"):
            persona_graph(triangle, communities=bad)

    def test_negative_labels_rejected(self, triangle):
        bad = lambda graph, u, nbrs: np.full(nbrs.size, -1, dtype=np.int64)
        with pytest.raises(ValueError, match="non-negative"):
            persona_graph(triangle, communities=bad)
