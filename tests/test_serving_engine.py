"""Query-engine front-end tests: parity, lifecycle, accounting.

The serving determinism contract (see :mod:`repro.serving.engine`):
multi-worker responses are **byte-identical** to in-process responses --
ids and scores, tied scores included -- because a request batch is the
unit of dispatch and is scored by one matmul wherever it runs.  The
lifecycle contract: graceful shutdown drains the pool and releases every
shared segment; per-request failures surface from ``result()`` without
tearing the pool down; a closed engine refuses further queries.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serving import (
    EmbeddingStore,
    QueryEngine,
    zipf_query_trace,
)

SHM_DIR = "/dev/shm"


def shm_segments() -> set:
    return set(os.listdir(SHM_DIR)) if os.path.isdir(SHM_DIR) else set()


def tied_matrix(n=40, d=6, seed=0) -> np.ndarray:
    """Integer-valued float32 matrix: exact dots, ties everywhere."""
    rng = np.random.default_rng(seed)
    return rng.integers(-2, 3, size=(n, d)).astype(np.float32)


def assert_byte_equal(a, b):
    assert a.ids.tobytes() == b.ids.tobytes()
    assert a.scores.tobytes() == b.scores.tobytes()


# --------------------------------------------------------------------- #
# Parity
# --------------------------------------------------------------------- #


class TestParity:
    def test_multiworker_matches_inprocess_bytes_under_ties(self):
        matrix = tied_matrix()
        batches = zipf_query_trace(200, 40, batch_size=16, seed=3)
        with EmbeddingStore.from_array(matrix, mode="shared") as store:
            with QueryEngine(store, workers=2, metric="dot") as pool:
                pooled = [pool.submit(b, k=7) for b in batches]
                pooled = [p.result() for p in pooled]
            with QueryEngine(store, workers=0, metric="dot") as solo:
                serial = [solo.query(b, k=7) for b in batches]
        for got, want in zip(pooled, serial):
            assert_byte_equal(got, want)

    def test_parity_over_mmap_store(self, tmp_path):
        matrix = tied_matrix(seed=5)
        path = str(tmp_path / "emb.npy")
        np.save(path, matrix)
        nodes = np.arange(10, dtype=np.int64)
        with EmbeddingStore.open(path) as store:
            assert store.mode == "mmap"
            with QueryEngine(store, workers=1) as pool:
                pooled = pool.query(nodes, k=5)
            with QueryEngine(store, workers=0) as solo:
                serial = solo.query(nodes, k=5)
        assert_byte_equal(pooled, serial)

    def test_parity_with_candidates_and_options(self):
        matrix = tied_matrix(seed=7)
        cand = np.arange(5, 35)
        exclude = [np.array([6, 7])] + [np.empty(0, dtype=np.int64)] * 3
        nodes = np.array([0, 6, 20, 39])
        with EmbeddingStore.from_array(matrix, mode="shared") as store:
            with QueryEngine(store, workers=1, metric="dot",
                             candidates=cand) as pool:
                pooled = pool.query(nodes, k=6, exclude=exclude)
            with QueryEngine(store, workers=0, metric="dot",
                             candidates=cand) as solo:
                serial = solo.query(nodes, k=6, exclude=exclude)
        assert_byte_equal(pooled, serial)
        # Excluded and out-of-catalogue ids never appear.
        assert not np.isin(pooled.ids[0], [6, 7]).any()
        valid = pooled.ids[pooled.ids >= 0]
        assert np.isin(valid, cand).all()

    def test_bare_matrix_and_per_call_overrides(self):
        matrix = tied_matrix(seed=11)
        with QueryEngine(matrix, workers=0) as engine:
            cosine = engine.query([3], k=4)
            dot = engine.query([3], k=4, metric="dot")
        with QueryEngine(matrix, workers=1) as engine:
            pooled_cos = engine.query([3], k=4)
            pooled_dot = engine.query([3], k=4, metric="dot")
        assert_byte_equal(cosine, pooled_cos)
        assert_byte_equal(dot, pooled_dot)


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_close_releases_every_segment(self):
        before = shm_segments()
        store = EmbeddingStore.from_array(tied_matrix(), mode="shared")
        engine = QueryEngine(store, workers=1,
                             candidates=np.arange(20), close_store=True)
        engine.query([0], k=3)
        assert shm_segments() - before  # segments live while serving
        engine.close()
        assert shm_segments() - before == set()

    def test_closed_engine_refuses_queries(self):
        engine = QueryEngine(tied_matrix(), workers=0)
        engine.close()
        with pytest.raises(RuntimeError, match="shut down"):
            engine.query([0], k=1)
        engine.close()  # idempotent

    def test_failed_request_does_not_kill_the_pool(self):
        with QueryEngine(tied_matrix(), workers=1) as engine:
            with pytest.raises(ValueError, match="query nodes"):
                engine.query([10_000], k=3)
            # The pool survives and keeps answering.
            result = engine.query([1], k=3)
            assert (result.ids >= 0).all()

    def test_constructor_failure_leaks_nothing(self):
        before = shm_segments()
        with pytest.raises(ValueError, match="workers"):
            QueryEngine(tied_matrix(), workers=-1)
        with pytest.raises(ValueError, match="metric"):
            QueryEngine(tied_matrix(), workers=0, metric="nope")
        with pytest.raises(ValueError, match="candidate ids"):
            QueryEngine(tied_matrix(), workers=0,
                        candidates=np.array([10_000]))
        assert shm_segments() - before == set()

    def test_memory_store_rejected_for_workers(self):
        store = EmbeddingStore.from_array(tied_matrix(), mode="memory")
        with pytest.raises(ValueError, match="no cross-process handle"):
            QueryEngine(store, workers=1)
        store.close()


# --------------------------------------------------------------------- #
# Latency accounting
# --------------------------------------------------------------------- #


class TestLatencyAccounting:
    def test_inprocess_summary_shape(self):
        with QueryEngine(tied_matrix(), workers=0) as engine:
            for _ in range(5):
                engine.query([1, 2], k=3)
            summary = engine.latency_summary()
        assert set(summary) == {"inprocess", "overall"}
        stats = summary["overall"]
        assert stats["count"] == 5.0
        assert set(stats) == {"count", "mean", "p50", "p99"}
        assert 0.0 <= stats["p50"] <= stats["p99"]

    def test_worker_summary_tags_pids_and_sums_to_overall(self):
        with QueryEngine(tied_matrix(), workers=1) as engine:
            handles = [engine.submit([i], k=2) for i in range(6)]
            for handle in handles:
                handle.result()
            summary = engine.latency_summary()
        workers = [tag for tag in summary if tag.startswith("worker-")]
        assert workers  # at least one pid-tagged entry
        assert summary["overall"]["count"] == 6.0
        assert sum(summary[w]["count"] for w in workers) == 6.0

    def test_empty_engine_has_empty_summary(self):
        with QueryEngine(tied_matrix(), workers=0) as engine:
            assert engine.latency_summary() == {}


# --------------------------------------------------------------------- #
# API entry point
# --------------------------------------------------------------------- #


class TestServeEmbeddingsApi:
    def test_array_text_and_npy_sources_agree(self, tmp_path):
        from repro.api import serve_embeddings
        from repro.graph.io import save_embeddings

        matrix = tied_matrix(seed=13)
        npy = str(tmp_path / "m.npy")
        txt = str(tmp_path / "m.emb")
        np.save(npy, matrix)
        save_embeddings(txt, matrix)
        nodes = np.array([0, 5, 9])
        answers = []
        for source in (matrix, npy, txt):
            with serve_embeddings(source, metric="dot") as engine:
                answers.append(engine.query(nodes, k=4))
        assert_byte_equal(answers[0], answers[1])
        # Text round-trips through decimal formatting; ids still agree
        # because integer-valued float32 survives the text round trip.
        assert_byte_equal(answers[0], answers[2])

    def test_existing_store_is_not_closed(self):
        from repro.api import serve_embeddings

        store = EmbeddingStore.from_array(tied_matrix(), mode="shared")
        with serve_embeddings(store, workers=1) as engine:
            engine.query([0], k=2)
        assert store.embeddings is not None  # caller still owns it
        store.close()
