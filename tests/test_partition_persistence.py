"""Tests for partition save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition import MPGPPartitioner
from repro.partition.persistence import load_partition, save_partition


@pytest.fixture
def result(medium_graph):
    return MPGPPartitioner(seed=0).partition(medium_graph, 4)


class TestRoundTrip:
    def test_assignment_exact(self, result, tmp_path):
        path = str(tmp_path / "part.npz")
        save_partition(result, path)
        restored = load_partition(path)
        assert np.array_equal(restored.assignment, result.assignment)
        assert restored.num_parts == result.num_parts
        assert restored.method == result.method
        assert restored.seconds == pytest.approx(result.seconds)

    def test_extras_preserved(self, result, tmp_path):
        result.extras["order_seconds"] = 1.25
        path = str(tmp_path / "part.npz")
        save_partition(result, path)
        restored = load_partition(path)
        assert restored.extras["order_seconds"] == pytest.approx(1.25)

    def test_graph_validation(self, result, medium_graph, tmp_path,
                              triangle):
        path = str(tmp_path / "part.npz")
        save_partition(result, path)
        load_partition(path, graph=medium_graph)  # matching graph: fine
        with pytest.raises(ValueError, match="covers"):
            load_partition(path, graph=triangle)

    def test_version_check(self, result, tmp_path):
        path = str(tmp_path / "part.npz")
        save_partition(result, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.array([42])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_partition(path)

    def test_creates_directories(self, result, tmp_path):
        path = str(tmp_path / "a" / "b" / "part.npz")
        save_partition(result, path)
        assert load_partition(path).num_parts == 4

    def test_restored_partition_drives_a_cluster(self, result, medium_graph,
                                                 tmp_path):
        """The round-tripped assignment is directly usable."""
        from repro.runtime import Cluster
        from repro.walks import DistributedWalkEngine, WalkConfig

        path = str(tmp_path / "part.npz")
        save_partition(result, path)
        restored = load_partition(path, graph=medium_graph)
        cluster = Cluster(4, restored.assignment, seed=0)
        out = DistributedWalkEngine(
            medium_graph, cluster,
            WalkConfig.routine(kernel="deepwalk", walk_length=5,
                               walks_per_node=1),
        ).run()
        assert out.corpus.num_walks > 0
