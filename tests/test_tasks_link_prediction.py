"""Edge cases of the link-prediction harness (tasks/link_prediction.py).

The degenerate inputs an evaluation protocol actually meets: empty test
splits (every edge removal would isolate an endpoint), one-class
candidate sets, duplicate edges in the eval set -- pinned so the harness
fails loudly instead of reporting a meaningless AUC.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, powerlaw_cluster, star
from repro.tasks import (
    LinkPredictionSplit,
    auc_from_split,
    evaluate_link_prediction,
    pair_scores,
    split_edges,
)
from repro.tasks.metrics import auc_score


@pytest.fixture
def embeddings(rng):
    return rng.standard_normal((12, 8))


class TestPairScores:
    def test_matches_manual_dot_products(self, embeddings):
        pairs = np.array([(0, 1), (2, 3), (4, 4)])
        scores = pair_scores(embeddings, pairs)
        for k, (u, v) in enumerate(pairs):
            assert scores[k] == pytest.approx(embeddings[u] @ embeddings[v])

    def test_empty_pairs_give_empty_scores(self, embeddings):
        scores = pair_scores(embeddings, np.empty((0, 2), dtype=np.int64))
        assert scores.shape == (0,)

    def test_duplicate_pairs_score_identically(self, embeddings):
        scores = pair_scores(embeddings, np.array([(1, 2), (1, 2), (1, 2)]))
        assert scores[0] == scores[1] == scores[2]


class TestEmptyTestSplit:
    def test_star_split_removes_no_edges(self):
        # Every star edge has a degree-1 leaf endpoint, so
        # keep_connected_sources skips every removal: the split is
        # well-formed but empty.
        split = split_edges(star(8), test_fraction=0.5, seed=0)
        assert split.test_positive.shape[0] == 0
        assert split.test_negative.shape[0] == 0
        assert split.train_graph.num_edges == star(8).num_edges

    def test_auc_on_empty_split_fails_loudly(self, embeddings):
        split = LinkPredictionSplit(
            train_graph=star(8),
            test_positive=np.empty((0, 2), dtype=np.int64),
            test_negative=np.empty((0, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="at least one score"):
            auc_from_split(embeddings[:9], split)

    def test_too_small_graph_rejected_up_front(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        with pytest.raises(ValueError, match="too small"):
            split_edges(g, test_fraction=0.5)


class TestOneClassCandidateSets:
    """AUC needs both classes; one-sided candidate sets are an error,
    not a silent 0.0 or 1.0."""

    def test_all_positive_candidates_rejected(self, embeddings):
        split = LinkPredictionSplit(
            train_graph=star(8),
            test_positive=np.array([(0, 1), (0, 2)]),
            test_negative=np.empty((0, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="at least one score"):
            auc_from_split(embeddings, split)

    def test_all_negative_candidates_rejected(self, embeddings):
        split = LinkPredictionSplit(
            train_graph=star(8),
            test_positive=np.empty((0, 2), dtype=np.int64),
            test_negative=np.array([(3, 5), (4, 6)]))
        with pytest.raises(ValueError, match="at least one score"):
            auc_from_split(embeddings, split)

    def test_separable_split_scores_one(self):
        # Embeddings crafted so every positive pair out-scores every
        # negative pair: AUC is exactly 1.
        emb = np.zeros((4, 2))
        emb[0] = emb[1] = (1.0, 0.0)    # positive pair: score 1
        emb[2] = emb[3] = (-1.0, 0.0)   # negative pair vs 0: score -1...
        split = LinkPredictionSplit(
            train_graph=star(3),
            test_positive=np.array([(0, 1)]),
            test_negative=np.array([(0, 2), (0, 3)]))
        assert auc_from_split(emb, split) == pytest.approx(1.0)

    def test_constant_scores_give_half(self):
        emb = np.ones((4, 3))
        split = LinkPredictionSplit(
            train_graph=star(3),
            test_positive=np.array([(0, 1)]),
            test_negative=np.array([(2, 3)]))
        assert auc_from_split(emb, split) == pytest.approx(0.5)


class TestDuplicateEvalEdges:
    def test_duplicates_keep_auc_in_range_and_deterministic(self, rng):
        emb = rng.standard_normal((10, 4))
        pos = np.array([(0, 1), (0, 1), (2, 3)])  # (0, 1) listed twice
        neg = np.array([(4, 5), (6, 7), (6, 7)])
        split = LinkPredictionSplit(train_graph=star(9),
                                    test_positive=pos, test_negative=neg)
        auc = auc_from_split(emb, split)
        assert 0.0 <= auc <= 1.0
        assert auc == auc_from_split(emb, split)

    def test_duplicates_reweight_their_edge(self):
        # One positive scoring below both negatives, one above; the AUC
        # moves with the duplicate count -- duplicates are weight, not
        # noise to be deduped silently.
        pos = np.array([2.0, 0.0])
        neg = np.array([1.0, 1.0])
        base = auc_score(pos, neg)
        doubled = auc_score(np.array([2.0, 0.0, 0.0]), neg)
        assert base == pytest.approx(0.5)
        assert doubled < base

    def test_perfectly_separated_duplicates_still_score_one(self):
        assert auc_score(np.array([3.0, 3.0, 2.0]),
                         np.array([1.0, 1.0])) == pytest.approx(1.0)


class TestEvaluateProtocol:
    def test_runs_trials_on_residual_graphs(self):
        graph = powerlaw_cluster(60, attach=3, seed=4)
        seen = []

        def embed(train_graph):
            seen.append(train_graph.num_edges)
            rng = np.random.default_rng(0)
            return rng.standard_normal((train_graph.num_nodes, 8))

        report = evaluate_link_prediction(graph, embed, trials=3,
                                          test_fraction=0.3, seed=1)
        assert len(report.aucs) == 3
        assert all(0.0 <= auc <= 1.0 for auc in report.aucs)
        assert all(m < graph.num_edges for m in seen)  # edges held out
        assert report.mean_auc == pytest.approx(np.mean(report.aucs))
        assert report.std_auc == pytest.approx(np.std(report.aucs))

    def test_deterministic_under_seed(self):
        graph = powerlaw_cluster(60, attach=3, seed=4)
        embed = lambda g: np.random.default_rng(0).standard_normal(
            (g.num_nodes, 8))
        a = evaluate_link_prediction(graph, embed, trials=2, seed=9)
        b = evaluate_link_prediction(graph, embed, trials=2, seed=9)
        assert a.aucs == b.aucs
