"""Dynamic update path: invalidation audits, warm-start refresh, parity.

Covers the mutation seams end to end: the stale-walk audits
(:mod:`repro.dynamic.invalidate`), the in-place corpus splice
(:meth:`Corpus.replace_walks` -- the streaming-contract regression
suite), and the full :func:`repro.dynamic.update_embedding` /
:func:`repro.apply_edge_stream` orchestration, including the
serial/process/pipeline byte-parity of an update step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import apply_edge_stream, embed_graph
from repro.dynamic.delta import DeltaCSR, EdgeStream, random_churn
from repro.dynamic.invalidate import (
    affected_nodes,
    audit_walks,
    stale_walk_ids,
)
from repro.dynamic.update import update_embedding
from repro.graph import powerlaw_cluster
from repro.graph.csr import CSRGraph
from repro.walks import Corpus, CorpusFeed
from repro.walks.engine import WalkConfig

SMALL = dict(num_machines=2, dim=12, epochs=2, seed=7)


# --------------------------------------------------------------------- #
# Invalidation audits
# --------------------------------------------------------------------- #


class TestInvalidation:
    def test_arc_audit_flags_traversed_pairs_only(self):
        tokens = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        offsets = np.array([0, 3, 5], dtype=np.int64)
        stale = stale_walk_ids(tokens, offsets, arcs=[[1, 2]], num_nodes=5)
        np.testing.assert_array_equal(stale, [0])
        # the (2, 3) pair straddles the walk boundary: no walk owns it
        stale = stale_walk_ids(tokens, offsets, arcs=[[2, 3]], num_nodes=5)
        assert stale.size == 0

    def test_node_audit_flags_visiting_walks(self):
        tokens = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        offsets = np.array([0, 3, 5], dtype=np.int64)
        stale = stale_walk_ids(tokens, offsets, nodes=[4], num_nodes=5)
        np.testing.assert_array_equal(stale, [1])
        both = stale_walk_ids(tokens, offsets, nodes=[4], arcs=[[1, 2]],
                              num_nodes=5)
        np.testing.assert_array_equal(both, [0, 1])

    def test_affected_nodes_kernel_ladder(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        arcs = np.array([[1, 2], [2, 1]])
        # walk-local kernels: only the endpoints are dirty
        np.testing.assert_array_equal(
            affected_nodes(arcs, kernel="deepwalk"), [1, 2])
        # HuGE reads the candidate's adjacency: expand with neighbours
        expanded = affected_nodes(arcs, kernel="huge", old_graph=graph)
        np.testing.assert_array_equal(expanded, [0, 1, 2, 3])
        # old + new graph expansion is conservative: a superset of either
        both = affected_nodes(arcs, kernel="huge", old_graph=graph,
                              new_graph=graph)
        assert set(expanded) <= set(both)

    def test_audit_walks_validates_mode(self):
        corpus = Corpus(4)
        corpus.add_walk([0, 1])
        with pytest.raises(ValueError, match="audit"):
            audit_walks(corpus, np.empty((0, 2)), audit="bogus")


# --------------------------------------------------------------------- #
# Corpus splice (the satellite-3 streaming-contract regression suite)
# --------------------------------------------------------------------- #


def _padded(rows):
    lengths = np.array([len(r) for r in rows], dtype=np.int64)
    paths = np.full((len(rows), int(lengths.max())), -1, dtype=np.int64)
    for i, row in enumerate(rows):
        paths[i, :len(row)] = row
    return paths, lengths


class TestReplaceWalks:
    def build(self):
        corpus = Corpus(10)
        for walk in ([0, 1, 2], [3, 4], [5, 6, 7, 8], [9, 0]):
            corpus.add_walk(walk)
        return corpus

    def test_equal_length_overwrites_in_place(self):
        corpus = self.build()
        feed = CorpusFeed(corpus)
        before_prefix = corpus.ready_prefix
        paths, lengths = _padded([[7, 8], [2, 3, 4, 5]])
        corpus.replace_walks([1, 2], paths, lengths)
        np.testing.assert_array_equal(corpus.walk(1), [7, 8])
        np.testing.assert_array_equal(corpus.walk(2), [2, 3, 4, 5])
        np.testing.assert_array_equal(corpus.walk(0), [0, 1, 2])
        np.testing.assert_array_equal(corpus.walk(3), [9, 0])
        # the streaming contract: the prefix never shrank, the feed is
        # still consistent, and the lengths view tracks the patch
        assert corpus.ready_prefix == before_prefix
        feed.publish(corpus.ready_prefix)  # must not raise (no shrink)
        np.testing.assert_array_equal(corpus.walk_lengths, [3, 2, 4, 2])

    def test_occurrences_patched_incrementally(self):
        corpus = self.build()
        paths, lengths = _padded([[9, 9, 9]])
        corpus.replace_walks([0], paths, lengths)
        recount = np.bincount(np.asarray(corpus.tokens),
                              minlength=corpus.num_nodes)
        np.testing.assert_array_equal(corpus.occurrences, recount)

    def test_length_change_rebuild_keeps_other_walks(self):
        corpus = self.build()
        reference = [np.asarray(corpus.walk(i)).copy() for i in range(4)]
        paths, lengths = _padded([[1], [2, 3, 4, 5, 6]])
        corpus.replace_walks([0, 3], paths, lengths)
        np.testing.assert_array_equal(corpus.walk(0), [1])
        np.testing.assert_array_equal(corpus.walk(1), reference[1])
        np.testing.assert_array_equal(corpus.walk(2), reference[2])
        np.testing.assert_array_equal(corpus.walk(3), [2, 3, 4, 5, 6])
        offsets = np.asarray(corpus.offsets)
        assert offsets[0] == 0
        assert (np.diff(offsets) > 0).all()
        assert corpus.total_tokens == offsets[-1] == 1 + 2 + 4 + 5
        assert corpus.ready_prefix == 4
        recount = np.bincount(np.asarray(corpus.tokens),
                              minlength=corpus.num_nodes)
        np.testing.assert_array_equal(corpus.occurrences, recount)

    def test_validation_errors(self):
        corpus = self.build()
        paths, lengths = _padded([[1, 2]])
        with pytest.raises(ValueError, match="out of range"):
            corpus.replace_walks([4], paths, lengths)
        with pytest.raises(ValueError, match="duplicate"):
            corpus.replace_walks([1, 1], *_padded([[1], [2]]))
        with pytest.raises(ValueError, match="at least one token"):
            corpus.replace_walks([0], paths, np.array([0]))
        with pytest.raises(ValueError, match="universe"):
            corpus.replace_walks([0], *_padded([[10, 11]]))
        with pytest.raises(ValueError, match="parallel"):
            corpus.replace_walks([0, 1], paths, lengths)

    def test_spilled_corpus_splice(self, tmp_path):
        corpus = self.build()
        corpus.spill_to(str(tmp_path))
        paths, lengths = _padded([[2, 3, 4, 5, 6], [7]])
        corpus.replace_walks([0, 2], paths, lengths)
        np.testing.assert_array_equal(corpus.walk(0), [2, 3, 4, 5, 6])
        np.testing.assert_array_equal(corpus.walk(1), [3, 4])
        np.testing.assert_array_equal(corpus.walk(2), [7])
        np.testing.assert_array_equal(corpus.walk(3), [9, 0])
        assert corpus.is_spilled
        recount = np.bincount(np.asarray(corpus.tokens),
                              minlength=corpus.num_nodes)
        np.testing.assert_array_equal(corpus.occurrences, recount)
        corpus.close()


# --------------------------------------------------------------------- #
# update_embedding orchestration
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def base_graph():
    return powerlaw_cluster(60, attach=3, triangle_prob=0.3, seed=4)


@pytest.fixture(scope="module")
def churn(base_graph):
    return random_churn(base_graph, 0.05, seed=1)


class TestUpdateEmbedding:
    def test_update_matches_delta_and_preserves_untouched_rows(
            self, base_graph):
        # 1% churn: small enough that some nodes appear in no stale walk
        churn = random_churn(base_graph, 0.01, seed=1)
        prev = embed_graph(base_graph, **SMALL)
        before = prev.embeddings.copy()
        changed = DeltaCSR(base_graph).apply(churn).changed_arcs()
        stale_ids = audit_walks(prev.corpus, changed, kernel="huge",
                                audit="arc")  # before the in-place patch
        result = apply_edge_stream(base_graph, churn, prev, audit="arc",
                                   **SMALL)
        reference = DeltaCSR(base_graph).apply(churn).compact()
        np.testing.assert_array_equal(result.graph.indptr,
                                      reference.indptr)
        np.testing.assert_array_equal(result.graph.indices,
                                      reference.indices)
        assert result.stats["stale_walks"] > 0
        assert result.stats["stale_walks"] < result.stats["total_walks"]
        assert result.corpus is prev.corpus  # patched in place
        assert result.embeddings.shape == before.shape
        assert np.isfinite(result.embeddings).all()
        # train_scope="stale": a node absent from every (resampled)
        # stale walk keeps its warm-start input vector byte for byte
        assert result.stats["stale_walks"] == stale_ids.size
        offsets = np.asarray(result.corpus.offsets)
        tokens = np.asarray(result.corpus.tokens)
        touched = np.zeros(result.graph.num_nodes, dtype=bool)
        for wid in stale_ids:
            touched[tokens[offsets[wid]:offsets[wid + 1]]] = True
        untouched = np.flatnonzero(~touched)
        assert untouched.size  # the churn is small; most rows untouched
        np.testing.assert_array_equal(result.embeddings[untouched],
                                      before[untouched])

    def test_noop_stream_short_circuits(self, base_graph):
        prev = embed_graph(base_graph, **SMALL)
        noop = EdgeStream.from_edits(deletes=[(0, 59)] if not
                                     base_graph.has_edge(0, 59) else
                                     [(58, 59)])
        assert not base_graph.has_edge(*[int(x) for x in
                                         (noop.src[0], noop.dst[0])])
        result = update_embedding(
            base_graph, noop, corpus=prev.corpus,
            embeddings=prev.embeddings, model=prev.model,
            walk_machines=prev.walk_machines, assignment=prev.assignment,
            num_machines=2, seed=7)
        assert result.stats["stale_walks"] == 0
        assert result.embeddings is prev.embeddings
        np.testing.assert_array_equal(result.graph.indptr,
                                      base_graph.indptr)

    def test_update_is_deterministic(self, base_graph, churn):
        outs = []
        for _ in range(2):
            prev = embed_graph(base_graph, **SMALL)
            result = apply_edge_stream(base_graph, churn, prev,
                                       audit="arc", **SMALL)
            outs.append(result.embeddings)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_executor_byte_parity(self, base_graph, churn):
        """One update step is byte-identical across execution modes."""
        outs = {}
        for execution, workers in (("serial", 0), ("process", 2),
                                   ("pipeline", 2)):
            prev = embed_graph(base_graph, execution=execution,
                               workers=workers, **SMALL)
            result = apply_edge_stream(base_graph, churn, prev,
                                       audit="arc", execution=execution,
                                       workers=workers, **SMALL)
            outs[execution] = result.embeddings
        np.testing.assert_array_equal(outs["serial"], outs["process"])
        np.testing.assert_array_equal(outs["serial"], outs["pipeline"])

    def test_new_node_grows_universe(self, base_graph):
        prev = embed_graph(base_graph, **SMALL)
        stream = EdgeStream.from_edits(inserts=[(0, 63)])
        result = apply_edge_stream(base_graph, stream, prev, **SMALL)
        assert result.graph.num_nodes == 64
        assert result.embeddings.shape[0] == 64
        assert result.assignment.size == 64
        assert np.isfinite(result.embeddings).all()

    def test_chained_updates(self, base_graph):
        prev = embed_graph(base_graph, **SMALL)
        step1 = apply_edge_stream(base_graph,
                                  random_churn(base_graph, 0.03, seed=2),
                                  prev, **SMALL)
        step2 = apply_edge_stream(step1.graph,
                                  random_churn(step1.graph, 0.03, seed=3),
                                  step1, **SMALL)
        assert step2.embeddings.shape[1] == SMALL["dim"]
        assert np.isfinite(step2.embeddings).all()

    def test_store_refreshed_in_place(self, base_graph, churn):
        from repro.serving.store import EmbeddingStore

        prev = embed_graph(base_graph, **SMALL)
        store = EmbeddingStore.from_array(
            prev.embeddings.astype(np.float32), mode="shared")
        try:
            assert store.generation == 0
            result = apply_edge_stream(base_graph, churn, prev,
                                       audit="arc", store=store, **SMALL)
            assert store.generation > 0
            np.testing.assert_array_equal(
                np.asarray(store.embeddings),
                result.embeddings.astype(np.float32))
        finally:
            store.close()

    def test_full_scope_touches_every_row(self, base_graph, churn):
        prev = embed_graph(base_graph, **SMALL)
        result = apply_edge_stream(base_graph, churn, prev, audit="arc",
                                   train_scope="full", **SMALL)
        assert result.stats["train_tokens"] >= \
            result.corpus.total_tokens  # one epoch sweeps the corpus

    def test_validation(self, base_graph, churn):
        prev = embed_graph(base_graph, **SMALL)
        with pytest.raises(ValueError, match="train_scope"):
            apply_edge_stream(base_graph, churn, prev,
                              train_scope="bogus", **SMALL)
        with pytest.raises(ValueError, match="update_epochs"):
            apply_edge_stream(base_graph, churn, prev, update_epochs=0,
                              **SMALL)
        with pytest.raises(ValueError, match="fullpath"):
            update_embedding(
                base_graph, churn, corpus=prev.corpus,
                embeddings=prev.embeddings,
                walk_config=WalkConfig.huge_d())
