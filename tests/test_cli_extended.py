"""Tests for the cluster / similar / stats CLI subcommands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import save_embeddings


class TestParserExtensions:
    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.k == 5
        assert args.method == "distger"

    def test_similar_requires_node(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["similar"])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "--dataset", "TW"])
        assert args.dataset == "TW"

    def test_alias_kernel_accepted(self):
        args = build_parser().parse_args(
            ["embed", "--kernel", "node2vec-alias"])
        assert args.kernel == "node2vec-alias"


class TestClusterCommand:
    def test_reports_nmi_on_labelled_dataset(self, capsys):
        code = main([
            "cluster", "--dataset", "FL", "--scale", "0.2",
            "--dim", "16", "--epochs", "1", "--machines", "2", "--k", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "modularity" in out
        assert "NMI" in out  # FL stand-in carries planted communities

    def test_edge_list_has_no_ground_truth(self, tmp_path, capsys):
        edge_file = tmp_path / "g.txt"
        rng = np.random.default_rng(0)
        edges = {(int(a), int(b))
                 for a, b in rng.integers(0, 30, size=(200, 2)) if a != b}
        edge_file.write_text(
            "\n".join(f"{a} {b}" for a, b in sorted(edges)))
        code = main([
            "cluster", "--edges", str(edge_file), "--dim", "8",
            "--epochs", "1", "--machines", "2", "--k", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "modularity" in out
        assert "NMI" not in out


class TestSimilarCommand:
    def test_lists_neighbours(self, capsys):
        code = main([
            "similar", "--dataset", "FL", "--scale", "0.2",
            "--dim", "16", "--epochs", "1", "--machines", "2",
            "--node", "0", "--k", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "top-5" in out
        assert len([l for l in out.splitlines() if l.startswith("  ")]) == 5

    def test_reuses_saved_embeddings(self, tmp_path, capsys):
        emb = np.random.default_rng(0).normal(size=(50, 4))
        path = str(tmp_path / "e.txt")
        save_embeddings(path, emb)
        code = main([
            "similar", "--dataset", "FL", "--scale", "0.1",
            "--node", "1", "--k", "3", "--embeddings", path,
        ])
        assert code == 0
        assert "top-3" in capsys.readouterr().out

    def test_node_out_of_range(self, capsys):
        code = main([
            "similar", "--dataset", "FL", "--scale", "0.1",
            "--node", "999999", "--k", "3",
        ])
        assert code == 2
        assert "outside" in capsys.readouterr().err


class TestStatsCommand:
    def test_prints_statistics(self, capsys):
        code = main(["stats", "--dataset", "YT", "--scale", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        for field in ("nodes", "edges", "average degree", "degree gini",
                      "approx. diameter", "clustering coeff"):
            assert field in out

    def test_edge_list_stats(self, tmp_path, capsys):
        edge_file = tmp_path / "tri.txt"
        edge_file.write_text("0 1\n1 2\n0 2\n")
        code = main(["stats", "--edges", str(edge_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "nodes" in out and "3" in out
