"""Tests for RNG management, timers, and validation helpers."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    check_fraction,
    check_positive,
    check_probability,
    default_rng,
    spawn_rngs,
)
from repro.utils.rng import derive_seed
from repro.utils.validation import check_int_in_range


class TestRNG:
    def test_default_rng_from_int(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert default_rng(gen) is gen

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(7, 3)
        draws = [s.random(4) for s in streams]
        assert not np.allclose(draws[0], draws[1])
        # Reproducible.
        again = [s.random(4) for s in spawn_rngs(7, 3)]
        np.testing.assert_array_equal(draws[0], again[0])

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_derive_seed(self):
        assert derive_seed(None, 1) is None
        assert derive_seed(5, 1) != derive_seed(5, 2)
        assert derive_seed(5, 1) == derive_seed(5, 1)


class TestTimer:
    def test_phase_accumulates(self):
        t = Timer()
        with t.phase("a"):
            time.sleep(0.01)
        with t.phase("a"):
            time.sleep(0.01)
        assert t.get("a") >= 0.02
        assert t.counts["a"] == 2

    def test_total_and_merge(self):
        t1, t2 = Timer(), Timer()
        t1.add("x", 1.0)
        t2.add("x", 2.0)
        t2.add("y", 3.0)
        t1.merge(t2)
        assert t1.get("x") == 3.0
        assert t1.total == 6.0

    def test_exception_still_recorded(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t.phase("boom"):
                raise RuntimeError("x")
        assert t.get("boom") >= 0.0
        assert t.counts["boom"] == 1

    def test_missing_phase_zero(self):
        assert Timer().get("nope") == 0.0


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ValueError):
            check_positive("x", 0)
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError):
            check_positive("x", -1, allow_zero=True)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_fraction(self):
        assert check_fraction("f", 0.5) == 0.5
        for bad in (0.0, 1.0):
            with pytest.raises(ValueError):
                check_fraction("f", bad)

    def test_check_int_in_range(self):
        assert check_int_in_range("k", 3, 1, 5) == 3
        with pytest.raises(ValueError):
            check_int_in_range("k", 9, 1, 5)
        with pytest.raises(TypeError):
            check_int_in_range("k", 2.5, 1, 5)
        with pytest.raises(TypeError):
            check_int_in_range("k", True, 0, 5)
