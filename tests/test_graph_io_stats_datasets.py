"""Tests for graph IO, statistics, and the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    ALL_DATASETS,
    LABELLED_DATASETS,
    CSRGraph,
    average_degree,
    clustering_coefficient,
    connected_components,
    degree_histogram,
    density,
    largest_component_nodes,
    load,
    load_embeddings,
    load_suite,
    power_law_exponent,
    read_edge_list,
    ring_of_cliques,
    save_embeddings,
    write_edge_list,
)


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path, medium_graph):
        path = str(tmp_path / "g.txt")
        write_edge_list(medium_graph, path, header="test graph")
        loaded = read_edge_list(path)
        assert loaded.num_nodes == medium_graph.num_nodes
        assert loaded.num_edges == medium_graph.num_edges
        np.testing.assert_array_equal(loaded.indices, medium_graph.indices)

    def test_weighted_roundtrip(self, tmp_path, weighted_triangle):
        path = str(tmp_path / "w.txt")
        write_edge_list(weighted_triangle, path)
        loaded = read_edge_list(path, weighted=True)
        assert loaded.edge_weight(1, 2) == pytest.approx(2.0)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(str(path))
        assert g.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="columns"):
            read_edge_list(str(path))

    def test_missing_weight_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="weight"):
            read_edge_list(str(path), weighted=True)

    def test_embedding_roundtrip(self, tmp_path, rng):
        emb = rng.normal(size=(7, 4))
        path = str(tmp_path / "emb.txt")
        save_embeddings(path, emb)
        loaded = load_embeddings(path)
        np.testing.assert_allclose(loaded, emb, atol=1e-5)


class TestStats:
    def test_degree_histogram(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist[10] == 1  # the hub
        assert hist[1] == 10  # the leaves

    def test_average_degree(self, triangle):
        assert average_degree(triangle) == pytest.approx(2.0)

    def test_density(self, triangle):
        assert density(triangle) == pytest.approx(1.0)

    def test_connected_components(self):
        g = CSRGraph.from_edges([(0, 1), (2, 3)], num_nodes=5)
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert len({comp[0], comp[2], comp[4]}) == 3

    def test_largest_component(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (3, 4)], num_nodes=5)
        nodes = largest_component_nodes(g)
        assert set(int(x) for x in nodes) == {0, 1, 2}

    def test_clustering_coefficient_clique(self):
        g = ring_of_cliques(1, 5)
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_power_law_exponent_range(self, medium_graph):
        alpha = power_law_exponent(medium_graph)
        assert 1.5 < alpha < 5.0


class TestDatasets:
    def test_all_load(self):
        for name in ALL_DATASETS:
            ds = load(name, scale=0.3)
            assert ds.graph.num_nodes > 0
            assert ds.graph.num_edges > 0
            assert ds.paper_nodes > ds.graph.num_nodes  # scaled down

    def test_labelled_datasets_have_labels(self):
        for name in LABELLED_DATASETS:
            ds = load(name, scale=0.3)
            assert ds.labels is not None
            assert ds.labels.shape[0] == ds.graph.num_nodes
            assert ds.labels.any(axis=1).all()

    def test_relative_density_ordering(self):
        """Table 2's shape: FL densest per node, YT sparsest."""
        suite = {d.name: d for d in load_suite(scale=0.5)}
        avg = {name: d.graph.degrees.mean() for name, d in suite.items()}
        assert avg["FL"] == max(avg.values())
        assert avg["YT"] == min(avg.values())

    def test_twitter_is_largest(self):
        suite = {d.name: d for d in load_suite(scale=0.5)}
        assert suite["TW"].graph.num_nodes == max(
            d.graph.num_nodes for d in suite.values()
        )

    def test_deterministic(self):
        a = load("LJ", scale=0.3)
        b = load("LJ", scale=0.3)
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)

    def test_seed_perturbs(self):
        a = load("LJ", scale=0.3, seed=0)
        b = load("LJ", scale=0.3, seed=1)
        assert a.graph.num_stored_edges != b.graph.num_stored_edges or \
            not np.array_equal(a.graph.indices, b.graph.indices)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load("REDDIT")

    def test_scale_changes_size(self):
        small = load("FL", scale=0.3)
        big = load("FL", scale=1.0)
        assert small.graph.num_nodes < big.graph.num_nodes


class TestNpzIO:
    def test_roundtrip_unweighted(self, tmp_path, medium_graph):
        from repro.graph import load_graph_npz, save_graph_npz
        path = str(tmp_path / "g.npz")
        save_graph_npz(medium_graph, path)
        loaded = load_graph_npz(path)
        import numpy as np
        np.testing.assert_array_equal(loaded.indptr, medium_graph.indptr)
        np.testing.assert_array_equal(loaded.indices, medium_graph.indices)
        assert loaded.directed == medium_graph.directed
        assert loaded.weights is None

    def test_roundtrip_weighted_directed(self, tmp_path, weighted_triangle):
        from repro.graph import load_graph_npz, save_graph_npz
        import numpy as np
        g = weighted_triangle.as_directed()
        path = str(tmp_path / "w.npz")
        save_graph_npz(g, path)
        loaded = load_graph_npz(path)
        assert loaded.directed
        np.testing.assert_allclose(loaded.weights, g.weights)
