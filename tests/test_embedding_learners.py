"""Tests for the Skip-Gram learners: SGNS, Pword2vec, pSGNScc, DSGL."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    EmbeddingModel,
    LEARNERS,
    NegativeSampler,
    TrainConfig,
    Vocabulary,
    count_windows,
    iter_windows,
    sigmoid,
    window_batches,
)
from repro.walks import Corpus


def build_fixture(num_nodes=20, num_walks=12, walk_len=15, seed=3):
    rng = np.random.default_rng(seed)
    corpus = Corpus(num_nodes)
    for _ in range(num_walks):
        corpus.add_walk(rng.integers(0, num_nodes, size=walk_len))
    vocab = Vocabulary.from_corpus(corpus)
    sampler = NegativeSampler(vocab)
    return corpus, vocab, sampler


class TestWindows:
    def test_iter_windows_counts(self):
        walk = np.arange(6)
        windows = list(iter_windows(walk, window=2))
        assert len(windows) == 6
        target, ctx = windows[0]
        assert target == 0
        assert list(ctx) == [1, 2]

    def test_window_boundaries(self):
        walk = np.arange(5)
        windows = dict()
        for t, ctx in iter_windows(walk, window=10):
            windows[t] = list(ctx)
        # Full-span window: everything except the target itself.
        assert windows[2] == [0, 1, 3, 4]

    def test_singleton_walk_no_windows(self):
        assert list(iter_windows(np.array([7]), window=3)) == []

    def test_window_batches_lockstep(self):
        walks = [np.arange(4), np.arange(10, 13)]
        batches = list(window_batches(walks, window=2, group=2))
        # Lock-step: batches of 2 while both walks alive, then 1.
        assert [len(b) for b in batches] == [2, 2, 2, 1]

    def test_window_batches_group_one_is_sequential(self):
        walks = [np.arange(3), np.arange(3)]
        batches = list(window_batches(walks, window=1, group=1))
        assert all(len(b) == 1 for b in batches)
        assert len(batches) == 6

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            list(window_batches([np.arange(3)], window=1, group=0))

    def test_count_windows(self):
        walks = [np.arange(5), np.array([1]), np.arange(3)]
        assert count_windows(walks, window=2) == 5 + 0 + 3


class TestModel:
    def test_initialisation(self):
        _, vocab, _ = build_fixture()
        model = EmbeddingModel(vocab, dim=16, seed=0)
        assert model.phi_in.shape == (vocab.size, 16)
        assert np.all(model.phi_out == 0.0)
        assert np.abs(model.phi_in).max() <= 0.5 / 16 + 1e-9

    def test_clone_independent(self):
        _, vocab, _ = build_fixture()
        model = EmbeddingModel(vocab, dim=8, seed=0)
        clone = model.clone()
        clone.phi_in[0] += 1.0
        assert not np.allclose(model.phi_in[0], clone.phi_in[0])

    def test_embeddings_node_space_roundtrip(self):
        _, vocab, _ = build_fixture()
        model = EmbeddingModel(vocab, dim=8, seed=0)
        node_emb = model.embeddings_node_space()
        for node in range(vocab.size):
            np.testing.assert_array_equal(
                node_emb[node], model.phi_in[vocab.node_to_row[node]]
            )

    def test_sigmoid_clipping(self):
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(
            1.0 / (1.0 + np.exp(-6.0)))
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


@pytest.mark.parametrize("learner_name", sorted(LEARNERS))
class TestLearnerContract:
    def test_training_updates_parameters(self, learner_name):
        corpus, vocab, sampler = build_fixture()
        cfg = TrainConfig(dim=16, window=3, negatives=3)
        model = EmbeddingModel(vocab, cfg.dim, seed=1)
        before_in = model.phi_in.copy()
        learner = LEARNERS[learner_name](model, sampler, cfg,
                                         np.random.default_rng(0))
        tokens = learner.train_walks(corpus.walks, lr=0.05)
        assert tokens == corpus.total_tokens
        assert not np.allclose(model.phi_in, before_in)
        assert np.abs(model.phi_out).sum() > 0.0

    def test_finite_parameters(self, learner_name):
        corpus, vocab, sampler = build_fixture()
        cfg = TrainConfig(dim=16, window=3, negatives=3)
        model = EmbeddingModel(vocab, cfg.dim, seed=1)
        learner = LEARNERS[learner_name](model, sampler, cfg,
                                         np.random.default_rng(0))
        for _ in range(3):
            learner.train_walks(corpus.walks, lr=0.1)
        assert np.all(np.isfinite(model.phi_in))
        assert np.all(np.isfinite(model.phi_out))

    def test_deterministic(self, learner_name):
        corpus, vocab, sampler = build_fixture()
        cfg = TrainConfig(dim=8, window=2, negatives=2)
        outs = []
        for _ in range(2):
            model = EmbeddingModel(vocab, cfg.dim, seed=1)
            learner = LEARNERS[learner_name](model, sampler, cfg,
                                             np.random.default_rng(7))
            learner.train_walks(corpus.walks, lr=0.05)
            outs.append(model.phi_in.copy())
        np.testing.assert_array_equal(outs[0], outs[1])


class TestLearnerSemantics:
    def test_positive_pairs_gain_similarity(self):
        """Training pushes co-occurring nodes' vectors together."""
        corpus = Corpus(6)
        # Nodes 0,1 always co-occur; nodes 4,5 never appear with 0.
        for _ in range(60):
            corpus.add_walk([0, 1, 0, 1, 0, 1])
            corpus.add_walk([2, 3, 4, 5, 4, 5])
        vocab = Vocabulary.from_corpus(corpus)
        sampler = NegativeSampler(vocab)
        cfg = TrainConfig(dim=16, window=2, negatives=2)
        model = EmbeddingModel(vocab, cfg.dim, seed=1)
        learner = LEARNERS["dsgl"](model, sampler, cfg,
                                   np.random.default_rng(0))
        for _ in range(5):
            learner.train_walks(corpus.walks, lr=0.05)
        emb = model.embeddings_node_space()
        sim_01 = float(emb[0] @ emb[1])
        sim_04 = float(emb[0] @ emb[4])
        assert sim_01 > sim_04

    def test_dsgl_multi_window_count_affects_batching_not_validity(self):
        corpus, vocab, sampler = build_fixture()
        for mw in (1, 2, 4):
            cfg = TrainConfig(dim=8, window=2, negatives=2, multi_windows=mw)
            model = EmbeddingModel(vocab, cfg.dim, seed=1)
            learner = LEARNERS["dsgl"](model, sampler, cfg,
                                       np.random.default_rng(0))
            tokens = learner.train_walks(corpus.walks, lr=0.05)
            assert tokens == corpus.total_tokens
            assert np.all(np.isfinite(model.phi_in))
