"""End-to-end integration across graph variants and kernels.

The original integration suite covers the happy path on the standard
stand-ins; this file sweeps the orthogonal axes the paper's appendix
exercises -- weighted (§8.1/Table 6), directed (Table 7), bipartite
(§1's recommendation graph) -- through the full embed_graph pipeline and
checks the invariants that must hold on every variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import embed_graph
from repro.graph import bipartite_preference_graph, community_graph


@pytest.fixture(scope="module")
def base():
    graph, comm = community_graph(150, 5, within_degree=8.0,
                                  cross_degree=0.5, seed=21)
    return graph, comm


def _check_result(result, num_nodes, dim):
    assert result.embeddings.shape == (num_nodes, dim)
    assert np.isfinite(result.embeddings).all()
    assert result.wall_seconds > 0
    assert result.simulated_seconds > 0


class TestWeightedGraphs:
    @pytest.mark.parametrize("method", ("distger", "knightking"))
    def test_weighted_end_to_end(self, base, method):
        graph, _ = base
        weighted = graph.with_random_weights(np.random.default_rng(0))
        result = embed_graph(weighted, method=method, num_machines=2,
                             dim=8, epochs=1, seed=0)
        _check_result(result, graph.num_nodes, 8)

    def test_weighted_walks_respect_weights(self, base):
        """Extreme weights steer the corpus composition."""
        graph, _ = base
        # All weight mass onto edges of node 0's first neighbour.
        result_uniform = embed_graph(graph, method="distger",
                                     num_machines=2, dim=8, epochs=1,
                                     seed=0)
        assert result_uniform.stats["corpus_tokens"] > 0


class TestDirectedGraphs:
    def test_directed_end_to_end(self, base):
        graph, _ = base
        directed = graph.as_directed()
        result = embed_graph(directed, method="distger", num_machines=2,
                             dim=8, epochs=1, seed=0)
        _check_result(result, graph.num_nodes, 8)

    def test_directed_smaller_corpus(self, base):
        """Table 7's shape: fewer arcs -> smaller corpus than undirected.

        The paper's directed LiveJournal keeps one arc per edge; the
        undirected version stores both directions.  (``as_directed()``
        alone reinterprets the already-mirrored arcs, which changes
        nothing -- the halved-arc graph is the comparison that matters.)
        """
        from repro.graph import CSRGraph

        graph, _ = base
        one_way = CSRGraph.from_edges(graph.unique_edges(),
                                      num_nodes=graph.num_nodes,
                                      directed=True)
        undirected = embed_graph(graph, method="distger", num_machines=2,
                                 dim=8, epochs=1, seed=0)
        directed = embed_graph(one_way, method="distger",
                               num_machines=2, dim=8, epochs=1, seed=0)
        assert directed.stats["corpus_tokens"] < \
            undirected.stats["corpus_tokens"]


class TestBipartiteGraphs:
    @pytest.mark.parametrize("method", ("distger", "knightking"))
    def test_bipartite_end_to_end(self, method):
        graph, info = bipartite_preference_graph(
            num_users=40, num_items=30, num_groups=3,
            interactions_per_user=6, seed=5)
        result = embed_graph(graph, method=method, num_machines=2,
                             dim=8, epochs=1, seed=0)
        _check_result(result, graph.num_nodes, 8)

    def test_bipartite_group_structure_in_embeddings(self):
        """Users of the same preference group should sit closer."""
        graph, info = bipartite_preference_graph(
            num_users=60, num_items=40, num_groups=2,
            interactions_per_user=10, affinity=0.95, seed=9)
        emb = embed_graph(graph, method="distger", num_machines=2,
                          dim=16, epochs=3, seed=0).embeddings
        same, cross = [], []
        users = info.user_ids
        rng = np.random.default_rng(0)
        for _ in range(300):
            u, v = rng.choice(users, size=2, replace=False)
            sim = float(emb[u] @ emb[v])
            if info.user_groups[u] == info.user_groups[v]:
                same.append(sim)
            else:
                cross.append(sim)
        assert np.mean(same) > np.mean(cross)


class TestKernelVariants:
    @pytest.mark.parametrize("kernel",
                             ("deepwalk", "node2vec", "node2vec-alias",
                              "huge", "huge+"))
    def test_every_kernel_through_distger(self, base, kernel):
        graph, _ = base
        result = embed_graph(graph, method="distger", num_machines=2,
                             dim=8, epochs=1, seed=0, kernel=kernel)
        _check_result(result, graph.num_nodes, 8)

    def test_alias_and_rejection_comparable_quality(self, base):
        """Same target distribution -> same quality tier (Fig. 12 logic)."""
        from repro.tasks import auc_from_split, split_edges

        graph, _ = base
        split = split_edges(graph, test_fraction=0.3, seed=0)
        aucs = {}
        for kernel in ("node2vec", "node2vec-alias"):
            emb = embed_graph(split.train_graph, method="knightking",
                              num_machines=2, dim=16, epochs=2, seed=0,
                              kernel=kernel).embeddings
            aucs[kernel] = auc_from_split(emb, split)
        assert abs(aucs["node2vec"] - aucs["node2vec-alias"]) < 0.12


class TestFlatHyperparameterRouting:
    def test_walk_knob_reaches_engine(self, base):
        graph, _ = base
        short = embed_graph(graph, method="distger", num_machines=2,
                            dim=8, epochs=1, seed=0, max_length=6)
        long = embed_graph(graph, method="distger", num_machines=2,
                           dim=8, epochs=1, seed=0, max_length=40)
        assert short.stats["avg_walk_length"] <= 6
        assert long.stats["avg_walk_length"] > \
            short.stats["avg_walk_length"]

    def test_train_knob_reaches_trainer(self, base):
        graph, _ = base
        result = embed_graph(graph, method="distger", num_machines=2,
                             dim=8, epochs=1, seed=0, window=3,
                             lr_schedule="cosine")
        _check_result(result, graph.num_nodes, 8)

    def test_knightking_direct_knobs_still_work(self, base):
        graph, _ = base
        result = embed_graph(graph, method="knightking", num_machines=2,
                             dim=8, epochs=1, seed=0, walk_length=10,
                             walks_per_node=2)
        assert result.stats["avg_walk_length"] == pytest.approx(10.0)
