"""Property suite for the batched top-k scorer (the serving hot path).

The contract under test (see :mod:`repro.serving.scorer`): batched
scoring over any candidate catalogue must match a brute-force per-query
loop -- same selection, same order, same scores -- for both metrics,
with ties broken by smallest node id, cold (zero-norm) nodes scoring a
well-defined 0 under cosine, duplicate candidate ids deduplicated, and
``k`` beyond the catalogue padding with ``(-1, -inf)``.  Integer-valued
matrices make dot products exactly representable, so equality here means
equality of *bytes*, which is what the multi-worker parity gate builds
on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.scorer import (
    BatchTopKScorer,
    deterministic_top_k,
    row_norms,
)

# --------------------------------------------------------------------- #
# Brute-force reference
# --------------------------------------------------------------------- #


def brute_force_top_k(embeddings, node, k, metric, candidates=None,
                      exclude_self=True, exclude=()):
    """Per-query reference: score every candidate, sort by (-score, id)."""
    n = embeddings.shape[0]
    cand = (np.unique(np.asarray(candidates, dtype=np.int64))
            if candidates is not None else np.arange(n, dtype=np.int64))
    barred = set(int(b) for b in exclude)
    if exclude_self:
        barred.add(int(node))
    query = embeddings[node].astype(np.float64)
    qnorm = float(np.linalg.norm(query)) or 1.0
    scored = []
    for c in cand:
        if int(c) in barred:
            continue
        score = float(embeddings[int(c)].astype(np.float64) @ query)
        if metric == "cosine":
            cnorm = float(np.linalg.norm(
                embeddings[int(c)].astype(np.float64))) or 1.0
            score = score / cnorm / qnorm
        scored.append((int(c), score))
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:k]


def assert_matches_reference(embeddings, nodes, k, metric,
                             candidates=None, exclude=None, **kwargs):
    scorer = BatchTopKScorer(embeddings, **kwargs)
    result = scorer.top_k(np.asarray(nodes, dtype=np.int64), k=k,
                          metric=metric, candidates=candidates,
                          exclude=exclude)
    for row, node in enumerate(nodes):
        barred = exclude[row] if exclude is not None else ()
        want = brute_force_top_k(embeddings, node, k, metric,
                                 candidates=candidates, exclude=barred)
        got = result.as_lists()[row]
        assert [i for i, _ in got] == [i for i, _ in want], (
            f"node {node}: ids {got} != reference {want}")
        np.testing.assert_allclose([s for _, s in got],
                                   [s for _, s in want],
                                   rtol=1e-12, atol=1e-12)


# --------------------------------------------------------------------- #
# deterministic_top_k unit behaviour
# --------------------------------------------------------------------- #


class TestDeterministicTopK:
    def test_plain_descending(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(deterministic_top_k(scores, 2),
                                      [1, 3])

    def test_ties_break_by_smallest_index(self):
        scores = np.array([1.0, 1.0, 1.0, 1.0, 0.5])
        np.testing.assert_array_equal(deterministic_top_k(scores, 2),
                                      [0, 1])
        np.testing.assert_array_equal(deterministic_top_k(scores, 3),
                                      [0, 1, 2])

    def test_ties_straddling_boundary_after_strict_winners(self):
        # 9.0 is strictly above; the 1.0 tie pool fills the rest by id.
        scores = np.array([1.0, 9.0, 1.0, 1.0, 1.0])
        np.testing.assert_array_equal(deterministic_top_k(scores, 3),
                                      [1, 0, 2])

    def test_k_at_least_n_returns_all_sorted(self):
        scores = np.array([0.5, 2.0, 0.5])
        for k in (3, 10):
            np.testing.assert_array_equal(deterministic_top_k(scores, k),
                                          [1, 0, 2])

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=40),
           st.integers(1, 45))
    @settings(max_examples=150, deadline=None)
    def test_matches_lexsort_reference(self, values, k):
        scores = np.asarray(values, dtype=np.float64)
        full = np.lexsort((np.arange(scores.size), -scores))
        want = full[:min(k, scores.size)]
        np.testing.assert_array_equal(deterministic_top_k(scores, k),
                                      want)


# --------------------------------------------------------------------- #
# Batched scorer vs brute force
# --------------------------------------------------------------------- #

matrix_strategy = st.tuples(
    st.integers(3, 16),     # nodes
    st.integers(1, 6),      # dim
    st.integers(0, 10_000),  # seed
)


class TestScorerMatchesBruteForce:
    @given(matrix_strategy, st.sampled_from(["cosine", "dot"]),
           st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_random_matrices_all_candidates(self, spec, metric, k):
        n, d, seed = spec
        rng = np.random.default_rng(seed)
        emb = rng.standard_normal((n, d))
        nodes = rng.integers(0, n, size=min(4, n))
        assert_matches_reference(emb, nodes, k, metric)

    @given(matrix_strategy, st.sampled_from(["cosine", "dot"]),
           st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_tied_integer_matrices(self, spec, metric, k):
        # Tiny integer alphabet forces massive score ties: the id
        # tie-break (not argpartition luck) must decide every boundary.
        n, d, seed = spec
        rng = np.random.default_rng(seed)
        emb = rng.integers(-1, 2, size=(n, d)).astype(np.float64)
        nodes = rng.integers(0, n, size=min(4, n))
        assert_matches_reference(emb, nodes, k, metric)

    @given(matrix_strategy, st.sampled_from(["cosine", "dot"]))
    @settings(max_examples=40, deadline=None)
    def test_candidate_masks_with_duplicates(self, spec, metric):
        n, d, seed = spec
        rng = np.random.default_rng(seed)
        emb = rng.integers(-2, 3, size=(n, d)).astype(np.float64)
        # Duplicated, unsorted candidate pool (bipartite catalogue shape).
        cand = rng.integers(0, n, size=n + 3)
        nodes = rng.integers(0, n, size=2)
        assert_matches_reference(emb, nodes, 5, metric, candidates=cand)

    @given(matrix_strategy)
    @settings(max_examples=40, deadline=None)
    def test_zero_norm_rows_score_zero_cosine(self, spec):
        n, d, seed = spec
        rng = np.random.default_rng(seed)
        emb = rng.standard_normal((n, d))
        emb[0] = 0.0          # cold query node
        emb[n - 1] = 0.0      # cold candidate
        assert_matches_reference(emb, [0, n - 1], n, "cosine")
        result = BatchTopKScorer(emb).top_k([0], k=n, metric="cosine",
                                            exclude_self=False)
        assert not np.isnan(result.scores).any()
        row = dict(result.as_lists()[0])
        assert row[0] == 0.0  # cold vs itself: defined, not NaN

    def test_per_query_exclude_arrays(self):
        rng = np.random.default_rng(4)
        emb = rng.integers(-2, 3, size=(10, 4)).astype(np.float64)
        nodes = [1, 5]
        exclude = [np.array([0, 2, 9]), np.array([], dtype=np.int64)]
        assert_matches_reference(emb, nodes, 6, "dot", exclude=exclude)

    def test_normalized_cache_and_shipped_norms_match(self):
        rng = np.random.default_rng(9)
        emb = rng.standard_normal((20, 5))
        nodes = np.arange(6)
        base = BatchTopKScorer(emb).top_k(nodes, k=7)
        cached = BatchTopKScorer(emb, normalized_cache=True).top_k(
            nodes, k=7)
        shipped = BatchTopKScorer(emb, norms=row_norms(emb)).top_k(
            nodes, k=7)
        np.testing.assert_array_equal(base.ids, cached.ids)
        np.testing.assert_allclose(base.scores, cached.scores,
                                   rtol=1e-12)
        assert base.ids.tobytes() == shipped.ids.tobytes()
        assert base.scores.tobytes() == shipped.scores.tobytes()


class TestEdgeCases:
    def test_k_beyond_candidates_pads(self):
        emb = np.eye(4)
        result = BatchTopKScorer(emb).top_k([0], k=10,
                                            candidates=[1, 2])
        assert result.ids.shape == (1, 10)
        np.testing.assert_array_equal(result.ids[0][:2].tolist(), [1, 2])
        assert (result.ids[0][2:] == -1).all()
        assert np.isneginf(result.scores[0][2:]).all()
        assert len(result.as_lists()[0]) == 2

    def test_query_node_outside_candidates_not_self_excluded(self):
        emb = np.eye(4) + 1.0
        result = BatchTopKScorer(emb).top_k([3], k=3, candidates=[0, 1])
        # node 3 is not in the catalogue; both candidates survive.
        assert [i for i, _ in result.as_lists()[0]] == [0, 1]

    def test_exclude_self_false_keeps_query_node(self):
        emb = np.eye(3)
        got = BatchTopKScorer(emb).top_k([1], k=1, metric="dot",
                                         exclude_self=False)
        assert got.ids[0, 0] == 1

    def test_validation_errors(self):
        emb = np.eye(4)
        scorer = BatchTopKScorer(emb)
        with pytest.raises(ValueError, match="metric"):
            scorer.top_k([0], k=1, metric="euclid")
        with pytest.raises(ValueError, match="k must be"):
            scorer.top_k([0], k=0)
        with pytest.raises(ValueError, match="query nodes"):
            scorer.top_k([7], k=1)
        with pytest.raises(ValueError, match="candidate ids"):
            scorer.top_k([0], k=1, candidates=[99])
        with pytest.raises(ValueError, match="one id array per query"):
            scorer.top_k([0, 1], k=1, exclude=[np.array([2])])
        with pytest.raises(ValueError, match="2-D"):
            BatchTopKScorer(np.zeros(5))
        with pytest.raises(ValueError, match="one entry per node"):
            BatchTopKScorer(emb, norms=np.ones(3))

    def test_fixed_catalogue_gathers_once_and_per_call_overrides(self):
        rng = np.random.default_rng(2)
        emb = rng.integers(-2, 3, size=(12, 3)).astype(np.float64)
        fixed = BatchTopKScorer(emb, candidates=np.arange(6))
        fresh = BatchTopKScorer(emb)
        a = fixed.top_k([7], k=4, metric="dot")
        b = fresh.top_k([7], k=4, metric="dot", candidates=np.arange(6))
        assert a.ids.tobytes() == b.ids.tobytes()
        c = fixed.top_k([7], k=4, metric="dot",
                        candidates=np.arange(6, 12))
        d = fresh.top_k([7], k=4, metric="dot",
                        candidates=np.arange(6, 12))
        assert c.ids.tobytes() == d.ids.tobytes()

    def test_top_k_vectors_matches_node_queries(self):
        rng = np.random.default_rng(3)
        emb = rng.standard_normal((15, 4))
        by_node = BatchTopKScorer(emb).top_k([4], k=5,
                                             exclude_self=False)
        by_vec = BatchTopKScorer(emb).top_k_vectors(emb[4][None, :], k=5)
        np.testing.assert_array_equal(by_node.ids, by_vec.ids)
        np.testing.assert_allclose(by_node.scores, by_vec.scores,
                                   rtol=1e-12)


# --------------------------------------------------------------------- #
# Exact norm pruning
# --------------------------------------------------------------------- #


class TestNormPruning:
    @given(st.integers(0, 5000), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_pruned_equals_full_scan_bytes(self, seed, k):
        rng = np.random.default_rng(seed)
        emb = rng.integers(-3, 4, size=(60, 4)).astype(np.float64)
        emb[seed % 60] = 0.0  # a cold candidate in the pool
        nodes = rng.integers(0, 60, size=3)
        scorer = BatchTopKScorer(emb)
        full = scorer.top_k(nodes, k=k, metric="dot")
        pruned = scorer.top_k(nodes, k=k, metric="dot", prune=True)
        assert full.ids.tobytes() == pruned.ids.tobytes()
        assert full.scores.tobytes() == pruned.scores.tobytes()

    def test_prune_actually_prunes_with_small_chunks(self):
        rng = np.random.default_rng(1)
        emb = rng.integers(-3, 4, size=(300, 8)).astype(np.float64)
        scorer = BatchTopKScorer(emb)
        full = scorer.top_k([5], k=3, metric="dot")
        pruned = scorer._top_k_pruned(
            np.asarray([5], dtype=np.int64), 3,
            scorer._resolve_candidates(None), True, None, chunk=16)
        assert full.ids.tobytes() == pruned.ids.tobytes()
        assert full.scores.tobytes() == pruned.scores.tobytes()

    def test_prune_with_exclusions_and_candidates(self):
        rng = np.random.default_rng(8)
        emb = rng.integers(-2, 3, size=(80, 5)).astype(np.float64)
        cand = np.arange(10, 70)
        exclude = [np.array([11, 12, 13])]
        scorer = BatchTopKScorer(emb)
        full = scorer.top_k([0], k=5, metric="dot", candidates=cand,
                            exclude=exclude)
        pruned = scorer.top_k([0], k=5, metric="dot", candidates=cand,
                              exclude=exclude, prune=True)
        assert full.ids.tobytes() == pruned.ids.tobytes()
        assert full.scores.tobytes() == pruned.scores.tobytes()


# --------------------------------------------------------------------- #
# Grouped (persona-aware) top-k
# --------------------------------------------------------------------- #


def brute_force_top_k_bases(emb, groups, base, k, metric,
                            candidates=None, exclude_self=True):
    """Per-group reference: best member-pair score, sort by (-score, gid)."""
    n = emb.shape[0]
    cand = (np.unique(np.asarray(candidates, dtype=np.int64))
            if candidates is not None else np.arange(n, dtype=np.int64))
    q_rows = np.flatnonzero(groups == base)
    scored = []
    for gid in np.unique(groups[cand]):
        if exclude_self and int(gid) == int(base):
            continue
        g_rows = cand[groups[cand] == gid]
        best = -np.inf
        for qr in q_rows:
            for cr in g_rows:
                score = float(emb[int(cr)].astype(np.float64)
                              @ emb[int(qr)].astype(np.float64))
                if metric == "cosine":
                    qn = float(np.linalg.norm(
                        emb[int(qr)].astype(np.float64))) or 1.0
                    cn = float(np.linalg.norm(
                        emb[int(cr)].astype(np.float64))) or 1.0
                    score = score / cn / qn
                best = max(best, score)
        if best > -np.inf:
            scored.append((int(gid), best))
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:k]


class TestGroupedTopK:
    def _random_grouped(self, seed, n=20, d=4, num_groups=7):
        rng = np.random.default_rng(seed)
        emb = rng.integers(-2, 3, size=(n, d)).astype(np.float64)
        groups = np.sort(rng.integers(0, num_groups, size=n))
        groups[0] = 0  # group 0 always populated
        return emb, groups

    @given(st.integers(0, 5000), st.sampled_from(["cosine", "dot"]),
           st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, seed, metric, k):
        emb, groups = self._random_grouped(seed)
        scorer = BatchTopKScorer(emb, groups=groups)
        present = np.unique(groups)
        bases = present[:3]
        result = scorer.top_k_bases(bases, k=k, metric=metric)
        for row, base in enumerate(bases):
            want = brute_force_top_k_bases(emb, groups, base, k, metric)
            got = result.as_lists()[row]
            assert [i for i, _ in got] == [i for i, _ in want]
            np.testing.assert_allclose([s for _, s in got],
                                       [s for _, s in want],
                                       rtol=1e-12, atol=1e-12)

    @given(st.integers(0, 5000), st.sampled_from(["cosine", "dot"]))
    @settings(max_examples=25, deadline=None)
    def test_candidate_restriction(self, seed, metric):
        emb, groups = self._random_grouped(seed)
        rng = np.random.default_rng(seed + 1)
        cand = rng.integers(0, emb.shape[0], size=emb.shape[0] // 2 + 2)
        scorer = BatchTopKScorer(emb, groups=groups)
        base = int(groups[0])
        result = scorer.top_k_bases([base], k=4, metric=metric,
                                    candidates=cand)
        want = brute_force_top_k_bases(emb, groups, base, 4, metric,
                                       candidates=cand)
        got = result.as_lists()[0]
        assert [i for i, _ in got] == [i for i, _ in want]
        np.testing.assert_allclose([s for _, s in got],
                                   [s for _, s in want],
                                   rtol=1e-12, atol=1e-12)
        # Groups without a candidate row can never be returned.
        allowed = set(int(g) for g in np.unique(groups[np.unique(cand)]))
        assert all(i in allowed for i, _ in got)

    def test_exclude_self_toggles_query_group(self):
        emb = np.ones((6, 3))
        groups = np.array([0, 0, 1, 1, 2, 2])
        scorer = BatchTopKScorer(emb, groups=groups)
        barred = scorer.top_k_bases([1], k=6, metric="dot")
        assert 1 not in barred.ids[0]
        kept = scorer.top_k_bases([1], k=6, metric="dot",
                                  exclude_self=False)
        assert 1 in kept.ids[0]

    def test_empty_query_group_pads(self):
        # Group ids {0, 2}: group 1 exists in id space but owns no rows.
        emb = np.eye(4)
        groups = np.array([0, 0, 2, 2])
        scorer = BatchTopKScorer(emb, groups=groups)
        result = scorer.top_k_bases([1], k=3, metric="dot")
        assert (result.ids[0] == -1).all()
        assert np.isneginf(result.scores[0]).all()

    def test_k_beyond_groups_pads(self):
        emb = np.eye(6)
        groups = np.array([0, 0, 1, 1, 2, 2])
        result = BatchTopKScorer(emb, groups=groups).top_k_bases(
            [0], k=5, metric="dot")
        assert result.ids.shape == (1, 5)
        assert set(result.ids[0][:2].tolist()) == {1, 2}
        assert (result.ids[0][2:] == -1).all()

    def test_singleton_groups_reduce_to_plain_top_k(self):
        rng = np.random.default_rng(4)
        emb = rng.integers(-2, 3, size=(15, 4)).astype(np.float64)
        scorer = BatchTopKScorer(emb, groups=np.arange(15))
        plain = BatchTopKScorer(emb)
        for metric in ("cosine", "dot"):
            grouped = scorer.top_k_bases([3, 7], k=5, metric=metric)
            flat = plain.top_k([3, 7], k=5, metric=metric)
            np.testing.assert_array_equal(grouped.ids, flat.ids)
            np.testing.assert_allclose(grouped.scores, flat.scores,
                                       rtol=1e-12)

    def test_validation_errors(self):
        emb = np.eye(4)
        with pytest.raises(ValueError, match="groups"):
            BatchTopKScorer(emb).top_k_bases([0], k=1)
        with pytest.raises(ValueError, match="map every row"):
            BatchTopKScorer(emb, groups=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="non-negative"):
            BatchTopKScorer(emb, groups=np.array([0, -1, 1, 1]))
        scorer = BatchTopKScorer(emb, groups=np.array([0, 0, 1, 1]))
        with pytest.raises(ValueError, match="metric"):
            scorer.top_k_bases([0], k=1, metric="euclid")
        with pytest.raises(ValueError, match="k must be"):
            scorer.top_k_bases([0], k=0)
        with pytest.raises(ValueError, match="query groups"):
            scorer.top_k_bases([5], k=1)
