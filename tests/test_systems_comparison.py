"""Tests for the side-by-side system comparison harness."""

from __future__ import annotations

import pytest

from repro.graph import community_graph
from repro.systems import SystemComparison, SystemComparisonRow, compare_systems


@pytest.fixture(scope="module")
def graph():
    return community_graph(120, 4, within_degree=8.0, cross_degree=0.5,
                           seed=33)[0]


@pytest.fixture(scope="module")
def comparison(graph):
    return compare_systems(
        graph, methods=("distger", "knightking"),
        num_machines=2, dim=16, epochs=1, seed=0,
        task="link-prediction",
    )


class TestCompareSystems:
    def test_one_row_per_method(self, comparison):
        assert [r.method for r in comparison.rows] == \
            ["distger", "knightking"]

    def test_rows_carry_all_quantities(self, comparison):
        for row in comparison.rows:
            assert row.wall_seconds > 0
            assert row.simulated_seconds > 0
            assert row.walker_messages > 0
            assert row.peak_memory_bytes > 0
            assert row.corpus_tokens > 0
            assert 0.0 <= row.auc <= 1.0

    def test_distger_smaller_corpus(self, comparison):
        """The information-oriented corpus is the efficiency mechanism."""
        distger = comparison.row("distger")
        knightking = comparison.row("knightking")
        assert distger.corpus_tokens < knightking.corpus_tokens

    def test_speedup(self, comparison):
        s = comparison.speedup("distger", "knightking")
        assert s == pytest.approx(
            comparison.row("knightking").wall_seconds
            / comparison.row("distger").wall_seconds)
        assert comparison.speedup("distger", "knightking",
                                  clock="simulated") > 0

    def test_speedup_validates_clock(self, comparison):
        with pytest.raises(ValueError, match="clock"):
            comparison.speedup("distger", "knightking", clock="cpu")

    def test_unknown_method_row(self, comparison):
        with pytest.raises(KeyError, match="no row"):
            comparison.row("pbg")

    def test_formatted_table(self, comparison):
        text = comparison.formatted()
        assert "method" in text
        assert "distger" in text
        assert len(text.splitlines()) == 2 + len(comparison.rows)

    def test_without_task(self, graph):
        result = compare_systems(graph, methods=("distger",),
                                 num_machines=2, dim=8, epochs=1, seed=0)
        assert result.rows[0].auc is None

    def test_unknown_task_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown task"):
            compare_systems(graph, task="clustering")

    def test_method_kwargs_forwarded(self, graph):
        result = compare_systems(
            graph, methods=("knightking",), num_machines=2, dim=8,
            epochs=1, seed=0,
            method_kwargs={"knightking": {"walk_length": 7,
                                          "walks_per_node": 2}},
        )
        row = result.rows[0]
        # 2 walks of 7 tokens per source node (every node has edges).
        assert row.corpus_tokens == 2 * 7 * graph.num_nodes

    def test_formatted_handles_missing_values(self):
        comparison = SystemComparison(rows=[SystemComparisonRow(
            method="x", wall_seconds=1.0, simulated_seconds=1.0,
            walker_messages=0, walker_message_bytes=0, sync_bytes=0,
            peak_memory_bytes=0, corpus_tokens=None, auc=None,
        )])
        assert "-" in comparison.formatted()
