"""Tests for streaming orders (random/BFS/DFS/±degree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import path, ring_of_cliques, star
from repro.partition import (
    STREAMING_ORDERS,
    bfs_degree_order,
    bfs_order,
    dfs_degree_order,
    dfs_order,
    get_order,
    random_order,
)


@pytest.mark.parametrize("name", sorted(STREAMING_ORDERS))
class TestOrderContract:
    def test_is_permutation(self, name, medium_graph):
        order = get_order(name, medium_graph, seed=0)
        assert sorted(order.tolist()) == list(range(medium_graph.num_nodes))

    def test_deterministic(self, name, medium_graph):
        a = get_order(name, medium_graph, seed=3)
        b = get_order(name, medium_graph, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_covers_disconnected(self, name):
        from repro.graph import CSRGraph
        g = CSRGraph.from_edges([(0, 1), (3, 4)], num_nodes=6)
        order = get_order(name, g, seed=1)
        assert sorted(order.tolist()) == list(range(6))


class TestOrderSemantics:
    def test_bfs_visits_level_by_level(self):
        g = star(6)
        order = bfs_order(g, seed=0)
        # The hub (degree 6) must come first from any leaf root... with
        # random roots the hub may not be first, but once visited its
        # leaves flush contiguously; use degree-guided to pin the root.
        order = bfs_degree_order(g, seed=0)
        assert order[0] == 0  # highest-degree root
        assert sorted(order[1:].tolist()) == list(range(1, 7))

    def test_dfs_path_is_linear(self):
        g = path(8)
        order = dfs_degree_order(g, seed=0)
        # On a path the DFS from an interior high-degree node walks one
        # branch fully before the other: consecutive positions adjacent.
        adjacent_steps = sum(
            1 for a, b in zip(order[:-1], order[1:])
            if abs(int(a) - int(b)) == 1
        )
        assert adjacent_steps >= 5

    def test_degree_guided_prefers_hubs(self):
        g = ring_of_cliques(3, 6)
        order = dfs_degree_order(g, seed=0)
        degrees = g.degrees
        # The root must be a maximum-degree node.
        assert degrees[order[0]] == degrees.max()

    def test_random_order_differs_by_seed(self, medium_graph):
        a = random_order(medium_graph, seed=1)
        b = random_order(medium_graph, seed=2)
        assert not np.array_equal(a, b)

    def test_unknown_order(self, medium_graph):
        with pytest.raises(KeyError):
            get_order("spiral", medium_graph)
