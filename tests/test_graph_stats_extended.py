"""Tests for the extended graph statistics (triangles, assortativity,
approximate diameter, degree Gini)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRGraph,
    approximate_diameter,
    degree_assortativity,
    degree_gini,
    path,
    powerlaw_cluster,
    ring_of_cliques,
    star,
    triangle_count,
)


class TestTriangleCount:
    def test_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_path_has_none(self, path_graph):
        assert triangle_count(path_graph) == 0

    def test_star_has_none(self, star_graph):
        assert triangle_count(star_graph) == 0

    def test_clique(self):
        g = ring_of_cliques(1, 5)  # K5: C(5,3) = 10 triangles
        assert triangle_count(g) == 10

    def test_ring_of_cliques(self):
        # 3 K4s contribute 3 * C(4,3) = 12; with exactly 3 cliques the
        # ring edges (0-4, 4-8, 8-0) close one extra triangle.
        g = ring_of_cliques(3, 4)
        assert triangle_count(g) == 13

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            triangle_count(g)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_matches_trace_formula(self, seed):
        """Triangles = trace(A³) / 6 on simple undirected graphs."""
        g = powerlaw_cluster(30, attach=2, triangle_prob=0.6, seed=seed)
        a = np.zeros((g.num_nodes, g.num_nodes))
        arcs = g.edge_array()
        a[arcs[:, 0], arcs[:, 1]] = 1.0
        expected = int(round(np.trace(a @ a @ a) / 6.0))
        assert triangle_count(g) == expected


class TestDegreeAssortativity:
    def test_star_is_disassortative(self, star_graph):
        # Hubs connect only to leaves: perfect negative correlation.
        assert degree_assortativity(star_graph) == pytest.approx(-1.0)

    def test_regular_graph_is_zero(self, triangle):
        assert degree_assortativity(triangle) == 0.0

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_nodes=3)
        assert degree_assortativity(g) == 0.0

    def test_bounded(self, medium_graph):
        r = degree_assortativity(medium_graph)
        assert -1.0 <= r <= 1.0


class TestApproximateDiameter:
    def test_path_graph_exact(self):
        # BFS from enough sources on a 12-path finds the full length.
        g = path(12)
        assert approximate_diameter(g, num_sources=12, seed=0) == 11

    def test_clique_is_one(self):
        g = ring_of_cliques(1, 6)
        assert approximate_diameter(g, num_sources=3, seed=0) == 1

    def test_lower_bound_property(self, medium_graph):
        few = approximate_diameter(medium_graph, num_sources=1, seed=0)
        many = approximate_diameter(medium_graph, num_sources=16, seed=0)
        assert few <= many

    def test_isolated_only(self):
        g = CSRGraph.from_edges([], num_nodes=5)
        assert approximate_diameter(g) == 0

    def test_ignores_smaller_components(self):
        # A long path plus an isolated node: diameter of the path.
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=6)
        assert approximate_diameter(g, num_sources=4, seed=0) == 3


class TestDegreeGini:
    def test_regular_is_zero(self, triangle):
        assert degree_gini(triangle) == pytest.approx(0.0, abs=1e-12)

    def test_star_is_skewed(self):
        g = star(30)
        assert degree_gini(g) > 0.4

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], num_nodes=4)
        assert degree_gini(g) == 0.0

    def test_powerlaw_more_skewed_than_ring(self, medium_graph):
        regularish = ring_of_cliques(5, 8)
        assert degree_gini(medium_graph) > degree_gini(regularish)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_bounded(self, seed):
        g = powerlaw_cluster(40, attach=2, seed=seed)
        assert 0.0 <= degree_gini(g) < 1.0
