"""Tests for the InCoM streaming statistics (Theorem 1 / Eq. 12-13).

These are the mathematically load-bearing pieces of the reproduction, so
they get exact property-based verification against batch recomputation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.incremental import (
    IncrementalCorrelation,
    IncrementalEntropy,
    IncrementalMean,
)
from repro.utils.stats import entropy_of_sequence, r_squared

sequences = st.lists(st.integers(min_value=0, max_value=9),
                     min_size=1, max_size=60)


class TestIncrementalEntropy:
    def test_empty_has_zero_entropy(self):
        assert IncrementalEntropy().value == 0.0

    def test_single_symbol_zero_entropy(self):
        inc = IncrementalEntropy()
        assert inc.add("a") == pytest.approx(0.0)

    def test_two_distinct_symbols_one_bit(self):
        inc = IncrementalEntropy()
        inc.add("a")
        assert inc.add("b") == pytest.approx(1.0)

    def test_uniform_four_symbols(self):
        inc = IncrementalEntropy()
        for s in "abcd":
            inc.add(s)
        assert inc.value == pytest.approx(2.0)

    def test_repeats_have_zero_entropy(self):
        inc = IncrementalEntropy()
        for _ in range(10):
            inc.add("x")
        assert inc.value == pytest.approx(0.0, abs=1e-12)

    @given(sequences)
    @settings(max_examples=200, deadline=None)
    def test_matches_batch_recomputation(self, seq):
        """The O(1) update equals recomputing H from scratch at every step."""
        inc = IncrementalEntropy()
        for i, symbol in enumerate(seq):
            h = inc.add(symbol)
            assert h == pytest.approx(entropy_of_sequence(seq[: i + 1]),
                                      abs=1e-9)

    @given(sequences)
    @settings(max_examples=200, deadline=None)
    def test_theorem1_t_form_equals_direct_form(self, seq):
        """The paper's multiplicative T update (Eq. 8) equals the direct one."""
        inc = IncrementalEntropy()
        h_prev = 0.0
        for symbol in seq:
            n_prev = inc.counts.get(symbol, 0)
            length = inc.length
            h_direct = inc.add(symbol)
            if length >= 1:
                h_theorem = IncrementalEntropy.theorem1_step(
                    h_prev, length, n_prev
                )
                assert h_theorem == pytest.approx(h_direct, abs=1e-9)
            h_prev = h_direct

    def test_carried_state_roundtrip(self):
        """Walker-carried (L, S) state reconstructs the same entropy."""
        inc = IncrementalEntropy()
        for s in [1, 2, 1, 3, 1]:
            inc.add(s)
        length, s_val = inc.carried_state
        other = IncrementalEntropy()
        other.merge_count_state(length, s_val)
        assert other.value == pytest.approx(inc.value)


class TestIncrementalMean:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_matches_numpy_mean(self, values):
        inc = IncrementalMean()
        for i, v in enumerate(values):
            out = inc.add(v)
            assert out == pytest.approx(float(np.mean(values[: i + 1])),
                                        rel=1e-9, abs=1e-6)

    def test_eq13_recurrence_shape(self):
        """E_p = ((p-1)/p) E_{p-1} + x_p / p, checked explicitly."""
        inc = IncrementalMean()
        inc.add(4.0)
        prev = inc.value
        inc.add(10.0)
        assert inc.value == pytest.approx((1 / 2) * prev + 10.0 / 2)


class TestIncrementalCorrelation:
    def test_degenerate_returns_one(self):
        corr = IncrementalCorrelation()
        assert corr.r_squared == 1.0
        corr.add(1.0, 1.0)
        assert corr.r_squared == 1.0  # single point

    def test_constant_series_returns_one(self):
        corr = IncrementalCorrelation()
        for i in range(5):
            corr.add(3.0, float(i))
        assert corr.r_squared == 1.0

    def test_perfect_linear(self):
        corr = IncrementalCorrelation()
        for i in range(10):
            corr.add(2.0 * i + 1.0, float(i))
        assert corr.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_perfect_negative_correlation(self):
        corr = IncrementalCorrelation()
        for i in range(10):
            corr.add(-1.5 * i, float(i))
        assert corr.correlation == pytest.approx(-1.0, abs=1e-9)
        assert corr.r_squared == pytest.approx(1.0, abs=1e-9)

    # Integer-valued floats keep the variance either exactly zero (both
    # implementations report the degenerate 1.0) or large enough that the
    # E(X²)−E(X)² cancellation stays far from the degeneracy threshold.
    @given(st.lists(st.tuples(
        st.integers(min_value=-100, max_value=100).map(float),
        st.integers(min_value=-100, max_value=100).map(float)),
        min_size=3, max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_matches_batch_r_squared(self, pairs):
        corr = IncrementalCorrelation()
        xs, ys = [], []
        for x, y in pairs:
            corr.add(x, y)
            xs.append(x)
            ys.append(y)
        assert corr.r_squared == pytest.approx(r_squared(xs, ys),
                                               rel=1e-6, abs=1e-6)

    def test_state_roundtrip(self):
        corr = IncrementalCorrelation()
        for i in range(8):
            corr.add(math.log2(i + 1), float(i + 1))
        state = corr.carried_state
        other = IncrementalCorrelation()
        other.load_state(*state)
        assert other.r_squared == pytest.approx(corr.r_squared)
        # Continue adding on both and stay in agreement.
        corr.add(3.5, 9.0)
        other.add(3.5, 9.0)
        assert other.r_squared == pytest.approx(corr.r_squared)
