"""Tests for walk-effectiveness measurement: InCoM vs full-path.

The central equivalence claim of the paper (§3.1): incremental O(1)
measurement produces *identical* values to full-path recomputation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.message import incremental_state_to_message
from repro.walks import (
    FullPathWalkMeasure,
    IncrementalWalkMeasure,
    make_measure,
)

walks = st.lists(st.integers(min_value=0, max_value=12),
                 min_size=1, max_size=50)


class TestEquivalence:
    @given(walks)
    @settings(max_examples=200, deadline=None)
    def test_entropy_identical(self, walk):
        inc = IncrementalWalkMeasure()
        full = FullPathWalkMeasure()
        for node in walk:
            inc.observe(node)
            full.observe(node)
            assert inc.entropy == pytest.approx(full.entropy, abs=1e-9)

    @given(walks)
    @settings(max_examples=200, deadline=None)
    def test_r_squared_identical(self, walk):
        inc = IncrementalWalkMeasure()
        full = FullPathWalkMeasure()
        for node in walk:
            inc.observe(node)
            full.observe(node)
        assert inc.r_squared == pytest.approx(full.r_squared,
                                              rel=1e-6, abs=1e-6)

    @given(walks, st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=200, deadline=None)
    def test_termination_decision_identical(self, walk, mu):
        """Both measures must make the same stop/continue decision
        (away from the exact R² == mu boundary, where the last float ulp
        legitimately differs between the two computations)."""
        inc = IncrementalWalkMeasure()
        full = FullPathWalkMeasure()
        for node in walk:
            inc.observe(node)
            full.observe(node)
            if abs(full.r_squared - mu) < 1e-9:
                continue
            assert inc.should_terminate(mu, 3) == full.should_terminate(mu, 3)


class TestCosts:
    """The complexity separation the paper proves (O(1) vs O(L))."""

    def test_incremental_step_cost_constant(self):
        m = IncrementalWalkMeasure()
        for node in range(100):
            m.observe(node)
            assert m.step_cost() == 1.0

    def test_fullpath_step_cost_linear(self):
        m = FullPathWalkMeasure()
        for node in range(50):
            m.observe(node)
        assert m.step_cost() == 50.0

    def test_incremental_message_constant_80(self):
        m = IncrementalWalkMeasure()
        for node in range(64):
            m.observe(node)
            assert m.message_bytes() == 80

    def test_fullpath_message_grows(self):
        m = FullPathWalkMeasure()
        sizes = []
        for node in range(10):
            m.observe(node)
            sizes.append(m.message_bytes())
        assert sizes == [24 + 8 * (i + 1) for i in range(10)]


class TestMeasureProtocol:
    def test_factory(self):
        assert isinstance(make_measure("incom"), IncrementalWalkMeasure)
        assert isinstance(make_measure("fullpath"), FullPathWalkMeasure)
        with pytest.raises(KeyError):
            make_measure("bogus")

    def test_min_length_respected(self):
        m = IncrementalWalkMeasure()
        for node in [1, 2, 3]:
            m.observe(node)
        # Even with a trivially failing mu, min_length blocks termination.
        assert not m.should_terminate(mu=1.0, min_length=10)

    def test_message_packing(self):
        m = IncrementalWalkMeasure()
        for node in [1, 2, 2, 3]:
            m.observe(node)
        msg = incremental_state_to_message(
            walk_id=7, steps=3, node_id=3,
            entropy_state=m._entropy.carried_state,
            entropy_value=m.entropy,
            moments=m._corr.carried_state,
        )
        assert msg.byte_size() == 80
        assert msg.length == 4
        assert msg.entropy_h == pytest.approx(m.entropy)
