"""Tests for corpus quality diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, path, ring_of_cliques
from repro.walks import (
    Corpus,
    compare_corpora,
    corpus_quality,
    entropy_trace,
    traversed_edges,
    vectorized_routine_corpus,
)


@pytest.fixture
def tri_corpus(triangle):
    corpus = Corpus(triangle.num_nodes)
    corpus.add_walk([0, 1, 2])
    return corpus


class TestTraversedEdges:
    def test_marks_walk_hops(self, triangle, tri_corpus):
        seen = traversed_edges(triangle, tri_corpus)
        # Walk 0-1-2 traverses edges (0,1) and (1,2) but not (0,2).
        assert seen.sum() == 2

    def test_both_directions_count_once(self, triangle):
        corpus = Corpus(3)
        corpus.add_walk([0, 1, 0, 1])  # back and forth over one edge
        seen = traversed_edges(triangle, corpus)
        assert seen.sum() == 1

    def test_directed_edges(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0)], directed=True)
        corpus = Corpus(2)
        corpus.add_walk([0, 1])
        seen = traversed_edges(g, corpus)
        assert seen.sum() == 1  # only the 0->1 arc was used

    def test_empty_corpus(self, triangle):
        seen = traversed_edges(triangle, Corpus(3))
        assert seen.sum() == 0


class TestCorpusQuality:
    def test_full_coverage_on_exhaustive_corpus(self, small_graph):
        corpus = vectorized_routine_corpus(small_graph, walk_length=40,
                                           walks_per_node=10, seed=0)
        q = corpus_quality(small_graph, corpus)
        assert q.node_coverage == pytest.approx(1.0)
        assert q.edge_coverage > 0.95
        assert q.tokens == corpus.total_tokens
        assert q.occupancy_kl < 0.2

    def test_partial_coverage(self, triangle, tri_corpus):
        q = corpus_quality(triangle, tri_corpus)
        assert q.node_coverage == pytest.approx(1.0)
        assert q.edge_coverage == pytest.approx(2.0 / 3.0)
        assert q.tokens == 3
        assert q.tokens_per_covered_node == pytest.approx(1.0)
        assert q.tokens_per_covered_edge == pytest.approx(1.5)

    def test_empty_corpus(self, triangle):
        q = corpus_quality(triangle, Corpus(3))
        assert q.node_coverage == 0.0
        assert q.edge_coverage == 0.0
        assert q.occupancy_kl == float("inf")

    def test_isolated_nodes_excluded_from_denominator(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=4)
        corpus = Corpus(4)
        corpus.add_walk([0, 1])
        q = corpus_quality(g, corpus)
        assert q.node_coverage == pytest.approx(1.0)  # 2 of 2 walkable

    def test_universe_mismatch(self, triangle):
        with pytest.raises(ValueError, match="universe"):
            corpus_quality(triangle, Corpus(5))

    def test_as_dict_roundtrip(self, triangle, tri_corpus):
        d = corpus_quality(triangle, tri_corpus).as_dict()
        assert set(d) == {
            "tokens", "num_walks", "average_walk_length", "node_coverage",
            "edge_coverage", "occupancy_kl", "tokens_per_covered_node",
            "tokens_per_covered_edge",
        }


class TestCompareCorpora:
    def test_information_oriented_is_more_concise(self, medium_graph):
        """The §2.1 claim: similar coverage from far fewer tokens."""
        from repro.runtime.cluster import Cluster
        from repro.walks import DistributedWalkEngine, WalkConfig

        routine = vectorized_routine_corpus(medium_graph, walk_length=80,
                                            walks_per_node=10, seed=0)
        cluster = Cluster(1, np.zeros(medium_graph.num_nodes,
                                      dtype=np.int64), seed=0)
        info = DistributedWalkEngine(
            medium_graph, cluster, WalkConfig.distger()).run().corpus
        report = compare_corpora(medium_graph,
                                 {"routine": routine, "info": info})
        assert report["info"].tokens < 0.5 * report["routine"].tokens
        assert report["info"].node_coverage > 0.95
        assert report["info"].tokens_per_covered_node < \
            report["routine"].tokens_per_covered_node


class TestEntropyTrace:
    def test_matches_direct_formula(self):
        walk = [0, 1, 0, 2, 1, 1]
        trace = entropy_trace(walk)
        assert len(trace) == len(walk)
        # Prefix [0, 1, 0]: p = (2/3, 1/3).
        expected = -(2 / 3 * np.log2(2 / 3) + 1 / 3 * np.log2(1 / 3))
        assert trace[2] == pytest.approx(expected)

    def test_single_node_zero_entropy(self):
        assert entropy_trace([5]) == [pytest.approx(0.0)]

    def test_repeated_node_stays_zero(self):
        assert all(h == pytest.approx(0.0) for h in entropy_trace([3, 3, 3]))

    def test_agrees_with_incom_accumulator(self):
        from repro.walks import IncrementalWalkMeasure

        rng = np.random.default_rng(4)
        walk = rng.integers(0, 6, size=30)
        trace = entropy_trace(walk)
        measure = IncrementalWalkMeasure()
        for node, expected in zip(walk, trace):
            measure.observe(int(node))
            assert measure.entropy == pytest.approx(expected, abs=1e-9)

    def test_entropy_ramp_flattens_on_small_graph(self, path_graph):
        """The behaviour the R² termination rule exploits: the entropy of
        a walk on a small graph grows then saturates."""
        corpus = vectorized_routine_corpus(path_graph, walk_length=60,
                                           walks_per_node=1, seed=1)
        trace = entropy_trace(corpus.walks[0])
        early_growth = trace[9] - trace[0]
        late_growth = trace[-1] - trace[-10]
        assert early_growth > late_growth
