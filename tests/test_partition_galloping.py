"""Tests for galloping intersection (property-tested vs numpy)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    galloping_intersect,
    galloping_intersect_size,
    intersect_with_membership,
)

sorted_unique = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


class TestGallopingIntersect:
    @given(sorted_unique, sorted_unique)
    @settings(max_examples=300, deadline=None)
    def test_matches_numpy(self, a, b):
        expected = np.intersect1d(a, b, assume_unique=True)
        np.testing.assert_array_equal(galloping_intersect(a, b), expected)

    @given(sorted_unique, sorted_unique)
    @settings(max_examples=300, deadline=None)
    def test_size_matches(self, a, b):
        expected = np.intersect1d(a, b, assume_unique=True).size
        assert galloping_intersect_size(a, b) == expected

    def test_empty_operands(self):
        empty = np.empty(0, dtype=np.int64)
        some = np.array([1, 2, 3])
        assert galloping_intersect(empty, some).size == 0
        assert galloping_intersect_size(some, empty) == 0

    def test_disjoint(self):
        a = np.array([1, 3, 5])
        b = np.array([2, 4, 6])
        assert galloping_intersect_size(a, b) == 0

    def test_identical(self):
        a = np.array([1, 2, 3])
        assert galloping_intersect_size(a, a) == 3

    def test_very_asymmetric_sizes(self):
        small = np.array([500, 900_000])
        large = np.arange(1_000_000, dtype=np.int64)
        np.testing.assert_array_equal(galloping_intersect(small, large), small)

    def test_symmetry(self):
        a = np.array([1, 5, 9, 12])
        b = np.array([5, 12, 40])
        np.testing.assert_array_equal(
            galloping_intersect(a, b), galloping_intersect(b, a)
        )


class TestMembershipIntersect:
    @given(sorted_unique)
    @settings(max_examples=100, deadline=None)
    def test_matches_boolean_filter(self, a):
        mask = np.zeros(201, dtype=bool)
        mask[::3] = True
        expected = a[mask[a]] if a.size else a
        np.testing.assert_array_equal(
            intersect_with_membership(a, mask), expected
        )
