"""Coverage for smaller public APIs: LR schedule, LP harness, pair scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import TrainConfig, linear_lr
from repro.tasks import evaluate_link_prediction, pair_scores
from repro.graph import community_graph


class TestLinearLR:
    def test_starts_at_lr(self):
        cfg = TrainConfig(lr=0.05, min_lr=0.001)
        assert linear_lr(cfg, 0, 1000) == pytest.approx(0.05)

    def test_decays_linearly(self):
        cfg = TrainConfig(lr=0.05, min_lr=0.0001)
        assert linear_lr(cfg, 500, 1000) == pytest.approx(0.025)

    def test_floors_at_min(self):
        cfg = TrainConfig(lr=0.05, min_lr=0.01)
        assert linear_lr(cfg, 1000, 1000) == 0.01
        assert linear_lr(cfg, 2000, 1000) == 0.01

    def test_zero_total_returns_base(self):
        cfg = TrainConfig(lr=0.05)
        assert linear_lr(cfg, 10, 0) == 0.05


class TestPairScores:
    def test_dot_products(self):
        emb = np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
        pairs = np.array([[0, 1], [0, 2], [1, 2]])
        np.testing.assert_allclose(pair_scores(emb, pairs), [0.0, 1.0, 2.0])


class TestLinkPredictionHarness:
    def test_oracle_embedder_wins(self):
        """An embedder that encodes the community id perfectly should give
        near-perfect AUC on a community graph; a random one ~0.5."""
        graph, comm = community_graph(150, 6, within_degree=10.0,
                                      cross_degree=0.3, seed=4)
        rng = np.random.default_rng(0)

        def oracle(train_graph):
            emb = np.zeros((graph.num_nodes, 8))
            emb[np.arange(graph.num_nodes), comm] = 1.0
            return emb

        def noise(train_graph):
            return rng.normal(size=(graph.num_nodes, 8))

        oracle_rep = evaluate_link_prediction(graph, oracle, trials=2, seed=0)
        noise_rep = evaluate_link_prediction(graph, noise, trials=2, seed=0)
        assert oracle_rep.mean_auc > 0.85
        assert abs(noise_rep.mean_auc - 0.5) < 0.12
        assert oracle_rep.std_auc >= 0.0

    def test_trials_counted(self):
        graph, _ = community_graph(100, 4, within_degree=8.0,
                                   cross_degree=0.5, seed=9)
        report = evaluate_link_prediction(
            graph, lambda g: np.ones((graph.num_nodes, 2)), trials=3, seed=0
        )
        assert len(report.aucs) == 3
