"""Tests for the transition kernels (DeepWalk, node2vec, HuGE, HuGE+)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, ring_of_cliques, star
from repro.walks import (
    DeepWalkKernel,
    HuGEKernel,
    HuGEPlusKernel,
    Node2VecKernel,
    make_kernel,
)


class TestDeepWalk:
    def test_uniform_choice(self, small_graph, rng):
        k = DeepWalkKernel(small_graph)
        nbrs = set(int(x) for x in small_graph.neighbors(0))
        for _ in range(50):
            nxt = k.step(0, -1, rng)
            assert nxt in nbrs

    def test_weighted_choice_respects_weights(self, rng):
        g = CSRGraph.from_edges([(0, 1), (0, 2)], weights=[100.0, 1.0])
        k = DeepWalkKernel(g)
        picks = [k.step(0, -1, rng) for _ in range(300)]
        assert picks.count(1) > picks.count(2) * 5

    def test_isolated_node_raises(self):
        g = CSRGraph.from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(ValueError, match="no neighbours"):
            DeepWalkKernel(g).step(2, -1, np.random.default_rng(0))


class TestNode2Vec:
    def test_accepts_valid_params(self, small_graph):
        k = Node2VecKernel(small_graph, p=0.5, q=2.0)
        assert k._envelope == pytest.approx(2.0)

    def test_rejects_bad_params(self, small_graph):
        with pytest.raises(ValueError):
            Node2VecKernel(small_graph, p=0.0)

    def test_pi_classification(self, triangle):
        k = Node2VecKernel(triangle, p=4.0, q=0.25)
        # Return to previous node: 1/p.
        assert k._pi(1, 1) == pytest.approx(0.25)
        # Distance-1 (candidate adjacent to previous): 1.
        assert k._pi(1, 2) == pytest.approx(1.0)
        # First step (no previous): first-order.
        assert k._pi(-1, 2) == pytest.approx(1.0)

    def test_pi_distance_two(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])  # path: 0-1-2
        k = Node2VecKernel(g, p=1.0, q=0.5)
        # Walker at 1 came from 0; candidate 2 is not adjacent to 0: 1/q.
        assert k._pi(0, 2) == pytest.approx(2.0)

    def test_p1_q1_never_rejects(self, small_graph, rng):
        k = Node2VecKernel(small_graph, p=1.0, q=1.0)
        for _ in range(50):
            assert k.step(0, 1, rng) is not None

    def test_small_q_prefers_outward(self, rng):
        # Star-of-paths: from center, q << 1 favours DFS-like moves.
        k_dfs = Node2VecKernel(ring_of_cliques(4, 6), p=1.0, q=0.25)
        accepted = sum(k_dfs.step(0, 1, rng) is not None for _ in range(200))
        assert 0 < accepted <= 200


class TestHuGE:
    def test_acceptance_probability_bounds(self, medium_graph):
        k = HuGEKernel(medium_graph)
        for u in range(0, medium_graph.num_nodes, 29):
            for v in medium_graph.neighbors(u)[:3]:
                p = k.acceptance_probability(u, int(v))
                assert 0.0 <= p <= 1.0

    def test_eq3_manual_example(self):
        # Path 0-1-2 plus edge 0-2 makes a triangle: deg all 2, Cm(0,1)=1
        # (node 2).  alpha = max(1,1)/(2-1) = 1; P = tanh(1).
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        k = HuGEKernel(g)
        assert k.acceptance_probability(0, 1) == pytest.approx(np.tanh(1.0))

    def test_full_overlap_accepts(self):
        # Star: hub 0 adjacent to all leaves; leaf-leaf edges absent.
        # For (leaf u, hub v): deg u =1, Cm=0, ratio=deg v -> alpha=deg v.
        g = star(5)
        k = HuGEKernel(g)
        p = k.acceptance_probability(1, 0)
        assert p == pytest.approx(np.tanh(5.0))

    def test_denominator_zero_guard(self):
        # K4: deg 3 each, Cm(u,v)=2: denominator 1; now a clique where
        # deg(u) == Cm would need overlap == degree -- build explicitly:
        # nodes 0,1 adjacent; both also adjacent to 2,3; 0 additionally
        # has no other edges: deg(0)=3, Cm(0,1)=2 -> fine.  Use the
        # analytic guard directly instead:
        g = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        k = HuGEKernel(g)
        # deg(0)=3, N(0)={1,2,3}; N(1)={0,2,3}; Cm=2 -> denom 1.
        assert k.acceptance_probability(0, 1) <= 1.0

    def test_weighted_graph_scales_alpha(self):
        g_unw = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        g_w = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)],
                                  weights=[3.0, 1.0, 1.0])
        p_unw = HuGEKernel(g_unw).acceptance_probability(0, 1)
        p_w = HuGEKernel(g_w).acceptance_probability(0, 1)
        assert p_w > p_unw

    def test_step_returns_neighbor_or_none(self, medium_graph, rng):
        k = HuGEKernel(medium_graph)
        nbrs = set(int(x) for x in medium_graph.neighbors(5))
        outcomes = {k.step(5, -1, rng) for _ in range(100)}
        outcomes.discard(None)
        assert outcomes <= nbrs


class TestHuGEPlus:
    def test_boosts_high_degree_candidates(self, medium_graph):
        base = HuGEKernel(medium_graph)
        plus = HuGEPlusKernel(medium_graph)
        hub = int(np.argmax(medium_graph.degrees))
        for u in medium_graph.neighbors(hub)[:5]:
            assert plus.acceptance_probability(int(u), hub) >= \
                base.acceptance_probability(int(u), hub) - 1e-12


class TestFactory:
    def test_known_kernels(self, small_graph):
        for name in ("deepwalk", "node2vec", "huge", "huge+"):
            k = make_kernel(name, small_graph)
            assert k.name == name

    def test_node2vec_kwargs(self, small_graph):
        k = make_kernel("node2vec", small_graph, p=0.5, q=4.0)
        assert k.p == 0.5

    def test_unknown_kernel(self, small_graph):
        with pytest.raises(KeyError):
            make_kernel("pagerank", small_graph)
