"""Property-based tests: MPGP invariants and kernel probability laws."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.partition import MPGPPartitioner, node_balance
from repro.walks import HuGEKernel, Node2VecKernel

# Random small graphs: edge lists over <= 24 nodes.
graphs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=23),
              st.integers(min_value=0, max_value=23)),
    min_size=5, max_size=80,
).map(lambda edges: CSRGraph.from_edges(edges, num_nodes=24))


class TestMPGPProperties:
    @given(graphs, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_assignment_valid(self, graph, parts):
        result = MPGPPartitioner(gamma=2.0).partition(graph, parts)
        assert result.assignment.shape == (graph.num_nodes,)
        assert result.assignment.min() >= 0
        assert result.assignment.max() < parts

    @given(graphs)
    @settings(max_examples=60, deadline=None)
    def test_gamma_bound_roughly_respected(self, graph):
        """With gamma=2 no partition should exceed ~2x the mean size by
        much (the dynamic constraint re-evaluates per assignment, so the
        bound is approximate but must not be wildly violated)."""
        parts = 3
        result = MPGPPartitioner(gamma=2.0).partition(graph, parts)
        assert node_balance(result.assignment, parts) <= 2.5

    @given(graphs)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, graph):
        a = MPGPPartitioner().partition(graph, 3).assignment
        b = MPGPPartitioner().partition(graph, 3).assignment
        np.testing.assert_array_equal(a, b)


class TestKernelProbabilityLaws:
    @given(graphs)
    @settings(max_examples=60, deadline=None)
    def test_huge_acceptance_in_unit_interval(self, graph):
        kernel = HuGEKernel(graph)
        for u in range(graph.num_nodes):
            for v in graph.neighbors(u)[:4]:
                p = kernel.acceptance_probability(u, int(v))
                assert 0.0 <= p <= 1.0

    @given(graphs)
    @settings(max_examples=60, deadline=None)
    def test_huge_symmetric_degree_ratio(self, graph):
        """Eq. 3's max() makes the degree-ratio factor symmetric, so for
        equal-degree endpoint pairs P(u,v) only depends on Cm and deg --
        i.e. P(u,v) == P(v,u) when deg u == deg v."""
        kernel = HuGEKernel(graph)
        for u in range(graph.num_nodes):
            for v in graph.neighbors(u)[:4]:
                v = int(v)
                if graph.degree(u) == graph.degree(v):
                    assert kernel.acceptance_probability(u, v) == \
                        pytest.approx(kernel.acceptance_probability(v, u))

    def test_huge_monotone_in_common_neighbours(self):
        """More shared neighbours (same degrees) => higher acceptance."""
        # Build two graphs where (0,1) have 1 vs 2 common neighbours but
        # identical degrees.
        g1 = CSRGraph.from_edges(
            [(0, 1), (0, 2), (1, 2), (0, 3), (1, 4), (3, 5), (4, 5),
             (2, 6), (6, 5)])
        g2 = CSRGraph.from_edges(
            [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (3, 5), (2, 6),
             (6, 5), (4, 5), (4, 6)])
        p1 = HuGEKernel(g1).acceptance_probability(0, 1)
        p2 = HuGEKernel(g2).acceptance_probability(0, 1)
        assert g1.common_neighbor_count(0, 1) < g2.common_neighbor_count(0, 1)
        assert g1.degree(0) == g2.degree(0) and g1.degree(1) == g2.degree(1)
        assert p2 > p1

    @given(st.floats(min_value=0.25, max_value=4.0),
           st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_node2vec_envelope_dominates(self, p, q):
        """Rejection sampling is only correct if the envelope Q bounds
        every unnormalised probability pi."""
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (1, 3)])
        kernel = Node2VecKernel(g, p=p, q=q)
        for prev in (-1, 0, 1, 2, 3):
            for cand in range(4):
                assert kernel._pi(prev, cand) <= kernel._envelope + 1e-12
