"""Persona-regularized training: anchor math, parity gates, golden run.

Three layers of the persona workload's trainer contract:

* **Anchor math** -- :class:`AnchorRegularizer` validation and row-space
  scatter, plus the per-slice pull
  ``φ_in[r] += lr·λ·(1 − σ(φ_in[r]·a_r))·a_r`` checked against a direct
  NumPy transcription (through the array-ops seam, torch skip-gated).
* **Parity** -- ``lam=0, warm_start=False`` persona runs are
  byte-identical to plain DistGER on the persona graph, on every
  executor; ``lam>0`` runs are byte-identical *across* executors (the
  anchor pull consumes no negative draws, so the shared-counter RNG
  protocol is untouched).
* **Golden run** -- one pinned persona pipeline on the
  overlapping-community family (AUC/norm bands, exact persona count),
  plus the machine-count invariance of anchored training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PersonaConfig,
    embed_graph,
    embed_persona_graph,
    persona_pair_scores,
)
from repro.embedding import DistributedTrainer, TrainConfig
from repro.embedding.anchor import AnchorRegularizer, RowAnchor
from repro.embedding.model import EmbeddingModel
from repro.embedding.ops import NumpyOps
from repro.embedding.sgns import BaseLearner
from repro.embedding.vocab import Vocabulary
from repro.graph import overlapping_community_graph, persona_graph
from repro.partition import WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.tasks import split_edges
from repro.tasks.metrics import auc_score
from repro.walks import DistributedWalkEngine, WalkConfig

DIM = 16
MACHINES = 2

#: Committed expectations of the pinned persona run (measured at the
#: introduction of this test; bands as in tests/test_golden_pipeline.py).
GOLDEN = {
    "auc": (0.8565, 0.06),
    "num_personas": 276,          # exact: the split is deterministic
    "embedding_norm": (1.9489, 0.15),
    "corpus_tokens": (6810, 0.03),
}


@pytest.fixture(scope="module")
def community_graph():
    graph, _membership = overlapping_community_graph(
        120, 12, overlap_fraction=0.5, within_degree=7.0,
        cross_degree=0.1, seed=7)
    return graph


def _fixed_prior(num_nodes: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((num_nodes, DIM)).astype(np.float32)


class TestAnchorRegularizer:
    def test_rejects_non_2d_anchors(self):
        with pytest.raises(ValueError, match="2-D"):
            AnchorRegularizer(np.zeros(4, dtype=np.float32), 0.1)

    def test_rejects_negative_lam(self):
        with pytest.raises(ValueError, match="lam"):
            AnchorRegularizer(np.zeros((2, 4), dtype=np.float32), -0.1)

    def test_rejects_non_finite_lam(self):
        with pytest.raises(ValueError, match="lam"):
            AnchorRegularizer(np.zeros((2, 4), dtype=np.float32),
                              float("nan"))

    def test_row_space_rejects_dim_mismatch(self):
        anchor = AnchorRegularizer(np.zeros((3, 4), dtype=np.float32), 0.1)
        vocab = Vocabulary.from_occurrences(np.array([5, 3, 1]))
        with pytest.raises(ValueError, match="dim"):
            anchor.row_space(vocab, 8)

    def test_row_space_scatters_through_the_vocab_permutation(self):
        # Occurrences [1, 9, 4] -> frequency order is node 1, 2, 0.
        vocab = Vocabulary.from_occurrences(np.array([1, 9, 4]))
        anchors = np.arange(12, dtype=np.float32).reshape(3, 4)
        rows = AnchorRegularizer(anchors, 0.5).row_space(vocab, 4)
        for node in range(3):
            np.testing.assert_array_equal(
                rows[vocab.node_to_row[node]], anchors[node])

    def test_row_space_zero_pads_nodes_without_anchors(self):
        # Vocab over 4 nodes, anchors only for the first 2: the other
        # rows anchor to zero (no pull).
        vocab = Vocabulary.from_occurrences(np.array([4, 3, 2, 1]))
        anchors = np.ones((2, 4), dtype=np.float32)
        rows = AnchorRegularizer(anchors, 0.5).row_space(vocab, 4)
        np.testing.assert_array_equal(rows[vocab.node_to_row[2]],
                                      np.zeros(4))
        np.testing.assert_array_equal(rows[vocab.node_to_row[3]],
                                      np.zeros(4))


def _manual_pull(dst, rows, anchors, scale):
    """Direct float32 transcription of the anchor-pull update."""
    out = dst.copy()
    current = out[rows]
    logits = np.einsum("ij,ij->i", current, anchors)
    coeff = ((np.float32(1.0) - np.float32(1.0) /
              (np.float32(1.0) + np.exp(-logits.astype(np.float32))))
             * np.float32(scale))
    np.add.at(out, rows, coeff[:, None] * anchors)
    return out


class TestAnchorPullMath:
    def test_numpy_ops_matches_direct_transcription(self):
        rng = np.random.default_rng(5)
        dst = rng.standard_normal((8, 6)).astype(np.float32)
        rows = np.array([0, 3, 7], dtype=np.int64)
        anchors = rng.standard_normal((3, 6)).astype(np.float32)
        expected = _manual_pull(dst, rows, anchors, 0.05)
        NumpyOps().anchor_pull(dst, rows, anchors, 0.05)
        np.testing.assert_allclose(dst, expected, rtol=1e-6)
        # Untouched rows stay byte-identical.
        untouched = np.setdiff1d(np.arange(8), rows)
        np.testing.assert_array_equal(dst[untouched], expected[untouched])

    def test_torch_cpu_matches_numpy(self):
        pytest.importorskip("torch")
        from repro.embedding.ops import TorchOps

        rng = np.random.default_rng(6)
        dst = rng.standard_normal((8, 6)).astype(np.float32)
        rows = np.array([1, 2, 6], dtype=np.int64)
        anchors = rng.standard_normal((3, 6)).astype(np.float32)
        reference = dst.copy()
        NumpyOps().anchor_pull(reference, rows, anchors, 0.1)
        ops = TorchOps(device="cpu")
        buf = ops.upload(dst)
        ops.anchor_pull(buf, rows, ops.upload(anchors), 0.1)
        np.testing.assert_array_equal(ops.download(buf), reference)

    def _learner(self, num_nodes: int = 5):
        vocab = Vocabulary.from_occurrences(
            np.arange(num_nodes, 0, -1, dtype=np.int64))
        model = EmbeddingModel(vocab, dim=DIM, seed=3)
        config = TrainConfig(dim=DIM, epochs=1, seed=3)
        # The pull never draws negatives, so no sampler is needed.
        return BaseLearner(model, sampler=None, config=config,
                           rng=np.random.default_rng(0))

    def test_apply_anchor_pulls_unique_touched_rows(self):
        learner = self._learner()
        anchor_rows = np.random.default_rng(7).standard_normal(
            (5, DIM)).astype(np.float32)
        learner.anchor = RowAnchor(anchor_rows, 0.5)
        before = learner.model.phi_in.copy()
        # Walks touch nodes {0, 2} (node 2 twice -- one pull, not two).
        walks = [np.array([0, 2]), np.array([2])]
        learner.apply_anchor(walks, lr=0.1)
        rows = np.unique(learner.model.vocab.rows_of(np.array([0, 2])))
        expected = _manual_pull(before, rows, anchor_rows[rows], 0.1 * 0.5)
        np.testing.assert_allclose(learner.model.phi_in, expected,
                                   rtol=1e-6)
        untouched = np.setdiff1d(np.arange(5), rows)
        np.testing.assert_array_equal(learner.model.phi_in[untouched],
                                      before[untouched])

    def test_apply_anchor_is_a_noop_without_anchor_or_at_lam_zero(self):
        for anchor in (None, RowAnchor(np.ones((5, DIM), np.float32), 0.0)):
            learner = self._learner()
            learner.anchor = anchor
            before = learner.model.phi_in.copy()
            learner.apply_anchor([np.array([0, 1, 2])], lr=0.1)
            np.testing.assert_array_equal(learner.model.phi_in, before)

    def test_apply_anchor_ignores_empty_slices(self):
        learner = self._learner()
        learner.anchor = RowAnchor(np.ones((5, DIM), np.float32), 0.5)
        before = learner.model.phi_in.copy()
        learner.apply_anchor([], lr=0.1)
        np.testing.assert_array_equal(learner.model.phi_in, before)


class TestLamZeroParity:
    """λ=0 + ``warm_start=False`` == plain DistGER on the persona graph."""

    @pytest.mark.parametrize("execution", ["serial", "process", "pipeline"])
    def test_byte_identical_to_plain_path(self, community_graph, execution):
        graph = community_graph
        off = PersonaConfig(lam=0.0, warm_start=False,
                            prior=np.zeros((graph.num_nodes, DIM),
                                           dtype=np.float32))
        kwargs = ({} if execution == "serial"
                  else {"execution": execution, "workers": 2})
        plain = embed_graph(persona_graph(graph).graph,
                            num_machines=MACHINES, dim=DIM, epochs=1,
                            seed=0, **kwargs)
        run = embed_persona_graph(graph, num_machines=MACHINES, dim=DIM,
                                  epochs=1, seed=0, persona=off, **kwargs)
        np.testing.assert_array_equal(run.embeddings, plain.embeddings)

    def test_torch_cpu_backend_matches_numpy(self, community_graph):
        pytest.importorskip("torch")
        graph = community_graph
        off = PersonaConfig(lam=0.0, warm_start=False,
                            prior=np.zeros((graph.num_nodes, DIM),
                                           dtype=np.float32))
        runs = [embed_persona_graph(graph, num_machines=MACHINES, dim=DIM,
                                    epochs=1, seed=0, persona=off,
                                    train_overrides={"backend": backend})
                for backend in ("numpy", "torch")]
        np.testing.assert_array_equal(runs[0].embeddings,
                                      runs[1].embeddings)


class TestLamPositiveParity:
    """The anchored path itself is executor-invariant: the pull consumes
    no negative draws, and every executor interleaves it at the same
    point (once per training slice, after the slice's SGNS updates)."""

    def test_executors_agree_at_positive_lam(self, community_graph):
        graph = community_graph
        cfg = PersonaConfig(lam=0.1,
                            prior=_fixed_prior(graph.num_nodes))
        runs = {}
        for execution in ("serial", "process", "pipeline"):
            kwargs = ({} if execution == "serial"
                      else {"execution": execution, "workers": 2})
            runs[execution] = embed_persona_graph(
                graph, num_machines=MACHINES, dim=DIM, epochs=1, seed=0,
                persona=cfg, **kwargs).embeddings
        np.testing.assert_array_equal(runs["serial"], runs["process"])
        np.testing.assert_array_equal(runs["serial"], runs["pipeline"])

    def test_positive_lam_actually_changes_the_embeddings(self,
                                                          community_graph):
        graph = community_graph
        prior = _fixed_prior(graph.num_nodes)
        base = embed_persona_graph(
            graph, num_machines=MACHINES, dim=DIM, epochs=1, seed=0,
            persona=PersonaConfig(lam=0.0, warm_start=False, prior=prior))
        pulled = embed_persona_graph(
            graph, num_machines=MACHINES, dim=DIM, epochs=1, seed=0,
            persona=PersonaConfig(lam=0.5, warm_start=False, prior=prior))
        assert not np.array_equal(base.embeddings, pulled.embeddings)


class TestGoldenPersonaRun:
    @pytest.fixture(scope="class")
    def golden_run(self, community_graph):
        split = split_edges(community_graph, test_fraction=0.3, seed=1)
        run = embed_persona_graph(split.train_graph, num_machines=MACHINES,
                                  dim=DIM, epochs=2, seed=7)
        return run, split

    def test_persona_count_is_pinned(self, golden_run):
        run, _ = golden_run
        assert run.num_personas == GOLDEN["num_personas"]

    def test_link_prediction_auc(self, golden_run):
        run, split = golden_run
        pos = persona_pair_scores(run.embeddings, run.persona_offsets,
                                  split.test_positive)
        neg = persona_pair_scores(run.embeddings, run.persona_offsets,
                                  split.test_negative)
        auc = auc_score(pos, neg)
        expected, tol = GOLDEN["auc"]
        assert abs(auc - expected) <= tol, \
            f"persona AUC {auc:.4f} left the golden band {expected}±{tol}"

    def test_embedding_norms(self, golden_run):
        run, _ = golden_run
        norm = float(np.linalg.norm(run.embeddings, axis=1).mean())
        expected, rtol = GOLDEN["embedding_norm"]
        assert abs(norm - expected) <= rtol * expected
        assert np.all(np.isfinite(run.embeddings))

    def test_corpus_tokens(self, golden_run):
        run, _ = golden_run
        expected, rtol = GOLDEN["corpus_tokens"]
        assert abs(run.result.stats["corpus_tokens"] - expected) <= \
            rtol * expected

    def test_result_mappings_are_consistent(self, golden_run):
        run, split = golden_run
        n = split.train_graph.num_nodes
        assert run.prior.shape == (n, DIM)
        assert run.persona_offsets.shape == (n + 1,)
        assert np.array_equal(
            run.base_of,
            np.repeat(np.arange(n), np.diff(run.persona_offsets)))
        assert run.base_embeddings().shape == (n, DIM)


class TestMachineCountInvariance:
    """Anchored training inherits the walker protocol's invariance: the
    persona graph is a plain CSRGraph, so corpora sampled over it do not
    depend on the walk-machine count, and training them with an anchor on
    a fixed cluster yields identical embeddings."""

    def test_anchored_training_invariant_to_walk_machine_count(
            self, community_graph):
        split = persona_graph(community_graph)
        pgraph = split.graph
        prior = _fixed_prior(community_graph.num_nodes)
        anchor = AnchorRegularizer(prior[split.base_of], 0.1)
        embeddings = {}
        for machines in (1, 2, 4):
            part = WorkloadBalancePartitioner().partition(pgraph, machines)
            cluster = Cluster(machines, part.assignment, seed=5)
            cfg = WalkConfig.distger(max_rounds=2, min_rounds=1)
            walk_result = DistributedWalkEngine(pgraph, cluster, cfg).run()
            train_cluster = Cluster(
                2, np.zeros(pgraph.num_nodes, dtype=np.int64), seed=0)
            trainer = DistributedTrainer(
                walk_result.corpus, train_cluster,
                TrainConfig(dim=DIM, epochs=1, seed=11), anchor=anchor)
            embeddings[machines] = trainer.train().embeddings
        np.testing.assert_array_equal(embeddings[1], embeddings[2])
        np.testing.assert_array_equal(embeddings[1], embeddings[4])
