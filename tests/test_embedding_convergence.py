"""Tests for quality-vs-time convergence curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.convergence import (
    CurvePoint,
    QualityTimeCurve,
    convergence_report,
    dominates,
    quality_time_curve,
    time_to_quality,
)


def _curve(method: str, points) -> QualityTimeCurve:
    return QualityTimeCurve(
        method=method,
        points=[CurvePoint(budget=i + 1, seconds=s, score=q)
                for i, (s, q) in enumerate(points)],
    )


class TestQualityTimeCurve:
    def test_best_score(self):
        curve = _curve("x", [(1.0, 0.6), (2.0, 0.8), (4.0, 0.75)])
        assert curve.best_score == 0.8

    def test_score_at_budget(self):
        curve = _curve("x", [(1.0, 0.6), (2.0, 0.8)])
        assert curve.score_at(1.5) == 0.6
        assert curve.score_at(2.0) == 0.8
        assert curve.score_at(0.5) == float("-inf")

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError, match="no points"):
            QualityTimeCurve(method="x").best_score

    def test_as_rows(self):
        curve = _curve("x", [(1.0, 0.6)])
        assert curve.as_rows() == [[1, 1.0, 0.6]]


class TestTimeToQuality:
    def test_first_feasible_budget(self):
        curve = _curve("x", [(1.0, 0.6), (2.0, 0.8), (4.0, 0.9)])
        assert time_to_quality(curve, 0.8) == 2.0
        assert time_to_quality(curve, 0.5) == 1.0

    def test_unreachable_is_inf(self):
        curve = _curve("x", [(1.0, 0.6)])
        assert time_to_quality(curve, 0.99) == float("inf")


class TestDominance:
    def test_strictly_better_dominates(self):
        fast = _curve("fast", [(1.0, 0.8), (2.0, 0.9)])
        slow = _curve("slow", [(1.0, 0.6), (2.0, 0.7)])
        assert dominates(fast, slow)
        assert not dominates(slow, fast)

    def test_curve_dominates_itself(self):
        curve = _curve("x", [(1.0, 0.6), (2.0, 0.8)])
        assert dominates(curve, curve)

    def test_crossing_curves_no_dominance(self):
        early = _curve("early", [(1.0, 0.8), (4.0, 0.82)])
        late = _curve("late", [(1.0, 0.5), (4.0, 0.95)])
        assert not dominates(early, late)
        assert not dominates(late, early)

    def test_tolerance(self):
        a = _curve("a", [(1.0, 0.78)])
        b = _curve("b", [(1.0, 0.80)])
        assert not dominates(a, b)
        assert dominates(a, b, tolerance=0.05)


class TestQualityTimeCurveRunner:
    def test_runs_real_system(self, medium_graph):
        from repro.tasks import auc_from_split, split_edges

        split = split_edges(medium_graph, test_fraction=0.3, seed=0)
        curve = quality_time_curve(
            split.train_graph, "distger",
            scorer=lambda emb: auc_from_split(emb, split),
            budgets=(1, 3),
            num_machines=2, dim=16, seed=0,
        )
        assert len(curve.points) == 2
        assert curve.points[0].budget == 1
        assert all(p.seconds > 0 for p in curve.points)
        # More epochs should not hurt at this starved scale.
        assert curve.points[1].score >= curve.points[0].score - 0.05

    def test_custom_embed_override(self, triangle):
        class FakeResult:
            def __init__(self, epochs):
                self.embeddings = np.full((3, 2), float(epochs))
                self.wall_seconds = epochs * 0.5

        curve = quality_time_curve(
            triangle, "fake",
            scorer=lambda emb: float(emb[0, 0]),
            budgets=(2, 1),
            embed=lambda g, epochs: FakeResult(epochs),
        )
        # Budgets are sorted; scores follow the fake epochs.
        assert [p.budget for p in curve.points] == [1, 2]
        assert [p.score for p in curve.points] == [1.0, 2.0]

    def test_validation(self, triangle):
        with pytest.raises(ValueError, match="at least one budget"):
            quality_time_curve(triangle, "distger", scorer=lambda e: 0.0,
                               budgets=())
        with pytest.raises(ValueError, match="positive"):
            quality_time_curve(triangle, "distger", scorer=lambda e: 0.0,
                               budgets=(0,))


class TestConvergenceReport:
    def test_rows(self):
        curves = {
            "a": _curve("a", [(1.0, 0.9)]),
            "b": _curve("b", [(1.0, 0.5)]),
        }
        rows = convergence_report(curves, target=0.8)
        by_name = {r[0]: r for r in rows}
        assert by_name["a"][1] == 0.9
        assert by_name["a"][2] == 1.0
        assert by_name["b"][2] == float("inf")
