"""Tests for learning-rate schedules and model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (
    SCHEDULES,
    ConstantSchedule,
    CosineSchedule,
    DistributedTrainer,
    EmbeddingModel,
    InverseSqrtSchedule,
    LinearDecaySchedule,
    TrainConfig,
    Vocabulary,
    load_model,
    make_schedule,
    save_model,
)
from repro.runtime.cluster import Cluster
from repro.walks import Corpus


class TestSchedules:
    def test_linear_matches_word2vec_formula(self):
        sched = LinearDecaySchedule(lr=0.025, min_lr=1e-4)
        for progress in (0.0, 0.1, 0.5, 0.9, 1.0):
            expected = max(1e-4, 0.025 * (1.0 - progress))
            assert sched(progress) == pytest.approx(expected)

    def test_linear_floors_at_min(self):
        sched = LinearDecaySchedule(lr=0.01, min_lr=0.005)
        assert sched(1.0) == pytest.approx(0.005)

    def test_constant(self):
        sched = ConstantSchedule(lr=0.02)
        assert sched(0.0) == sched(0.5) == sched(1.0) == 0.02

    def test_inverse_sqrt_endpoints(self):
        sched = InverseSqrtSchedule(lr=0.05, min_lr=0.0, decay=24.0)
        assert sched(0.0) == pytest.approx(0.05)
        assert sched(1.0) == pytest.approx(0.05 / 5.0)

    def test_cosine_endpoints(self):
        sched = CosineSchedule(lr=0.04, min_lr=0.004)
        assert sched(0.0) == pytest.approx(0.04)
        assert sched(1.0) == pytest.approx(0.004)
        assert sched(0.5) == pytest.approx((0.04 + 0.004) / 2)

    def test_factory(self):
        for name in SCHEDULES:
            sched = make_schedule(name, lr=0.025)
            assert sched(0.0) > 0

    def test_factory_unknown(self):
        with pytest.raises(KeyError, match="unknown schedule"):
            make_schedule("exponential", lr=0.025)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            LinearDecaySchedule(lr=0.0)
        with pytest.raises(ValueError):
            LinearDecaySchedule(lr=0.01, min_lr=0.02)
        with pytest.raises(ValueError):
            CosineSchedule(lr=0.01, min_lr=0.02)
        with pytest.raises(ValueError):
            InverseSqrtSchedule(lr=0.01, decay=0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        name=st.sampled_from(sorted(SCHEDULES)),
        lr=st.floats(min_value=1e-4, max_value=1.0),
        p1=st.floats(min_value=0.0, max_value=1.0),
        p2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_monotone_nonincreasing(self, name, lr, p1, p2):
        """Every schedule is non-increasing in progress and stays positive."""
        sched = make_schedule(name, lr=lr, min_lr=0.0)
        lo, hi = min(p1, p2), max(p1, p2)
        assert sched(lo) >= sched(hi) >= 0.0
        assert sched(0.0) <= lr * (1.0 + 1e-9)

    def test_trainconfig_validates_schedule(self):
        with pytest.raises(ValueError, match="lr_schedule"):
            TrainConfig(lr_schedule="nope")

    def test_trainer_accepts_schedules(self, small_graph):
        corpus = Corpus(small_graph.num_nodes)
        rng = np.random.default_rng(0)
        for _ in range(20):
            start = int(rng.integers(0, small_graph.num_nodes))
            walk = [start]
            for _ in range(9):
                nbrs = small_graph.neighbors(walk[-1])
                walk.append(int(nbrs[rng.integers(0, nbrs.size)]))
            corpus.add_walk(walk)
        cluster = Cluster(2, np.arange(small_graph.num_nodes) % 2, seed=0)
        for name in ("linear", "constant", "cosine"):
            cfg = TrainConfig(dim=8, epochs=1, lr_schedule=name, seed=1)
            result = DistributedTrainer(corpus, cluster, cfg).train()
            assert result.embeddings.shape == (small_graph.num_nodes, 8)
            assert np.isfinite(result.embeddings).all()


def _toy_model(num_nodes: int = 12, dim: int = 6) -> EmbeddingModel:
    corpus = Corpus(num_nodes)
    rng = np.random.default_rng(3)
    for _ in range(8):
        corpus.add_walk(rng.integers(0, num_nodes, size=10))
    vocab = Vocabulary.from_corpus(corpus)
    model = EmbeddingModel(vocab, dim, seed=5)
    model.phi_out = rng.normal(size=model.phi_out.shape).astype(np.float32)
    return model


class TestCheckpoint:
    def test_roundtrip_bit_exact(self, tmp_path):
        model = _toy_model()
        path = str(tmp_path / "ckpt.npz")
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.phi_in, model.phi_in)
        assert np.array_equal(restored.phi_out, model.phi_out)
        assert np.array_equal(restored.vocab.row_to_node,
                              model.vocab.row_to_node)
        assert np.array_equal(restored.vocab.row_counts,
                              model.vocab.row_counts)
        assert restored.dim == model.dim

    def test_roundtrip_preserves_node_space_embeddings(self, tmp_path):
        model = _toy_model()
        path = str(tmp_path / "ckpt.npz")
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.embeddings_node_space(),
                              model.embeddings_node_space())

    def test_version_check(self, tmp_path):
        model = _toy_model()
        path = str(tmp_path / "ckpt.npz")
        save_model(model, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.array([99])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_model(path)

    def test_creates_directories(self, tmp_path):
        model = _toy_model()
        path = str(tmp_path / "deep" / "nested" / "ckpt.npz")
        save_model(model, path)
        assert load_model(path).dim == model.dim
