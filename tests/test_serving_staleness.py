"""Norm-cache staleness regressions: updated stores must never serve
stale scorer state.

The bug class under test: :class:`BatchTopKScorer` caches row norms (and
optionally the normalised matrix and gathered catalogues) at
construction; :class:`EmbeddingStore` computes norms once in the parent.
Before the generation counter, rewriting the embedding matrix left every
one of those caches describing the *old* matrix -- cosine scores mixed
new vectors with old norms, silently.  Likewise the
:func:`attach_shared_array` mmap cache matched entries on shape/dtype
alone, so a same-shape file rewrite kept serving the superseded bytes.

The fault-injection style here: construct matrices whose *norms* change
radically between generations (so any stale-norm mix is guaranteed to
change cosine rankings, not just scores), update, and demand byte
equality with a freshly built scorer.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.serving.engine import QueryEngine
from repro.serving.scorer import BatchTopKScorer, row_norms
from repro.serving.store import EmbeddingStore, StoreHandle
from repro.utils.sharedmem import (
    SharedArrayHandle,
    attach_shared_array,
    detach_shared_array,
)


def _norm_skewed_pair(n=40, d=8, seed=3):
    """Two matrices whose row-norm *rankings* disagree wildly.

    Generation 0 scales even rows by 100; generation 1 scales odd rows.
    A scorer that divides new vectors by old norms inverts the cosine
    ranking for half the catalogue -- stale state cannot hide.
    """
    rng = np.random.default_rng(seed)
    gen0 = rng.standard_normal((n, d)).astype(np.float32)
    gen0[::2] *= 100.0
    gen1 = rng.standard_normal((n, d)).astype(np.float32)
    gen1[1::2] *= 100.0
    return gen0, gen1


def _reference(matrix, nodes, k, normalized_cache=False):
    scorer = BatchTopKScorer(np.asarray(matrix),
                             normalized_cache=normalized_cache)
    return scorer.top_k(np.asarray(nodes, dtype=np.int64), k=k)


class TestStoreGeneration:
    def test_update_bumps_generation_and_norms(self):
        gen0, gen1 = _norm_skewed_pair()
        with EmbeddingStore.from_array(gen0, mode="shared") as store:
            assert store.generation == 0
            store.update(gen1)
            assert store.generation == 1
            np.testing.assert_array_equal(store.norms, row_norms(gen1))
            np.testing.assert_array_equal(np.asarray(store.embeddings),
                                          gen1)

    def test_refresh_norms_after_direct_write(self):
        gen0, gen1 = _norm_skewed_pair()
        with EmbeddingStore.from_array(gen0, mode="shared") as store:
            store.embeddings[...] = gen1  # in-place write through the view
            assert not np.array_equal(store.norms, row_norms(gen1))
            gen = store.refresh_norms()
            assert gen == store.generation == 1
            np.testing.assert_array_equal(store.norms, row_norms(gen1))

    def test_memory_mode_update_adopts_any_shape(self):
        gen0, _ = _norm_skewed_pair()
        store = EmbeddingStore.from_array(gen0, mode="memory")
        bigger = np.ones((gen0.shape[0] + 5, gen0.shape[1]),
                         dtype=np.float32)
        store.update(bigger)
        assert store.num_nodes == gen0.shape[0] + 5
        assert store.generation == 1

    def test_shared_mode_rejects_resize_and_attached_rejects_update(self):
        gen0, gen1 = _norm_skewed_pair()
        with EmbeddingStore.from_array(gen0, mode="shared") as store:
            with pytest.raises(ValueError, match="shape"):
                store.update(gen1[:-1])
            attached = EmbeddingStore.attach(store.handle)
            with pytest.raises(RuntimeError, match="read-only"):
                attached.update(gen1)
            with pytest.raises(RuntimeError, match="read-only"):
                attached.refresh_norms()

    def test_attached_store_sees_owner_generation(self):
        gen0, gen1 = _norm_skewed_pair()
        with EmbeddingStore.from_array(gen0, mode="shared") as store:
            attached = EmbeddingStore.attach(store.handle)
            assert attached.generation == 0
            store.update(gen1)
            assert attached.generation == 1
            np.testing.assert_array_equal(attached.norms, store.norms)

    def test_pre_generation_handles_still_attach(self):
        gen0, _ = _norm_skewed_pair()
        with EmbeddingStore.from_array(gen0, mode="shared") as store:
            old_style = StoreHandle(store.handle.embeddings,
                                    store.handle.norms)
            attached = EmbeddingStore.attach(old_style)
            assert attached.generation == 0  # degraded, not broken
            np.testing.assert_array_equal(
                np.asarray(attached.embeddings), gen0)

    def test_mmap_store_update_flushes_to_disk(self, tmp_path):
        gen0, gen1 = _norm_skewed_pair()
        path = str(tmp_path / "emb.npy")
        with EmbeddingStore.from_array(gen0, mode="mmap",
                                       path=path) as store:
            store.update(gen1)
            on_disk = np.load(path)
            np.testing.assert_array_equal(on_disk, gen1)
            assert store.generation == 1

    def test_readonly_mmap_refuses_inplace_update(self, tmp_path):
        gen0, gen1 = _norm_skewed_pair()
        path = str(tmp_path / "emb.npy")
        np.save(path, gen0)
        with EmbeddingStore.open(path) as store:
            with pytest.raises(ValueError, match="read-only"):
                store.update(gen1)


class TestEngineRebuild:
    """The regression proper: queries after an update must equal a fresh
    scorer's bytes on every execution path."""

    @pytest.mark.parametrize("normalized_cache", [False, True])
    def test_inprocess_scorer_rebuilds(self, normalized_cache):
        gen0, gen1 = _norm_skewed_pair()
        store = EmbeddingStore.from_array(gen0.copy(), mode="memory")
        with QueryEngine(store, workers=0,
                         normalized_cache=normalized_cache) as engine:
            nodes = [0, 1, 2, 3]
            stale_answer = engine.query(nodes, k=5)
            store.update(gen1)
            fresh = engine.query(nodes, k=5)
            want = _reference(gen1, nodes, 5,
                              normalized_cache=normalized_cache)
            np.testing.assert_array_equal(fresh.ids, want.ids)
            np.testing.assert_array_equal(fresh.scores, want.scores)
            # the fault was real: the old answer differs from the new one
            assert not np.array_equal(stale_answer.ids, fresh.ids)

    def test_worker_scorer_rebuilds(self):
        gen0, gen1 = _norm_skewed_pair()
        with EmbeddingStore.from_array(gen0, mode="shared") as store, \
                QueryEngine(store, workers=2) as engine:
            nodes = [0, 1, 2, 3]
            # warm every worker's scorer on generation 0
            for _ in range(4):
                engine.query(nodes, k=5)
            store.update(gen1)
            want = _reference(gen1, nodes, 5)
            for _ in range(4):  # each request may land on either worker
                got = engine.query(nodes, k=5)
                np.testing.assert_array_equal(got.ids, want.ids)
                np.testing.assert_array_equal(got.scores, want.scores)

    def test_stale_norms_would_misrank(self):
        """Documents the injected fault: mixing gen-1 vectors with gen-0
        norms really does invert rankings (the scenario the generation
        counter exists to prevent)."""
        gen0, gen1 = _norm_skewed_pair()
        poisoned = BatchTopKScorer(gen1, norms=row_norms(gen0))
        correct = BatchTopKScorer(gen1)
        bad = poisoned.top_k(np.array([0]), k=5)
        good = correct.top_k(np.array([0]), k=5)
        assert not np.array_equal(bad.ids, good.ids)


class TestMmapAttachCache:
    def test_same_shape_rewrite_invalidates_cache(self, tmp_path):
        path = str(tmp_path / "arr.npy")
        first = np.arange(12, dtype=np.float64).reshape(3, 4)
        np.save(path, first)
        handle = SharedArrayHandle("", (3, 4), "<f8", path=path)
        try:
            view = attach_shared_array(handle)
            np.testing.assert_array_equal(view, first)
            second = first + 100.0
            time.sleep(0.01)  # ensure the mtime ticks
            np.save(path, second)
            np.testing.assert_array_equal(attach_shared_array(handle),
                                          second)
        finally:
            detach_shared_array(path)

    def test_unlink_and_recreate_invalidates_cache(self, tmp_path):
        path = str(tmp_path / "arr.npy")
        first = np.zeros((2, 2))
        np.save(path, first)
        handle = SharedArrayHandle("", (2, 2), "<f8", path=path)
        try:
            attach_shared_array(handle)
            os.unlink(path)
            np.save(path, np.ones((2, 2)))  # fresh inode, same shape
            np.testing.assert_array_equal(attach_shared_array(handle),
                                          np.ones((2, 2)))
        finally:
            detach_shared_array(path)

    def test_unchanged_file_reuses_cached_map(self, tmp_path):
        path = str(tmp_path / "arr.npy")
        np.save(path, np.zeros(4))
        handle = SharedArrayHandle("", (4,), "<f8", path=path)
        try:
            first = attach_shared_array(handle)
            assert attach_shared_array(handle) is first
        finally:
            detach_shared_array(path)
