"""Reference parity: the vectorized MPGP scoring backend vs the loop one.

``backend="vectorized"`` precomputes the per-arc common-neighbour table
(the same pass behind ``HuGEKernel.arc_acceptance_table``) while
``backend="loop"`` gallops each placed neighbour on demand; both must
produce **byte-identical** node→machine assignments (and therefore
identical balance/edge-cut metrics) on every graph family, for both the
sequential and the parallel partitioner.  Property tests pin the γ-slack
balance bound and fixed-seed determinism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, powerlaw_cluster, ring_of_cliques, star
from repro.graph.generators import rmat
from repro.partition import (
    MPGPPartitioner,
    ParallelMPGPPartitioner,
    PartitionConfig,
    evaluate,
)
from repro.partition.mpgp import (
    _mpgp_stream,
    _segment_affinity,
    _segment_affinity_loop,
    merge_segments,
)
from repro.partition.streaming_orders import get_order
from repro.walks.kernels import common_neighbor_counts_per_arc


def graph_family(kind):
    if kind == "undirected":
        return powerlaw_cluster(250, attach=4, triangle_prob=0.4, seed=2)
    if kind == "weighted":
        return powerlaw_cluster(180, attach=3, seed=3).with_random_weights(
            np.random.default_rng(4))
    if kind == "directed":
        return powerlaw_cluster(180, attach=3, triangle_prob=0.3,
                                seed=5).as_directed()
    raise KeyError(kind)


GRAPHS = ("undirected", "weighted", "directed")


class TestBackendParity:
    @pytest.mark.parametrize("num_parts", (2, 4, 7))
    @pytest.mark.parametrize("kind", GRAPHS)
    def test_sequential_assignments_identical(self, kind, num_parts):
        graph = graph_family(kind)
        loop = MPGPPartitioner(backend="loop").partition(graph, num_parts)
        vec = MPGPPartitioner(backend="vectorized").partition(graph,
                                                              num_parts)
        np.testing.assert_array_equal(loop.assignment, vec.assignment)

    @pytest.mark.parametrize("kind", GRAPHS)
    def test_parallel_assignments_identical(self, kind):
        graph = graph_family(kind)
        loop = ParallelMPGPPartitioner(backend="loop").partition(graph, 4)
        vec = ParallelMPGPPartitioner(backend="vectorized").partition(graph,
                                                                      4)
        np.testing.assert_array_equal(loop.assignment, vec.assignment)

    @pytest.mark.parametrize("kind", GRAPHS)
    def test_quality_metrics_identical(self, kind):
        graph = graph_family(kind)
        metrics = {}
        for backend in ("loop", "vectorized"):
            result = MPGPPartitioner(backend=backend).partition(graph, 4)
            metrics[backend] = evaluate(graph, result.assignment, 4).as_dict()
        assert metrics["loop"] == metrics["vectorized"]

    def test_streaming_orders_all_match(self, medium_graph):
        for order in ("dfs+degree", "bfs+degree", "random"):
            loop = MPGPPartitioner(order=order, seed=7,
                                   backend="loop").partition(medium_graph, 3)
            vec = MPGPPartitioner(order=order, seed=7,
                                  backend="vectorized").partition(
                                      medium_graph, 3)
            np.testing.assert_array_equal(loop.assignment, vec.assignment)

    def test_star_and_tiny_graphs(self):
        for graph in (star(12), ring_of_cliques(3, 4),
                      CSRGraph.from_edges([(0, 1), (1, 2)], num_nodes=4)):
            loop = MPGPPartitioner(backend="loop").partition(graph, 2)
            vec = MPGPPartitioner(backend="vectorized").partition(graph, 2)
            np.testing.assert_array_equal(loop.assignment, vec.assignment)

    def test_arc_table_matches_galloping(self, medium_graph):
        """The vectorized backend's table is the exact quantity the loop
        gallops -- and the same one the HuGE kernel precomputes."""
        from repro.partition.galloping import galloping_intersect_size

        table = common_neighbor_counts_per_arc(medium_graph)
        rng = np.random.default_rng(0)
        arcs = rng.integers(0, medium_graph.num_stored_edges, size=50)
        src = np.repeat(np.arange(medium_graph.num_nodes),
                        medium_graph.degrees)
        for arc in arcs:
            u, v = int(src[arc]), int(medium_graph.indices[arc])
            assert table[arc] == galloping_intersect_size(
                medium_graph.neighbors(u), medium_graph.neighbors(v))


class TestProperties:
    @pytest.mark.parametrize("num_parts", (2, 4))
    def test_balance_bound_respected(self, num_parts):
        """γ-slack: no machine exceeds γ · (n / num_parts) + 1 nodes."""
        graph = powerlaw_cluster(300, attach=4, seed=8)
        for backend in ("loop", "vectorized"):
            result = MPGPPartitioner(gamma=2.0, backend=backend).partition(
                graph, num_parts)
            bound = 2.0 * graph.num_nodes / num_parts + 1
            assert result.sizes().max() <= bound

    def test_deterministic_under_fixed_seed(self):
        graph = powerlaw_cluster(200, attach=3, seed=9)
        for cls in (MPGPPartitioner, ParallelMPGPPartitioner):
            a = cls(seed=3).partition(graph, 4).assignment
            b = cls(seed=3).partition(graph, 4).assignment
            np.testing.assert_array_equal(a, b)

    def test_every_node_assigned(self, medium_graph):
        for backend in ("loop", "vectorized"):
            result = MPGPPartitioner(backend=backend).partition(
                medium_graph, 5)
            assert result.assignment.min() >= 0
            assert result.assignment.max() < 5


class TestMergeParity:
    """The vectorized segment-merge affinity equals the per-node loop.

    The merge used to be the parallel path's only per-node Python work;
    it is now one CSR gather + bincount per segment.  Every affinity
    increment is the integer 1.0, so the two computations are equal in
    any accumulation order -- including at the 10^5-node scale where the
    loop used to serialize the parallel partitioner.
    """

    def test_merge_parity_on_real_segments(self):
        graph = powerlaw_cluster(300, attach=4, triangle_prob=0.3, seed=8)
        stream = get_order("bfs+degree", graph, 0)
        segments = [s for s in np.array_split(stream, 4) if s.size]
        seg_parts = [_mpgp_stream(graph, s, 4, 2.0)[s] for s in segments]
        vec = merge_segments(graph, segments, seg_parts, 4, 2.0,
                             affinity_fn=_segment_affinity)
        loop = merge_segments(graph, segments, seg_parts, 4, 2.0,
                              affinity_fn=_segment_affinity_loop)
        np.testing.assert_array_equal(vec, loop)

    def test_merge_parity_at_1e5_nodes(self):
        """131072-node R-MAT graph: merge of synthetic (but full-coverage)
        segment labelings is byte-identical between the vectorized and
        loop affinity, for a skewed-degree graph with dead-end rows."""
        graph = rmat(scale=17, edge_factor=4, seed=6)
        rng = np.random.default_rng(0)
        stream = rng.permutation(graph.num_nodes).astype(np.int64)
        segments = [s for s in np.array_split(stream, 4) if s.size]
        seg_parts = [rng.integers(0, 4, size=s.size, dtype=np.int64)
                     for s in segments]
        vec = merge_segments(graph, segments, seg_parts, 4, 2.0,
                             affinity_fn=_segment_affinity)
        loop = merge_segments(graph, segments, seg_parts, 4, 2.0,
                              affinity_fn=_segment_affinity_loop)
        np.testing.assert_array_equal(vec, loop)
        assert vec.min() >= 0 and vec.max() < 4

    def test_vectorized_merge_is_the_fast_path(self):
        """The partitioner's default merge goes through the vectorized
        affinity (guards against silently rewiring the loop back in)."""
        import repro.partition.mpgp as mpgp_module

        defaults = mpgp_module.merge_segments.__defaults__
        assert mpgp_module._segment_affinity in defaults


class TestConfig:
    def test_defaults_and_resolution(self):
        cfg = PartitionConfig()
        assert cfg.resolved_backend() == "vectorized"
        assert PartitionConfig(backend="loop").resolved_backend() == "loop"

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            PartitionConfig(backend="gpu")
        with pytest.raises(ValueError, match="backend"):
            MPGPPartitioner(backend="gpu")

    def test_from_config(self):
        cfg = PartitionConfig(gamma=1.5, order="bfs+degree", seed=4,
                              backend="loop", num_segments=3)
        seq = MPGPPartitioner.from_config(cfg)
        assert (seq.gamma, seq.order, seq.seed, seq.backend) == \
            (1.5, "bfs+degree", 4, "loop")
        par = ParallelMPGPPartitioner.from_config(cfg)
        assert par.num_segments == 3
        assert par.resolved_backend() == "loop"

    def test_config_equivalent_to_kwargs(self, medium_graph):
        cfg = PartitionConfig(gamma=1.8, order="dfs+degree", seed=2)
        a = MPGPPartitioner.from_config(cfg).partition(medium_graph, 3)
        b = MPGPPartitioner(gamma=1.8, order="dfs+degree",
                            seed=2).partition(medium_graph, 3)
        np.testing.assert_array_equal(a.assignment, b.assignment)
