"""Out-of-core backing (``backing="mmap"``): byte parity and spill semantics.

The backing knob is a pure *transport* choice: every executor moves the
same bytes whether the shared blocks live in ``/dev/shm`` or in
file-backed ``.npy`` maps, because all randomness is counter-based and
workers only ever read the shared inputs.  This suite pins that claim --
corpora, assignments and embeddings byte-identical to shm across
serial/process/pipeline -- plus the :class:`repro.walks.corpus.Corpus`
spill path's equivalence to the in-RAM corpus and the knob's routing
through configs, ``embed_graph`` and the CLI.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.api import embed_graph
from repro.embedding import TrainConfig
from repro.graph import powerlaw_cluster
from repro.partition import PartitionConfig
from repro.partition.balance import WorkloadBalancePartitioner
from repro.runtime import Cluster
from repro.utils.sharedmem import attach_shared_array, detach_shared_array
from repro.walks import DistributedWalkEngine, WalkConfig
from repro.walks.corpus import Corpus

WORKER_COUNTS = (1, 2, 4)
GRAPHS = ("undirected", "weighted", "directed")


def graph_family(kind):
    if kind == "undirected":
        return powerlaw_cluster(150, attach=4, triangle_prob=0.4, seed=2)
    if kind == "weighted":
        return powerlaw_cluster(130, attach=3, seed=3).with_random_weights(
            np.random.default_rng(4))
    if kind == "directed":
        return powerlaw_cluster(130, attach=3, triangle_prob=0.3,
                                seed=5).as_directed()
    raise KeyError(kind)


def run_walks(graph, execution, workers=0, machines=3, **overrides):
    part = WorkloadBalancePartitioner().partition(graph, machines)
    cluster = Cluster(machines, part.assignment, seed=5)
    cfg = WalkConfig.distger(**{"max_rounds": 2, "min_rounds": 2,
                                "execution": execution, "workers": workers,
                                **overrides})
    return DistributedWalkEngine(graph, cluster, cfg).run(), cluster


def assert_corpora_equal(ref, other):
    np.testing.assert_array_equal(ref.tokens, other.tokens)
    np.testing.assert_array_equal(ref.offsets, other.offsets)
    np.testing.assert_array_equal(ref.occurrences, other.occurrences)


# ------------------------------------------------------------------ #
# Corpus spill path
# ------------------------------------------------------------------ #


class TestCorpusSpill:
    def build_reference(self, kind):
        # Pin shm so the reference stays in-RAM even when the suite runs
        # under REPRO_BACKING=mmap (the CI out-of-core job does).
        result, _ = run_walks(graph_family(kind), "serial", backing="shm")
        return result.corpus

    @pytest.mark.parametrize("kind", ("directed", "weighted"))
    def test_spilled_append_equals_in_ram(self, kind, tmp_path):
        """Replaying a real engine corpus walk-by-walk into a spilled
        corpus reproduces the flat block byte for byte."""
        ref = self.build_reference(kind)
        spilled = Corpus(ref.occurrences.size)
        spilled.spill_to(str(tmp_path), stage_tokens=257)
        try:
            assert spilled.is_spilled
            for walk in ref.walks:
                spilled.add_walk(walk)
            spilled.shrink_to_fit()
            assert_corpora_equal(ref, spilled)
            assert isinstance(spilled.tokens, np.memmap)
        finally:
            spilled.close()

    @pytest.mark.parametrize("kind", ("directed", "weighted"))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_engine_mmap_corpus_byte_identical(self, kind, workers,
                                               tmp_path):
        """The engine under backing="mmap" spills the corpus and still
        lands on the serial shm bytes at 1/2/4 workers."""
        ref = self.build_reference(kind)
        result, _ = run_walks(graph_family(kind), "process", workers,
                              backing="mmap", spill_dir=str(tmp_path))
        corpus = result.corpus
        assert corpus.is_spilled
        assert_corpora_equal(ref, corpus)
        corpus.close()

    def test_pipeline_mmap_corpus_byte_identical(self, tmp_path):
        ref = self.build_reference("directed")
        result, _ = run_walks(graph_family("directed"), "pipeline", 2,
                              backing="mmap", spill_dir=str(tmp_path))
        assert result.corpus.is_spilled
        assert_corpora_equal(ref, result.corpus)
        result.corpus.close()

    def test_spill_handles_share_the_corpus_files(self, tmp_path):
        ref = self.build_reference("directed")
        spilled = Corpus(ref.occurrences.size)
        spilled.spill_to(str(tmp_path))
        handles = None
        try:
            for walk in ref.walks:
                spilled.add_walk(walk)
            handles = spilled.spill_handles()
            tokens_handle, offsets_handle = handles
            assert tokens_handle.path.startswith(str(tmp_path))
            np.testing.assert_array_equal(
                attach_shared_array(tokens_handle), ref.tokens)
            np.testing.assert_array_equal(
                attach_shared_array(offsets_handle), ref.offsets)
        finally:
            if handles is not None:
                for handle in handles:
                    detach_shared_array(handle.path)
            spilled.close()

    def test_spill_is_idempotent_and_rejected_when_unspilled(self,
                                                             tmp_path):
        corpus = Corpus(10)
        with pytest.raises(RuntimeError, match="spill"):
            corpus.spill_handles()
        corpus.spill_to(str(tmp_path))
        first = corpus.spill_dir
        corpus.spill_to(str(tmp_path))  # no-op, keeps the directory
        assert corpus.spill_dir == first
        corpus.close()

    def test_storage_split_accounts_resident_vs_mapped(self, tmp_path):
        ref = self.build_reference("undirected")
        spilled = Corpus(ref.occurrences.size)
        spilled.spill_to(str(tmp_path))
        try:
            for walk in ref.walks:
                spilled.add_walk(walk)
            spilled.shrink_to_fit()
            split = spilled.storage_bytes()
            assert split["mapped"] >= ref.tokens.nbytes
            assert split["resident"] < split["mapped"]
            assert spilled.memory_bytes() == \
                split["resident"] + split["mapped"]
            in_ram = ref.storage_bytes()
            assert in_ram["mapped"] == 0
            assert in_ram["resident"] == ref.memory_bytes()
        finally:
            spilled.close()

    def test_pickle_and_save_roundtrip_materialise(self, tmp_path):
        ref = self.build_reference("undirected")
        spilled = Corpus(ref.occurrences.size)
        spilled.spill_to(str(tmp_path / "spill"))
        try:
            for walk in ref.walks:
                spilled.add_walk(walk)
            clone = pickle.loads(pickle.dumps(spilled))
            assert not clone.is_spilled
            assert_corpora_equal(ref, clone)
            target = str(tmp_path / "corpus.npz")
            spilled.save(target)
            assert_corpora_equal(ref, Corpus.load(target))
        finally:
            spilled.close()

    def test_close_removes_spill_directory(self, tmp_path):
        corpus = Corpus(20)
        corpus.spill_to(str(tmp_path))
        corpus.add_walk(np.array([1, 2, 3], dtype=np.int64))
        spill_dir = corpus.spill_dir
        assert os.path.isdir(spill_dir)
        corpus.close()
        assert not os.path.exists(spill_dir)
        assert not corpus.is_spilled


# ------------------------------------------------------------------ #
# End-to-end parity
# ------------------------------------------------------------------ #


class TestEmbedParity:
    @pytest.fixture(scope="class")
    def reference(self):
        graph = graph_family("undirected")
        # backing="shm" keeps the reference in-RAM regardless of any
        # REPRO_BACKING ambient default (the CI out-of-core job sets mmap).
        return graph, embed_graph(graph, num_machines=3, dim=12, epochs=1,
                                  seed=7, execution="serial", backing="shm")

    @pytest.mark.parametrize("execution", ("process", "pipeline"))
    def test_mmap_embeddings_byte_identical(self, reference, execution,
                                            tmp_path):
        graph, ref = reference
        run = embed_graph(graph, num_machines=3, dim=12, epochs=1, seed=7,
                          execution=execution, workers=2, backing="mmap",
                          spill_dir=str(tmp_path))
        np.testing.assert_array_equal(ref.embeddings, run.embeddings)
        assert ref.metrics.as_dict() == run.metrics.as_dict()
        assert run.stats["corpus_mapped_bytes"] > 0
        assert ref.stats["corpus_mapped_bytes"] == 0

    def test_mmap_matches_shm_under_process(self, reference, tmp_path):
        graph, _ = reference
        kwargs = dict(num_machines=3, dim=12, epochs=1, seed=7,
                      execution="process", workers=2)
        shm = embed_graph(graph, backing="shm", **kwargs)
        mm = embed_graph(graph, backing="mmap", spill_dir=str(tmp_path),
                         **kwargs)
        np.testing.assert_array_equal(shm.embeddings, mm.embeddings)

    def test_partition_assignment_parity(self, tmp_path):
        from repro.partition import ParallelMPGPPartitioner

        graph = graph_family("weighted")
        serial = ParallelMPGPPartitioner().partition(graph, 4).assignment
        proc = ParallelMPGPPartitioner(
            execution="process", workers=2, backing="mmap",
            spill_dir=str(tmp_path)).partition(graph, 4).assignment
        np.testing.assert_array_equal(serial, proc)


# ------------------------------------------------------------------ #
# Knob routing
# ------------------------------------------------------------------ #


class TestKnobRouting:
    def test_invalid_backing_rejected_everywhere(self):
        for config in (WalkConfig, TrainConfig, PartitionConfig):
            with pytest.raises(ValueError, match="backing"):
                config(backing="tmpfs")

    def test_env_default_backing(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKING", "mmap")
        assert WalkConfig().backing == "mmap"
        assert TrainConfig().backing == "mmap"
        assert PartitionConfig().backing == "mmap"
        monkeypatch.setenv("REPRO_BACKING", "shm")
        assert WalkConfig().backing == "shm"

    def test_embed_graph_rejects_backing_for_non_walk_methods(self):
        graph = powerlaw_cluster(30, attach=2, seed=1)
        with pytest.raises(ValueError, match="backing"):
            embed_graph(graph, method="pbg", backing="mmap")

    def test_from_config_carries_backing(self):
        from repro.partition import ParallelMPGPPartitioner
        from repro.partition.mpgp import MPGPPartitioner

        cfg = PartitionConfig(backing="mmap", spill_dir="/tmp/x")
        for cls in (MPGPPartitioner, ParallelMPGPPartitioner):
            partitioner = cls.from_config(cfg)
            assert partitioner.backing == "mmap"
            assert partitioner.spill_dir == "/tmp/x"

    def test_cli_flags_route_to_backend_kwargs(self):
        from repro.cli import _backend_kwargs, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["embed", "--execution", "process", "--backing", "mmap",
             "--spill-dir", "/tmp/spill"])
        kwargs = _backend_kwargs(args)
        assert kwargs["backing"] == "mmap"
        assert kwargs["spill_dir"] == "/tmp/spill"
        with pytest.raises(SystemExit):
            parser.parse_args(["embed", "--backing", "tmpfs"])
