"""Tests for the grid-search / model-selection harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import community_graph, multi_labels_from_communities
from repro.tasks import (
    GridSearchReport,
    ParameterGrid,
    Trial,
    classification_objective,
    grid_search,
    link_prediction_objective,
)


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(grid) == 6
        assert combos[0] == {"a": 1, "b": "x"}
        assert combos[-1] == {"a": 2, "b": "z"}

    def test_last_key_varies_fastest(self):
        combos = list(ParameterGrid({"a": [1, 2], "b": [10, 20]}))
        assert combos == [
            {"a": 1, "b": 10}, {"a": 1, "b": 20},
            {"a": 2, "b": 10}, {"a": 2, "b": 20},
        ]

    def test_single_key(self):
        assert list(ParameterGrid({"lr": [0.1]})) == [{"lr": 0.1}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            ParameterGrid({})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            ParameterGrid({"a": []})

    def test_scalar_values_rejected(self):
        with pytest.raises(TypeError, match="sequence"):
            ParameterGrid({"a": 3})
        with pytest.raises(TypeError, match="sequence"):
            ParameterGrid({"a": "abc"})


class TestGridSearch:
    def test_finds_known_optimum(self):
        # Concave objective over the grid: peak at x=3, y=-1.
        report = grid_search(
            lambda p: -((p["x"] - 3) ** 2) - (p["y"] + 1) ** 2,
            {"x": [1, 2, 3, 4], "y": [-2, -1, 0]},
        )
        assert report.best_params == {"x": 3, "y": -1}
        assert report.best_score == pytest.approx(0.0)
        assert len(report.trials) == 12

    def test_minimize(self):
        report = grid_search(
            lambda p: (p["x"] - 2) ** 2,
            {"x": [0, 1, 2, 3]},
            maximize=False,
        )
        assert report.best_params == {"x": 2}

    def test_records_timing(self):
        report = grid_search(lambda p: 1.0, {"x": [1, 2]})
        assert all(t.seconds >= 0 for t in report.trials)

    def test_to_rows_sorted_best_first(self):
        report = grid_search(lambda p: p["x"], {"x": [2, 5, 1]})
        rows = report.to_rows()
        assert [r[1] for r in rows] == [5, 2, 1]

    def test_empty_report_raises(self):
        with pytest.raises(ValueError, match="no trials"):
            GridSearchReport().best

    def test_trial_dataclass(self):
        t = Trial(params={"a": 1}, score=0.5, seconds=0.1)
        assert t.params["a"] == 1


@pytest.fixture(scope="module")
def labelled_graph():
    graph, comm = community_graph(120, 4, within_degree=8.0,
                                  cross_degree=0.5, seed=11)
    labels = multi_labels_from_communities(comm, num_labels=8, seed=11)
    return graph, labels


class TestObjectives:
    def test_link_prediction_objective_scores_params(self, labelled_graph):
        graph, _ = labelled_graph
        objective = link_prediction_objective(
            graph, method="distger", test_fraction=0.3, seed=0,
            num_machines=2, epochs=1,
        )
        score = objective({"dim": 16})
        assert 0.0 <= score <= 1.0
        # A real embedding on a community graph must beat coin-flipping.
        assert score > 0.55

    def test_link_prediction_grid_end_to_end(self, labelled_graph):
        graph, _ = labelled_graph
        objective = link_prediction_objective(
            graph, method="distger", test_fraction=0.3, seed=0,
            num_machines=2, epochs=1,
        )
        report = grid_search(objective, {"dim": [8, 16]})
        assert len(report.trials) == 2
        assert report.best_params["dim"] in (8, 16)

    def test_search_params_override_fixed(self, labelled_graph):
        graph, _ = labelled_graph
        seen = []

        def fake_embed(train_graph, params):
            seen.append(dict(params))
            return np.random.default_rng(0).normal(
                size=(train_graph.num_nodes, 4))

        objective = link_prediction_objective(
            graph, seed=0, embed=fake_embed, dim=4, epochs=9,
        )
        objective({"epochs": 1})
        assert seen[0]["epochs"] == 1   # searched value wins
        assert seen[0]["dim"] == 4      # fixed value passes through

    def test_classification_objective(self, labelled_graph):
        graph, labels = labelled_graph

        def fake_embed(g, params):
            # Deterministic structured embedding: one-hot community-ish
            # vectors recover the labels well above chance.
            rng = np.random.default_rng(1)
            return rng.normal(size=(g.num_nodes, params["dim"]))

        objective = classification_objective(
            graph, labels, embed=fake_embed, seed=0,
        )
        score = objective({"dim": 8})
        assert 0.0 <= score <= 1.0

    def test_same_split_across_grid_points(self, labelled_graph):
        """Every grid point must compete on identical held-out edges."""
        graph, _ = labelled_graph
        splits = []

        def spy_embed(train_graph, params):
            splits.append(train_graph.num_edges)
            return np.zeros((train_graph.num_nodes, 2))

        objective = link_prediction_objective(graph, seed=3, embed=spy_embed)
        grid_search(objective, {"dim": [2, 4, 8]})
        assert len(set(splits)) == 1
