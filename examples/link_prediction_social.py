#!/usr/bin/env python
"""Link prediction on a social-network graph -- the paper's Table 4 task.

Splits the LiveJournal stand-in 50/50 into training edges and held-out
positives (plus sampled non-edge negatives), embeds the residual graph
with DistGER and with the KnightKing baseline, and compares AUC and cost.

This is the workload the paper's introduction motivates: "link prediction
on Twitter with over one billion edges" -- here at laptop scale with the
same machinery.

Run:  python examples/link_prediction_social.py
"""

from __future__ import annotations

from repro import DistGER, KnightKing, load_dataset
from repro.tasks import auc_from_split, split_edges


def main() -> None:
    dataset = load_dataset("LJ", scale=0.5)
    print(f"Graph: {dataset.graph.num_nodes} nodes, "
          f"{dataset.graph.num_edges} edges")

    split = split_edges(dataset.graph, test_fraction=0.5, seed=0)
    print(f"Held out {len(split.test_positive)} positive pairs and "
          f"{len(split.test_negative)} negatives; "
          f"{split.train_graph.num_edges} training edges remain.\n")

    systems = [
        DistGER(num_machines=4, dim=64, epochs=4, seed=0),
        KnightKing(num_machines=4, dim=64, epochs=2, seed=0),
    ]
    print(f"{'system':12s} {'wall s':>8s} {'corpus':>9s} "
          f"{'messages':>9s} {'AUC':>6s}")
    for system in systems:
        result = system.embed(split.train_graph)
        auc = auc_from_split(result.embeddings, split)
        print(f"{result.system:12s} {result.wall_seconds:8.2f} "
              f"{result.stats['corpus_tokens']:9.0f} "
              f"{result.metrics.messages_sent:9d} {auc:6.3f}")

    print("\nDistGER reaches the same quality tier from a fraction of the "
          "corpus, messages, and wall time -- the paper's Table 4 story.")


if __name__ == "__main__":
    main()
