#!/usr/bin/env python
"""Deployment topologies: what MPGP's message reduction is worth.

The paper's testbed is a flat 100 Gbps switch.  Real clusters have racks
with oversubscribed core links, and heterogeneous machines straggle.
This study reprices the *same* recorded walk traffic under three cost
models -- flat switch, 2-rack network at increasing oversubscription, and
a cluster with one half-speed machine -- for DistGER's MPGP partition vs
KnightKing's workload-balancing partition.

Expected shape: MPGP's ~45% cross-machine message reduction (Fig. 10(c))
is worth more the more expensive cross-rack bytes become, because MPGP's
locality keeps walkers inside machines (and hence inside racks).

Run:  python examples/topology_study.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.partition import MPGPPartitioner, WorkloadBalancePartitioner
from repro.runtime import (
    Cluster,
    HeterogeneousCostModel,
    RackTopologyCostModel,
    rack_assignment,
)
from repro.walks import DistributedWalkEngine, WalkConfig

MACHINES = 4


def sample_walks(graph, partitioner) -> Cluster:
    """Run one identical sampling workload over a partition; return the
    cluster holding the recorded per-pair traffic."""
    assignment = partitioner.partition(graph, MACHINES).assignment
    cluster = Cluster(MACHINES, assignment, seed=0)
    config = WalkConfig.distger(max_rounds=3)
    DistributedWalkEngine(graph, cluster, config).run()
    return cluster


def main() -> None:
    dataset = load_dataset("LJ", scale=0.5)
    graph = dataset.graph
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"{MACHINES} machines\n")

    clusters = {
        "MPGP (DistGER)": sample_walks(graph, MPGPPartitioner(seed=0)),
        "workload-bal. (KnightKing)": sample_walks(
            graph, WorkloadBalancePartitioner()),
    }

    for name, cluster in clusters.items():
        m = cluster.metrics
        print(f"{name}: {m.messages_sent} cross-machine messages, "
              f"{m.message_bytes} B")

    racks = rack_assignment(MACHINES, 2)
    print(f"\nSimulated makespan (s) under each topology "
          f"(racks: {racks}):")
    header = f"{'topology':34s}" + "".join(f"{n.split()[0]:>14s}"
                                           for n in clusters)
    print(header)

    rows = [("flat switch (paper's testbed)", None)]
    rows += [(f"2 racks, {o:.0f}x oversubscribed",
              RackTopologyCostModel(racks=racks, oversubscription=o))
             for o in (2.0, 4.0, 8.0)]
    baseline_ratio = None
    for label, model in rows:
        times = []
        for cluster in clusters.values():
            cost = model or cluster.cost_model
            times.append(cost.makespan(cluster.metrics))
        ratio = times[1] / times[0]
        if baseline_ratio is None:
            baseline_ratio = ratio
        print(f"{label:34s}" + "".join(f"{t:14.4f}" for t in times)
              + f"   (KK/MPGP {ratio:.2f}x)")

    print("\nStraggler scenario (machine 3 at half speed):")
    straggler = HeterogeneousCostModel(
        speed_factors=(1.0, 1.0, 1.0, 0.5))
    for name, cluster in clusters.items():
        t_flat = cluster.cost_model.makespan(cluster.metrics)
        t_slow = straggler.makespan(cluster.metrics)
        print(f"  {name:28s} {t_flat:.4f}s -> {t_slow:.4f}s "
              f"(+{(t_slow / t_flat - 1) * 100:.0f}%)")

    print("\nThe KK/MPGP gap widens with oversubscription: locality that "
          "saves messages on a flat switch saves *core bandwidth* in a "
          "real datacenter.")


if __name__ == "__main__":
    main()
