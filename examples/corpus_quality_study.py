#!/usr/bin/env python
"""Corpus quality: concise *and* comprehensive (the §2.1 argument).

HuGE's pitch is that routine random walks (L=80, r=10 for every node)
overshoot: the corpus keeps growing long after it has captured the graph.
This study generates three corpora on the LiveJournal stand-in --

* the routine KnightKing corpus,
* a truncated routine corpus (L=20, r=3: cheap but blind),
* DistGER's information-oriented corpus (entropy-terminated walks,
  KL-terminated rounds)

-- and scores each on comprehensiveness (node/edge coverage, occupancy
KL vs the degree distribution) and conciseness (tokens per covered
node/edge).  The information-oriented corpus should match the routine
corpus's coverage at a fraction of its tokens, which is exactly why the
paper's training phase is 17-28x faster on the same quality tier.

Run:  python examples/corpus_quality_study.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.runtime import Cluster
from repro.walks import (
    DistributedWalkEngine,
    WalkConfig,
    compare_corpora,
    entropy_trace,
    vectorized_routine_corpus,
)


def main() -> None:
    dataset = load_dataset("LJ", scale=0.5)
    graph = dataset.graph
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    cluster = Cluster(1, np.zeros(graph.num_nodes, dtype=np.int64), seed=0)
    info_corpus = DistributedWalkEngine(
        graph, cluster, WalkConfig.distger()).run().corpus

    corpora = {
        "routine L=80 r=10": vectorized_routine_corpus(
            graph, walk_length=80, walks_per_node=10, seed=0),
        "truncated L=20 r=3": vectorized_routine_corpus(
            graph, walk_length=20, walks_per_node=3, seed=0),
        "information-oriented": info_corpus,
    }

    report = compare_corpora(graph, corpora)
    print(f"{'corpus':22s} {'tokens':>8s} {'avg L':>6s} {'node cov':>9s} "
          f"{'edge cov':>9s} {'KL':>6s} {'tok/node':>9s} {'tok/edge':>9s}")
    for name, q in report.items():
        print(f"{name:22s} {q.tokens:8d} {q.average_walk_length:6.1f} "
              f"{q.node_coverage:9.1%} {q.edge_coverage:9.1%} "
              f"{q.occupancy_kl:6.3f} {q.tokens_per_covered_node:9.1f} "
              f"{q.tokens_per_covered_edge:9.1f}")

    routine = report["routine L=80 r=10"]
    info = report["information-oriented"]
    print(f"\nInformation-oriented corpus: "
          f"{info.tokens / routine.tokens:.1%} of the routine tokens at "
          f"{info.node_coverage:.1%} node coverage "
          f"(routine: {routine.node_coverage:.1%}).")

    # Why walks can stop early: the entropy ramp saturates.
    walk = max(info_corpus.walks, key=len)
    trace = entropy_trace(walk)
    print(f"\nEntropy ramp of the longest info-walk (length {len(walk)}):")
    marks = [0, len(trace) // 4, len(trace) // 2, 3 * len(trace) // 4,
             len(trace) - 1]
    print("  " + "  ".join(f"L={i + 1}: {trace[i]:.2f}" for i in marks))
    print("Growth flattens -> the R² rule (Eq. 5) terminates the walk "
          "instead of padding the corpus to L=80.")


if __name__ == "__main__":
    main()
