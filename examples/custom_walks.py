#!/usr/bin/env python
"""The generic API (paper §6.6): any walk kernel, information-centric.

DistGER is not tied to HuGE's transition kernel: DeepWalk's uniform walk,
node2vec's biased second-order walk, and HuGE+ all run through the same
engine, each freed from the routine L=80 / r=10 configuration by the
information-centric termination rules.  This example compares the four
kernels' corpora and quality on one graph.

Run:  python examples/custom_walks.py
"""

from __future__ import annotations

from repro import DistGER, load_dataset
from repro.tasks import auc_from_split, split_edges


def main() -> None:
    graph = load_dataset("LJ", scale=0.5).graph
    split = split_edges(graph, test_fraction=0.5, seed=0)
    print(f"Residual training graph: {split.train_graph.num_edges} edges\n")

    print(f"{'kernel':10s} {'avg len':>8s} {'rounds':>7s} "
          f"{'tokens':>8s} {'wall s':>7s} {'AUC':>6s}")
    for kernel in ("huge", "huge+", "deepwalk", "node2vec"):
        system = DistGER(num_machines=4, dim=64, epochs=4, seed=0,
                         kernel=kernel)
        result = system.embed(split.train_graph)
        auc = auc_from_split(result.embeddings, split)
        print(f"{kernel:10s} {result.stats['avg_walk_length']:8.1f} "
              f"{result.stats['rounds']:7.0f} "
              f"{result.stats['corpus_tokens']:8.0f} "
              f"{result.wall_seconds:7.2f} {auc:6.3f}")

    print("\nEvery kernel terminates walks by entropy convergence rather "
          "than a fixed length -- the corpus adapts to the graph, not the "
          "other way around.")


if __name__ == "__main__":
    main()
