#!/usr/bin/env python
"""Community detection by clustering DistGER embeddings.

The paper's introduction lists clustering [37] among the downstream tasks
graph embedding serves.  This example embeds a community-structured graph
(the labelled Flickr/YouTube stand-in generator), clusters the vectors
with k-means, and scores the recovered partition against the planted
ground truth (NMI) and against the graph itself (modularity) -- including
the sweep over k that a practitioner would run when the community count
is unknown.

Run:  python examples/community_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import embed_graph
from repro.graph import community_graph
from repro.tasks import evaluate_clustering

NUM_COMMUNITIES = 5


def main() -> None:
    graph, truth = community_graph(
        250, NUM_COMMUNITIES, within_degree=10.0, cross_degree=0.6, seed=13,
    )
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{NUM_COMMUNITIES} planted communities")

    result = embed_graph(graph, method="distger", num_machines=4,
                         dim=32, epochs=3, seed=0)
    emb = result.embeddings
    print(f"Embedded in {result.wall_seconds:.2f}s wall\n")

    # A practitioner rarely knows k; sweep and let modularity choose.
    print(f"{'k':>3}  {'NMI':>6}  {'modularity':>10}")
    best_k, best_q = None, -1.0
    for k in range(2, 9):
        report = evaluate_clustering(graph, emb, k=k, ground_truth=truth,
                                     seed=0)
        marker = ""
        if report.modularity > best_q:
            best_k, best_q = k, report.modularity
            marker = "  <- best modularity so far"
        print(f"{k:>3}  {report.nmi:6.3f}  {report.modularity:10.3f}{marker}")

    report = evaluate_clustering(graph, emb, k=best_k, ground_truth=truth,
                                 seed=0)
    sizes = np.bincount(report.labels)
    print(f"\nModularity selects k={best_k} "
          f"(planted: {NUM_COMMUNITIES}); cluster sizes: {sizes.tolist()}")
    print(f"Agreement with planted communities: NMI = {report.nmi:.3f}")


if __name__ == "__main__":
    main()
