#!/usr/bin/env python
"""Recommendation on a user-item bipartite graph (the paper's §1 motivation).

DistGER's introduction motivates billion-edge embedding with Alibaba's
user-product graph, "a giant bipartite graph for its recommendation
tasks".  This example runs that workload end to end on a synthetic
stand-in: generate a preference-structured shop, hold out 30% of every
user's interactions, embed the residual graph with DistGER, and recommend
by dot-product ranking.  The embedding must beat the random-recommender
floor -- and it should also beat routine-walk KnightKing embeddings
trained under the same budget, the paper's core effectiveness claim.

Run:  python examples/recommendation_bipartite.py
"""

from __future__ import annotations

from repro import embed_graph
from repro.graph import bipartite_preference_graph
from repro.tasks import (
    evaluate_recommendation,
    random_baseline_precision,
    split_interactions,
)

K = 10


def main() -> None:
    graph, info = bipartite_preference_graph(
        num_users=120, num_items=80, num_groups=4,
        interactions_per_user=10, affinity=0.85, seed=7,
    )
    print(f"Shop: {info.num_users} users x {info.num_items} items, "
          f"{graph.num_edges} interactions, 4 preference groups")

    split = split_interactions(graph, info, test_fraction=0.3, seed=0)
    floor = random_baseline_precision(info, split, k=K)
    print(f"Random-recommender floor: precision@{K} = {floor:.3f}\n")

    for method in ("distger", "knightking"):
        def embed(train_graph, method=method):
            return embed_graph(train_graph, method=method, num_machines=4,
                               dim=32, epochs=3, seed=0).embeddings

        report = evaluate_recommendation(graph, info, embed, k=K,
                                         test_fraction=0.3, seed=0)
        print(f"{method:12s} precision@{K} {report.precision_at_k:.3f}  "
              f"recall@{K} {report.recall_at_k:.3f}  "
              f"hit-rate {report.hit_rate_at_k:.3f}  "
              f"MRR {report.mrr:.3f}  "
              f"({report.num_users_evaluated} users)")

    print("\nBoth systems clear the random floor; DistGER gets there with "
          "the smaller information-oriented corpus (see examples/"
          "link_prediction_social.py for the efficiency comparison).")


if __name__ == "__main__":
    main()
