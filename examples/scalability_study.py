#!/usr/bin/env python
"""Scalability study -- the paper's Fig. 6 and Fig. 7 at laptop scale.

Part 1 sweeps the simulated machine count (1, 2, 4, 8) on a fixed graph
and reports the simulated makespan: compute shrinks with machines while
communication grows, reproducing the scaling curves.

Part 2 sweeps the graph size (R-MAT scales) at a fixed cluster and shows
the near-linear growth of sampling + training time with |V|.

Part 3 runs the same pipeline on the real execution runtimes
(``embed_graph(..., execution="process", workers=4)`` -- equivalently
``python -m repro embed --execution process --workers 4``): worker
processes over shared-memory buffers behind per-phase barriers, then the
*streaming* executor (``execution="pipeline"``), where partitioning
overlaps walk sampling and round flushes overlap the next round's
sampling -- byte-identical results either way, wall-clock scaling with
the host's cores.

Run:  python examples/scalability_study.py

``REPRO_EXAMPLE_FAST=1`` shrinks every sweep to smoke-test size (how the
examples smoke test keeps this script executable in CI).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import DistGER, embed_graph, load_dataset
from repro.graph import rmat

#: Smoke-test mode: tiny graphs, short sweeps, identical code paths.
FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")


def machine_sweep() -> None:
    graph = load_dataset("LJ", scale=0.1 if FAST else 0.5).graph
    print(f"Machine sweep on |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print(f"{'machines':>9s} {'sim s':>8s} {'messages':>9s} "
          f"{'sync MB':>8s} {'imbalance':>9s}")
    for machines in (1, 2) if FAST else (1, 2, 4, 8):
        system = DistGER(num_machines=machines, dim=32, epochs=2, seed=0)
        result = system.embed(graph)
        m = result.metrics
        print(f"{machines:9d} {result.simulated_seconds:8.3f} "
              f"{m.messages_sent:9d} {m.sync_bytes / 1e6:8.1f} "
              f"{m.compute_imbalance:9.2f}")


def size_sweep() -> None:
    print("\nGraph-size sweep (R-MAT, 4 machines)")
    print(f"{'nodes':>7s} {'edges':>8s} {'walk s':>8s} {'train s':>8s}")
    for scale in (7, 8) if FAST else (7, 8, 9, 10):
        graph = rmat(scale=scale, edge_factor=5, seed=3)
        system = DistGER(num_machines=4, dim=32, epochs=1, seed=0)
        result = system.embed(graph)
        print(f"{graph.num_nodes:7d} {graph.num_edges:8d} "
              f"{result.phase('sampling'):8.2f} "
              f"{result.phase('training'):8.2f}")


def executor_sweep() -> None:
    """Serial vs process vs pipeline: same bytes, host-core wall-clock."""
    graph = rmat(scale=9 if FAST else 13, edge_factor=8, seed=3)
    print(f"\nExecutor sweep on |V|={graph.num_nodes} "
          f"(host has {os.cpu_count()} cores)")
    print(f"{'execution':>12s} {'workers':>8s} {'wall s':>8s}")

    def timed_embed(**kwargs):
        start = time.perf_counter()
        result = embed_graph(graph, num_machines=4, dim=32, epochs=1,
                             seed=0, **kwargs)
        return result, time.perf_counter() - start

    serial, serial_wall = timed_embed(execution="serial")
    print(f"{'serial':>12s} {'-':>8s} {serial_wall:8.2f}")
    for execution in ("process", "pipeline"):
        for workers in (2,) if FAST else (2, 4):
            result, wall = timed_embed(execution=execution, workers=workers)
            same = np.array_equal(serial.embeddings, result.embeddings)
            print(f"{execution:>12s} {workers:8d} {wall:8.2f}"
                  f"   byte-identical to serial: {same}")


if __name__ == "__main__":
    machine_sweep()
    size_sweep()
    executor_sweep()
