#!/usr/bin/env python
"""Quickstart: embed a graph with DistGER in a few lines.

Builds the LiveJournal stand-in graph, runs the full DistGER pipeline
(MPGP partitioning -> information-oriented random walks with InCoM ->
DSGL training with hotness-block synchronisation) on a simulated
4-machine cluster, and prints what happened.

Run:  python examples/quickstart.py

``REPRO_EXAMPLE_SCALE`` / ``REPRO_EXAMPLE_DIM`` / ``REPRO_EXAMPLE_EPOCHS``
shrink the run (the examples smoke test uses them to keep this script
executable in CI on a tiny graph).
"""

from __future__ import annotations

import os

from repro import embed_graph, load_dataset

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.5"))
DIM = int(os.environ.get("REPRO_EXAMPLE_DIM", "64"))
EPOCHS = int(os.environ.get("REPRO_EXAMPLE_EPOCHS", "3"))


def main() -> None:
    dataset = load_dataset("LJ", scale=SCALE)
    graph = dataset.graph
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"({dataset.description})")

    result = embed_graph(
        graph,
        method="distger",
        num_machines=4,
        dim=DIM,
        epochs=EPOCHS,
        seed=0,
    )

    print(f"\nEmbeddings: {result.embeddings.shape}")
    print(f"End-to-end wall time: {result.wall_seconds:.2f}s")
    for phase in ("partition", "sampling", "training"):
        print(f"  {phase:10s} {result.phase(phase):7.2f}s")
    print(f"Simulated cluster makespan: {result.simulated_seconds:.3f}s")

    stats = result.stats
    print("\nInformation-oriented sampling:")
    print(f"  average walk length  {stats['avg_walk_length']:.1f} "
          f"(routine baseline: 80)")
    print(f"  walks per node       {stats['rounds']:.0f} "
          f"(routine baseline: 10)")
    print(f"  corpus tokens        {stats['corpus_tokens']:.0f}")

    metrics = result.metrics
    print("\nDistributed behaviour:")
    print(f"  cross-machine walker messages  {metrics.messages_sent}")
    print(f"  walker message bytes           {metrics.message_bytes} "
          f"(constant 80 B each -- InCoM)")
    print(f"  model sync traffic             {metrics.sync_bytes / 1e6:.1f} MB "
          f"(hotness-block)")

    # The embeddings are ready for any downstream task:
    emb = result.embeddings
    u, v = 0, int(graph.neighbors(0)[0])
    print(f"\nSimilarity of adjacent nodes {u},{v}: "
          f"{float(emb[u] @ emb[v]):.3f}")


if __name__ == "__main__":
    main()
