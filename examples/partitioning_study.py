#!/usr/bin/env python
"""Partitioning study: why MPGP matters for random walks (paper §3.2).

Partitions the same graph with every scheme in the library, then runs the
identical information-oriented walk workload over each partitioning and
reports edge cut, balance, cross-machine messages, and simulated walk
time -- the quantities behind the paper's Fig. 10(c,d) and Fig. 11.

Run:  python examples/partitioning_study.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.partition import (
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    MetisLikePartitioner,
    MPGPPartitioner,
    ParallelMPGPPartitioner,
    WorkloadBalancePartitioner,
    evaluate,
)
from repro.runtime import Cluster
from repro.walks import DistributedWalkEngine, WalkConfig

MACHINES = 4


def main() -> None:
    graph = load_dataset("LJ", scale=0.6).graph
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{MACHINES} machines\n")

    partitioners = [
        HashPartitioner(),
        WorkloadBalancePartitioner(),
        LDGPartitioner(),
        FennelPartitioner(),
        MetisLikePartitioner(),
        MPGPPartitioner(),
        ParallelMPGPPartitioner(),
    ]

    print(f"{'scheme':20s} {'part s':>7s} {'cut%':>6s} {'balance':>8s} "
          f"{'messages':>9s} {'walk s(sim)':>11s}")
    for partitioner in partitioners:
        result = partitioner.partition(graph, MACHINES)
        quality = evaluate(graph, result.assignment, MACHINES)
        cluster = Cluster(MACHINES, result.assignment, seed=1)
        DistributedWalkEngine(graph, cluster, WalkConfig.distger()).run()
        print(f"{result.method:20s} {result.seconds:7.3f} "
              f"{quality.cut_fraction:6.1%} {quality.node_balance:8.2f} "
              f"{cluster.metrics.messages_sent:9d} "
              f"{cluster.simulated_seconds():11.3f}")

    print("\nProximity-aware schemes (MPGP, METIS-like) cut cross-machine "
          "walker traffic roughly in half vs load-only balancing -- the "
          "paper's 45% message reduction (Fig. 10(c)).")


if __name__ == "__main__":
    main()
