#!/usr/bin/env python
"""One-call system comparison (the §6 experiment loop as public API).

Runs DistGER and its baselines on the same graph with the same held-out
edge split and prints every quantity the paper compares: end-to-end
time, simulated makespan, walker traffic, synchronisation bytes, peak
memory, corpus size and link-prediction AUC.

Run:  python examples/system_comparison.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.systems import compare_systems


def main() -> None:
    dataset = load_dataset("LJ", scale=0.5)
    graph = dataset.graph
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"({dataset.description})\n")

    comparison = compare_systems(
        graph,
        methods=("distger", "huge-d", "knightking"),
        num_machines=4, dim=32, epochs=2, seed=0,
        task="link-prediction",
    )
    print(comparison.formatted())

    for slow in ("huge-d", "knightking"):
        print(f"\nDistGER vs {slow}: "
              f"{comparison.speedup('distger', slow):.1f}x wall, "
              f"{comparison.speedup('distger', slow, clock='simulated'):.1f}x "
              f"simulated")

    distger = comparison.row("distger")
    knightking = comparison.row("knightking")
    print(f"\nMechanism: the information-oriented corpus is "
          f"{distger.corpus_tokens / knightking.corpus_tokens:.1%} the size "
          f"of the routine corpus at an AUC of {distger.auc:.3f} vs "
          f"{knightking.auc:.3f}.")


if __name__ == "__main__":
    main()
