#!/usr/bin/env python
"""Multi-label node classification -- the paper's Fig. 9 task.

Embeds the labelled Flickr stand-in (interest-group style labels derived
from community structure), trains a one-vs-rest logistic regression on a
sweep of training ratios, and reports Micro-/Macro-F1, comparing DistGER
with the KnightKing baseline.

Run:  python examples/node_classification.py
"""

from __future__ import annotations

from repro import DistGER, KnightKing, load_dataset
from repro.tasks import evaluate_classification


def main() -> None:
    dataset = load_dataset("FL", scale=0.6)
    print(f"Graph: {dataset.graph.num_nodes} nodes, "
          f"{dataset.graph.num_edges} edges, "
          f"{dataset.num_labels} label categories\n")

    systems = [
        DistGER(num_machines=4, dim=64, epochs=4, seed=0),
        KnightKing(num_machines=4, dim=64, epochs=2, seed=0),
    ]
    embeddings = {}
    for system in systems:
        result = system.embed(dataset.graph)
        embeddings[result.system] = result.embeddings
        print(f"{result.system}: embedded in {result.wall_seconds:.2f}s")

    print(f"\n{'system':12s} {'ratio':>6s} {'macro-F1':>9s} {'micro-F1':>9s}")
    for name, emb in embeddings.items():
        for ratio in (0.3, 0.5, 0.7):
            report = evaluate_classification(
                emb, dataset.labels, train_ratio=ratio, trials=3, seed=0
            )
            print(f"{name:12s} {ratio:6.1f} {report.mean_macro_f1:9.3f} "
                  f"{report.mean_micro_f1:9.3f}")


if __name__ == "__main__":
    main()
