#!/usr/bin/env python
"""Grid search for embedding hyper-parameters (the paper's §6.1 protocol).

    "For task effectiveness evaluations, we find the best results from a
    grid search over learning rates from 0.001-0.1, # epochs from 1-30,
    and # dimensions from 128-512."

This example reproduces that protocol at stand-in scale: a grid over
learning rate, epochs and dimension, scored by link-prediction AUC on a
fixed held-out edge split, so every grid point competes on the same test
edges.  The grid is deliberately small to finish in seconds; widen the
lists to match the paper's ranges.

Run:  python examples/hyperparameter_search.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.tasks import grid_search, link_prediction_objective

GRID = {
    "lr": [0.01, 0.05],
    "epochs": [1, 3],
    "dim": [16, 48],
}


def main() -> None:
    dataset = load_dataset("LJ", scale=0.5)
    graph = dataset.graph
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"Grid: {GRID}  ({2 * 2 * 2} combinations)\n")

    objective = link_prediction_objective(
        graph, method="distger", test_fraction=0.3, seed=0,
        num_machines=2,
    )
    report = grid_search(objective, GRID)

    print(f"{'lr':>6}  {'epochs':>6}  {'dim':>4}  {'AUC':>6}  {'seconds':>8}")
    for params, score, seconds in report.to_rows():
        print(f"{params['lr']:>6}  {params['epochs']:>6}  {params['dim']:>4}  "
              f"{score:6.3f}  {seconds:8.2f}")

    best = report.best
    print(f"\nBest: AUC {best.score:.3f} at {best.params}")
    print("Expected shape: more epochs and dimensions help until the "
          "stand-in's size caps the benefit; the paper's full ranges "
          "behave the same way at 10^6-10^9 edges.")


if __name__ == "__main__":
    main()
