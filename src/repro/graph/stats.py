"""Graph statistics used by experiments and dataset validation.

These functions back two needs: (1) the dataset stand-ins must demonstrably
match the structural properties (degree skew, density) of the graphs they
replace, and (2) the HuGE walk-count rule needs the degree distribution
(Eq. 6).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from repro.graph.csr import CSRGraph


def degree_histogram(graph: CSRGraph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    degrees = graph.degrees
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def power_law_exponent(graph: CSRGraph, d_min: int = 2) -> float:
    """Maximum-likelihood power-law exponent of the degree distribution.

    Uses the continuous Hill estimator ``1 + n / Σ ln(d/d_min)`` over degrees
    ``>= d_min``.  Real social graphs land around 2-3; the dataset tests
    assert our stand-ins do too.
    """
    degrees = graph.degrees[graph.degrees >= d_min].astype(np.float64)
    if degrees.size < 2:
        raise ValueError("not enough high-degree nodes for an exponent estimate")
    log_sum = float(np.sum(np.log(degrees / d_min)))
    if log_sum <= 0.0:
        # Every degree sits at d_min: regular graph, no tail to fit.
        raise ValueError("degree distribution has no tail above d_min")
    return float(1.0 + degrees.size / log_sum)


def average_degree(graph: CSRGraph) -> float:
    """Mean stored out-degree."""
    if graph.num_nodes == 0:
        return 0.0
    return float(graph.degrees.mean())


def density(graph: CSRGraph) -> float:
    """Logical edges over max possible edges."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    denom = n * (n - 1) if graph.directed else n * (n - 1) / 2
    return graph.num_edges / denom


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per node (undirected semantics: arcs traversed both ways
    are already materialised for undirected graphs; for directed graphs this
    yields weakly-connected components of the stored arcs only)."""
    n = graph.num_nodes
    comp = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if comp[start] != -1:
            continue
        comp[start] = current
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if comp[v] == -1:
                    comp[v] = current
                    queue.append(int(v))
        current += 1
    return comp


def largest_component_nodes(graph: CSRGraph) -> np.ndarray:
    """Node ids of the largest connected component."""
    comp = connected_components(graph)
    if comp.size == 0:
        return np.empty(0, dtype=np.int64)
    largest = np.bincount(comp).argmax()
    return np.flatnonzero(comp == largest)


def triangle_count(graph: CSRGraph) -> int:
    """Total triangles in an undirected graph.

    Counts, for every edge ``(u, v)`` with ``u < v``, the common neighbours
    ``w > v`` (ordered enumeration counts each triangle exactly once).
    O(Σ deg²) like :func:`clustering_coefficient` -- stand-in scale only.
    """
    if graph.directed:
        raise ValueError("triangle counting is defined here for undirected graphs")
    total = 0
    for u in range(graph.num_nodes):
        nbrs_u = graph.neighbors(u)
        higher = nbrs_u[nbrs_u > u]
        for v in higher:
            nbrs_v = graph.neighbors(int(v))
            common = np.intersect1d(higher, nbrs_v[nbrs_v > v],
                                    assume_unique=True)
            total += int(common.size)
    return total


def degree_assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of endpoint degrees over all arcs (Newman).

    Social graphs tend positive (hubs befriend hubs); technological graphs
    negative.  Returns 0.0 for degree-regular graphs, where the correlation
    is undefined.
    """
    arcs = graph.edge_array()
    if len(arcs) == 0:
        return 0.0
    deg = graph.degrees.astype(np.float64)
    x = deg[arcs[:, 0]]
    y = deg[arcs[:, 1]]
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def approximate_diameter(
    graph: CSRGraph, num_sources: int = 8, seed: int = 0
) -> int:
    """Lower bound on the diameter via BFS from sampled sources.

    Runs BFS from ``num_sources`` random nodes of the largest component and
    returns the maximum eccentricity observed -- the standard cheap
    estimate (exact on small diameters when sources hit the periphery).
    """
    members = largest_component_nodes(graph)
    if members.size <= 1:
        return 0
    rng = np.random.default_rng(seed)
    sources = rng.choice(members, size=min(num_sources, members.size),
                         replace=False)
    best = 0
    for start in sources:
        dist = np.full(graph.num_nodes, -1, dtype=np.int64)
        dist[start] = 0
        queue = deque([int(start)])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if dist[v] == -1:
                    dist[v] = dist[u] + 1
                    queue.append(int(v))
        best = max(best, int(dist.max()))
    return best


def degree_gini(graph: CSRGraph) -> float:
    """Gini coefficient of the degree distribution in ``[0, 1)``.

    0 means degree-regular; values approaching 1 mean a few hubs hold most
    of the edges -- a scale-free skew summary that complements
    :func:`power_law_exponent` (which needs a tail to fit).
    """
    degrees = np.sort(graph.degrees.astype(np.float64))
    n = degrees.size
    total = degrees.sum()
    if n == 0 or total == 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.sum(ranks * degrees)) / (n * total) - (n + 1) / n)


def clustering_coefficient(graph: CSRGraph, nodes: np.ndarray | None = None) -> float:
    """Mean local clustering coefficient over ``nodes`` (or all nodes).

    O(Σ deg²) -- intended for the small stand-in graphs only.
    """
    if nodes is None:
        nodes = np.arange(graph.num_nodes)
    coeffs: List[float] = []
    for u in nodes:
        nbrs = graph.neighbors(int(u))
        k = nbrs.size
        if k < 2:
            coeffs.append(0.0)
            continue
        links = 0
        nbr_set = set(int(x) for x in nbrs)
        for v in nbrs:
            links += sum(1 for w in graph.neighbors(int(v)) if int(w) in nbr_set)
        coeffs.append(links / (k * (k - 1)))
    return float(np.mean(coeffs)) if coeffs else 0.0
