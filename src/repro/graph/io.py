"""Edge-list IO.

The real datasets the paper uses ship as whitespace-separated edge lists
(SNAP / ASU format).  These helpers read and write that format so users can
run the reproduction on the genuine graphs when they have them locally.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph


def read_edge_list(
    path: str,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
) -> CSRGraph:
    """Read a whitespace-separated edge list into a :class:`CSRGraph`.

    Lines starting with ``comment`` are skipped.  With ``weighted=True`` a
    third column is parsed as the edge weight.
    """
    srcs, dsts, weights = [], [], []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected at least 2 columns")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise ValueError(f"{path}:{lineno}: weighted file missing weight")
                weights.append(float(parts[2]))
    edges = np.stack(
        [np.asarray(srcs, dtype=np.int64), np.asarray(dsts, dtype=np.int64)], axis=1
    ) if srcs else np.empty((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(
        edges,
        weights=np.asarray(weights) if weighted else None,
        directed=directed,
    )


def write_edge_list(graph: CSRGraph, path: str, header: Optional[str] = None) -> None:
    """Write the logical edges of ``graph`` as a whitespace edge list."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    edges = graph.unique_edges()
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        if graph.is_weighted:
            for u, v in edges:
                handle.write(f"{u} {v} {graph.edge_weight(int(u), int(v)):.6g}\n")
        else:
            for u, v in edges:
                handle.write(f"{u} {v}\n")


def save_graph_npz(graph: CSRGraph, path: str) -> None:
    """Persist a graph's CSR arrays in NumPy's compressed binary format.

    Orders of magnitude faster than edge-list text for large graphs and
    loss-free for weights/directedness.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.array([graph.directed]),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_graph_npz(path: str) -> CSRGraph:
    """Load a graph written by :func:`save_graph_npz`."""
    with np.load(path) as data:
        return CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            weights=data["weights"] if "weights" in data.files else None,
            directed=bool(data["directed"][0]),
        )


def save_embeddings(path: str, embeddings: np.ndarray) -> None:
    """Persist an embedding matrix in word2vec text format."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    n, d = embeddings.shape
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{n} {d}\n")
        for node in range(n):
            vec = " ".join(f"{x:.6f}" for x in embeddings[node])
            handle.write(f"{node} {vec}\n")


def load_embeddings(path: str) -> np.ndarray:
    """Load an embedding matrix saved by :func:`save_embeddings`."""
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline().split()
        n, d = int(first[0]), int(first[1])
        out = np.zeros((n, d), dtype=np.float64)
        for line in handle:
            parts = line.split()
            out[int(parts[0])] = [float(x) for x in parts[1:]]
    return out
