"""Bipartite user-item graphs (the recommendation workload of §1).

The paper motivates billion-edge embedding with Alibaba's user-product
graph -- "a giant bipartite graph for its recommendation tasks" [60].
That graph is proprietary, so this generator builds the synthetic
equivalent: users and items with planted preference groups (users
interact mostly within their group) and Zipf-skewed item popularity, the
two properties that make embedding-based recommendation work and that
drive its evaluation.

Node ids: users are ``0 .. num_users-1``, items are
``num_users .. num_users+num_items-1`` in one :class:`CSRGraph`, so every
walk/embedding component applies unchanged; :class:`BipartiteInfo` keeps
the side metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class BipartiteInfo:
    """Side metadata of a generated user-item graph."""

    num_users: int
    num_items: int
    #: preference group per user (int64[num_users])
    user_groups: np.ndarray
    #: group per item (int64[num_items])
    item_groups: np.ndarray

    @property
    def user_ids(self) -> np.ndarray:
        return np.arange(self.num_users, dtype=np.int64)

    @property
    def item_ids(self) -> np.ndarray:
        return np.arange(self.num_users, self.num_users + self.num_items,
                         dtype=np.int64)

    def is_item(self, node: int) -> bool:
        return self.num_users <= node < self.num_users + self.num_items


def bipartite_preference_graph(
    num_users: int,
    num_items: int,
    num_groups: int = 4,
    interactions_per_user: int = 8,
    affinity: float = 0.8,
    zipf_exponent: float = 1.2,
    seed: SeedLike = None,
) -> tuple[CSRGraph, BipartiteInfo]:
    """Generate a user-item interaction graph with planted preferences.

    Each user draws ``interactions_per_user`` distinct items: with
    probability ``affinity`` from its own preference group (popularity
    ∝ Zipf with ``zipf_exponent`` within the group), otherwise uniformly
    from the whole catalogue.  Higher affinity makes the recommendation
    task easier; ``affinity = 1/num_groups``-ish removes the signal.

    Returns ``(graph, info)`` with an undirected CSR graph over
    ``num_users + num_items`` nodes.
    """
    check_positive("num_users", num_users)
    check_positive("num_items", num_items)
    check_positive("num_groups", num_groups)
    check_positive("interactions_per_user", interactions_per_user)
    check_probability("affinity", affinity)
    if zipf_exponent <= 0:
        raise ValueError(f"zipf_exponent must be positive, got {zipf_exponent}")
    if num_items < num_groups:
        raise ValueError("need at least one item per group")
    rng = default_rng(seed)

    user_groups = rng.integers(0, num_groups, size=num_users)
    item_groups = np.sort(rng.integers(0, num_groups, size=num_items))
    # Guarantee every group owns at least one item.
    for g in range(num_groups):
        if not np.any(item_groups == g):
            item_groups[rng.integers(0, num_items)] = g

    # Zipf popularity within each group: rank r gets weight r^-s.
    popularity = np.zeros(num_items, dtype=np.float64)
    for g in range(num_groups):
        members = np.flatnonzero(item_groups == g)
        ranks = rng.permutation(members.size) + 1
        popularity[members] = ranks.astype(np.float64) ** (-zipf_exponent)

    edges = []
    all_probs = popularity / popularity.sum()
    for user in range(num_users):
        group_items = np.flatnonzero(item_groups == user_groups[user])
        group_probs = popularity[group_items]
        group_probs = group_probs / group_probs.sum()
        chosen: set = set()
        budget = min(interactions_per_user, num_items)
        guard = 0
        while len(chosen) < budget and guard < 50 * budget:
            guard += 1
            if rng.random() < affinity:
                item = int(group_items[rng.choice(group_items.size,
                                                  p=group_probs)])
            else:
                item = int(rng.choice(num_items, p=all_probs))
            chosen.add(item)
        edges.extend((user, num_users + item) for item in chosen)

    graph = CSRGraph.from_edges(
        np.asarray(edges, dtype=np.int64),
        num_nodes=num_users + num_items,
    )
    info = BipartiteInfo(
        num_users=num_users,
        num_items=num_items,
        user_groups=user_groups,
        item_groups=item_groups,
    )
    return graph, info
