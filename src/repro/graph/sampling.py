"""Graph downsampling: scale real graphs to experiment size.

The reproduction ships synthetic stand-ins, but users with the genuine
SNAP/ASU datasets (Table 2) will want to run laptop-scale experiments on
*real* structure.  These samplers cut a large graph down while preserving
the properties that drive random-walk embedding:

* :func:`sample_nodes_uniform` -- induced subgraph of a uniform node
  sample (cheap; thins the degree distribution);
* :func:`sample_edges_uniform` -- keep a uniform edge sample (preserves
  degree *proportions* better than node sampling);
* :func:`snowball_sample` -- BFS ball around seed nodes (preserves local
  structure exactly; the classic crawler shape).

All return compact relabelled subgraphs plus the original ids, via
:func:`repro.graph.transform.induced_subgraph`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.transform import induced_subgraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive, check_probability


def sample_nodes_uniform(
    graph: CSRGraph, num_nodes: int, seed: SeedLike = None
) -> Tuple[CSRGraph, np.ndarray]:
    """Induced subgraph of ``num_nodes`` uniformly sampled nodes."""
    check_positive("num_nodes", num_nodes)
    if num_nodes > graph.num_nodes:
        raise ValueError(
            f"cannot sample {num_nodes} nodes from {graph.num_nodes}"
        )
    rng = default_rng(seed)
    nodes = rng.choice(graph.num_nodes, size=num_nodes, replace=False)
    return induced_subgraph(graph, nodes)


def sample_edges_uniform(
    graph: CSRGraph, keep_fraction: float, seed: SeedLike = None
) -> CSRGraph:
    """Keep each logical edge independently with ``keep_fraction``.

    The node set is unchanged (some nodes may become isolated), so node
    ids and any label arrays remain valid -- the right choice when labels
    must survive the downsampling.
    """
    check_probability("keep_fraction", keep_fraction)
    rng = default_rng(seed)
    edges = graph.unique_edges()
    keep = rng.random(len(edges)) < keep_fraction
    kept = edges[keep]
    weights = None
    if graph.is_weighted:
        weights = np.array([graph.edge_weight(int(u), int(v))
                            for u, v in kept])
    return CSRGraph.from_edges(kept, num_nodes=graph.num_nodes,
                               weights=weights, directed=graph.directed)


def snowball_sample(
    graph: CSRGraph,
    target_size: int,
    seeds: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """BFS ball(s) around seed nodes until ``target_size`` nodes are in.

    Expands breadth-first from ``seeds`` (default: one uniformly random
    node per ball as needed), preserving local neighbourhood structure
    exactly -- degrees inside the ball match the original graph except at
    the frontier.  If the graph runs out of reachable nodes, new random
    seeds are drawn until the target (or the whole graph) is covered.
    """
    check_positive("target_size", target_size)
    if target_size > graph.num_nodes:
        raise ValueError(
            f"cannot sample {target_size} nodes from {graph.num_nodes}"
        )
    rng = default_rng(seed)
    selected = np.zeros(graph.num_nodes, dtype=bool)
    count = 0
    queue: deque = deque()
    if seeds is not None:
        for s in np.asarray(seeds, dtype=np.int64):
            if not selected[s]:
                selected[s] = True
                count += 1
                queue.append(int(s))

    while count < target_size:
        if not queue:
            remaining = np.flatnonzero(~selected)
            fresh = int(remaining[rng.integers(0, remaining.size)])
            selected[fresh] = True
            count += 1
            queue.append(fresh)
            continue
        u = queue.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if not selected[v]:
                selected[v] = True
                count += 1
                queue.append(v)
                if count >= target_size:
                    break
    return induced_subgraph(graph, np.flatnonzero(selected))
