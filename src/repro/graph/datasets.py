"""Dataset registry: scaled-down stand-ins for the paper's five graphs.

The paper evaluates on Flickr (FL), YouTube (YT), LiveJournal (LJ),
Com-Orkut (OR) and Twitter (TW) -- up to 1.5 B edges.  Those graphs are not
redistributable and far exceed laptop scale, so each is replaced by a
deterministic synthetic stand-in built with the Chung-Lu block model
(:func:`repro.graph.generators.community_graph`), matched on the structural
properties that drive random-walk embedding behaviour:

* **degree skew** -- Pareto activity weights give heavy-tailed degrees,
  like the originals;
* **community structure with a small cross-community edge fraction** --
  this is what makes link prediction achievable (paper Table 4 AUCs are
  0.92-0.98); the cross fraction directly caps the attainable AUC;
* **relative density** -- FL densest per node, YT sparsest, mirroring the
  paper's Table 2;
* **labels** -- FL and YT stand-ins carry multi-label ground truth derived
  from their communities (the originals' labels are interest groups, i.e.
  community-correlated);
* **relative size ordering** -- TW > LJ > YT > OR > FL in nodes and
  TW largest in edges, as in Table 2.

Absolute timings therefore cannot match the paper, but every cross-system
and cross-dataset *ratio* the benchmarks report remains meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    community_graph,
    multi_labels_from_communities,
)
from repro.utils.rng import derive_seed


@dataclass
class Dataset:
    """A named benchmark graph plus optional node labels."""

    name: str
    graph: CSRGraph
    labels: Optional[np.ndarray] = None  # bool (num_nodes, num_labels)
    communities: Optional[np.ndarray] = None
    description: str = ""
    paper_nodes: int = 0
    paper_edges: int = 0

    @property
    def num_labels(self) -> int:
        return 0 if self.labels is None else self.labels.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name}: |V|={self.graph.num_nodes}, "
            f"|E|={self.graph.num_edges}, labels={self.num_labels})"
        )


def _scaled(base: int, scale: float, minimum: int = 50) -> int:
    return max(minimum, int(round(base * scale)))


def make_flickr(scale: float = 1.0, seed: int = 7) -> Dataset:
    """Flickr stand-in: smallest but densest per node (paper avg deg ~146),
    many label categories (paper: 195, here 20)."""
    n = _scaled(500, scale)
    graph, comm = community_graph(
        num_nodes=n,
        num_communities=max(6, n // 40),
        within_degree=26.0,
        cross_degree=1.5,
        seed=derive_seed(seed, 1),
    )
    labels = multi_labels_from_communities(
        comm, num_labels=20, labels_per_community=4, noise=0.03,
        seed=derive_seed(seed, 2),
    )
    return Dataset(
        name="FL",
        graph=graph,
        labels=labels,
        communities=comm,
        description="Flickr stand-in: dense Chung-Lu blocks, 20 labels",
        paper_nodes=80_513,
        paper_edges=5_899_882,
    )


def make_youtube(scale: float = 1.0, seed: int = 11) -> Dataset:
    """YouTube stand-in: sparsest of the suite (paper avg deg ~5),
    fewer label categories (paper: 47, here 12)."""
    n = _scaled(900, scale)
    graph, comm = community_graph(
        num_nodes=n,
        num_communities=max(8, n // 50),
        within_degree=6.0,
        cross_degree=0.35,
        seed=derive_seed(seed, 1),
    )
    labels = multi_labels_from_communities(
        comm, num_labels=12, labels_per_community=2, noise=0.03,
        seed=derive_seed(seed, 2),
    )
    return Dataset(
        name="YT",
        graph=graph,
        labels=labels,
        communities=comm,
        description="YouTube stand-in: sparse Chung-Lu blocks, 12 labels",
        paper_nodes=1_138_499,
        paper_edges=2_990_443,
    )


def make_livejournal(scale: float = 1.0, seed: int = 13) -> Dataset:
    """LiveJournal stand-in: medium density, strong communities."""
    n = _scaled(1200, scale)
    graph, comm = community_graph(
        num_nodes=n,
        num_communities=max(10, n // 40),
        within_degree=8.0,
        cross_degree=0.4,
        seed=derive_seed(seed, 1),
    )
    return Dataset(
        name="LJ",
        graph=graph,
        communities=comm,
        description="LiveJournal stand-in: Chung-Lu blocks, avg deg ~8",
        paper_nodes=2_238_731,
        paper_edges=14_608_137,
    )


def make_orkut(scale: float = 1.0, seed: int = 17) -> Dataset:
    """Com-Orkut stand-in: large and dense (paper avg deg ~76)."""
    n = _scaled(800, scale)
    graph, comm = community_graph(
        num_nodes=n,
        num_communities=max(8, n // 50),
        within_degree=20.0,
        cross_degree=2.0,
        seed=derive_seed(seed, 1),
    )
    return Dataset(
        name="OR",
        graph=graph,
        communities=comm,
        description="Com-Orkut stand-in: dense Chung-Lu blocks, avg deg ~22",
        paper_nodes=3_072_441,
        paper_edges=117_185_083,
    )


def make_twitter(scale: float = 1.0, seed: int = 19) -> Dataset:
    """Twitter stand-in: largest graph, heaviest degree tail (paper: 1.47 B
    edges; exponent 2.2 gives the hub-dominated structure of Twitter)."""
    n = _scaled(2048, scale)
    graph, comm = community_graph(
        num_nodes=n,
        num_communities=max(12, n // 50),
        within_degree=10.0,
        cross_degree=1.2,
        exponent=2.2,
        seed=derive_seed(seed, 1),
    )
    return Dataset(
        name="TW",
        graph=graph,
        communities=comm,
        description="Twitter stand-in: heavy-tailed Chung-Lu blocks",
        paper_nodes=41_652_230,
        paper_edges=1_468_365_182,
    )


_REGISTRY: Dict[str, Callable[[float, int], Dataset]] = {
    "FL": lambda scale, seed: make_flickr(scale, seed),
    "YT": lambda scale, seed: make_youtube(scale, seed),
    "LJ": lambda scale, seed: make_livejournal(scale, seed),
    "OR": lambda scale, seed: make_orkut(scale, seed),
    "TW": lambda scale, seed: make_twitter(scale, seed),
}

ALL_DATASETS: Tuple[str, ...] = ("FL", "YT", "LJ", "OR", "TW")
LABELLED_DATASETS: Tuple[str, ...] = ("FL", "YT")
LINK_PREDICTION_DATASETS: Tuple[str, ...] = ("YT", "LJ", "OR", "TW")


def load(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Load a stand-in dataset by its paper abbreviation (FL/YT/LJ/OR/TW).

    ``scale`` multiplies the stand-in's node budget; ``seed`` perturbs the
    generator seeds (0 keeps the canonical deterministic instance).
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(_REGISTRY)}")
    base_seed = {"FL": 7, "YT": 11, "LJ": 13, "OR": 17, "TW": 19}[key]
    return _REGISTRY[key](scale, derive_seed(base_seed, seed) or base_seed)


def load_suite(names: Optional[List[str]] = None, scale: float = 1.0) -> List[Dataset]:
    """Load several stand-ins (default: the full five-graph suite)."""
    return [load(n, scale=scale) for n in (names or list(ALL_DATASETS))]
