"""Graph substrate: CSR storage, generators, IO, statistics, datasets.

The paper stores graphs in Compressed Sparse Row form (§2); everything in
this reproduction operates on :class:`repro.graph.CSRGraph`.
"""

from repro.graph.bipartite import BipartiteInfo, bipartite_preference_graph
from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    ALL_DATASETS,
    LABELLED_DATASETS,
    LINK_PREDICTION_DATASETS,
    Dataset,
    load,
    load_suite,
)
from repro.graph.generators import (
    barabasi_albert,
    community_graph,
    erdos_renyi,
    multi_labels_from_communities,
    overlapping_community_graph,
    path,
    planted_partition,
    powerlaw_cluster,
    ring_of_cliques,
    rmat,
    star,
)
from repro.graph.io import (
    load_embeddings,
    load_graph_npz,
    read_edge_list,
    save_embeddings,
    save_graph_npz,
    write_edge_list,
)
from repro.graph.sampling import (
    sample_edges_uniform,
    sample_nodes_uniform,
    snowball_sample,
)
from repro.graph.transform import (
    PersonaGraph,
    core_number,
    ego_net_communities,
    induced_subgraph,
    k_core,
    largest_component_subgraph,
    persona_graph,
)
from repro.graph.stats import (
    approximate_diameter,
    average_degree,
    clustering_coefficient,
    connected_components,
    degree_assortativity,
    degree_gini,
    degree_histogram,
    density,
    largest_component_nodes,
    power_law_exponent,
    triangle_count,
)

__all__ = [
    "ALL_DATASETS",
    "BipartiteInfo",
    "CSRGraph",
    "Dataset",
    "LABELLED_DATASETS",
    "LINK_PREDICTION_DATASETS",
    "PersonaGraph",
    "approximate_diameter",
    "average_degree",
    "barabasi_albert",
    "bipartite_preference_graph",
    "clustering_coefficient",
    "community_graph",
    "connected_components",
    "core_number",
    "degree_assortativity",
    "degree_gini",
    "degree_histogram",
    "density",
    "ego_net_communities",
    "erdos_renyi",
    "induced_subgraph",
    "k_core",
    "largest_component_nodes",
    "largest_component_subgraph",
    "load",
    "load_embeddings",
    "load_graph_npz",
    "load_suite",
    "multi_labels_from_communities",
    "overlapping_community_graph",
    "path",
    "persona_graph",
    "planted_partition",
    "power_law_exponent",
    "powerlaw_cluster",
    "read_edge_list",
    "ring_of_cliques",
    "rmat",
    "sample_edges_uniform",
    "sample_nodes_uniform",
    "save_embeddings",
    "save_graph_npz",
    "snowball_sample",
    "star",
    "triangle_count",
    "write_edge_list",
]
