"""Graph transformations: component extraction, k-core, relabeling, personas.

Random-walk embedding pipelines preprocess real graphs before sampling:
walks cannot leave a connected component, so embedding quality statistics
are usually reported on the largest component; and peeling low-degree
shells (k-core) is the standard densification step when walks on hairy
peripheries waste the corpus budget.  These helpers produce *compact*
subgraphs (node ids relabelled to ``0..n'-1``) plus the id mapping needed
to carry labels/embeddings across.

:func:`persona_graph` is the ego-net splitting transform of Splitter
(Epasto & Perozzi): each node is expanded into one *persona* per
community of its ego-net, and every edge is rewired to the persona pair
that owns it.  The output is a plain :class:`CSRGraph`, so the walk
engine, executors and flat corpus consume it unchanged -- the persona
workload is a graph transform plus a trainer regularizer, not a new
engine (see :mod:`repro.persona`).
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.stats import connected_components
from repro.utils.validation import check_positive


def induced_subgraph(
    graph: CSRGraph, nodes: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``nodes``, compactly relabelled.

    Returns ``(subgraph, old_ids)`` where ``old_ids[new_id]`` recovers the
    original node id (so ``labels[old_ids]`` re-indexes node metadata).
    Edge weights are carried over.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
        raise ValueError("nodes contain ids outside the graph")
    new_id = np.full(graph.num_nodes, -1, dtype=np.int64)
    new_id[nodes] = np.arange(nodes.size, dtype=np.int64)

    arcs = graph.edge_array()
    keep = (new_id[arcs[:, 0]] >= 0) & (new_id[arcs[:, 1]] >= 0)
    kept = arcs[keep]
    kept_w = None if graph.weights is None else graph.weights[keep]
    # Arcs are already direction-complete for undirected graphs; rebuild
    # the CSR directly without re-symmetrising.
    n = nodes.size
    relabelled = np.stack([new_id[kept[:, 0]], new_id[kept[:, 1]]], axis=1)
    order = np.lexsort((relabelled[:, 1], relabelled[:, 0]))
    relabelled = relabelled[order]
    if kept_w is not None:
        kept_w = kept_w[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    if len(relabelled):
        indptr[1:] = np.cumsum(np.bincount(relabelled[:, 0], minlength=n))
    sub = CSRGraph(indptr, relabelled[:, 1].copy() if len(relabelled)
                   else np.empty(0, dtype=np.int64),
                   kept_w, directed=graph.directed)
    return sub, nodes


def largest_component_subgraph(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Compact subgraph of the largest connected component.

    Walks never leave a component, so this is the canonical preprocessing
    step before sampling.  Returns ``(subgraph, old_ids)``.
    """
    comp = connected_components(graph)
    if comp.size == 0:
        return graph, np.empty(0, dtype=np.int64)
    largest = int(np.bincount(comp).argmax())
    return induced_subgraph(graph, np.flatnonzero(comp == largest))


def k_core(graph: CSRGraph, k: int) -> Tuple[CSRGraph, np.ndarray]:
    """The ``k``-core: maximal subgraph with all degrees >= ``k``.

    Standard peeling: repeatedly remove nodes of degree < k until a fixed
    point.  Defined here for undirected graphs (degree = full adjacency).
    Returns ``(subgraph, old_ids)``; the core can be empty.
    """
    check_positive("k", k)
    if graph.directed:
        raise ValueError("k-core peeling is defined here for undirected graphs")
    alive = np.ones(graph.num_nodes, dtype=bool)
    degree = graph.degrees.astype(np.int64).copy()
    # Queue-based peeling is O(|V| + |E|).
    from collections import deque

    queue = deque(int(v) for v in np.flatnonzero(degree < k))
    while queue:
        u = queue.popleft()
        if not alive[u]:
            continue
        alive[u] = False
        for v in graph.neighbors(u):
            v = int(v)
            if alive[v]:
                degree[v] -= 1
                if degree[v] < k:
                    queue.append(v)
    return induced_subgraph(graph, np.flatnonzero(alive))


class PersonaGraph(NamedTuple):
    """An ego-net-split graph plus the compact persona↔base id mapping.

    ``graph`` relabels personas to ``0..P-1`` grouped by base node:
    node ``u``'s personas are exactly the contiguous id range
    ``persona_offsets[u]:persona_offsets[u + 1]`` and ``base_of[p]``
    recovers the base node of persona ``p`` (so ``base_of`` is sorted,
    total, and ``labels[base_of]`` re-indexes node metadata onto
    personas).  Projecting every persona arc through ``base_of`` yields
    the original graph's arc multiset -- the invariant the property
    suite pins.
    """

    graph: CSRGraph
    base_of: np.ndarray          # (P,) persona id -> base node id
    persona_offsets: np.ndarray  # (n + 1,) base node -> persona id range

    @property
    def num_personas(self) -> int:
        return int(self.base_of.size)

    def personas_of(self, node: int) -> np.ndarray:
        """Persona ids of ``node`` (a contiguous ``arange`` view)."""
        return np.arange(self.persona_offsets[node],
                         self.persona_offsets[node + 1], dtype=np.int64)


def ego_net_communities(graph: CSRGraph, node: int,
                        neighbors: np.ndarray) -> np.ndarray:
    """Default ego-net labeler: connected components of the ego-net.

    The ego-net of ``node`` is the subgraph induced by its neighbours
    (the centre excluded, as in Splitter); two neighbours share a
    community iff they are connected inside it.  Returns one int label
    per ``neighbors`` entry, compact in first-appearance order -- which
    makes the labelling (and therefore persona ids) deterministic.
    """
    labels = np.arange(neighbors.size, dtype=np.int64)  # union-find parents

    def find(x: int) -> int:
        while labels[x] != x:
            labels[x] = labels[labels[x]]
            x = int(labels[x])
        return x

    for slot, v in enumerate(neighbors):
        # Mutual neighbours = edges of the ego-net incident to v.
        mutual = np.intersect1d(graph.neighbors(int(v)), neighbors,
                                assume_unique=True)
        for w in np.searchsorted(neighbors, mutual):
            ra, rb = find(slot), find(int(w))
            if ra != rb:
                labels[max(ra, rb)] = min(ra, rb)
    roots = np.fromiter((find(i) for i in range(neighbors.size)),
                        dtype=np.int64, count=neighbors.size)
    # Compact to 0..k-1 in first-appearance order.
    _, first = np.unique(roots, return_index=True)
    rank = np.empty(neighbors.size, dtype=np.int64)
    rank[:] = -1
    rank[roots[np.sort(first)]] = np.arange(first.size, dtype=np.int64)
    return rank[roots]


def persona_graph(
    graph: CSRGraph,
    communities: Optional[
        Callable[[CSRGraph, int, np.ndarray], np.ndarray]] = None,
) -> PersonaGraph:
    """Split every node into per-ego-net-community personas (Splitter).

    For each node ``u``, ``communities(graph, u, neighbors)`` labels
    ``u``'s neighbours with ego-net community ids (default:
    :func:`ego_net_communities`, connected components of the ego-net);
    ``u`` is expanded into one persona per distinct label (zero-degree
    nodes keep exactly one persona) and the arc ``u -> v`` is rewired to
    ``persona(u, label of v in u's ego-net) -> persona(v, label of u in
    v's ego-net)``.  Edge weights are carried over.  Every persona's
    adjacency is a subset of its base's, so the persona graph's arc
    multiset projects back onto the original graph's exactly.

    Undirected graphs only (ego-net community structure -- like k-core
    peeling above -- is an undirected notion).
    """
    if graph.directed:
        raise ValueError(
            "persona splitting is defined here for undirected graphs")
    n = graph.num_nodes
    indptr = graph.indptr
    # Per-adjacency-slot community label of the *target* inside the
    # source's ego-net, plus per-node persona counts.
    slot_label = np.empty(graph.indices.size, dtype=np.int64)
    counts = np.ones(n, dtype=np.int64)  # zero-degree: one persona
    for u in range(n):
        nbrs = graph.neighbors(u)
        if nbrs.size == 0:
            continue
        labels = (ego_net_communities(graph, u, nbrs) if communities is None
                  else np.asarray(communities(graph, u, nbrs),
                                  dtype=np.int64))
        if labels.shape != (nbrs.size,):
            raise ValueError(
                f"community labeler returned shape {labels.shape} for "
                f"node {u} with {nbrs.size} neighbours")
        if labels.size and labels.min() < 0:
            raise ValueError("community labels must be non-negative")
        slot_label[indptr[u]:indptr[u + 1]] = labels
        counts[u] = int(labels.max()) + 1
    persona_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=persona_offsets[1:])
    base_of = np.repeat(np.arange(n, dtype=np.int64), counts)

    # Rewire every arc (u, v): the source persona comes from v's label in
    # u's ego-net (this slot), the target persona from u's label in v's
    # ego-net (the reverse arc's slot).  Arcs are CSR-sorted by (src,
    # dst), so the reverse arc's position is one sorted lookup away.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    dst = graph.indices.astype(np.int64, copy=False)
    key = src * n + dst
    rev = np.searchsorted(key, dst * n + src)
    p_src = persona_offsets[src] + slot_label
    p_dst = persona_offsets[dst] + slot_label[rev]

    # Arcs are direction-complete (the reverse arc maps to the mirrored
    # persona pair), so build the CSR directly -- same pattern as
    # induced_subgraph above.
    num_p = int(persona_offsets[-1])
    order = np.lexsort((p_dst, p_src))
    p_src, p_dst = p_src[order], p_dst[order]
    weights = None if graph.weights is None else graph.weights[order]
    p_indptr = np.zeros(num_p + 1, dtype=np.int64)
    if p_src.size:
        p_indptr[1:] = np.cumsum(np.bincount(p_src, minlength=num_p))
    split = CSRGraph(p_indptr,
                     p_dst.copy() if p_dst.size
                     else np.empty(0, dtype=np.int64),
                     weights, directed=False)
    return PersonaGraph(graph=split, base_of=base_of,
                        persona_offsets=persona_offsets)


def core_number(graph: CSRGraph) -> np.ndarray:
    """Core number per node: the largest ``k`` whose k-core contains it.

    Batagelj-Zaversnik style peeling in increasing degree order; isolated
    nodes get 0.  Undirected graphs only.
    """
    if graph.directed:
        raise ValueError("core numbers are defined here for undirected graphs")
    n = graph.num_nodes
    degree = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    # Simple repeated-min peeling: fine at stand-in scale and obviously
    # correct; the bin-bucket O(|E|) version buys nothing at 10^3 nodes.
    order = list(np.argsort(degree, kind="stable"))
    import heapq

    heap = [(int(degree[v]), int(v)) for v in order]
    heapq.heapify(heap)
    current_core = 0
    while heap:
        d, u = heapq.heappop(heap)
        if not alive[u] or d != degree[u]:
            continue  # stale entry
        current_core = max(current_core, int(d))
        core[u] = current_core
        alive[u] = False
        for v in graph.neighbors(u):
            v = int(v)
            if alive[v]:
                degree[v] -= 1
                heapq.heappush(heap, (int(degree[v]), v))
    return core
