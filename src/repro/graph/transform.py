"""Graph transformations: component extraction, k-core, relabeling.

Random-walk embedding pipelines preprocess real graphs before sampling:
walks cannot leave a connected component, so embedding quality statistics
are usually reported on the largest component; and peeling low-degree
shells (k-core) is the standard densification step when walks on hairy
peripheries waste the corpus budget.  These helpers produce *compact*
subgraphs (node ids relabelled to ``0..n'-1``) plus the id mapping needed
to carry labels/embeddings across.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.stats import connected_components
from repro.utils.validation import check_positive


def induced_subgraph(
    graph: CSRGraph, nodes: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``nodes``, compactly relabelled.

    Returns ``(subgraph, old_ids)`` where ``old_ids[new_id]`` recovers the
    original node id (so ``labels[old_ids]`` re-indexes node metadata).
    Edge weights are carried over.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
        raise ValueError("nodes contain ids outside the graph")
    new_id = np.full(graph.num_nodes, -1, dtype=np.int64)
    new_id[nodes] = np.arange(nodes.size, dtype=np.int64)

    arcs = graph.edge_array()
    keep = (new_id[arcs[:, 0]] >= 0) & (new_id[arcs[:, 1]] >= 0)
    kept = arcs[keep]
    kept_w = None if graph.weights is None else graph.weights[keep]
    # Arcs are already direction-complete for undirected graphs; rebuild
    # the CSR directly without re-symmetrising.
    n = nodes.size
    relabelled = np.stack([new_id[kept[:, 0]], new_id[kept[:, 1]]], axis=1)
    order = np.lexsort((relabelled[:, 1], relabelled[:, 0]))
    relabelled = relabelled[order]
    if kept_w is not None:
        kept_w = kept_w[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    if len(relabelled):
        indptr[1:] = np.cumsum(np.bincount(relabelled[:, 0], minlength=n))
    sub = CSRGraph(indptr, relabelled[:, 1].copy() if len(relabelled)
                   else np.empty(0, dtype=np.int64),
                   kept_w, directed=graph.directed)
    return sub, nodes


def largest_component_subgraph(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Compact subgraph of the largest connected component.

    Walks never leave a component, so this is the canonical preprocessing
    step before sampling.  Returns ``(subgraph, old_ids)``.
    """
    comp = connected_components(graph)
    if comp.size == 0:
        return graph, np.empty(0, dtype=np.int64)
    largest = int(np.bincount(comp).argmax())
    return induced_subgraph(graph, np.flatnonzero(comp == largest))


def k_core(graph: CSRGraph, k: int) -> Tuple[CSRGraph, np.ndarray]:
    """The ``k``-core: maximal subgraph with all degrees >= ``k``.

    Standard peeling: repeatedly remove nodes of degree < k until a fixed
    point.  Defined here for undirected graphs (degree = full adjacency).
    Returns ``(subgraph, old_ids)``; the core can be empty.
    """
    check_positive("k", k)
    if graph.directed:
        raise ValueError("k-core peeling is defined here for undirected graphs")
    alive = np.ones(graph.num_nodes, dtype=bool)
    degree = graph.degrees.astype(np.int64).copy()
    # Queue-based peeling is O(|V| + |E|).
    from collections import deque

    queue = deque(int(v) for v in np.flatnonzero(degree < k))
    while queue:
        u = queue.popleft()
        if not alive[u]:
            continue
        alive[u] = False
        for v in graph.neighbors(u):
            v = int(v)
            if alive[v]:
                degree[v] -= 1
                if degree[v] < k:
                    queue.append(v)
    return induced_subgraph(graph, np.flatnonzero(alive))


def core_number(graph: CSRGraph) -> np.ndarray:
    """Core number per node: the largest ``k`` whose k-core contains it.

    Batagelj-Zaversnik style peeling in increasing degree order; isolated
    nodes get 0.  Undirected graphs only.
    """
    if graph.directed:
        raise ValueError("core numbers are defined here for undirected graphs")
    n = graph.num_nodes
    degree = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    # Simple repeated-min peeling: fine at stand-in scale and obviously
    # correct; the bin-bucket O(|E|) version buys nothing at 10^3 nodes.
    order = list(np.argsort(degree, kind="stable"))
    import heapq

    heap = [(int(degree[v]), int(v)) for v in order]
    heapq.heapify(heap)
    current_core = 0
    while heap:
        d, u = heapq.heappop(heap)
        if not alive[u] or d != degree[u]:
            continue  # stale entry
        current_core = max(current_core, int(d))
        core[u] = current_core
        alive[u] = False
        for v in graph.neighbors(u):
            v = int(v)
            if alive[v]:
                degree[v] -= 1
                heapq.heappush(heap, (int(degree[v]), v))
    return core
