"""Compressed Sparse Row graph storage (paper §2, Table 1).

DistGER stores graphs in CSR [41]: per-node adjacency offsets (``indptr``)
plus a flat destination array (``indices``), with a parallel weight array for
weighted graphs.  Undirected edges are stored twice (once per direction),
exactly as the paper describes, so ``degree`` and neighbour iteration are
uniform for both directed and undirected graphs.

Adjacency lists are kept **sorted by destination id**; this is what makes
galloping set intersection (:mod:`repro.partition.galloping`) and O(log n)
edge lookups possible, both of which MPGP and the HuGE transition kernel
rely on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class CSRGraph:
    """An immutable graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64[num_nodes + 1]`` adjacency offsets.
    indices:
        ``int64[num_edges_stored]`` destination node ids, sorted within each
        node's slice.
    weights:
        Optional ``float64`` array parallel to ``indices``.  ``None`` means
        the graph is unweighted (all weights treated as 1.0).
    directed:
        Whether the stored arcs are one-directional.  Undirected graphs
        store each edge in both directions.

    Notes
    -----
    Use :meth:`from_edges` rather than the raw constructor in application
    code; it validates, deduplicates, sorts and (for undirected graphs)
    symmetrises the input.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = False,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        self.directed = bool(directed)
        self._validate()
        self._degrees = np.diff(self.indptr)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Tuple[int, int]] | np.ndarray,
        num_nodes: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        directed: bool = False,
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Self-loops are dropped and duplicate edges are merged (weights of
        duplicates are summed).  For undirected graphs every edge is stored
        in both directions, as in the paper's CSR description.
        """
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {arr.shape}")
        if arr.size and arr.min() < 0:
            raise ValueError("node ids must be non-negative")

        w = (
            np.ones(len(arr), dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if w.shape[0] != arr.shape[0]:
            raise ValueError(
                f"weights length {w.shape[0]} does not match edge count {arr.shape[0]}"
            )

        # A node mentioned only by dropped self-loops still exists, so the
        # node-count inference and validation use the pre-drop ids.
        max_id = int(arr.max()) if len(arr) else -1

        # Drop self loops.
        keep = arr[:, 0] != arr[:, 1]
        arr, w = arr[keep], w[keep]

        n = int(num_nodes) if num_nodes is not None else max_id + 1
        if max_id >= n:
            raise ValueError(
                f"num_nodes={n} too small for max node id {max_id}"
            )

        if len(arr) == 0:
            return cls(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64),
                       None if weights is None else np.empty(0, dtype=np.float64),
                       directed=directed)

        # Merge duplicates on canonical pairs *before* mirroring: both
        # stored arcs of a duplicated undirected edge must receive a
        # byte-identical weight sum, so the summation order cannot depend
        # on the direction each duplicate was listed in.
        if not directed:
            arr = np.sort(arr, axis=1)
        order = np.lexsort((arr[:, 1], arr[:, 0]))
        arr, w = arr[order], w[order]
        dup = np.concatenate([[False], np.all(arr[1:] == arr[:-1], axis=1)])
        if dup.any():
            group = np.cumsum(~dup) - 1
            merged_w = np.zeros(group[-1] + 1, dtype=np.float64)
            np.add.at(merged_w, group, w)
            arr, w = arr[~dup], merged_w

        if not directed:
            arr = np.concatenate([arr, arr[:, ::-1]])
            w = np.concatenate([w, w])
            order = np.lexsort((arr[:, 1], arr[:, 0]))
            arr, w = arr[order], w[order]

        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.bincount(arr[:, 0], minlength=n)
        indptr[1:] = np.cumsum(counts)
        return cls(indptr, arr[:, 1].copy(), w if weights is not None else None,
                   directed=directed)

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be 1-D with at least one entry")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.weights is not None and self.weights.shape != self.indices.shape:
            raise ValueError("weights must parallel indices")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.num_nodes):
            raise ValueError("indices contain out-of-range node ids")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return self.indptr.size - 1

    @property
    def num_stored_edges(self) -> int:
        """Number of stored arcs (undirected edges count twice)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Logical edge count (undirected edges counted once)."""
        return self.indices.size if self.directed else self.indices.size // 2

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every node (``int64[num_nodes]``)."""
        return self._degrees

    def degree(self, node: int) -> int:
        return int(self._degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted destination ids adjacent to ``node`` (zero-copy view)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors` (ones when unweighted)."""
        if self.weights is None:
            return np.ones(self.degree(node), dtype=np.float64)
        return self.weights[self.indptr[node]:self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """O(log deg(u)) membership test using the sorted adjacency."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of arc (u, v); raises ``KeyError`` when absent."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        if i >= nbrs.size or nbrs[i] != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        if self.weights is None:
            return 1.0
        return float(self.weights[self.indptr[u] + i])

    def common_neighbor_count(self, u: int, v: int) -> int:
        """``|N(u) ∩ N(v)|`` via sorted-array intersection."""
        return int(np.intersect1d(self.neighbors(u), self.neighbors(v),
                                  assume_unique=True).size)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def edge_array(self) -> np.ndarray:
        """Return stored arcs as an ``(m, 2)`` array (src, dst)."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self._degrees)
        return np.stack([src, self.indices], axis=1)

    def unique_edges(self) -> np.ndarray:
        """Logical edges: all arcs if directed, else the ``u < v`` half."""
        arcs = self.edge_array()
        if self.directed:
            return arcs
        return arcs[arcs[:, 0] < arcs[:, 1]]

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Return a weighted copy sharing the topology arrays."""
        return CSRGraph(self.indptr, self.indices, weights, directed=self.directed)

    def with_random_weights(
        self, rng: np.random.Generator, low: float = 1.0, high: float = 5.0
    ) -> "CSRGraph":
        """Weighted version with symmetric U[low, high) weights (paper §8.1)."""
        if self.directed:
            w = rng.uniform(low, high, size=self.num_stored_edges)
            return self.with_weights(w)
        # Draw one weight per logical edge and mirror it on both arcs.
        edges = self.unique_edges()
        w_edge = rng.uniform(low, high, size=len(edges))
        both = np.concatenate([edges, edges[:, ::-1]])
        w_both = np.concatenate([w_edge, w_edge])
        order = np.lexsort((both[:, 1], both[:, 0]))
        return CSRGraph(self.indptr, self.indices, w_both[order], directed=False)

    def as_directed(self) -> "CSRGraph":
        """Reinterpret stored arcs as a directed graph (paper §8.1)."""
        return CSRGraph(self.indptr, self.indices, self.weights, directed=True)

    def as_undirected(self) -> "CSRGraph":
        """Symmetrise a directed graph into its undirected version."""
        if not self.directed:
            return self
        arcs = self.edge_array()
        return CSRGraph.from_edges(arcs, num_nodes=self.num_nodes, directed=False)

    def subgraph_without_edges(self, removed: Iterable[Tuple[int, int]]) -> "CSRGraph":
        """Copy of the graph with the given logical edges removed.

        Used by link-prediction splits; for undirected graphs both arcs of
        each removed edge are dropped.
        """
        removed_set = set()
        for u, v in removed:
            removed_set.add((int(u), int(v)))
            if not self.directed:
                removed_set.add((int(v), int(u)))
        arcs = self.edge_array()
        keep = np.fromiter(
            ((int(s), int(d)) not in removed_set for s, d in arcs),
            dtype=bool,
            count=len(arcs),
        )
        kept = arcs[keep]
        kept_w = None if self.weights is None else self.weights[keep]
        # Arcs are already both-direction for undirected graphs, so build
        # directly without re-symmetrising.
        n = self.num_nodes
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(kept[:, 0], minlength=n))
        return CSRGraph(indptr, kept[:, 1].copy(), kept_w, directed=self.directed)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays (used by the memory benchmarks)."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return int(total)

    def storage_bytes(self) -> dict:
        """CSR bytes split into resident heap vs file-backed mappings.

        A graph attached from a ``backing="mmap"`` handle holds
        ``np.memmap`` arrays whose pages live in the page cache, not the
        process heap; the out-of-core memory gates
        (``bench_ooc_memory_ceiling.py``) need the two pools reported
        separately.  ``resident + mapped == memory_bytes()``.
        """
        resident = 0
        mapped = 0
        arrays = [self.indptr, self.indices]
        if self.weights is not None:
            arrays.append(self.weights)
        for arr in arrays:
            if isinstance(arr, np.memmap):
                mapped += int(arr.nbytes)
            else:
                resident += int(arr.nbytes)
        return {"resident": resident, "mapped": mapped}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.is_weighted else "unweighted"
        return (
            f"CSRGraph(|V|={self.num_nodes}, |E|={self.num_edges}, {kind}, {w})"
        )
