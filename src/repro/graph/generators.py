"""Synthetic graph generators.

The paper evaluates on five real graphs (Flickr, YouTube, LiveJournal,
Com-Orkut, Twitter) plus R-MAT synthetic graphs for the scalability study
(Fig. 7).  The real datasets are not redistributable here, so
:mod:`repro.graph.datasets` builds scaled-down stand-ins from these
generators, matched on the structural properties that drive random-walk
embedding behaviour: power-law degree skew, density, and (for the labelled
graphs) community structure.

All generators return connected-ish simple undirected graphs as
:class:`repro.graph.csr.CSRGraph` and are fully deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive, check_probability


def erdos_renyi(num_nodes: int, num_edges: int, seed: SeedLike = None) -> CSRGraph:
    """G(n, m) uniform random graph (baseline, non-power-law)."""
    check_positive("num_nodes", num_nodes)
    check_positive("num_edges", num_edges, allow_zero=True)
    rng = default_rng(seed)
    edges = set()
    # Rejection-sample distinct non-loop pairs; fine at laptop scale.
    max_possible = num_nodes * (num_nodes - 1) // 2
    target = min(num_edges, max_possible)
    while len(edges) < target:
        need = target - len(edges)
        u = rng.integers(0, num_nodes, size=2 * need + 8)
        v = rng.integers(0, num_nodes, size=2 * need + 8)
        for a, b in zip(u, v):
            if a == b:
                continue
            e = (int(min(a, b)), int(max(a, b)))
            edges.add(e)
            if len(edges) >= target:
                break
    return CSRGraph.from_edges(np.array(sorted(edges), dtype=np.int64).reshape(-1, 2),
                               num_nodes=num_nodes)


def barabasi_albert(num_nodes: int, attach: int, seed: SeedLike = None) -> CSRGraph:
    """Preferential-attachment graph (power-law degrees, exponent ~3).

    Each arriving node attaches to ``attach`` existing nodes chosen
    proportionally to degree — the classic model behind the paper's
    "real-world graphs follow a power-law" premise (§4.2).
    """
    check_positive("num_nodes", num_nodes)
    check_positive("attach", attach)
    if num_nodes <= attach:
        raise ValueError(f"num_nodes={num_nodes} must exceed attach={attach}")
    rng = default_rng(seed)
    # Repeated-nodes list implements preferential attachment in O(1)/draw.
    repeated: List[int] = []
    edges: List[Tuple[int, int]] = []
    targets = list(range(attach))
    for new_node in range(attach, num_nodes):
        for t in targets:
            edges.append((new_node, t))
        repeated.extend(targets)
        repeated.extend([new_node] * attach)
        # Sample next targets (distinct) from the repeated list.
        chosen: set = set()
        while len(chosen) < attach:
            chosen.add(repeated[int(rng.integers(0, len(repeated)))])
        targets = list(chosen)
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64), num_nodes=num_nodes)


def rmat(
    scale: int,
    edge_factor: int = 10,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    directed: bool = False,
) -> CSRGraph:
    """R-MAT recursive-matrix generator [11] used in the paper's Fig. 7.

    ``2**scale`` nodes and ``edge_factor * 2**scale`` sampled edges with the
    standard Graph500 partition probabilities (a, b, c, d=1−a−b−c).  The
    recursion is vectorised: each bit of the (row, col) address is drawn for
    all edges at once.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum <= 1")
    rng = default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    p_right = b + d  # probability the column bit is 1
    p_bottom_given_right = d / (b + d) if (b + d) > 0 else 0.0
    p_bottom_given_left = c / (a + c) if (a + c) > 0 else 0.0
    for bit in range(scale):
        right = rng.random(m) < p_right
        p_bottom = np.where(right, p_bottom_given_right, p_bottom_given_left)
        bottom = rng.random(m) < p_bottom
        src = (src << 1) | bottom.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(edges, num_nodes=n, directed=directed)


def powerlaw_cluster(
    num_nodes: int,
    attach: int,
    triangle_prob: float = 0.3,
    seed: SeedLike = None,
) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but each preferential attachment is followed
    with probability ``triangle_prob`` by a triad-closing step, raising the
    common-neighbour counts that HuGE's transition kernel (Eq. 3) and MPGP's
    second-order proximity (Eq. 14) feed on.
    """
    check_positive("num_nodes", num_nodes)
    check_positive("attach", attach)
    check_probability("triangle_prob", triangle_prob)
    if num_nodes <= attach:
        raise ValueError(f"num_nodes={num_nodes} must exceed attach={attach}")
    rng = default_rng(seed)
    adjacency: List[set] = [set() for _ in range(num_nodes)]
    repeated: List[int] = list(range(attach))
    edges: List[Tuple[int, int]] = []

    def add_edge(u: int, v: int) -> None:
        if u != v and v not in adjacency[u]:
            adjacency[u].add(v)
            adjacency[v].add(u)
            edges.append((u, v))
            repeated.append(u)
            repeated.append(v)

    for new_node in range(attach, num_nodes):
        target = int(rng.integers(0, max(1, new_node))) if not repeated else \
            repeated[int(rng.integers(0, len(repeated)))]
        added = 0
        guard = 0
        while added < attach and guard < 50 * attach:
            guard += 1
            add_edge(new_node, target)
            added += 1
            if added >= attach:
                break
            if adjacency[target] and rng.random() < triangle_prob:
                # Triad formation: connect to a neighbour of the target.
                nbrs = list(adjacency[target])
                cand = nbrs[int(rng.integers(0, len(nbrs)))]
                if cand != new_node and cand not in adjacency[new_node]:
                    add_edge(new_node, cand)
                    added += 1
                    continue
            target = repeated[int(rng.integers(0, len(repeated)))]
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64), num_nodes=num_nodes)


def planted_partition(
    num_nodes: int,
    num_communities: int,
    p_in: float,
    p_out: float,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Planted-community graph with ground-truth community ids.

    Returns ``(graph, community_of_node)``.  Used to synthesise the labelled
    Flickr/YouTube stand-ins for the multi-label classification experiments
    (Fig. 9): structure and labels are correlated by construction.
    """
    check_positive("num_nodes", num_nodes)
    check_positive("num_communities", num_communities)
    check_probability("p_in", p_in)
    check_probability("p_out", p_out)
    rng = default_rng(seed)
    comm = rng.integers(0, num_communities, size=num_nodes)
    edges: List[Tuple[int, int]] = []
    # Block-sample: expected-count binomial draws per pair class keeps this
    # O(E) instead of O(V^2) for the sparse regimes we use.
    for u in range(num_nodes):
        same = np.flatnonzero(comm[u + 1:] == comm[u]) + u + 1
        diff = np.flatnonzero(comm[u + 1:] != comm[u]) + u + 1
        if same.size:
            take = same[rng.random(same.size) < p_in]
            edges.extend((u, int(v)) for v in take)
        if diff.size:
            take = diff[rng.random(diff.size) < p_out]
            edges.extend((u, int(v)) for v in take)
    graph = CSRGraph.from_edges(np.asarray(edges, dtype=np.int64).reshape(-1, 2),
                                num_nodes=num_nodes)
    return graph, comm


def community_graph(
    num_nodes: int,
    num_communities: int,
    within_degree: float,
    cross_degree: float,
    exponent: float = 2.5,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Chung-Lu block model: power-law degrees *and* strong communities.

    Real social graphs combine two properties that drive random-walk
    embeddings: heavy-tailed degrees and community structure with a small
    cross-community edge fraction (which bounds achievable link-prediction
    AUC from above).  This generator controls both directly:

    * nodes get Pareto activity weights with tail ``exponent`` (heavier
      tail for smaller exponent);
    * each community receives ``|C| · within_degree / 2`` internal edges
      with endpoints drawn ∝ activity (Chung-Lu);
    * ``num_nodes · cross_degree / 2`` cross-community edges are added the
      same way globally.

    Returns ``(graph, community_of_node)``.
    """
    check_positive("num_nodes", num_nodes)
    check_positive("num_communities", num_communities)
    check_positive("within_degree", within_degree)
    check_positive("cross_degree", cross_degree, allow_zero=True)
    rng = default_rng(seed)
    comm = rng.integers(0, num_communities, size=num_nodes)
    # Pareto activity weights; alpha = exponent - 1 gives degree tail
    # exponent ~= `exponent` under Chung-Lu sampling.
    weights = (1.0 + rng.pareto(exponent - 1.0, size=num_nodes))
    edges: set = set()

    def sample_pairs(members: np.ndarray, num_edges: int,
                     forbid_same_comm: bool = False) -> None:
        if members.size < 2 or num_edges <= 0:
            return
        w = weights[members]
        p = w / w.sum()
        attempts = 0
        added = 0
        while added < num_edges and attempts < 20 * num_edges + 100:
            attempts += 1
            u, v = rng.choice(members, size=2, p=p)
            if u == v:
                continue
            if forbid_same_comm and comm[u] == comm[v]:
                continue
            e = (int(min(u, v)), int(max(u, v)))
            if e in edges:
                continue
            edges.add(e)
            added += 1

    for c in range(num_communities):
        members = np.flatnonzero(comm == c)
        sample_pairs(members, int(round(members.size * within_degree / 2.0)))
    sample_pairs(np.arange(num_nodes),
                 int(round(num_nodes * cross_degree / 2.0)),
                 forbid_same_comm=True)
    graph = CSRGraph.from_edges(
        np.array(sorted(edges), dtype=np.int64).reshape(-1, 2),
        num_nodes=num_nodes,
    )
    return graph, comm


def overlapping_community_graph(
    num_nodes: int,
    num_communities: int,
    overlap_fraction: float = 0.5,
    within_degree: float = 8.0,
    cross_degree: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Dense communities with a planted *overlap* -- the persona workload.

    Every node gets a primary community (round-robin, so sizes are
    balanced); ``overlap_fraction`` of nodes additionally join a second
    community.  Each community then receives ``|C| * within_degree / 2``
    internal edges among its (primary + overlapping) members, plus a few
    global cross edges -- so overlap nodes sit inside **two** dense
    clusters at once.  A single embedding has to place them between the
    clusters; per-community personas (:func:`repro.graph.persona_graph`)
    can give them one vector per side, which is exactly the structure the
    persona-vs-single link-prediction figure measures
    (``benchmarks/bench_persona_linkpred.py``).

    Returns ``(graph, membership)`` with ``membership`` a boolean
    ``(num_nodes, num_communities)`` matrix.
    """
    check_positive("num_nodes", num_nodes)
    check_positive("num_communities", num_communities)
    check_probability("overlap_fraction", overlap_fraction)
    check_positive("within_degree", within_degree)
    check_positive("cross_degree", cross_degree, allow_zero=True)
    rng = default_rng(seed)
    membership = np.zeros((num_nodes, num_communities), dtype=bool)
    primary = np.arange(num_nodes, dtype=np.int64) % num_communities
    membership[np.arange(num_nodes), primary] = True
    if num_communities > 1:
        overlap = np.flatnonzero(rng.random(num_nodes) < overlap_fraction)
        second = (primary[overlap]
                  + rng.integers(1, num_communities, size=overlap.size)
                  ) % num_communities
        membership[overlap, second] = True
    edges: set = set()

    def sample_pairs(members: np.ndarray, num_edges: int) -> None:
        if members.size < 2 or num_edges <= 0:
            return
        attempts = 0
        added = 0
        while added < num_edges and attempts < 20 * num_edges + 100:
            attempts += 1
            u, v = rng.choice(members, size=2, replace=False)
            e = (int(min(u, v)), int(max(u, v)))
            if e in edges:
                continue
            edges.add(e)
            added += 1

    for c in range(num_communities):
        members = np.flatnonzero(membership[:, c])
        sample_pairs(members, int(round(members.size * within_degree / 2.0)))
    sample_pairs(np.arange(num_nodes),
                 int(round(num_nodes * cross_degree / 2.0)))
    graph = CSRGraph.from_edges(
        np.array(sorted(edges), dtype=np.int64).reshape(-1, 2),
        num_nodes=num_nodes,
    )
    return graph, membership


def multi_labels_from_communities(
    communities: np.ndarray,
    num_labels: int,
    labels_per_community: int = 3,
    noise: float = 0.05,
    seed: SeedLike = None,
) -> np.ndarray:
    """Derive a multi-label matrix from community ids.

    Each community is assigned ``labels_per_community`` characteristic
    labels; each member carries those labels, occasionally flipped with
    probability ``noise``.  Returns a boolean ``(num_nodes, num_labels)``
    matrix mimicking the interest-group labels of Flickr/YouTube.
    """
    check_positive("num_labels", num_labels)
    check_probability("noise", noise)
    rng = default_rng(seed)
    communities = np.asarray(communities)
    num_comm = int(communities.max()) + 1 if communities.size else 0
    assignment = np.zeros((num_comm, num_labels), dtype=bool)
    for c in range(num_comm):
        chosen = rng.choice(num_labels, size=min(labels_per_community, num_labels),
                            replace=False)
        assignment[c, chosen] = True
    labels = assignment[communities]
    flips = rng.random(labels.shape) < noise
    labels = labels ^ flips
    # Guarantee every node has at least one label (classification protocol
    # assumes non-empty label sets).
    empty = ~labels.any(axis=1)
    if empty.any():
        fallback = rng.integers(0, num_labels, size=int(empty.sum()))
        labels[np.flatnonzero(empty), fallback] = True
    return labels


def ring_of_cliques(num_cliques: int, clique_size: int) -> CSRGraph:
    """Deterministic ring of cliques -- handy, fully-predictable test graph."""
    check_positive("num_cliques", num_cliques)
    check_positive("clique_size", clique_size)
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % num_cliques) * clique_size
        if num_cliques > 1:
            edges.append((base, nxt))
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64),
                               num_nodes=num_cliques * clique_size)


def star(num_leaves: int) -> CSRGraph:
    """Star graph: node 0 hub, ``num_leaves`` spokes (degenerate-case tests)."""
    check_positive("num_leaves", num_leaves)
    edges = np.stack([np.zeros(num_leaves, dtype=np.int64),
                      np.arange(1, num_leaves + 1, dtype=np.int64)], axis=1)
    return CSRGraph.from_edges(edges, num_nodes=num_leaves + 1)


def path(num_nodes: int) -> CSRGraph:
    """Simple path graph (degenerate-case tests)."""
    check_positive("num_nodes", num_nodes)
    ids = np.arange(num_nodes - 1, dtype=np.int64)
    return CSRGraph.from_edges(np.stack([ids, ids + 1], axis=1), num_nodes=num_nodes)
