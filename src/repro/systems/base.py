"""Common interface for the end-to-end embedding systems.

Every system the paper measures -- DistGER, HuGE-D, KnightKing, PBG and
DistDGL -- is modelled as an :class:`EmbeddingSystem`: given a graph and a
machine count it runs its full pipeline (partition → sample → train, or the
system's own equivalent) and returns embeddings plus the phase timings,
traffic counters, and memory figures the paper's tables report.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.cluster import Cluster
from repro.runtime.metrics import ClusterMetrics
from repro.utils.timer import Timer


@dataclass
class SystemResult:
    """Everything a benchmark needs from one end-to-end run."""

    system: str
    embeddings: np.ndarray
    timer: Timer
    metrics: ClusterMetrics
    simulated_seconds: float
    stats: Dict[str, float] = field(default_factory=dict)
    #: The sampled walk corpus (flat token block + offsets); set by the
    #: walk-based systems, ``None`` for PBG/DistDGL.  ``corpus.save(path)``
    #: writes the flat ``.npz`` format (or legacy text for ``.txt``).
    corpus: Optional[object] = None
    #: Per-walk sampling machine ids, parallel with ``corpus`` walks; the
    #: dynamic-update path re-uses them for spliced-in resampled walks.
    walk_machines: Optional[np.ndarray] = None
    #: Node→machine partition assignment of the run (walk-based systems).
    assignment: Optional[np.ndarray] = None
    #: Final averaged :class:`repro.embedding.model.EmbeddingModel` in row
    #: space — carries ``phi_out``, which seeds warm-start re-training.
    model: Optional[object] = None

    @property
    def wall_seconds(self) -> float:
        """Measured end-to-end wall time (partition + sample + train)."""
        return self.timer.total

    def phase(self, name: str) -> float:
        return self.timer.get(name)

    @property
    def peak_memory_bytes(self) -> int:
        """Peak per-machine resident bytes observed during the run."""
        mems = self.metrics.peak_memory_bytes
        return int(max(mems)) if mems else 0


class EmbeddingSystem(ABC):
    """Interface: ``embed(graph) -> SystemResult``."""

    #: Display name used in benchmark tables.
    name: str = "base"

    def __init__(self, num_machines: int = 4, dim: int = 64,
                 epochs: int = 5, seed: int = 0) -> None:
        # epochs=5 default: with m-replica gradient-averaging sync the
        # effective step is ~1/m per token, so multi-machine runs need
        # several passes to match single-machine quality (measured in
        # tests/test_embedding_trainer.py).
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        self.num_machines = num_machines
        self.dim = dim
        self.epochs = epochs
        self.seed = seed

    @abstractmethod
    def embed(self, graph: CSRGraph) -> SystemResult:
        """Run the system end-to-end on ``graph``."""

    def embedder(self):
        """``graph -> embeddings`` closure for the evaluation harnesses."""
        def _embed(graph: CSRGraph) -> np.ndarray:
            return self.embed(graph).embeddings
        return _embed

    def _result(
        self,
        embeddings: np.ndarray,
        timer: Timer,
        cluster: Cluster,
        stats: Optional[Dict[str, float]] = None,
        corpus: Optional[object] = None,
        walk_machines: Optional[np.ndarray] = None,
        assignment: Optional[np.ndarray] = None,
        model: Optional[object] = None,
    ) -> SystemResult:
        return SystemResult(
            system=self.name,
            embeddings=embeddings,
            timer=timer,
            metrics=cluster.metrics,
            simulated_seconds=cluster.simulated_seconds(),
            stats=stats or {},
            corpus=corpus,
            walk_machines=walk_machines,
            assignment=assignment,
            model=model,
        )
