"""The random-walk-based end-to-end systems: DistGER, HuGE-D, KnightKing.

All three share the same pipeline skeleton -- partition, distributed random
walks, distributed Skip-Gram -- and differ exactly where the paper says
they differ:

====================  ===================  ====================  ==============
                      DistGER              HuGE-D (baseline)     KnightKing
====================  ===================  ====================  ==============
partitioner           MPGP                 workload-balancing    workload-bal.
walks                 HuGE + InCoM O(1)    HuGE + full-path      routine L=80,
                                           O(L) per step         r=10
walker messages       80 B constant        24 + 8L B             32 B constant
trainer               DSGL                 Pword2vec             Pword2vec
synchronisation       hotness blocks       full model            full model
====================  ===================  ====================  ==============

KnightKing/HuGE-D train with Pword2vec because the real systems have no
embedded learner -- the paper couples them with Intel's Pword2vec (§6.1).

:class:`RandomWalkSystem` also exposes the *generic API* of §6.6: any
kernel (``deepwalk``/``node2vec``/``huge``/``huge+``) can be combined with
information-centric termination, which is how the Fig. 12 generality
experiments deploy DeepWalk and node2vec on DistGER.

Walk execution backend: all three systems inherit
``WalkConfig.backend="auto"``, so DistGER and KnightKing sample through
the batched :class:`repro.walks.vectorized.BatchWalkRunner` (lock-step
NumPy supersteps, ~22x faster at 10^4 nodes) while HuGE-D keeps the
per-walker loop -- its O(L)-per-step full-path measurement *is* the
baseline cost being reproduced.  Pass
``walk_overrides={"backend": "loop"}`` to force a specific engine; see
:mod:`repro.walks.engine` for the parity guarantees.

The same backend pattern covers the other two pipeline phases: the
trainer (``train_overrides={"backend": ..., "rng_protocol": ...}``, see
:mod:`repro.embedding.trainer`) and DistGER's MPGP partitioner
(``partition_overrides={"backend": ...}``, see
:mod:`repro.partition.mpgp`), each with its own loop reference and parity
suite.

Execution: every phase config additionally carries ``execution`` +
``workers``.  ``"process"`` runs walk rounds, training slices and MPGP
segments on worker processes behind per-phase barriers;
``"pipeline"`` switches :meth:`RandomWalkSystem.embed` onto the streaming
dataflow of :mod:`repro.runtime.pipeline` -- the partitioner runs
concurrently with walk sampling, walk rounds stream through a bounded
queue, and the trainer consumes the shared flat corpus gated on a
:class:`repro.walks.corpus.CorpusFeed`.  Both are byte-identical to
serial execution.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.embedding.model import TrainConfig
from repro.embedding.trainer import DistributedTrainer
from repro.graph.csr import CSRGraph
from repro.partition.balance import WorkloadBalancePartitioner
from repro.partition.base import PartitionConfig, Partitioner
from repro.partition.mpgp import MPGPPartitioner
from repro.runtime.cluster import Cluster
from repro.systems.base import EmbeddingSystem, SystemResult
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer
from repro.walks.engine import DistributedWalkEngine, WalkConfig


class RandomWalkSystem(EmbeddingSystem):
    """Configurable partition → walk → train pipeline."""

    name = "random-walk-system"

    def __init__(
        self,
        partitioner: Optional[Partitioner] = None,
        walk_config: Optional[WalkConfig] = None,
        train_config: Optional[TrainConfig] = None,
        learner: str = "dsgl",
        num_machines: int = 4,
        dim: int = 64,
        epochs: int = 5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_machines=num_machines, dim=dim, epochs=epochs,
                         seed=seed)
        self.partitioner = partitioner or MPGPPartitioner(seed=seed)
        self.walk_config = walk_config or WalkConfig.distger()
        self.train_config = train_config or TrainConfig(
            dim=dim, epochs=epochs, seed=derive_seed(seed, 2) or 0,
        )
        self.learner = learner
        #: Optional persona regularizer
        #: (:class:`repro.embedding.anchor.AnchorRegularizer`); attached
        #: by :func:`repro.persona.embed_persona_graph` after
        #: construction and threaded into the trainer untouched.
        self.anchor = None
        #: Optional :class:`repro.embedding.trainer.WarmStart` seeding
        #: the model before training (node-id space); the persona
        #: workload initialises personas from the base prior with it.
        self.warm_start = None

    def embed(self, graph: CSRGraph) -> SystemResult:
        timer = Timer()
        feed = None
        if self.walk_config.resolved_execution() == "pipeline":
            # Streaming dataflow: the partitioner runs on its own worker
            # while walk rounds sample ahead through the bounded queue
            # (byte-identical to the phased sequence below -- walk
            # corpora never depend on the placement).  The timer keeps
            # wall-time additivity: "sampling" covers the overlapped
            # span, "partition" only the non-overlapped join wait.
            from repro.runtime.pipeline import run_pipelined_sampling
            from repro.walks.corpus import CorpusFeed

            partition, cluster, walk_result = run_pipelined_sampling(
                graph, self.partitioner, self.num_machines,
                self.walk_config, cluster_seed=derive_seed(self.seed, 1),
                timer=timer)
            # The walk→train hand-off contract: the trainer gates slice
            # consumption on walk residency through the feed (already
            # finished here -- the global corpus statistics of the shared
            # RNG protocol are the streaming barrier).
            feed = CorpusFeed(walk_result.corpus)
            feed.finish()
        else:
            with timer.phase("partition"):
                partition = self.partitioner.partition(graph,
                                                       self.num_machines)
            cluster = Cluster(self.num_machines, partition.assignment,
                              seed=derive_seed(self.seed, 1))
            with timer.phase("sampling"):
                engine = DistributedWalkEngine(graph, cluster,
                                               self.walk_config)
                walk_result = engine.run()
        # Sampling memory: graph share + corpus share + frequency lists.
        corpus_share = walk_result.corpus.memory_bytes() // self.num_machines
        graph_share = graph.memory_bytes() // self.num_machines
        for machine in range(self.num_machines):
            cluster.metrics.record_memory(machine, corpus_share + graph_share)
        with timer.phase("training"):
            # Sub-corpora stay with the machine that sampled them (Fig. 1).
            # This locality is load-bearing for quality: with MPGP most of
            # a machine's walks touch machine-local nodes, so delta-sum
            # reconciliation is near-exact and hotness-block sync only has
            # to keep the (shared) hub rows fresh.
            trainer = DistributedTrainer(
                walk_result.corpus,
                cluster,
                self.train_config,
                learner=self.learner,
                walk_machines=walk_result.walk_machines,
                feed=feed,
                warm_start=self.warm_start,
                anchor=self.anchor,
            )
            train_result = trainer.train()
        corpus_storage = walk_result.corpus.storage_bytes()
        stats: Dict[str, float] = {
            "avg_walk_length": walk_result.stats.average_length,
            "walks": walk_result.stats.total_walks,
            "rounds": walk_result.stats.rounds,
            "corpus_tokens": walk_result.corpus.total_tokens,
            # Out-of-core accounting: a spilled corpus's token block is
            # file-backed (page cache), not heap -- the memory gates read
            # the split, not the total.
            "corpus_resident_bytes": corpus_storage["resident"],
            "corpus_mapped_bytes": corpus_storage["mapped"],
            "train_tokens": train_result.tokens_processed,
            "train_throughput": train_result.throughput,
            "sync_rounds": train_result.sync_rounds,
            "partition_seconds": partition.seconds,
        }
        stats.update({key: float(value)
                      for key, value in train_result.extras.items()})
        walk_machines = walk_result.walk_machines
        return self._result(train_result.embeddings, timer, cluster, stats,
                            corpus=walk_result.corpus,
                            walk_machines=None if walk_machines is None
                            else np.asarray(walk_machines, dtype=np.int64),
                            assignment=partition.assignment,
                            model=train_result.model)


class DistGER(RandomWalkSystem):
    """The paper's system: MPGP + InCoM HuGE walks + DSGL + hotness sync."""

    name = "DistGER"

    def __init__(self, num_machines: int = 4, dim: int = 64, epochs: int = 5,
                 seed: int = 0, kernel: str = "huge",
                 walk_overrides: Optional[dict] = None,
                 train_overrides: Optional[dict] = None,
                 partition_overrides: Optional[dict] = None) -> None:
        walk_kwargs = {"mode": "incom", "kernel": kernel,
                       **(walk_overrides or {})}
        walk_kwargs["mode"] = "incom"  # InCoM is what makes it DistGER
        train_kwargs = {
            "dim": dim, "epochs": epochs, "sync_mode": "hotness",
            "seed": derive_seed(seed, 2) or 0, **(train_overrides or {}),
        }
        super().__init__(
            # Route through PartitionConfig so the overrides are validated
            # as one unit (it is the config surface PartitionConfig owns).
            partitioner=MPGPPartitioner.from_config(PartitionConfig(
                seed=seed, **(partition_overrides or {}))),
            walk_config=WalkConfig(**walk_kwargs),
            train_config=TrainConfig(**train_kwargs),
            learner="dsgl",
            num_machines=num_machines, dim=dim, epochs=epochs, seed=seed,
        )


class HuGED(RandomWalkSystem):
    """HuGE-D baseline (§2.3): information-oriented walks on KnightKing's
    substrate -- full-path messages, O(L) measurement, load-only partition,
    Pword2vec training with full synchronisation."""

    name = "HuGE-D"

    def __init__(self, num_machines: int = 4, dim: int = 64, epochs: int = 5,
                 seed: int = 0,
                 walk_overrides: Optional[dict] = None,
                 train_overrides: Optional[dict] = None) -> None:
        train_kwargs = {
            "dim": dim, "epochs": epochs, "sync_mode": "full",
            "seed": derive_seed(seed, 2) or 0, **(train_overrides or {}),
        }
        super().__init__(
            partitioner=WorkloadBalancePartitioner(),
            walk_config=WalkConfig.huge_d(**(walk_overrides or {})),
            train_config=TrainConfig(**train_kwargs),
            learner="pword2vec",
            num_machines=num_machines, dim=dim, epochs=epochs, seed=seed,
        )


class KnightKing(RandomWalkSystem):
    """KnightKing-style system (§2.2): routine-configuration walks
    (L=80, r=10), workload-balancing partition, Pword2vec training."""

    name = "KnightKing"

    def __init__(self, num_machines: int = 4, dim: int = 64, epochs: int = 5,
                 seed: int = 0, kernel: str = "node2vec",
                 walk_length: int = 80, walks_per_node: int = 10,
                 p: float = 1.0, q: float = 1.0,
                 walk_overrides: Optional[dict] = None,
                 train_overrides: Optional[dict] = None) -> None:
        walk_kwargs = {
            "walk_length": walk_length, "walks_per_node": walks_per_node,
            "p": p, "q": q, **(walk_overrides or {}),
        }
        train_kwargs = {
            "dim": dim, "epochs": epochs, "sync_mode": "full",
            "seed": derive_seed(seed, 2) or 0, **(train_overrides or {}),
        }
        super().__init__(
            partitioner=WorkloadBalancePartitioner(),
            walk_config=WalkConfig.routine(kernel, **walk_kwargs),
            train_config=TrainConfig(**train_kwargs),
            learner="pword2vec",
            num_machines=num_machines, dim=dim, epochs=epochs, seed=seed,
        )
