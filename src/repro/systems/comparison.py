"""Side-by-side system comparison (the §6 experiment loop as a library).

Every evaluation in the paper runs several systems on the same graph and
compares end-to-end time, traffic, memory and task quality.  The benches
each re-implement that loop; this harness exposes it as public API so
users can reproduce the comparisons on their own graphs::

    from repro.systems import compare_systems
    table = compare_systems(graph, methods=("distger", "knightking"),
                            num_machines=4, dim=64)
    print(table.formatted())

Quality scoring is optional: pass ``task="link-prediction"`` to also
report AUC on a held-out split shared by every method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graph.csr import CSRGraph


@dataclass
class SystemComparisonRow:
    """One system's measurements on the shared workload."""

    method: str
    wall_seconds: float
    simulated_seconds: float
    walker_messages: int
    walker_message_bytes: int
    sync_bytes: int
    peak_memory_bytes: int
    corpus_tokens: Optional[float]   # None for the non-walk systems
    auc: Optional[float]             # None when no task was requested

    def as_list(self) -> List:
        return [
            self.method, self.wall_seconds, self.simulated_seconds,
            self.walker_messages, self.walker_message_bytes,
            self.sync_bytes, self.peak_memory_bytes,
            self.corpus_tokens, self.auc,
        ]


@dataclass
class SystemComparison:
    """All rows of one comparison plus convenience accessors."""

    rows: List[SystemComparisonRow] = field(default_factory=list)

    HEADERS = [
        "method", "wall s", "sim s", "walker msgs", "walker bytes",
        "sync bytes", "peak mem B", "corpus tokens", "AUC",
    ]

    def row(self, method: str) -> SystemComparisonRow:
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(f"no row for method {method!r}")

    def speedup(self, fast: str, slow: str, clock: str = "wall") -> float:
        """``slow``'s time over ``fast``'s (the paper's headline ratios)."""
        if clock not in ("wall", "simulated"):
            raise ValueError("clock must be 'wall' or 'simulated'")
        attr = "wall_seconds" if clock == "wall" else "simulated_seconds"
        denom = getattr(self.row(fast), attr)
        if denom <= 0:
            return float("inf")
        return getattr(self.row(slow), attr) / denom

    def formatted(self) -> str:
        """Aligned text table (what the examples print)."""
        str_rows = [
            [_fmt(c) for c in row.as_list()] for row in self.rows
        ]
        widths = [len(h) for h in self.HEADERS]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(self.HEADERS, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
                  for row in str_rows]
        return "\n".join(lines)


def _fmt(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def compare_systems(
    graph: CSRGraph,
    methods: Sequence[str] = ("distger", "huge-d", "knightking"),
    num_machines: int = 4,
    dim: int = 32,
    epochs: int = 2,
    seed: int = 0,
    task: Optional[str] = None,
    test_fraction: float = 0.3,
    method_kwargs: Optional[Dict[str, dict]] = None,
) -> SystemComparison:
    """Run every method on the same graph and collect the §6 quantities.

    With ``task="link-prediction"`` a single edge split is drawn first and
    every method is trained on the same residual graph and scored on the
    same held-out edges, so the AUC column is directly comparable.
    ``method_kwargs`` maps a method name to extra constructor arguments
    (e.g. ``{"knightking": {"walk_length": 40}}``).
    """
    from repro.api import embed_graph

    if task not in (None, "link-prediction"):
        raise ValueError(f"unknown task {task!r}; use 'link-prediction'")
    method_kwargs = method_kwargs or {}

    split = None
    train_graph = graph
    if task == "link-prediction":
        from repro.tasks import split_edges

        split = split_edges(graph, test_fraction=test_fraction, seed=seed)
        train_graph = split.train_graph

    comparison = SystemComparison()
    for method in methods:
        result = embed_graph(
            train_graph, method=method, num_machines=num_machines,
            dim=dim, epochs=epochs, seed=seed,
            **method_kwargs.get(method, {}),
        )
        auc = None
        if split is not None:
            from repro.tasks import auc_from_split

            auc = auc_from_split(result.embeddings, split)
        metrics = result.metrics
        comparison.rows.append(SystemComparisonRow(
            method=method,
            wall_seconds=result.wall_seconds,
            simulated_seconds=result.simulated_seconds,
            walker_messages=metrics.messages_sent,
            walker_message_bytes=metrics.message_bytes,
            sync_bytes=metrics.sync_bytes,
            peak_memory_bytes=max(metrics.peak_memory_bytes),
            corpus_tokens=result.stats.get("corpus_tokens"),
            auc=auc,
        ))
    return comparison
