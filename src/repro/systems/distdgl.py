"""DistDGL-like baseline (Zheng et al. [75]): distributed GraphSAGE.

The paper's GNN comparator.  Re-implemented core, on the simulated runtime:

* **METIS partitioning** (DistDGL's choice) -- our multilevel
  :class:`MetisLikePartitioner`.
* **Two-layer GraphSAGE** (mean aggregator, trainable input embeddings)
  trained unsupervised with positive-pair + negative-sample logistic loss;
  all gradients are derived and applied by hand -- no autograd substrate.
* **Mini-batch training with per-layer neighbour fan-out sampling**
  (GraphSAGE [20]): each batch triggers two rounds of per-node sampling.
  The paper stresses that sampling dominates DistDGL's runtime (">80% of
  the overhead for GraphSAGE"); the same is naturally true here and the
  sampling/compute split is reported in the run stats.
* **Synchronisation**: data-parallel gradient exchange for the dense
  weight matrices every mini-batch (the gradient-update delays the paper
  blames for DistDGL's scalability ceiling, §1/§6.3), counted per batch.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.metis_like import MetisLikePartitioner
from repro.runtime.cluster import Cluster
from repro.systems.base import EmbeddingSystem, SystemResult
from repro.utils.rng import default_rng, derive_seed
from repro.utils.timer import Timer


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -6.0, 6.0)))


class DistDGL(EmbeddingSystem):
    """Two-layer GraphSAGE with fan-out sampling, hand-rolled gradients."""

    name = "DistDGL"

    def __init__(self, num_machines: int = 4, dim: int = 64, epochs: int = 10,
                 seed: int = 0, fanouts: tuple = (10, 10), negatives: int = 5,
                 batch_size: int = 256, lr: float = 0.05) -> None:
        super().__init__(num_machines=num_machines, dim=dim, epochs=epochs,
                         seed=seed)
        if len(fanouts) != 2:
            raise ValueError("fanouts must be a (layer1, layer2) pair")
        self.fanouts = tuple(int(f) for f in fanouts)
        self.negatives = negatives
        self.batch_size = batch_size
        self.lr = lr

    # ------------------------------------------------------------------ #

    def embed(self, graph: CSRGraph) -> SystemResult:
        timer = Timer()
        with timer.phase("partition"):
            partition = MetisLikePartitioner(seed=self.seed).partition(
                graph, self.num_machines
            )
        cluster = Cluster(self.num_machines, partition.assignment,
                          seed=derive_seed(self.seed, 1))
        rng = default_rng(derive_seed(self.seed, 2))
        n, d = graph.num_nodes, self.dim

        # Trainable parameters: input embeddings + two SAGE layers.
        h0 = ((rng.random((n, d)) - 0.5) * (2.0 / np.sqrt(d)))
        w1s = rng.standard_normal((d, d)) / np.sqrt(d)
        w1n = rng.standard_normal((d, d)) / np.sqrt(d)
        w2s = rng.standard_normal((d, d)) / np.sqrt(d)
        w2n = rng.standard_normal((d, d)) / np.sqrt(d)
        params = (w1s, w1n, w2s, w2n)
        weight_bytes = int(sum(p.nbytes for p in params))

        edges = graph.unique_edges()
        sampling_seconds = 0.0
        compute_seconds = 0.0
        batches = 0
        with timer.phase("training"):
            for epoch in range(self.epochs):
                order = rng.permutation(len(edges))
                lr = self.lr * (1.0 - epoch / max(1, self.epochs)) + 1e-3
                for start in range(0, len(order), self.batch_size):
                    batch_edges = edges[order[start:start + self.batch_size]]
                    batches += 1
                    negs = rng.integers(
                        0, n, size=(len(batch_edges), self.negatives)
                    )
                    # ---- neighbour sampling (the dominating phase) ----- #
                    t0 = time.perf_counter()
                    block = self._sample_two_hop(graph, batch_edges, negs, rng)
                    sampling_seconds += time.perf_counter() - t0
                    # ---- forward/backward ----------------------------- #
                    t0 = time.perf_counter()
                    self._train_batch(h0, params, batch_edges, negs, block, lr)
                    compute_seconds += time.perf_counter() - t0
                    # Data-parallel gradient all-reduce of dense weights.
                    cluster.metrics.record_sync(
                        weight_bytes * (self.num_machines - 1),
                        n_messages=self.num_machines - 1,
                    )
                    machine = int(cluster.machine_of(int(batch_edges[0, 0])))
                    cluster.metrics.record_compute(
                        machine,
                        len(batch_edges)
                        * self.fanouts[0] * self.fanouts[1]
                        * (self.negatives + 1),
                    )
        # Final embeddings: full-neighbourhood two-layer forward pass.
        z = self._forward_all(graph, h0, params)
        for machine in range(self.num_machines):
            cluster.metrics.record_memory(
                machine,
                h0.nbytes + weight_bytes
                + graph.memory_bytes() // self.num_machines,
            )
        stats: Dict[str, float] = {
            "sampling_seconds": sampling_seconds,
            "compute_seconds": compute_seconds,
            "sampling_fraction": sampling_seconds
            / max(1e-9, sampling_seconds + compute_seconds),
            "batches": float(batches),
            "partition_seconds": partition.seconds,
        }
        return self._result(z, timer, cluster, stats)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample_neighbors(self, graph: CSRGraph, node: int, fanout: int,
                          rng: np.random.Generator) -> np.ndarray:
        nbrs = graph.neighbors(node)
        if nbrs.size <= fanout:
            return nbrs
        # Without replacement, as in DGL's neighbour sampler.
        pick = rng.choice(nbrs.size, size=fanout, replace=False)
        return nbrs[pick]

    def _sample_two_hop(self, graph, batch_edges, negs, rng) -> dict:
        """Two rounds of fan-out sampling (DistDGL's block construction).

        Per-node Python sampling is the genuine bottleneck here, exactly as
        graph sampling dominates the real DistDGL (paper §1).
        """
        f1, f2 = self.fanouts
        seeds = np.unique(np.concatenate([batch_edges.ravel(), negs.ravel()]))
        s2: List[np.ndarray] = [
            self._sample_neighbors(graph, int(v), f2, rng) for v in seeds
        ]
        layer1 = np.unique(np.concatenate([seeds] + s2)) if s2 else seeds
        s1: List[np.ndarray] = [
            self._sample_neighbors(graph, int(x), f1, rng) for x in layer1
        ]
        return {"seeds": seeds, "s2": s2, "layer1": layer1, "s1": s1}

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #

    @staticmethod
    def _segments(idx_lists: List[np.ndarray]):
        """Flatten variable-length index lists into (flat, owner, length)."""
        lengths = np.fromiter((x.size for x in idx_lists), dtype=np.int64,
                              count=len(idx_lists))
        if lengths.sum() == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64), lengths)
        flat = np.concatenate([x for x in idx_lists if x.size])
        owner = np.repeat(np.arange(len(idx_lists)), lengths)
        return flat, owner, lengths

    @classmethod
    def _mean_rows(cls, h: np.ndarray, idx_lists: List[np.ndarray],
                   dim: int) -> np.ndarray:
        """Segment means, vectorised (DGL's aggregation is a sparse op)."""
        out = np.zeros((len(idx_lists), dim))
        flat, owner, lengths = cls._segments(idx_lists)
        if flat.size:
            np.add.at(out, owner, h[flat])
            nz = lengths > 0
            out[nz] /= lengths[nz, None]
        return out

    @classmethod
    def _scatter_mean_grad(cls, grad_out: np.ndarray,
                           idx_lists: List[np.ndarray],
                           back: np.ndarray) -> None:
        """Backward of :meth:`_mean_rows`: route ``back[i]/len_i`` to every
        member of list ``i`` (vectorised scatter-add)."""
        flat, owner, lengths = cls._segments(idx_lists)
        if flat.size:
            scaled = back[owner] / lengths[owner, None]
            np.add.at(grad_out, flat, scaled)

    def _train_batch(self, h0, params, batch_edges, negs, block, lr):
        w1s, w1n, w2s, w2n = params
        d = self.dim
        seeds, s2 = block["seeds"], block["s2"]
        layer1, s1 = block["layer1"], block["s1"]

        # ---- forward --------------------------------------------------- #
        h0_l1 = h0[layer1]
        mean1 = self._mean_rows(h0, s1, d)
        pre1 = h0_l1 @ w1s + mean1 @ w1n
        h1 = np.maximum(pre1, 0.0)                       # over layer1 set
        seed_pos = np.searchsorted(layer1, seeds)
        # Neighbour means in layer-1 *positions*.
        s2_pos = [np.searchsorted(layer1, lst) for lst in s2]
        mean2 = self._mean_rows(h1, s2_pos, d)
        # Output layer is linear (no relu): zeroed output dimensions would
        # cripple the dot-product similarity downstream tasks rely on.
        pre2 = h1[seed_pos] @ w2s + mean2 @ w2n
        z = pre2                                         # over seeds

        # ---- loss gradient on z ---------------------------------------- #
        pos_of = {int(v): i for i, v in enumerate(seeds)}
        src_idx = np.fromiter((pos_of[int(u)] for u in batch_edges[:, 0]),
                              dtype=np.int64)
        dst_idx = np.fromiter((pos_of[int(v)] for v in batch_edges[:, 1]),
                              dtype=np.int64)
        neg_idx = np.vectorize(pos_of.__getitem__)(negs)
        grad_z = np.zeros_like(z)
        zu, zv = z[src_idx], z[dst_idx]
        pos_s = _sigmoid(np.einsum("bd,bd->b", zu, zv))
        g_pos = (1.0 - pos_s)[:, None]
        np.add.at(grad_z, src_idx, g_pos * zv)
        np.add.at(grad_z, dst_idx, g_pos * zu)
        zn = z[neg_idx]
        neg_s = _sigmoid(np.einsum("bd,bkd->bk", zu, zn))
        np.add.at(grad_z, src_idx, -np.einsum("bk,bkd->bd", neg_s, zn))
        np.add.at(grad_z, neg_idx.ravel(),
                  (-neg_s[..., None] * zu[:, None, :]).reshape(-1, d))

        # ---- layer 2 backward (linear output layer) --------------------- #
        grad_pre2 = grad_z
        gw2s = h1[seed_pos].T @ grad_pre2
        gw2n = mean2.T @ grad_pre2
        grad_h1 = np.zeros_like(h1)
        np.add.at(grad_h1, seed_pos, grad_pre2 @ w2s.T)
        self._scatter_mean_grad(grad_h1, s2_pos, grad_pre2 @ w2n.T)

        # ---- layer 1 backward ------------------------------------------ #
        grad_pre1 = grad_h1 * (pre1 > 0)
        gw1s = h0_l1.T @ grad_pre1
        gw1n = mean1.T @ grad_pre1
        grad_h0_l1 = grad_pre1 @ w1s.T
        back_mean1 = grad_pre1 @ w1n.T

        # ---- apply ------------------------------------------------------ #
        scale = lr / max(1, len(seeds))
        w2s += scale * gw2s
        w2n += scale * gw2n
        w1s += scale * gw1s
        w1n += scale * gw1n
        np.add.at(h0, layer1, lr * grad_h0_l1)
        self._scatter_mean_grad(h0, s1, lr * back_mean1)

    def _forward_all(self, graph, h0, params):
        """Full-neighbourhood two-layer forward pass (final embeddings)."""
        w1s, w1n, w2s, w2n = params
        n = graph.num_nodes
        mean_a = np.zeros_like(h0)
        for v in range(n):
            nbrs = graph.neighbors(v)
            if nbrs.size:
                mean_a[v] = h0[nbrs].mean(axis=0)
        h1 = np.maximum(h0 @ w1s + mean_a @ w1n, 0.0)
        mean_b = np.zeros_like(h1)
        for v in range(n):
            nbrs = graph.neighbors(v)
            if nbrs.size:
                mean_b[v] = h1[nbrs].mean(axis=0)
        return h1 @ w2s + mean_b @ w2n
