"""PyTorch-BigGraph-like baseline (Lerer et al. [28]).

PBG's algorithmic core, re-implemented on the simulated runtime:

* nodes are split into ``m`` partitions; edges fall into ``m × m``
  **buckets** trained one bucket at a time;
* training is **first-order**: each edge is a positive pair scored by the
  dot product of its endpoint embeddings, against negatives produced by
  corrupting the destination within its partition (PBG's same-partition
  negative sampling);
* a **parameter server** holds the partition embeddings: every bucket swap
  checks partitions out and back in, and clients re-synchronise shared
  state each epoch.  This traffic is what the paper blames for PBG's
  limited scalability (§1, §6.3), and it is counted here byte-for-byte.

No random walks and no Skip-Gram corpus: quality relies on direct edges
only, which is why PBG shines on the dense Com-Orkut (Table 4) and falls
behind elsewhere.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.hash import ChunkPartitioner
from repro.runtime.cluster import Cluster
from repro.runtime.message import SyncMessage
from repro.systems.base import EmbeddingSystem, SystemResult
from repro.utils.rng import default_rng, derive_seed
from repro.utils.timer import Timer


class PBG(EmbeddingSystem):
    """Edge-bucket embedding trainer with parameter-server accounting."""

    name = "PBG"

    def __init__(self, num_machines: int = 4, dim: int = 64, epochs: int = 20,
                 seed: int = 0, negatives: int = 5, lr: float = 0.1,
                 batch_size: int = 1024) -> None:
        # PBG has no corpus amplification (one positive pair per edge per
        # epoch, vs ~walk_len x walks x window pairs for the walk systems),
        # so it needs many epochs and a large negative set to converge;
        # the real PBG defaults to 100+ negatives per positive edge.
        super().__init__(num_machines=num_machines, dim=dim, epochs=epochs,
                         seed=seed)
        self.negatives = negatives
        self.lr = lr
        self.batch_size = batch_size

    def embed(self, graph: CSRGraph) -> SystemResult:
        timer = Timer()
        with timer.phase("partition"):
            partition = ChunkPartitioner().partition(graph, self.num_machines)
        cluster = Cluster(self.num_machines, partition.assignment,
                          seed=derive_seed(self.seed, 1))
        rng = default_rng(derive_seed(self.seed, 2))
        n = graph.num_nodes
        emb = ((rng.random((n, self.dim)) - 0.5) / self.dim).astype(np.float32)

        # Edge buckets: (source partition, destination partition).
        edges = graph.unique_edges()
        assign = partition.assignment
        bucket_key = assign[edges[:, 0]] * self.num_machines + assign[edges[:, 1]]
        order = np.argsort(bucket_key, kind="stable")
        edges = edges[order]
        bucket_key = bucket_key[order]
        boundaries = np.flatnonzero(np.diff(bucket_key)) + 1
        bucket_slices = np.split(np.arange(len(edges)), boundaries)

        # Per-partition node pools for corrupt-destination negatives.
        pools = [np.flatnonzero(assign == p) for p in range(self.num_machines)]

        part_rows = np.bincount(assign, minlength=self.num_machines)
        with timer.phase("training"):
            total_pairs = 0
            for epoch in range(self.epochs):
                for sl in bucket_slices:
                    if sl.size == 0:
                        continue
                    bucket_edges = edges[sl]
                    dst_part = int(assign[bucket_edges[0, 1]])
                    src_part = int(assign[bucket_edges[0, 0]])
                    machine = src_part
                    # Parameter-server checkout/checkin of both partitions.
                    swap_rows = int(part_rows[src_part] + part_rows[dst_part])
                    cluster.metrics.record_sync(
                        2 * SyncMessage(swap_rows, self.dim).byte_size(),
                        n_messages=2,
                    )
                    pool = pools[dst_part]
                    lr = self.lr * (1.0 - epoch / max(1, self.epochs)) + 1e-4
                    total_pairs += self._train_bucket(
                        emb, bucket_edges, pool, lr, rng
                    )
                    cluster.metrics.record_compute(
                        machine,
                        len(bucket_edges) * (self.negatives + 1),
                    )
                # Client <-> parameter server model refresh each epoch.
                cluster.metrics.record_sync(
                    SyncMessage(n, self.dim).byte_size() * self.num_machines,
                    n_messages=self.num_machines,
                )
        for machine in range(self.num_machines):
            cluster.metrics.record_memory(
                machine,
                emb.nbytes + graph.memory_bytes() // self.num_machines,
            )
        stats: Dict[str, float] = {
            "buckets": float(len([s for s in bucket_slices if s.size])),
            "pairs_trained": float(total_pairs),
            "partition_seconds": partition.seconds,
        }
        return self._result(emb.astype(np.float64), timer, cluster, stats)

    # ------------------------------------------------------------------ #

    def _train_bucket(
        self,
        emb: np.ndarray,
        bucket_edges: np.ndarray,
        negative_pool: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> int:
        """Mini-batched logistic training on one bucket's edges.

        Plain SGD with a linearly-decayed step.  (The real PBG uses
        row-wise AdaGrad with a margin ranking loss; under the logistic
        loss used here a decayed constant step converges measurably better
        at this scale -- documented simplification.)
        """
        k = self.negatives
        d = self.dim
        for start in range(0, len(bucket_edges), self.batch_size):
            batch = bucket_edges[start:start + self.batch_size]
            src, dst = batch[:, 0], batch[:, 1]
            negs = negative_pool[
                rng.integers(0, negative_pool.size, size=(len(batch), k))
            ]
            u = emb[src]                                    # (b, d)
            v = emb[dst]                                    # (b, d)
            nv = emb[negs]                                  # (b, k, d)
            pos_score = 1.0 / (1.0 + np.exp(-np.clip(
                np.einsum("bd,bd->b", u, v), -6, 6)))
            neg_score = 1.0 / (1.0 + np.exp(-np.clip(
                np.einsum("bd,bkd->bk", u, nv), -6, 6)))
            g_pos = (1.0 - pos_score) * lr                  # (b,)
            g_neg = -neg_score * lr                         # (b, k)
            grad_u = g_pos[:, None] * v + np.einsum("bk,bkd->bd", g_neg, nv)
            grad_v = g_pos[:, None] * u
            grad_n = g_neg[..., None] * u[:, None, :]
            np.add.at(emb, src, grad_u.astype(np.float32))
            np.add.at(emb, dst, grad_v.astype(np.float32))
            np.add.at(emb, negs.ravel(),
                      grad_n.reshape(-1, d).astype(np.float32))
        return len(bucket_edges) * (k + 1)
