"""DistGER-GPU: the accelerator variant (paper §8.4, Table 9).

The paper deploys DistGER's learner on RTX 3090s and finds the win small --
and negative on Twitter -- because training state outgrows device memory
and host↔device transfers dominate.  Two modes reproduce that comparison:

* ``backend="model"`` (default, the historical behaviour): the CPU
  pipeline runs unchanged and the GPU is *simulated* by
  :class:`GPUCostModel` -- a compute-rate multiplier, a device-memory
  capacity, and a PCIe-bandwidth penalty for every byte that spills.  The
  result stats report the modelled CPU vs GPU training seconds.

* ``backend="torch"``: the training phase really executes on torch
  tensors (``TrainConfig.backend="torch"`` through the
  :mod:`repro.embedding.ops` seam -- CUDA when available, CPU otherwise),
  and ``gpu_training_seconds`` reports the **measured** wall seconds of
  that phase; the cost model's PCIe projection rides along as
  ``modelled_transfer_seconds`` so the bench can print measured and
  modelled numbers side by side (``bench_table9_gpu.py --backend torch``
  measures a plain-CPU DistGER run next to this one).
  Requires the optional torch dependency; the config layer raises the
  actionable install hint eagerly when it is missing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.systems.base import SystemResult
from repro.systems.walk_systems import DistGER


@dataclass(frozen=True)
class GPUCostModel:
    """An accelerator relative to the simulated CPU machines.

    ``speedup`` multiplies the CPU compute rate; ``device_memory_bytes``
    caps resident training state (model replica + local sub-corpus); every
    byte beyond it is streamed over PCIe at ``pcie_bandwidth`` once per
    epoch, the repeated movement the paper describes for Twitter.
    """

    speedup: float = 12.0
    device_memory_bytes: int = 8 * 1024 * 1024  # scaled-down "24 GB"
    pcie_bandwidth: float = 2.0e8

    def training_seconds(
        self,
        cpu_training_seconds: float,
        resident_bytes: int,
        epochs: int,
    ) -> float:
        compute = cpu_training_seconds / self.speedup
        spill = max(0, resident_bytes - self.device_memory_bytes)
        transfer = spill / self.pcie_bandwidth * max(1, epochs)
        return compute + transfer

    def transfer_seconds(self, resident_bytes: int, epochs: int) -> float:
        """The PCIe term alone (what a real device pays on top of compute)."""
        spill = max(0, resident_bytes - self.device_memory_bytes)
        return spill / self.pcie_bandwidth * max(1, epochs)


class DistGERGPU(DistGER):
    """DistGER with the learner on an accelerator (simulated or real)."""

    name = "DistGER-GPU"

    def __init__(self, *args, gpu: GPUCostModel | None = None,
                 backend: str = "model", torch_device: str = "auto",
                 torch_dtype: str = "auto", **kwargs) -> None:
        if backend not in ("model", "torch"):
            raise ValueError(
                f"unknown DistGERGPU backend {backend!r}; options: "
                "'model' (simulated cost), 'torch' (measured device run)")
        super().__init__(*args, **kwargs)
        self.gpu = gpu or GPUCostModel()
        self.backend = backend
        if backend == "torch":
            # Route the training phase onto the real device backend.  The
            # replace() re-runs TrainConfig validation, so a missing torch
            # install or an unavailable CUDA device fails here with the
            # actionable message, before any graph work starts.
            self.train_config = dataclasses.replace(
                self.train_config, backend="torch",
                torch_device=torch_device, torch_dtype=torch_dtype)

    def embed(self, graph: CSRGraph) -> SystemResult:
        result = super().embed(graph)
        train_seconds = result.phase("training")
        resident = result.peak_memory_bytes
        modelled = self.gpu.training_seconds(train_seconds, resident,
                                             self.epochs)
        result.stats["device_spill_bytes"] = max(
            0, resident - self.gpu.device_memory_bytes
        )
        if self.backend == "torch":
            # Measured seconds: the training phase actually ran on the
            # torch backend, so its wall time *is* the device number.  The
            # cost model stays as the comparable projection (its CPU input
            # is the measured device time here, so only the transfer term
            # is meaningful -- reported for the Table-9-style bench).
            result.stats["gpu_training_seconds"] = train_seconds
            result.stats["gpu_mode"] = 1.0  # 1.0 = measured, 0.0 = modelled
            result.stats["modelled_transfer_seconds"] = (
                self.gpu.transfer_seconds(resident, self.epochs))
        else:
            result.stats["cpu_training_seconds"] = train_seconds
            result.stats["gpu_training_seconds"] = modelled
            result.stats["gpu_mode"] = 0.0
            result.stats["gpu_speedup"] = (
                train_seconds / modelled if modelled > 0 else float("inf")
            )
        return result
