"""DistGER-GPU: the accelerator cost-model variant (paper §8.4, Table 9).

The paper deploys DistGER's learner on RTX 3090s and finds the win small --
and negative on Twitter -- because training state outgrows device memory
and host↔device transfers dominate.  That is a pure cost-model phenomenon,
so the GPU is *simulated*: an accelerator with a compute-rate multiplier, a
device-memory capacity, and a PCIe-bandwidth penalty for every byte that
spills.  The CPU pipeline runs unchanged (same embeddings); the result
stats report the modelled CPU vs GPU training seconds, which is the Table 9
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.systems.base import SystemResult
from repro.systems.walk_systems import DistGER


@dataclass(frozen=True)
class GPUCostModel:
    """An accelerator relative to the simulated CPU machines.

    ``speedup`` multiplies the CPU compute rate; ``device_memory_bytes``
    caps resident training state (model replica + local sub-corpus); every
    byte beyond it is streamed over PCIe at ``pcie_bandwidth`` once per
    epoch, the repeated movement the paper describes for Twitter.
    """

    speedup: float = 12.0
    device_memory_bytes: int = 8 * 1024 * 1024  # scaled-down "24 GB"
    pcie_bandwidth: float = 2.0e8

    def training_seconds(
        self,
        cpu_training_seconds: float,
        resident_bytes: int,
        epochs: int,
    ) -> float:
        compute = cpu_training_seconds / self.speedup
        spill = max(0, resident_bytes - self.device_memory_bytes)
        transfer = spill / self.pcie_bandwidth * max(1, epochs)
        return compute + transfer


class DistGERGPU(DistGER):
    """DistGER with the learner's cost projected onto a simulated GPU."""

    name = "DistGER-GPU"

    def __init__(self, *args, gpu: GPUCostModel | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.gpu = gpu or GPUCostModel()

    def embed(self, graph: CSRGraph) -> SystemResult:
        result = super().embed(graph)
        cpu_train = result.phase("training")
        resident = result.peak_memory_bytes
        gpu_train = self.gpu.training_seconds(cpu_train, resident, self.epochs)
        result.stats["cpu_training_seconds"] = cpu_train
        result.stats["gpu_training_seconds"] = gpu_train
        result.stats["gpu_speedup"] = (
            cpu_train / gpu_train if gpu_train > 0 else float("inf")
        )
        result.stats["device_spill_bytes"] = max(
            0, resident - self.gpu.device_memory_bytes
        )
        return result
