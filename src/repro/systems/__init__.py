"""End-to-end embedding systems: DistGER and every baseline it is measured
against (HuGE-D, KnightKing, PBG, DistDGL), plus the GPU cost-model variant.
"""

from repro.systems.base import EmbeddingSystem, SystemResult
from repro.systems.distdgl import DistDGL
from repro.systems.gpu import DistGERGPU, GPUCostModel
from repro.systems.pbg import PBG
from repro.systems.walk_systems import (
    DistGER,
    HuGED,
    KnightKing,
    RandomWalkSystem,
)

from repro.systems.comparison import (
    SystemComparison,
    SystemComparisonRow,
    compare_systems,
)

ALL_SYSTEMS = {
    "DistGER": DistGER,
    "HuGE-D": HuGED,
    "KnightKing": KnightKing,
    "PBG": PBG,
    "DistDGL": DistDGL,
}

__all__ = [
    "ALL_SYSTEMS",
    "DistDGL",
    "DistGER",
    "DistGERGPU",
    "EmbeddingSystem",
    "GPUCostModel",
    "HuGED",
    "KnightKing",
    "PBG",
    "RandomWalkSystem",
    "SystemComparison",
    "SystemComparisonRow",
    "SystemResult",
    "compare_systems",
]
