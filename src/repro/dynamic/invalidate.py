"""Walk invalidation: which corpus walks does an edge change make stale?

The flat corpus layout (one contiguous ``tokens`` block + per-walk
``offsets``) makes this a handful of vectorized passes instead of a
per-walk scan.  Two audits are provided, forming a correctness ladder:

* **arc audit** — a walk is stale when one of its consecutive token
  pairs traverses a changed arc.  One pass over the pair keys
  ``tokens[:-1] * n + tokens[1:]`` against the sorted changed-arc keys.
  This is the cheapest scan, but it is *incomplete* under rejection
  sampling: every kernel draws the candidate index from the *current*
  adjacency row, so any change to ``N(u)`` — an insertion the old walk
  never traversed, or a deletion of an arc the walk didn't take —
  shifts the transition distribution at ``u`` even though no traversed
  pair changed.  Use it as a diagnostic or fast pre-filter.
* **node audit** — a walk is stale when it visits any *affected* node.
  :func:`affected_nodes` derives that set from the changed arcs
  kernel-aware: for DeepWalk/node2vec the transition at a step depends
  only on the adjacency of nodes the walk itself visits, so the dirty
  endpoints suffice; for the HuGE kernels the acceptance weight is the
  common-neighbour count ``|N(u) ∩ N(v)|`` of the current node and the
  candidate, so the dirty set must expand to the neighbours of changed
  endpoints (in the old *and* new graphs) as well.

Because walk randomness is counter-based (keyed by walk id and step,
never by history), re-running a *non*-stale walk on the new graph
reproduces its bytes exactly — conservatism in the audit costs
resampling time, never correctness.  ``audit="auto"`` picks the node
audit with the kernel-appropriate expansion; it is what
:func:`repro.dynamic.update_embedding` uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.walks.corpus import _concat_ranges

__all__ = ["affected_nodes", "stale_walk_ids", "audit_walks"]

#: Kernels whose acceptance weights read the *candidate*'s adjacency
#: (common-neighbour counts), not just the visited node's.
_NEIGHBOR_SENSITIVE_KERNELS = ("huge", "huge+")


def _expand_with_neighbors(nodes: np.ndarray, graph: CSRGraph) -> np.ndarray:
    """``nodes`` ∪ their out-neighbours in ``graph`` (clipped to |V|)."""
    inside = nodes[nodes < graph.num_nodes]
    if inside.size == 0:
        return nodes
    starts = graph.indptr[inside]
    lengths = graph.indptr[inside + 1] - starts
    pos = _concat_ranges(starts, lengths)
    if pos.size == 0:
        return nodes
    return np.union1d(nodes, graph.indices[pos])


def affected_nodes(
    changed_arcs: np.ndarray,
    kernel: Optional[str] = None,
    old_graph: Optional[CSRGraph] = None,
    new_graph: Optional[CSRGraph] = None,
) -> np.ndarray:
    """Nodes whose outgoing transition distribution may have changed.

    ``changed_arcs`` is the ``(m, 2)`` dirty-arc set from
    :meth:`DeltaCSR.changed_arcs`.  The endpoints are always affected;
    for the HuGE kernels the set additionally expands to their
    neighbours in the old and new graphs (acceptance weights are
    common-neighbour counts, which a change to either endpoint's row
    perturbs for every adjacent walker position).
    """
    changed_arcs = np.asarray(changed_arcs, dtype=np.int64).reshape(-1, 2)
    dirty = np.unique(changed_arcs)
    if dirty.size == 0:
        return dirty
    if kernel in _NEIGHBOR_SENSITIVE_KERNELS:
        for graph in (old_graph, new_graph):
            if graph is not None:
                dirty = _expand_with_neighbors(dirty, graph)
    return dirty


def _per_walk_any(hit: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-walk OR-reduction of a boolean token-position array.

    Zero-length-safe: uses cumulative-sum differences over the walk
    ranges instead of ``reduceat`` (which mishandles empty slices).
    """
    csum = np.zeros(hit.size + 1, dtype=np.int64)
    np.cumsum(hit, out=csum[1:])
    return (csum[offsets[1:]] - csum[offsets[:-1]]) > 0


def stale_walk_ids(
    tokens: np.ndarray,
    offsets: np.ndarray,
    *,
    nodes: Optional[np.ndarray] = None,
    arcs: Optional[np.ndarray] = None,
    num_nodes: Optional[int] = None,
) -> np.ndarray:
    """Walk ids whose token sequence trips the given audit(s).

    ``nodes`` marks a walk stale when any token is in the set (node
    audit); ``arcs`` when any consecutive in-walk pair equals a changed
    arc (arc audit).  Both may be given; the union is returned.  One
    vectorized pass each over the flat token block.
    """
    tokens = np.asarray(tokens)
    offsets = np.asarray(offsets)
    n_walks = offsets.size - 1
    stale = np.zeros(n_walks, dtype=bool)

    if nodes is not None and len(nodes):
        nodes = np.asarray(nodes, dtype=np.int64)
        n = int(num_nodes) if num_nodes is not None else (
            int(max(tokens.max(initial=0), nodes.max())) + 1)
        mask = np.zeros(n, dtype=bool)
        mask[nodes[nodes < n]] = True
        stale |= _per_walk_any(mask[tokens], offsets)

    arcs = None if arcs is None else np.asarray(arcs,
                                                dtype=np.int64).reshape(-1, 2)
    if arcs is not None and len(arcs) and tokens.size > 1:
        n = int(num_nodes) if num_nodes is not None else (
            int(max(tokens.max(initial=0), arcs.max())) + 1)
        changed_keys = np.unique(arcs[:, 0] * n + arcs[:, 1])
        pair_keys = tokens[:-1] * n + tokens[1:]
        idx = np.searchsorted(changed_keys, pair_keys)
        idx[idx == changed_keys.size] = 0
        pair_hit = np.zeros(tokens.size, dtype=bool)
        pair_hit[:-1] = changed_keys[idx] == pair_keys
        # Pairs straddling a walk boundary belong to no walk.
        pair_hit[offsets[1:] - 1] = False
        stale |= _per_walk_any(pair_hit, offsets)

    return np.flatnonzero(stale).astype(np.int64)


def audit_walks(
    corpus,
    changed_arcs: np.ndarray,
    *,
    kernel: Optional[str] = None,
    old_graph: Optional[CSRGraph] = None,
    new_graph: Optional[CSRGraph] = None,
    audit: str = "auto",
) -> np.ndarray:
    """Stale walk ids of a :class:`~repro.walks.corpus.Corpus`.

    ``audit="auto"``/``"node"`` runs the kernel-aware node audit (the
    correct default); ``"arc"`` runs the traversed-pair scan only (fast,
    incomplete under insertions — see the module docstring).
    """
    if audit not in ("auto", "node", "arc"):
        raise ValueError(f"audit must be auto|node|arc, got {audit!r}")
    num_nodes = max(
        corpus.num_nodes,
        old_graph.num_nodes if old_graph is not None else 0,
        new_graph.num_nodes if new_graph is not None else 0,
    )
    if audit == "arc":
        return stale_walk_ids(corpus.tokens, corpus.offsets,
                              arcs=changed_arcs, num_nodes=num_nodes)
    dirty = affected_nodes(changed_arcs, kernel=kernel,
                           old_graph=old_graph, new_graph=new_graph)
    return stale_walk_ids(corpus.tokens, corpus.offsets,
                          nodes=dirty, num_nodes=num_nodes)
