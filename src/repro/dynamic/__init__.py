"""Dynamic graphs: edge streams, walk invalidation, incremental re-embedding.

The static pipeline (partition → sample → train) assumes an immutable
graph; this package extends InCoM's incremental-reuse idea across graph
versions.  An :class:`EdgeStream` is absorbed by a :class:`DeltaCSR`
overlay (O(churn) apply, byte-identical :meth:`~DeltaCSR.compact`),
:func:`stale_walk_ids` audits the flat corpus for walks the change
invalidates, and :func:`update_embedding` resamples exactly those walks
and warm-starts training from the previous embeddings — ≥5× cheaper
than a full recompute at a 1% churn step, with link-prediction quality
inside the golden band (see ``benchmarks/bench_dynamic_update.py``).
"""

from repro.dynamic.delta import DeltaCSR, EdgeStream, random_churn
from repro.dynamic.invalidate import affected_nodes, stale_walk_ids
from repro.dynamic.update import UpdateResult, update_embedding

__all__ = [
    "DeltaCSR",
    "EdgeStream",
    "random_churn",
    "affected_nodes",
    "stale_walk_ids",
    "UpdateResult",
    "update_embedding",
]
