"""Incremental re-embedding after an edge stream (the dynamic path).

One update step chains the pieces the rest of the package already
provides, none of which re-runs work the churn didn't touch:

1. **delta** — :class:`~repro.dynamic.delta.DeltaCSR` absorbs the edge
   stream in O(churn) and :meth:`~repro.dynamic.delta.DeltaCSR.compact`
   rebuilds only the touched CSR rows (byte-identical to a from-scratch
   ``CSRGraph.from_edges`` on the merged edge list).
2. **invalidate** — :func:`~repro.dynamic.invalidate.audit_walks` scans
   the flat corpus once and returns the stale walk ids (kernel-aware
   node audit by default; see that module for the correctness ladder).
3. **resample** — the stale walks re-run through the vectorized
   :class:`~repro.walks.vectorized.BatchWalkRunner` on the new graph
   *with their original walk ids*.  Walk randomness is counter-based
   (keyed by walk id and step), so a resampled non-stale walk would
   reproduce its bytes exactly — selective resampling equals the full
   re-run on the same source set.  The new walks splice into the corpus
   in place (:meth:`~repro.walks.corpus.Corpus.replace_walks`), patching
   occurrence counts incrementally.
4. **warm-start train** — a reduced-epoch
   :class:`~repro.embedding.trainer.DistributedTrainer` seeded from the
   previous embeddings (and, when available, the previous model's
   ``phi_out``) refines rather than re-learns.  The vocabulary and
   negative table rebuild from the *patched* occurrence counters, so
   frequency-dependent structures track the churn.  By default
   (``train_scope="stale"``) the refinement pass sweeps only the
   resampled walks — a sub-corpus under the full corpus's frequency
   statistics, so vocabulary order, negative table and subsampling
   thresholds stay global while the gradient work is O(churn); vectors
   of untouched regions keep their warm-start bytes exactly.
   ``train_scope="full"`` sweeps the whole corpus instead (every vector
   refreshes against the patched walk set — slower, closer to a full
   retrain).

Resampling always runs in-process: the walk bytes are independent of
the execution mode by construction, so cross-executor byte-parity of an
update step reduces to the trainer's existing serial/process/pipeline
parity guarantee.

Known limitations (documented, asserted nowhere): sources that become
*newly active* (a node whose first edge arrives in the stream) get no
walks until the next full embed — the walk-id ↔ corpus-index contract
pins the walk count; the KL walk-count rule is likewise not
re-evaluated, so the round count stays what the full run converged to
(a fresh run on the new graph may pick a different one); and walks
whose source lost its last edge collapse to length-1 paths, as a fresh
run would simply not start them.  The
``mode="fullpath"`` (HuGE-D) measurement has no batch kernel and is
rejected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.dynamic.delta import DeltaCSR, EdgeStream
from repro.dynamic.invalidate import audit_walks
from repro.embedding.model import EmbeddingModel, TrainConfig
from repro.embedding.trainer import (
    DistributedTrainer,
    WarmStart,
    seed_model_from_warm_start,
)
from repro.embedding.vocab import Vocabulary
from repro.graph.csr import CSRGraph
from repro.runtime.cluster import Cluster
from repro.runtime.message import BYTES_PER_FIELD
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer
from repro.walks.corpus import Corpus, _concat_ranges
from repro.walks.engine import WalkConfig
from repro.walks.kernels import make_kernel
from repro.walks.vectorized import BatchWalkRunner
from repro.walks.walker import WalkStats

__all__ = ["UpdateResult", "update_embedding"]


@dataclass
class UpdateResult:
    """Everything one incremental update step produced.

    Shaped so the *next* update can chain from it the same way it
    chains from a :class:`repro.systems.base.SystemResult`: ``graph``,
    ``corpus``, ``embeddings``, ``model``, ``walk_machines`` and
    ``assignment`` are exactly the fields the orchestration consumes.
    """

    graph: CSRGraph
    corpus: object
    embeddings: np.ndarray
    model: Optional[object]
    walk_machines: Optional[np.ndarray]
    assignment: np.ndarray
    timer: Timer
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return self.timer.total

    def phase(self, name: str) -> float:
        return self.timer.get(name)


def _extend_assignment(assignment: Optional[np.ndarray], num_nodes: int,
                       num_machines: int) -> np.ndarray:
    """Cover ``num_nodes`` ids, round-robining any nodes the previous
    assignment has never seen (placement never changes walk bytes)."""
    if assignment is None:
        return np.arange(num_nodes, dtype=np.int64) % num_machines
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.size >= num_nodes:
        return assignment[:num_nodes]
    fresh = np.arange(assignment.size, num_nodes, dtype=np.int64) \
        % num_machines
    return np.concatenate([assignment, fresh])


def update_embedding(
    graph: CSRGraph,
    stream: EdgeStream,
    *,
    corpus,
    embeddings: np.ndarray,
    model: Optional[object] = None,
    walk_machines: Optional[np.ndarray] = None,
    assignment: Optional[np.ndarray] = None,
    walk_config: Optional[WalkConfig] = None,
    train_config: Optional[TrainConfig] = None,
    learner: str = "dsgl",
    num_machines: int = 4,
    seed: int = 0,
    update_epochs: int = 1,
    audit: str = "auto",
    train_scope: str = "stale",
    store: Optional[object] = None,
) -> UpdateResult:
    """Apply ``stream`` to ``graph`` and refresh the affected embeddings.

    ``corpus``/``embeddings`` (and optionally ``model``,
    ``walk_machines``, ``assignment``) come from the previous full run's
    :class:`~repro.systems.base.SystemResult` or the previous
    :class:`UpdateResult`; ``walk_config``/``train_config``/``seed``
    must match that run for the resample to be byte-faithful.  The
    corpus is patched **in place**.  ``update_epochs`` is the reduced
    refinement schedule (default 1 against the paper-config 4+ of a
    full run); ``train_scope`` picks what that schedule sweeps —
    ``"stale"`` (default) trains only the resampled walks under
    full-corpus statistics, ``"full"`` the whole patched corpus (see
    the module docstring).  When ``store`` is given, its embedding
    matrix is refreshed in place at the end (see
    :meth:`repro.serving.store.EmbeddingStore.update`).
    """
    walk_config = walk_config or WalkConfig.distger()
    if walk_config.mode == "fullpath":
        raise ValueError(
            "dynamic updates need the batched walk kernel; the fullpath "
            "(HuGE-D) measurement has no batch form — use mode='incom' "
            "or 'routine'")
    if update_epochs <= 0:
        raise ValueError(f"update_epochs must be positive, got {update_epochs}")
    if train_scope not in ("stale", "full"):
        raise ValueError(
            f"train_scope must be 'stale' or 'full', got {train_scope!r}")
    embeddings = np.asarray(embeddings)
    timer = Timer()

    with timer.phase("delta"):
        delta = DeltaCSR(graph)
        delta.apply(stream)
        changed = delta.changed_arcs()
        new_graph = delta.compact()

    stats: Dict[str, float] = {
        "inserts": float(stream.num_inserts),
        "deletes": float(stream.num_deletes),
        "changed_arcs": float(len(changed)),
        "new_nodes": float(new_graph.num_nodes - graph.num_nodes),
    }

    if len(changed) == 0 and new_graph.num_nodes == graph.num_nodes:
        # Every edit was a no-op (delete of a missing edge, re-insert of
        # an existing unweighted one...): nothing is stale.
        stats.update({"stale_walks": 0.0, "resampled_tokens": 0.0})
        return UpdateResult(
            graph=new_graph, corpus=corpus, embeddings=embeddings,
            model=model, walk_machines=walk_machines,
            assignment=_extend_assignment(assignment, new_graph.num_nodes,
                                          num_machines),
            timer=timer, stats=stats)

    with timer.phase("invalidate"):
        if new_graph.num_nodes > corpus.num_nodes:
            corpus.expand_universe(new_graph.num_nodes)
        assignment = _extend_assignment(assignment, new_graph.num_nodes,
                                        num_machines)
        cluster = Cluster(num_machines, assignment,
                          seed=derive_seed(seed, 1))
        stale = audit_walks(corpus, changed, kernel=walk_config.kernel,
                            old_graph=graph, new_graph=new_graph,
                            audit=audit)
    stats["stale_walks"] = float(stale.size)
    total_walks = corpus.num_walks
    stats["total_walks"] = float(total_walks)

    if walk_machines is not None:
        walk_machines = np.asarray(walk_machines, dtype=np.int64).copy()
        if walk_machines.size != total_walks:
            raise ValueError("walk_machines must align with corpus walks")
    else:
        first = np.asarray(corpus.offsets[:-1])
        walk_machines = assignment[np.asarray(corpus.tokens[first],
                                              dtype=np.int64)]

    resampled_tokens = 0
    if stale.size:
        with timer.phase("resample"):
            starts = np.asarray(corpus.offsets)[stale]
            sources = np.asarray(corpus.tokens[starts], dtype=np.int64)
            kernel_kwargs = {}
            if walk_config.kernel in ("node2vec", "node2vec-alias"):
                kernel_kwargs = {"p": walk_config.p, "q": walk_config.q}
            kernel = make_kernel(walk_config.kernel, new_graph,
                                 **kernel_kwargs)
            runner = BatchWalkRunner(
                new_graph, cluster, walk_config, kernel,
                kernel.message_fields * BYTES_PER_FIELD)
            walk_stats = WalkStats()
            # Original walk ids: the corpus index *is* the walk id under
            # the round protocol, so counter-based streams line up with
            # what a full re-run would draw for these walks.
            paths, lengths = runner.run_walks(sources, stale, walk_stats)
            corpus.replace_walks(stale, paths, lengths)
            walk_machines[stale] = assignment[sources]
            resampled_tokens = int(lengths.sum())
            stats["resample_trials"] = float(walk_stats.total_trials)
    stats["resampled_tokens"] = float(resampled_tokens)

    with timer.phase("train"):
        if train_config is None:
            train_config = TrainConfig(dim=int(embeddings.shape[1]),
                                       seed=derive_seed(seed, 2) or 0)
        cfg = dataclasses.replace(train_config, epochs=update_epochs)
        phi_out = None
        if model is not None:
            phi_out = model.vocab.reorder_to_node_space(model.phi_out)
        warm = WarmStart(phi_in=embeddings, phi_out=phi_out)
        if train_scope == "stale":
            train_corpus, train_wm = _stale_subcorpus(corpus, stale,
                                                      walk_machines)
        else:
            train_corpus, train_wm = corpus, walk_machines
        if train_corpus.num_walks == 0:
            # Nothing to refine (churn minted nodes but invalidated no
            # walks): keep the warm vectors, word2vec-init any new rows.
            vocab = Vocabulary.from_occurrences(corpus.occurrences)
            new_model = EmbeddingModel(vocab, cfg.dim, seed=cfg.seed)
            seed_model_from_warm_start(new_model, vocab, warm, cfg.dim)
            new_embeddings = new_model.embeddings_node_space()
            stats["train_tokens"] = 0.0
        else:
            trainer = DistributedTrainer(
                train_corpus, cluster, cfg, learner=learner,
                walk_machines=train_wm, warm_start=warm)
            train_result = trainer.train()
            new_embeddings = train_result.embeddings
            new_model = train_result.model
            stats["train_tokens"] = float(train_result.tokens_processed)
            stats.update({key: float(value)
                          for key, value in train_result.extras.items()})

    if store is not None:
        store.update(new_embeddings)

    return UpdateResult(
        graph=new_graph, corpus=corpus, embeddings=new_embeddings,
        model=new_model, walk_machines=walk_machines,
        assignment=assignment, timer=timer, stats=stats)


def _stale_subcorpus(corpus, stale: np.ndarray,
                     walk_machines: np.ndarray):
    """The stale walks as a standalone corpus under full-corpus stats.

    The refinement pass trains only these walks, but the occurrence
    counters are the *whole* corpus's: vocabulary order, the negative
    table and subsampling thresholds must describe the corpus the warm
    vectors were trained on, not the churn-biased slice.
    """
    offsets = np.asarray(corpus.offsets)
    lengths = offsets[1:] - offsets[:-1]
    sub_lengths = lengths[stale]
    sub_tokens = np.asarray(corpus.tokens)[
        _concat_ranges(offsets[:-1][stale], sub_lengths)]
    sub_offsets = np.zeros(stale.size + 1, dtype=np.int64)
    np.cumsum(sub_lengths, out=sub_offsets[1:])
    sub = Corpus.from_flat(corpus.num_nodes, sub_tokens, sub_offsets,
                           occurrences=corpus.occurrences)
    return sub, walk_machines[stale]
