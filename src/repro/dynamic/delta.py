"""Delta overlay over an immutable :class:`CSRGraph`.

The CSR layout is the right structure for walking and the wrong one for
mutating: inserting one arc into the middle of ``indices`` moves every
byte after it.  ``DeltaCSR`` therefore keeps the base CSR untouched and
absorbs an edge stream into per-edge delta entries — a weight for a live
(inserted or re-weighted) edge, a tombstone for a deleted one — with
last-op-wins semantics, O(1) per operation.  Queries merge the base row
with the deltas on the fly; :meth:`DeltaCSR.compact` materialises a
plain ``CSRGraph`` that is **byte-identical** to
``CSRGraph.from_edges(merged_edges, ...)`` on the merged logical edge
list, while only touching the rows the stream touched (untouched spans
of ``indices``/``weights`` are copied in bulk).

`EdgeStream` is the input format: parallel ``src``/``dst``/``ops``
(+1 insert, -1 delete)/``weights`` arrays, a ``+ u v [w]`` / ``- u v``
text form for the CLI, and :func:`random_churn` to synthesise the
paper-style 1% churn step the dynamic bench measures.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["EdgeStream", "DeltaCSR", "random_churn"]

_MISSING = object()


@dataclass(frozen=True)
class EdgeStream:
    """An ordered stream of edge insertions and deletions.

    ``ops[i] == +1`` inserts ``(src[i], dst[i])`` with ``weights[i]``;
    ``ops[i] == -1`` deletes it (the weight is ignored).  Order matters:
    later operations on the same edge win.
    """

    src: np.ndarray
    dst: np.ndarray
    ops: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", np.asarray(self.src, dtype=np.int64))
        object.__setattr__(self, "dst", np.asarray(self.dst, dtype=np.int64))
        object.__setattr__(self, "ops", np.asarray(self.ops, dtype=np.int64))
        w = (np.ones(self.src.size, dtype=np.float64) if self.weights is None
             else np.asarray(self.weights, dtype=np.float64))
        object.__setattr__(self, "weights", w)
        if not (self.src.shape == self.dst.shape == self.ops.shape
                == self.weights.shape):
            raise ValueError("src/dst/ops/weights must be parallel 1-D arrays")
        if self.src.size and not np.all(np.isin(self.ops, (-1, 1))):
            raise ValueError("ops must be +1 (insert) or -1 (delete)")
        if self.src.size and min(int(self.src.min()), int(self.dst.min())) < 0:
            raise ValueError("node ids must be non-negative")

    def __len__(self) -> int:
        return int(self.src.size)

    def __iter__(self) -> Iterator[Tuple[int, int, int, float]]:
        for i in range(len(self)):
            yield (int(self.ops[i]), int(self.src[i]), int(self.dst[i]),
                   float(self.weights[i]))

    @property
    def num_inserts(self) -> int:
        return int(np.count_nonzero(self.ops == 1))

    @property
    def num_deletes(self) -> int:
        return int(np.count_nonzero(self.ops == -1))

    @classmethod
    def from_edits(
        cls,
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[Tuple[int, int]] = (),
        insert_weights: Optional[Iterable[float]] = None,
    ) -> "EdgeStream":
        """Build a stream that applies ``deletes`` then ``inserts``."""
        del_arr = np.asarray(list(deletes), dtype=np.int64).reshape(-1, 2)
        ins_arr = np.asarray(list(inserts), dtype=np.int64).reshape(-1, 2)
        src = np.concatenate([del_arr[:, 0], ins_arr[:, 0]])
        dst = np.concatenate([del_arr[:, 1], ins_arr[:, 1]])
        ops = np.concatenate([
            np.full(len(del_arr), -1, dtype=np.int64),
            np.ones(len(ins_arr), dtype=np.int64),
        ])
        w = np.ones(src.size, dtype=np.float64)
        if insert_weights is not None:
            w[len(del_arr):] = np.asarray(list(insert_weights),
                                          dtype=np.float64)
        return cls(src, dst, ops, w)

    @classmethod
    def from_text(cls, source: Union[str, io.TextIOBase]) -> "EdgeStream":
        """Parse the text form: ``+ u v [w]`` inserts, ``- u v`` deletes.

        ``source`` is a path or an open text file; blank lines and
        ``#``-comments are skipped.
        """
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as fh:
                return cls.from_text(fh)
        src, dst, ops, weights = [], [], [], []
        for lineno, raw in enumerate(source, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if parts[0] not in ("+", "-") or len(parts) not in (3, 4):
                raise ValueError(
                    f"line {lineno}: expected '+ u v [w]' or '- u v', "
                    f"got {raw.strip()!r}")
            if parts[0] == "-" and len(parts) == 4:
                raise ValueError(f"line {lineno}: deletions take no weight")
            ops.append(1 if parts[0] == "+" else -1)
            src.append(int(parts[1]))
            dst.append(int(parts[2]))
            weights.append(float(parts[3]) if len(parts) == 4 else 1.0)
        return cls(np.asarray(src, dtype=np.int64),
                   np.asarray(dst, dtype=np.int64),
                   np.asarray(ops, dtype=np.int64),
                   np.asarray(weights, dtype=np.float64))

    def to_text(self) -> str:
        """Inverse of :meth:`from_text` (weights printed only on inserts)."""
        lines = []
        for op, u, v, w in self:
            if op == 1 and w != 1.0:
                lines.append(f"+ {u} {v} {w!r}")
            else:
                lines.append(f"{'+' if op == 1 else '-'} {u} {v}")
        return "\n".join(lines) + ("\n" if lines else "")


def random_churn(
    graph: CSRGraph,
    fraction: float,
    seed: int = 0,
    insert_fraction: float = 0.5,
) -> EdgeStream:
    """Synthesise a churn step touching ``fraction`` of the edge set.

    ``round(fraction * |E| * (1 - insert_fraction))`` existing edges are
    deleted and ``round(fraction * |E| * insert_fraction)`` new edges
    (uniform non-edges between existing nodes) are inserted — the
    evolving-graph step the dynamic-update bench replays.  Deterministic
    in ``seed``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    total = int(round(fraction * graph.num_edges))
    n_ins = int(round(total * insert_fraction))
    n_del = total - n_ins
    edges = graph.unique_edges()
    n_del = min(n_del, len(edges))
    del_idx = rng.choice(len(edges), size=n_del, replace=False) if n_del else \
        np.empty(0, dtype=np.int64)
    deletes = edges[np.sort(del_idx)]

    n = graph.num_nodes
    inserts = []
    seen = set(map(tuple, edges))
    guard = 0
    while len(inserts) < n_ins and guard < 50 * max(n_ins, 1):
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        guard += 1
        if u == v:
            continue
        key = (u, v) if (graph.directed or u < v) else (v, u)
        if key in seen:
            continue
        seen.add(key)
        inserts.append(key)
    return EdgeStream.from_edits(inserts=inserts, deletes=deletes)


class DeltaCSR:
    """Mutable edge-delta overlay on an immutable base :class:`CSRGraph`.

    Applying a stream costs O(churn) dict updates; queries merge the
    base row with the node's deltas; :meth:`compact` rebuilds only the
    touched rows.  For undirected bases one logical edit covers both
    stored arcs (keys are normalised to ``u < v``).  Self-loop inserts
    are topological no-ops — ``from_edges`` drops them — but still grow
    the node universe, matching the constructor's pre-drop id handling.
    """

    def __init__(self, base: CSRGraph):
        self.base = base
        self._num_nodes = base.num_nodes
        # logical edge key -> weight (live) or None (tombstone)
        self._edits: Dict[Tuple[int, int], Optional[float]] = {}
        self.self_loops_ignored = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _key(self, u: int, v: int) -> Tuple[int, int]:
        if self.base.directed or u < v:
            return (u, v)
        return (v, u)

    def insert(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert (or re-weight) edge ``(u, v)``; grows the node universe."""
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise ValueError("node ids must be non-negative")
        self._num_nodes = max(self._num_nodes, u + 1, v + 1)
        if u == v:
            self.self_loops_ignored += 1
            return
        self._edits[self._key(u, v)] = float(weight)

    def delete(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``; deleting an absent edge is a no-op."""
        u, v = int(u), int(v)
        if u == v or u >= self._num_nodes or v >= self._num_nodes:
            return
        key = self._key(u, v)
        if self._edits.get(key, _MISSING) is None:
            return  # already tombstoned
        if key in self._edits or self._base_has_arc(*key):
            self._edits[key] = None
        # deleting an edge that never existed leaves no trace

    def apply(self, stream: EdgeStream) -> "DeltaCSR":
        """Apply a whole stream in order (last op per edge wins)."""
        for op, u, v, w in stream:
            if op == 1:
                self.insert(u, v, w)
            else:
                self.delete(u, v)
        return self

    # ------------------------------------------------------------------ #
    # Queries (merged view)
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edits(self) -> int:
        return len(self._edits)

    def _base_has_arc(self, u: int, v: int) -> bool:
        return u < self.base.num_nodes and self.base.has_edge(u, v)

    def _arc_edits(self, node: int) -> Dict[int, Optional[float]]:
        """Deltas that land in ``node``'s adjacency row, dst -> edit."""
        out: Dict[int, Optional[float]] = {}
        for (a, b), w in self._edits.items():
            if a == node:
                out[b] = w
            elif not self.base.directed and b == node:
                out[a] = w
        return out

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted merged adjacency of ``node`` (copy, not a view)."""
        base_row = (self.base.neighbors(node) if node < self.base.num_nodes
                    else np.empty(0, dtype=np.int64))
        edits = self._arc_edits(node)
        if not edits:
            return base_row.copy()
        live = {int(d) for d in base_row}
        for dst, w in edits.items():
            if w is None:
                live.discard(dst)
            else:
                live.add(dst)
        return np.asarray(sorted(live), dtype=np.int64)

    def degree(self, node: int) -> int:
        return int(self.neighbors(node).size)

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        key = self._key(int(u), int(v))
        if key in self._edits:
            return self._edits[key] is not None
        return self._base_has_arc(*key)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    def effective_edits(self) -> Dict[Tuple[int, int], Optional[float]]:
        """Edits that actually change the base: real inserts, re-weights,
        and deletions of edges that exist (no-op entries filtered out)."""
        out: Dict[Tuple[int, int], Optional[float]] = {}
        weighted = self.base.is_weighted
        for (u, v), w in self._edits.items():
            present = self._base_has_arc(u, v)
            if w is None:
                if present:
                    out[(u, v)] = None
            elif not present:
                out[(u, v)] = w
            elif weighted and self.base.edge_weight(u, v) != w:
                out[(u, v)] = w
            # unweighted base: re-inserting an existing edge is a no-op
        return out

    def changed_arcs(self) -> np.ndarray:
        """All stored arcs whose presence or weight changes, ``(m, 2)``.

        Undirected edits contribute both directions — this is the dirty
        set the walk-invalidation audit scans for.
        """
        edits = self.effective_edits()
        if not edits:
            return np.empty((0, 2), dtype=np.int64)
        arcs = np.asarray(list(edits), dtype=np.int64)
        if not self.base.directed:
            arcs = np.concatenate([arcs, arcs[:, ::-1]])
        return arcs

    def merged_edges(self) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """The merged logical edge list ``(edges, weights_or_None)``.

        ``CSRGraph.from_edges(edges, num_nodes=self.num_nodes,
        weights=weights, directed=...)`` on this list defines the
        reference result :meth:`compact` must reproduce byte for byte.
        """
        weighted = self.base.is_weighted
        arcs = self.base.edge_array()
        if self.base.directed:
            base_edges = arcs
            base_w = self.base.weights.copy() if weighted else None
        else:
            half = arcs[:, 0] < arcs[:, 1]
            base_edges = arcs[half]
            base_w = self.base.weights[half] if weighted else None
        keep = np.ones(len(base_edges), dtype=bool)
        replace_w = {}
        edits = self.effective_edits()
        if edits:
            keys = {tuple(map(int, e)): i for i, e in enumerate(base_edges)}
            extra_e, extra_w = [], []
            for key, w in edits.items():
                i = keys.get(key)
                if w is None:
                    keep[i] = False
                elif i is not None:
                    replace_w[i] = w
                else:
                    extra_e.append(key)
                    extra_w.append(w)
        else:
            extra_e, extra_w = [], []
        if weighted:
            for i, w in replace_w.items():
                base_w[i] = w
        edges = np.concatenate([
            base_edges[keep],
            np.asarray(extra_e, dtype=np.int64).reshape(-1, 2),
        ])
        if not weighted:
            return edges, None
        weights = np.concatenate([
            base_w[keep], np.asarray(extra_w, dtype=np.float64)])
        return edges, weights

    def compact(self) -> CSRGraph:
        """Materialise the merged graph as a plain :class:`CSRGraph`.

        Byte-identical to ``from_edges`` on :meth:`merged_edges`, but
        only the touched rows are rebuilt — the untouched spans of
        ``indices``/``weights`` are copied slice-wise from the base.
        """
        base = self.base
        n = self._num_nodes
        edits = self.effective_edits()
        if not edits and n == base.num_nodes:
            return base

        # Bucket the logical edits into the adjacency rows they land in.
        per_row: Dict[int, Dict[int, Optional[float]]] = {}
        for (u, v), w in edits.items():
            per_row.setdefault(u, {})[v] = w
            if not base.directed:
                per_row.setdefault(v, {})[u] = w

        weighted = base.is_weighted
        new_rows: Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        counts = np.zeros(n, dtype=np.int64)
        counts[:base.num_nodes] = base.degrees
        for node, row_edits in per_row.items():
            if node < base.num_nodes:
                base_row = base.neighbors(node)
                merged = (dict(zip(base_row.tolist(),
                                   base.neighbor_weights(node).tolist()))
                          if weighted else dict.fromkeys(base_row.tolist(),
                                                         1.0))
            else:
                merged = {}
            for dst, w in row_edits.items():
                if w is None:
                    merged.pop(dst, None)
                else:
                    merged[dst] = w
            dsts = np.asarray(sorted(merged), dtype=np.int64)
            row_w = (np.asarray([merged[int(d)] for d in dsts],
                                dtype=np.float64) if weighted else None)
            new_rows[node] = (dsts, row_w)
            counts[node] = dsts.size

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        weights = np.empty(int(indptr[-1]), dtype=np.float64) if weighted \
            else None

        # Copy untouched spans in bulk, splice the rebuilt rows in place.
        touched = sorted(new_rows)
        span_start = 0  # first node of the next untouched span
        for node in touched + [n]:
            if span_start < node:  # bulk-copy [span_start, node)
                lo, hi = span_start, min(node, base.num_nodes)
                if lo < hi:
                    src = slice(base.indptr[lo], base.indptr[hi])
                    dst_slice = slice(int(indptr[lo]), int(indptr[hi]))
                    indices[dst_slice] = base.indices[src]
                    if weighted:
                        weights[dst_slice] = base.weights[src]
            if node == n:
                break
            dsts, row_w = new_rows[node]
            dst_slice = slice(int(indptr[node]), int(indptr[node + 1]))
            indices[dst_slice] = dsts
            if weighted:
                weights[dst_slice] = row_w
            span_start = node + 1

        return CSRGraph(indptr, indices, weights, directed=base.directed)
