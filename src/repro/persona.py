"""Persona walks (Splitter-style) over the DistGER pipeline.

Splitter (Epasto & Perozzi, *Is a Single Embedding Enough?*) observes
that one vector per node cannot represent a node that sits in several
overlapping communities -- the embedding lands between its roles.  The
fix is structural: split every node into one *persona* per community of
its ego-net, embed the persona graph, and anchor each persona to its
base node's prior embedding so the personas stay mutually comparable.

This module composes that workload out of pieces this reproduction
already has, without a new engine:

1. :func:`repro.graph.persona_graph` expands the graph (ego-net
   splitting; a plain :class:`~repro.graph.CSRGraph` comes out, so the
   partitioner, walk engine, executors and flat corpus consume it
   unchanged).
2. A *prior* embedding of the base graph is trained (or supplied), and
   every persona is anchored to its base node's prior through
   :class:`repro.embedding.anchor.AnchorRegularizer` -- the
   persona-regularized SGNS term, applied per training slice through the
   array-ops seam on every executor and backend.
3. The chosen walk system embeds the persona graph; the result carries
   the persona↔base mapping so downstream tasks can score base-node
   pairs as a max over their persona pairs
   (:func:`persona_pair_scores`), Splitter's link-prediction protocol.

``lam=0`` degrades to embedding the persona graph with plain DistGER --
byte-identical to a run with no anchor attached at all (the parity gate
``benchmarks/bench_persona_linkpred.py`` enforces on every executor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.embedding.anchor import AnchorRegularizer
from repro.graph.csr import CSRGraph
from repro.graph.transform import persona_graph
from repro.systems.base import SystemResult

__all__ = [
    "PersonaConfig",
    "PersonaResult",
    "embed_persona_graph",
    "persona_pair_scores",
]


@dataclass
class PersonaConfig:
    """Knobs of the persona workload.

    ``lam`` is Splitter's regularizer weight λ (0 disables anchoring;
    0.1 is the paper's setting).  ``communities`` overrides the ego-net
    labeler of :func:`repro.graph.persona_graph`.  ``prior`` supplies
    the base-graph embedding to anchor to (node-id space, ``(n, dim)``);
    when ``None`` it is trained with the same system configuration,
    for ``prior_epochs`` epochs (default: the persona run's epochs).
    ``warm_start`` (default True, as in Splitter) initialises every
    persona's vectors *from* its base's prior instead of word2vec noise
    -- personas then diverge only where their walks pull them apart;
    disable it to recover the plain-initialisation path (the λ=0 +
    ``warm_start=False`` combination is byte-identical to embedding the
    persona graph directly).
    """

    lam: float = 0.1
    communities: Optional[Callable] = None
    prior: Optional[np.ndarray] = None
    prior_epochs: Optional[int] = None
    warm_start: bool = True


@dataclass
class PersonaResult:
    """Output of :func:`embed_persona_graph`.

    ``embeddings`` is ``(P, dim)`` in **persona-id space**; the mapping
    arrays mirror :class:`repro.graph.PersonaGraph` (personas of base
    node ``u`` are rows ``persona_offsets[u]:persona_offsets[u + 1]``,
    ``base_of[p]`` recovers ``p``'s base node).  ``prior`` is the base
    embedding the personas were anchored to and ``result`` the inner
    system run on the persona graph (timers, metrics, corpus).
    """

    embeddings: np.ndarray       # (P, dim) persona-id space
    base_of: np.ndarray          # (P,)
    persona_offsets: np.ndarray  # (n + 1,)
    prior: np.ndarray            # (n, dim) base-graph prior
    result: SystemResult = field(repr=False, default=None)

    @property
    def num_personas(self) -> int:
        return int(self.base_of.size)

    @property
    def num_nodes(self) -> int:
        return int(self.persona_offsets.size - 1)

    def personas_of(self, node: int) -> np.ndarray:
        """Persona ids of ``node`` (a contiguous ``arange``)."""
        return np.arange(self.persona_offsets[node],
                         self.persona_offsets[node + 1], dtype=np.int64)

    def base_embeddings(self) -> np.ndarray:
        """One vector per base node: the mean over its personas.

        The single-embedding projection -- useful when a downstream
        consumer needs exactly ``n`` rows (classification, serving
        without grouped lookups).  Link prediction should prefer
        :func:`persona_pair_scores`, which keeps the multi-role
        resolution the split bought.
        """
        sums = np.add.reduceat(self.embeddings.astype(np.float64),
                               self.persona_offsets[:-1], axis=0)
        counts = np.diff(self.persona_offsets).astype(np.float64)
        return (sums / counts[:, None]).astype(self.embeddings.dtype)


def embed_persona_graph(
    graph: CSRGraph,
    method: str = "distger",
    num_machines: int = 4,
    dim: int = 64,
    epochs: int = 2,
    seed: int = 0,
    kernel: Optional[str] = None,
    persona: Optional[PersonaConfig] = None,
    **system_kwargs,
) -> PersonaResult:
    """Embed ``graph``'s personas with a walk-based system (Splitter).

    The persona counterpart of :func:`repro.embed_graph` (also reachable
    as ``embed_graph(graph, persona=...)``): same method/hyper-parameter
    surface, walk-based methods only (the workload is a graph transform
    plus a trainer regularizer, so it needs the walk→train pipeline).
    Runs the prior training (unless ``persona.prior`` supplies one),
    splits the graph, anchors every persona to its base's prior with
    weight ``persona.lam``, and embeds the persona graph.
    """
    from repro.api import _METHODS, _WALK_METHODS, _route_overrides

    key = method.lower()
    if key not in _WALK_METHODS:
        raise ValueError(
            f"persona embedding needs a walk-based method; {method!r} is "
            f"not one ({', '.join(_WALK_METHODS)})")
    persona = persona if persona is not None else PersonaConfig()

    prior = persona.prior
    prior_out = None
    if prior is None:
        from repro.api import embed_graph

        prior_epochs = (persona.prior_epochs
                        if persona.prior_epochs is not None else epochs)
        prior_result = embed_graph(graph, method=method,
                                   num_machines=num_machines, dim=dim,
                                   epochs=prior_epochs, seed=seed,
                                   kernel=kernel, **dict(system_kwargs))
        prior = prior_result.embeddings
        if prior_result.model is not None:
            # Context matrix of the prior, node space -- seeding it too
            # keeps warm-started training from re-learning phi_out.
            prior_out = np.ascontiguousarray(
                prior_result.model.vocab.reorder_to_node_space(
                    prior_result.model.phi_out), dtype=np.float32)
    prior = np.ascontiguousarray(prior, dtype=np.float32)
    if prior.shape != (graph.num_nodes, dim):
        raise ValueError(
            f"prior shape {prior.shape} does not match "
            f"(num_nodes, dim) = ({graph.num_nodes}, {dim})")

    split = persona_graph(graph, communities=persona.communities)

    cls = _METHODS[key]
    kwargs = dict(num_machines=num_machines, dim=dim, epochs=epochs,
                  seed=seed, **_route_overrides(key, dict(system_kwargs)))
    if kernel is not None:
        kwargs["kernel"] = kernel
    system = cls(**kwargs)
    # Each persona is anchored to its base node's prior vector; λ=0
    # drops the anchor entirely (the trainer's byte-identical plain path).
    system.anchor = AnchorRegularizer(prior[split.base_of], persona.lam)
    if persona.warm_start:
        # Splitter's initialisation: personas start *at* their base's
        # prior, diverging only where their walks pull them apart.
        from repro.embedding.trainer import WarmStart

        system.warm_start = WarmStart(
            phi_in=prior[split.base_of],
            phi_out=(None if prior_out is None
                     else prior_out[split.base_of]))
    result = system.embed(split.graph)
    return PersonaResult(
        embeddings=result.embeddings,
        base_of=split.base_of,
        persona_offsets=split.persona_offsets,
        prior=prior,
        result=result,
    )


def persona_pair_scores(
    embeddings: np.ndarray,
    persona_offsets: np.ndarray,
    pairs: np.ndarray,
) -> np.ndarray:
    """Score base-node pairs as the max over their persona pairs.

    Splitter's link-prediction aggregation: a base edge ``(u, v)`` is as
    plausible as its *best* persona pair -- the roles in which the two
    nodes would interact -- so the score is
    ``max_{p∈personas(u), q∈personas(v)} φ[p]·φ[q]``.  ``pairs`` is an
    ``(m, 2)`` int array of base node ids; returns ``(m,)`` float64
    scores (drop-in for :func:`repro.tasks.pair_scores` in
    :func:`repro.tasks.auc_score`).
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must be (m, 2); got {pairs.shape}")
    emb = np.asarray(embeddings, dtype=np.float64)
    offsets = np.asarray(persona_offsets, dtype=np.int64)
    scores = np.empty(pairs.shape[0], dtype=np.float64)
    for i, (u, v) in enumerate(pairs):
        left = emb[offsets[u]:offsets[u + 1]]
        right = emb[offsets[v]:offsets[v + 1]]
        scores[i] = float((left @ right.T).max())
    return scores
