"""Process-parallel execution runtime (the ``execution="process"`` knob).

The simulated :class:`~repro.runtime.cluster.Cluster` counts work; this
module makes the three pipeline phases *actually* run on multiple OS
processes.  The enabling property is the counter-based RNG protocols of
PRs 1-2: every random draw is a pure function of ``(stream key, counter)``,
so results cannot depend on how work is scheduled -- which means the
process backend must reproduce the serial backends **bit for bit** (the
contract ``tests/test_runtime_executor_parity.py`` enforces, mirroring how
KnightKing-style BSP engines are validated).

Three phase executors live here:

* **Walks** -- :class:`ProcessWalkRunner` splits a round's walkers across
  workers.  Walkers are independent under the walker RNG protocol, so each
  worker advances its slice through the same lock-step
  :class:`~repro.walks.vectorized.BatchWalkRunner` supersteps and writes
  paths straight into a shared-memory output buffer; the parent flushes
  them in walk-id order (the protocol's canonical corpus order) and merges
  the per-worker metric deltas.  All metric increments are integer-valued
  floats, so the merged counters equal the serial ones exactly.

* **Training** -- :class:`ProcessSliceTrainer` runs each machine's
  sync-period slice on a worker against replica matrices living in shared
  memory.  Within a sync period the ``m`` machines' slices touch disjoint
  replicas (they only interact at the parent-side sync), so running them
  concurrently is a pure reordering of independent float work; negative
  draws stay deterministic because each machine's
  :class:`~repro.utils.rng.CounterStream` counter is threaded through the
  task messages.

* **Partitioning** -- :func:`run_partition_segments` partitions
  parallel-MPGP's independent stream segments on workers; the (sequential)
  merge stays in the parent.

Shared-memory plumbing (:class:`SharedArray` / CSR helpers) is exposed for
reuse; handles are picklable and survive round trips to worker processes
(property-tested in the parity suite).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "EXECUTION_CHOICES",
    "ProcessExecutor",
    "ProcessSliceTrainer",
    "ProcessWalkRunner",
    "SharedArray",
    "SharedArrayHandle",
    "attach_shared_array",
    "default_execution",
    "default_workers",
    "resolve_execution",
    "resolved_worker_count",
    "run_partition_segments",
]

#: Accepted values of the ``execution`` knob on every phase config.
EXECUTION_CHOICES = ("serial", "process")


def default_execution() -> str:
    """Default of the ``execution`` config fields.

    ``REPRO_EXECUTION`` overrides the built-in ``"serial"`` so a whole test
    or CI run can be pushed onto the process backend without touching call
    sites (the ``execution=process`` tier-1 CI job uses this).
    """
    return os.environ.get("REPRO_EXECUTION", "serial")


def default_workers() -> int:
    """Default of the ``workers`` config fields (``REPRO_WORKERS`` or 0)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


def resolve_execution(execution: str) -> str:
    """Validate an ``execution`` knob value and return it."""
    if execution not in EXECUTION_CHOICES:
        raise ValueError(
            f"unknown execution {execution!r}; options: "
            f"{'/'.join(EXECUTION_CHOICES)}"
        )
    return execution


def resolved_worker_count(workers: int) -> int:
    """Worker-process count ``workers=0`` (auto) resolves to.

    Auto picks ``min(4, cpu_count)``: beyond 4 the per-round merge work in
    the parent starts to dominate at the graph sizes this reproduction
    targets, and the parity/bench suites pin 1/2/4 anyway.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers > 0:
        return workers
    return max(1, min(4, os.cpu_count() or 1))


# --------------------------------------------------------------------- #
# Shared-memory ndarrays
# --------------------------------------------------------------------- #


class SharedArrayHandle(NamedTuple):
    """Picklable descriptor of a shared-memory ndarray."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _attach_untracked(name: str):
    """Open an existing segment without telling the resource tracker.

    CPython registers attached segments with the resource tracker too
    (bpo-39959); since forked workers share the parent's tracker and its
    per-name registry is a set, every attach/unregister pair from a worker
    would silently drop (or noisily double-drop) the *parent's* tracking
    entry.  Ownership here is strict -- only the creating
    :class:`SharedArray` unlinks -- so worker attaches suppress the
    registration instead.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


#: Worker-side registry keeping attached segments (and their buffers) alive
#: for the life of the process.
_ATTACHED: Dict[str, "object"] = {}


def attach_shared_array(handle: SharedArrayHandle) -> np.ndarray:
    """Attach to a shared segment and view it as an ndarray (worker side).

    The underlying segment is kept open in a process-wide registry, so the
    returned array stays valid for the attaching process's lifetime;
    attaching the same handle twice reuses the mapping.
    """
    shm = _ATTACHED.get(handle.name)
    if shm is None:
        shm = _attach_untracked(handle.name)
        _ATTACHED[handle.name] = shm
    return np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                      buffer=shm.buf)


class SharedArray:
    """A parent-owned shared-memory ndarray.

    ``create``/``empty`` allocate the segment; ``handle`` is the picklable
    descriptor workers pass to :func:`attach_shared_array`; ``close``
    unlinks the segment (owner's responsibility, exactly once).
    """

    def __init__(self, shm, handle: SharedArrayHandle) -> None:
        self._shm = shm
        self.handle = handle
        self.array = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                                buffer=shm.buf)

    @classmethod
    def empty(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        from multiprocessing import shared_memory

        dt = np.dtype(dtype)
        size = max(1, int(np.prod(shape)) * dt.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        return cls(shm, SharedArrayHandle(shm.name, tuple(shape), dt.str))

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        """Allocate a segment holding a copy of ``source``."""
        out = cls.empty(source.shape, source.dtype)
        out.array[...] = source
        return out

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self.array = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


class _SharedGroup:
    """Owner-side bundle of shared arrays with one-shot cleanup."""

    def __init__(self) -> None:
        self._arrays: List[SharedArray] = []

    def share(self, source: np.ndarray) -> SharedArrayHandle:
        shared = SharedArray.create(source)
        self._arrays.append(shared)
        return shared.handle

    def empty(self, shape, dtype) -> SharedArray:
        shared = SharedArray.empty(shape, dtype)
        self._arrays.append(shared)
        return shared

    def close(self) -> None:
        for shared in self._arrays:
            shared.close()
        self._arrays = []


class SharedCSRHandle(NamedTuple):
    """Picklable descriptor of a CSR graph living in shared memory."""

    indptr: SharedArrayHandle
    indices: SharedArrayHandle
    weights: Optional[SharedArrayHandle]
    directed: bool


def share_graph(group: _SharedGroup, graph) -> SharedCSRHandle:
    """Copy ``graph``'s CSR arrays into ``group``'s shared segments."""
    return SharedCSRHandle(
        indptr=group.share(graph.indptr),
        indices=group.share(graph.indices),
        weights=(None if graph.weights is None
                 else group.share(graph.weights)),
        directed=graph.directed,
    )


def attach_graph(handle: SharedCSRHandle):
    """Rebuild a :class:`~repro.graph.csr.CSRGraph` over shared buffers."""
    from repro.graph.csr import CSRGraph

    weights = (None if handle.weights is None
               else attach_shared_array(handle.weights))
    return CSRGraph(attach_shared_array(handle.indptr),
                    attach_shared_array(handle.indices),
                    weights, directed=handle.directed)


# --------------------------------------------------------------------- #
# Pool wrapper
# --------------------------------------------------------------------- #


class ProcessExecutor:
    """A :class:`ProcessPoolExecutor` with fail-fast batch semantics.

    ``run`` submits one task per argument tuple and gathers results in
    task order.  The first worker exception (including a hard worker death
    surfacing as ``BrokenProcessPool``) cancels the remaining tasks, shuts
    the pool down and re-raises in the parent -- no deadlock, no orphaned
    workers; the crash-safety tests pin this down.
    """

    def __init__(self, workers: int, initializer: Optional[Callable] = None,
                 initargs: Tuple = ()) -> None:
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs)

    def run(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Run ``fn(*task)`` for every task; results in task order."""
        if self._pool is None:
            raise RuntimeError("executor already shut down")
        futures = [self._pool.submit(fn, *task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            self.shutdown()
            raise

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def split_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``n`` items, near-equal."""
    bounds = np.linspace(0, n, min(n, max(1, parts)) + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1]))
            for i in range(bounds.size - 1)
            if bounds[i + 1] > bounds[i]]


# --------------------------------------------------------------------- #
# Walk phase
# --------------------------------------------------------------------- #

#: Per-worker state installed by the pool initializers (one phase per pool).
_WORKER_STATE: Dict[str, object] = {}


def _walk_worker_init(graph_handle, assignment_handle, num_machines,
                      walk_seed_root, config, sources_handle, paths_handle,
                      lengths_handle, table_handles) -> None:
    from repro.runtime.cluster import Cluster
    from repro.runtime.message import BYTES_PER_FIELD
    from repro.walks.kernels import make_kernel
    from repro.walks.vectorized import BatchWalkRunner

    graph = attach_graph(graph_handle)
    cluster = Cluster(num_machines, attach_shared_array(assignment_handle),
                      seed=0)
    # The parity-critical piece of cluster state: walker stream keys must
    # derive from the parent's root, not this worker's placeholder seed.
    cluster.walk_seed_root = walk_seed_root
    kernel_kwargs = ({"p": config.p, "q": config.q}
                     if config.kernel in ("node2vec", "node2vec-alias")
                     else {})
    kernel = make_kernel(config.kernel, graph, **kernel_kwargs)
    tables = {key: attach_shared_array(handle)
              for key, handle in table_handles.items()}
    _WORKER_STATE["walk_runner"] = BatchWalkRunner(
        graph, cluster, config, kernel,
        kernel.message_fields * BYTES_PER_FIELD, tables=tables)
    _WORKER_STATE["walk_sources"] = attach_shared_array(sources_handle)
    _WORKER_STATE["walk_paths"] = attach_shared_array(paths_handle)
    _WORKER_STATE["walk_lengths"] = attach_shared_array(lengths_handle)


def _walk_round_task(round_idx: int, lo: int, hi: int, n_total: int):
    from repro.runtime.metrics import ClusterMetrics
    from repro.walks.walker import WalkStats

    runner = _WORKER_STATE["walk_runner"]
    runner.cluster.metrics = ClusterMetrics(runner.cluster.num_machines)
    stats = WalkStats()
    walk_ids = round_idx * n_total + np.arange(lo, hi, dtype=np.int64)
    runner.run_walks(_WORKER_STATE["walk_sources"][lo:hi], walk_ids, stats,
                     paths_out=_WORKER_STATE["walk_paths"][lo:hi],
                     lengths_out=_WORKER_STATE["walk_lengths"][lo:hi])
    return stats.total_trials, stats.total_steps, runner.cluster.metrics


class ProcessWalkRunner:
    """Round runner fanning one round's walkers across worker processes.

    Mirrors :meth:`BatchWalkRunner.run_round`; the engine treats the two
    interchangeably.  The graph CSR, node assignment, walk sources, kernel
    tables and the per-round path/length output buffers all live in shared
    memory: per round, only the slice coordinates travel to the workers and
    only the scalar stat/metric deltas travel back.
    """

    def __init__(self, graph, cluster, config, kernel,
                 routine_message_bytes: int, sources: np.ndarray) -> None:
        from repro.walks.vectorized import weighted_row_cumsum

        del routine_message_bytes  # workers recompute it from the kernel
        self.cluster = cluster
        self.workers = resolved_worker_count(config.workers)
        n = int(sources.size)
        self._n = n
        cap = config.max_length if config.mode != "routine" else \
            config.walk_length
        self._group = _SharedGroup()
        try:
            graph_handle = share_graph(self._group, graph)
            assignment_handle = self._group.share(cluster.assignment)
            sources_handle = self._group.share(
                np.asarray(sources, dtype=np.int64))
            self._paths = self._group.empty((n, cap), np.int64)
            self._lengths = self._group.empty((n,), np.int64)
            # Precompute the kernel tables once and hand workers views, so
            # per-worker construction stays cheap (node2vec-alias rebuilds
            # its sampler tables per worker; documented duplication).
            tables = {}
            if kernel.name in ("huge", "huge+"):
                tables["arc_accept"] = self._group.share(
                    kernel.arc_acceptance_table())
            if graph.is_weighted and kernel.name != "node2vec-alias":
                tables["row_cumsum"] = self._group.share(
                    weighted_row_cumsum(graph))
            self._pool = ProcessExecutor(
                self.workers, initializer=_walk_worker_init,
                initargs=(graph_handle, assignment_handle,
                          cluster.num_machines, cluster.walk_seed_root,
                          config, sources_handle, self._paths.handle,
                          self._lengths.handle, tables))
        except BaseException:
            self._group.close()
            raise
        self._ranges = split_ranges(n, self.workers)

    def run_round(self, sources: np.ndarray, round_idx: int, corpus,
                  stats, walk_machines: List[int]) -> None:
        if sources.size != self._n:
            # Workers walk from the shared snapshot taken at construction;
            # a caller varying sources per round needs a fresh runner.
            raise ValueError(
                f"round sources ({sources.size}) do not match the shared "
                f"snapshot ({self._n}) this runner was built for"
            )
        results = self._pool.run(
            _walk_round_task,
            [(round_idx, lo, hi, self._n) for lo, hi in self._ranges])
        for trials, steps, metrics in results:
            stats.total_trials += trials
            stats.total_steps += steps
            self.cluster.metrics.merge(metrics)
        lengths = self._lengths.array
        corpus.add_walks(self._paths.array, lengths)
        stats.total_walks += int(lengths.size)
        stats.walk_lengths.extend(int(length) for length in lengths)
        walk_machines.extend(
            int(m) for m in self.cluster.assignment[sources])

    def close(self) -> None:
        self._pool.shutdown()
        self._group.close()

    def __enter__(self) -> "ProcessWalkRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Training phase
# --------------------------------------------------------------------- #


def _train_worker_init(phi_in_handle, phi_out_handle, vocab, config,
                       learner_name, backend) -> None:
    from repro.embedding.negative import NegativeSampler

    _WORKER_STATE["train_phi_in"] = attach_shared_array(phi_in_handle)
    _WORKER_STATE["train_phi_out"] = attach_shared_array(phi_out_handle)
    _WORKER_STATE["train_vocab"] = vocab
    _WORKER_STATE["train_config"] = config
    _WORKER_STATE["train_sampler"] = NegativeSampler(vocab)
    _WORKER_STATE["train_backend"] = backend
    _WORKER_STATE["train_learner_name"] = learner_name
    _WORKER_STATE["train_learners"] = {}


def _train_slice_task(machine: int, walks, lr: float, key: int,
                      counter: int):
    from repro.embedding.model import EmbeddingModel
    from repro.embedding.trainer import LEARNERS
    from repro.embedding.vectorized import VECTORIZED_LEARNERS
    from repro.utils.rng import CounterStream

    learners: Dict[int, object] = _WORKER_STATE["train_learners"]
    learner = learners.get(machine)
    if learner is None:
        model = EmbeddingModel.__new__(EmbeddingModel)
        model.phi_in = _WORKER_STATE["train_phi_in"][machine]
        model.phi_out = _WORKER_STATE["train_phi_out"][machine]
        model.vocab = _WORKER_STATE["train_vocab"]
        model.dim = int(model.phi_in.shape[1])
        registry = (VECTORIZED_LEARNERS
                    if _WORKER_STATE["train_backend"] == "vectorized"
                    else LEARNERS)
        # The generator argument is never consumed under the shared
        # protocol (negatives come from the counter stream; subsampling
        # happens in the parent) -- a fixed dummy keeps the signature.
        learner = registry[_WORKER_STATE["train_learner_name"]](
            model, _WORKER_STATE["train_sampler"],
            _WORKER_STATE["train_config"], np.random.default_rng(0),
            neg_stream=None)
        learners[machine] = learner
    learner.neg_stream = CounterStream(key, counter)
    used = learner.train_walks(walks, lr)
    return machine, used, learner.neg_stream.counter


class ProcessSliceTrainer:
    """Runs per-machine training slices on workers over shared replicas.

    The trainer repoints every replica's matrices into one shared-memory
    block ``(machines, vocab, dim)``; workers mutate their machine's block
    in place, the parent's sync strategy reads/writes the same pages
    between rounds.  Each machine's negative-stream counter is carried in
    the task messages, so any worker can train any machine's slice and the
    stream still advances exactly as in the serial interleaving.
    """

    def __init__(self, replicas, vocab, config, learner_name: str,
                 backend: str, neg_keys) -> None:
        m = len(replicas)
        dim = int(replicas[0].phi_in.shape[1])
        self._group = _SharedGroup()
        try:
            phi_in = self._group.empty((m, vocab.size, dim), np.float32)
            phi_out = self._group.empty((m, vocab.size, dim), np.float32)
            for i, replica in enumerate(replicas):
                phi_in.array[i] = replica.phi_in
                phi_out.array[i] = replica.phi_out
                replica.phi_in = phi_in.array[i]
                replica.phi_out = phi_out.array[i]
            self.workers = resolved_worker_count(config.workers)
            self._pool = ProcessExecutor(
                self.workers, initializer=_train_worker_init,
                initargs=(phi_in.handle, phi_out.handle, vocab, config,
                          learner_name, backend))
        except BaseException:
            self._group.close()
            raise
        self._keys = [int(key) for key in neg_keys]
        self._counters = [0] * m

    def train_round(self, plans) -> Dict[int, int]:
        """Train one sync round's slices; ``plans`` = (machine, walks, lr).

        Returns tokens used per machine, having advanced each machine's
        negative-stream counter to where the serial path would leave it.
        """
        tasks = [(machine, walks, lr, self._keys[machine],
                  self._counters[machine])
                 for machine, walks, lr in plans]
        used: Dict[int, int] = {}
        for machine, tokens, counter in self._pool.run(_train_slice_task,
                                                       tasks):
            self._counters[machine] = counter
            used[machine] = tokens
        return used

    def close(self) -> None:
        self._pool.shutdown()
        self._group.close()


# --------------------------------------------------------------------- #
# Partition phase
# --------------------------------------------------------------------- #


def _partition_worker_init(graph_handle, arc_handle, num_parts,
                           gamma) -> None:
    _WORKER_STATE["part_graph"] = attach_graph(graph_handle)
    _WORKER_STATE["part_arc"] = (None if arc_handle is None
                                 else attach_shared_array(arc_handle))
    _WORKER_STATE["part_num_parts"] = num_parts
    _WORKER_STATE["part_gamma"] = gamma


def _partition_segment_task(segment: np.ndarray) -> np.ndarray:
    from repro.partition.mpgp import _mpgp_stream

    part_of = _mpgp_stream(_WORKER_STATE["part_graph"], segment,
                           _WORKER_STATE["part_num_parts"],
                           _WORKER_STATE["part_gamma"],
                           arc_cm=_WORKER_STATE["part_arc"])
    return part_of[segment]


def run_partition_segments(graph, segments, num_parts: int, gamma: float,
                           arc_cm: Optional[np.ndarray],
                           workers: int) -> List[np.ndarray]:
    """Partition parallel-MPGP's segments on worker processes.

    Returns each segment's per-node part labels (aligned with the segment
    order), exactly as the serial per-segment loop produces them --
    segments share no state, so the fan-out is a pure reordering.
    """
    group = _SharedGroup()
    try:
        graph_handle = share_graph(group, graph)
        arc_handle = None if arc_cm is None else group.share(arc_cm)
        with ProcessExecutor(
                min(resolved_worker_count(workers), len(segments)),
                initializer=_partition_worker_init,
                initargs=(graph_handle, arc_handle, num_parts,
                          gamma)) as pool:
            return pool.run(_partition_segment_task,
                            [(segment,) for segment in segments])
    finally:
        group.close()
