"""Process-parallel execution runtime (``execution="process"``/``"pipeline"``).

The simulated :class:`~repro.runtime.cluster.Cluster` counts work; this
module makes the three pipeline phases *actually* run on multiple OS
processes.  The enabling property is the counter-based RNG protocols of
PRs 1-2: every random draw is a pure function of ``(stream key, counter)``,
so results cannot depend on how work is scheduled -- which means the
process backend must reproduce the serial backends **bit for bit** (the
contract ``tests/test_runtime_executor_parity.py`` enforces, mirroring how
KnightKing-style BSP engines are validated).

Three phase executors live here:

* **Walks** -- :class:`ProcessWalkRunner` splits a round's walkers across
  workers.  Walkers are independent under the walker RNG protocol, so each
  worker advances its slice through the same lock-step
  :class:`~repro.walks.vectorized.BatchWalkRunner` supersteps and writes
  paths straight into a shared-memory output buffer; the parent flushes
  them in walk-id order (the protocol's canonical corpus order) and merges
  the per-worker metric deltas.  All metric increments are integer-valued
  floats, so the merged counters equal the serial ones exactly.

* **Training** -- :class:`ProcessSliceTrainer` runs each machine's
  sync-period slice on a worker against replica matrices living in shared
  memory.  Within a sync period the ``m`` machines' slices touch disjoint
  replicas (they only interact at the parent-side sync), so running them
  concurrently is a pure reordering of independent float work; negative
  draws stay deterministic because each machine's
  :class:`~repro.utils.rng.CounterStream` counter is threaded through the
  task messages.  The walk data itself never travels: the flat corpus
  (token block + offsets) and the per-machine shard index arrays are
  copied into shared memory once at construction, and each sync round
  ships only ``(machine, lo, hi, lr, key, counter)`` **slice
  descriptors** -- workers rebuild their batch as zero-copy views into
  the shared token block.  (Subsampled runs fall back to shipping the
  parent-side subsampled batches by pickle, since those walks exist only
  in the parent.)

* **Partitioning** -- :func:`run_partition_segments` partitions
  parallel-MPGP's independent stream segments on workers; the (sequential)
  merge stays in the parent.

The streaming building blocks of ``execution="pipeline"`` also live
here: :class:`StreamingWalkRunner` (a bounded round queue over the same
walk pool, sampling rounds ahead of the parent's flush under deferred
accounting) and :class:`AsyncPartition` (a partitioner on its own worker,
joined where the placement is first consumed).
:mod:`repro.runtime.pipeline` composes them into the overlapped dataflow.

Shared-memory plumbing (:class:`SharedArray` / CSR helpers) is exposed for
reuse; handles are picklable and survive round trips to worker processes
(property-tested in the parity suite).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.utils.sharedmem import (
    BACKING_CHOICES,
    SharedArray,
    SharedArrayHandle,
    SharedGroup as _SharedGroup,
    attach_shared_array,
    default_backing,
    default_spill_dir,
    detach_shared_array,
    resolve_backing,
)

__all__ = [
    "BACKING_CHOICES",
    "EXECUTION_CHOICES",
    "AsyncPartition",
    "ProcessExecutor",
    "ProcessSliceTrainer",
    "ProcessWalkRunner",
    "SharedArray",
    "SharedArrayHandle",
    "StreamingWalkRunner",
    "attach_shared_array",
    "default_backing",
    "default_execution",
    "default_spill_dir",
    "default_workers",
    "detach_shared_array",
    "pipeline_depth",
    "resolve_backing",
    "resolve_execution",
    "resolved_worker_count",
    "run_partition_async",
    "run_partition_segments",
]

#: Accepted values of the ``execution`` knob on every phase config.
#: ``"pipeline"`` is the streaming superset of ``"process"``: the same
#: worker pools, plus overlap between phases (partition || sampling) and
#: within the walk phase (round k+1 samples while round k flushes) --
#: byte-identical results either way.
EXECUTION_CHOICES = ("serial", "process", "pipeline")


def default_execution() -> str:
    """Default of the ``execution`` config fields.

    ``REPRO_EXECUTION`` overrides the built-in ``"serial"`` so a whole test
    or CI run can be pushed onto the process backend without touching call
    sites (the ``execution=process`` tier-1 CI job uses this).
    """
    return os.environ.get("REPRO_EXECUTION", "serial")


def default_workers() -> int:
    """Default of the ``workers`` config fields (``REPRO_WORKERS`` or 0)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


def pipeline_depth() -> int:
    """In-flight walk rounds of the streaming executor (backpressure bound).

    ``REPRO_PIPELINE_DEPTH`` overrides the default of 2 (double buffering:
    workers sample round ``k+1`` while the parent flushes round ``k``).
    Each in-flight round owns one shared path/length/trial buffer set, so
    the depth bounds both speculation waste past a KL stop and resident
    memory; values below 1 are rejected.
    """
    depth = int(os.environ.get("REPRO_PIPELINE_DEPTH", "2"))
    if depth < 1:
        raise ValueError(f"REPRO_PIPELINE_DEPTH must be >= 1, got {depth}")
    return depth


def resolve_execution(execution: str) -> str:
    """Validate an ``execution`` knob value and return it."""
    if execution not in EXECUTION_CHOICES:
        raise ValueError(
            f"unknown execution {execution!r}; options: "
            f"{'/'.join(EXECUTION_CHOICES)}"
        )
    return execution


def resolved_worker_count(workers: int) -> int:
    """Worker-process count ``workers=0`` (auto) resolves to.

    Auto picks ``min(4, cpu_count)``: beyond 4 the per-round merge work in
    the parent starts to dominate at the graph sizes this reproduction
    targets, and the parity/bench suites pin 1/2/4 anyway.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers > 0:
        return workers
    return max(1, min(4, os.cpu_count() or 1))


# --------------------------------------------------------------------- #
# Shared-memory ndarrays
# --------------------------------------------------------------------- #

# The shared-ndarray plumbing lives in :mod:`repro.utils.sharedmem` (it
# also backs the serving layer's embedding store, with a file-backed mmap
# mode); the executor re-exports the names above for its callers.


class SharedCSRHandle(NamedTuple):
    """Picklable descriptor of a CSR graph living in shared memory."""

    indptr: SharedArrayHandle
    indices: SharedArrayHandle
    weights: Optional[SharedArrayHandle]
    directed: bool


def share_graph(group: _SharedGroup, graph) -> SharedCSRHandle:
    """Copy ``graph``'s CSR arrays into ``group``'s shared segments."""
    return SharedCSRHandle(
        indptr=group.share(graph.indptr),
        indices=group.share(graph.indices),
        weights=(None if graph.weights is None
                 else group.share(graph.weights)),
        directed=graph.directed,
    )


def attach_graph(handle: SharedCSRHandle):
    """Rebuild a :class:`~repro.graph.csr.CSRGraph` over shared buffers."""
    from repro.graph.csr import CSRGraph

    weights = (None if handle.weights is None
               else attach_shared_array(handle.weights))
    return CSRGraph(attach_shared_array(handle.indptr),
                    attach_shared_array(handle.indices),
                    weights, directed=handle.directed)


# --------------------------------------------------------------------- #
# Pool wrapper
# --------------------------------------------------------------------- #


class ProcessExecutor:
    """A :class:`ProcessPoolExecutor` with fail-fast batch semantics.

    ``run`` submits one task per argument tuple and gathers results in
    task order.  The first worker exception (including a hard worker death
    surfacing as ``BrokenProcessPool``) cancels the remaining tasks, shuts
    the pool down and re-raises in the parent -- no deadlock, no orphaned
    workers; the crash-safety tests pin this down.
    """

    def __init__(self, workers: int, initializer: Optional[Callable] = None,
                 initargs: Tuple = ()) -> None:
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs)

    def run(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Run ``fn(*task)`` for every task; results in task order."""
        if self._pool is None:
            raise RuntimeError("executor already shut down")
        futures = [self._pool.submit(fn, *task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            self.shutdown()
            raise

    def submit(self, fn: Callable, *args):
        """Submit one task, returning its future (request/response use).

        Unlike :meth:`run`, a failing task does **not** tear the pool
        down -- the exception surfaces from ``future.result()`` and the
        pool keeps serving (the serving front end's per-request error
        semantics).  Hard worker deaths still poison the pool and
        surface as ``BrokenProcessPool``.
        """
        if self._pool is None:
            raise RuntimeError("executor already shut down")
        return self._pool.submit(fn, *args)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def split_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``n`` items, near-equal."""
    bounds = np.linspace(0, n, min(n, max(1, parts)) + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1]))
            for i in range(bounds.size - 1)
            if bounds[i + 1] > bounds[i]]


# --------------------------------------------------------------------- #
# Walk phase
# --------------------------------------------------------------------- #

#: Per-worker state installed by the pool initializers (one phase per pool).
_WORKER_STATE: Dict[str, object] = {}


def _share_kernel_tables(group: _SharedGroup, graph, kernel) -> Dict:
    """Precompute the walk kernel's tables once into shared segments.

    HuGE acceptance / weighted cumsums, and node2vec-alias's five flat
    sampler tables (first- and second-order alias structures), so no walk
    worker pays any table build.  Shared by the process and pipeline
    runners.
    """
    from repro.walks.vectorized import weighted_row_cumsum

    tables = {}
    if kernel.name in ("huge", "huge+"):
        tables["arc_accept"] = group.share(kernel.arc_acceptance_table())
    if graph.is_weighted and kernel.name != "node2vec-alias":
        tables["row_cumsum"] = group.share(weighted_row_cumsum(graph))
    if kernel.name == "node2vec-alias":
        for key, table in kernel.sampler.export_tables().items():
            tables[key] = group.share(table)
    return tables


def _build_worker_runner(graph, cluster, config, table_handles):
    """Rebuild a :class:`BatchWalkRunner` over shared tables (worker side)."""
    from repro.runtime.message import BYTES_PER_FIELD
    from repro.walks.alias_sampling import (
        Node2VecAliasKernel,
        SecondOrderAliasSampler,
    )
    from repro.walks.kernels import make_kernel
    from repro.walks.vectorized import BatchWalkRunner

    tables = {key: attach_shared_array(handle)
              for key, handle in table_handles.items()}
    if config.kernel == "node2vec-alias" and "so_offsets" in tables:
        # The parent exported the sampler's flat tables into shared
        # memory; build the kernel over views instead of re-running the
        # per-worker Σ deg(u) alias-table construction.
        kernel = Node2VecAliasKernel.from_tables(
            graph, config.p, config.q,
            {key: tables[key] for key in SecondOrderAliasSampler.TABLE_KEYS})
    else:
        kernel_kwargs = ({"p": config.p, "q": config.q}
                         if config.kernel in ("node2vec", "node2vec-alias")
                         else {})
        kernel = make_kernel(config.kernel, graph, **kernel_kwargs)
    return BatchWalkRunner(graph, cluster, config, kernel,
                           kernel.message_fields * BYTES_PER_FIELD,
                           tables=tables)


def _walk_worker_init(graph_handle, assignment_handle, num_machines,
                      walk_seed_root, config, sources_handle, paths_handle,
                      lengths_handle, table_handles) -> None:
    from repro.runtime.cluster import Cluster

    graph = attach_graph(graph_handle)
    cluster = Cluster(num_machines, attach_shared_array(assignment_handle),
                      seed=0)
    # The parity-critical piece of cluster state: walker stream keys must
    # derive from the parent's root, not this worker's placeholder seed.
    cluster.walk_seed_root = walk_seed_root
    _WORKER_STATE["walk_runner"] = _build_worker_runner(
        graph, cluster, config, table_handles)
    _WORKER_STATE["walk_sources"] = attach_shared_array(sources_handle)
    _WORKER_STATE["walk_paths"] = attach_shared_array(paths_handle)
    _WORKER_STATE["walk_lengths"] = attach_shared_array(lengths_handle)


def _walk_round_task(round_idx: int, lo: int, hi: int, n_total: int):
    from repro.runtime.metrics import ClusterMetrics
    from repro.walks.walker import WalkStats

    runner = _WORKER_STATE["walk_runner"]
    runner.cluster.metrics = ClusterMetrics(runner.cluster.num_machines)
    stats = WalkStats()
    walk_ids = round_idx * n_total + np.arange(lo, hi, dtype=np.int64)
    runner.run_walks(_WORKER_STATE["walk_sources"][lo:hi], walk_ids, stats,
                     paths_out=_WORKER_STATE["walk_paths"][lo:hi],
                     lengths_out=_WORKER_STATE["walk_lengths"][lo:hi])
    return stats.total_trials, stats.total_steps, runner.cluster.metrics


class ProcessWalkRunner:
    """Round runner fanning one round's walkers across worker processes.

    Mirrors :meth:`BatchWalkRunner.run_round`; the engine treats the two
    interchangeably.  The graph CSR, node assignment, walk sources, kernel
    tables and the per-round path/length output buffers all live in shared
    memory: per round, only the slice coordinates travel to the workers and
    only the scalar stat/metric deltas travel back.
    """

    def __init__(self, graph, cluster, config, kernel,
                 routine_message_bytes: int, sources: np.ndarray) -> None:
        del routine_message_bytes  # workers recompute it from the kernel
        self.cluster = cluster
        self.workers = resolved_worker_count(config.workers)
        n = int(sources.size)
        self._n = n
        cap = config.max_length if config.mode != "routine" else \
            config.walk_length
        self._group = _SharedGroup(
            backing=getattr(config, "backing", "shm"),
            spill_dir=getattr(config, "spill_dir", None))
        try:
            graph_handle = share_graph(self._group, graph)
            assignment_handle = self._group.share(cluster.assignment)
            sources_handle = self._group.share(
                np.asarray(sources, dtype=np.int64))
            self._paths = self._group.empty((n, cap), np.int64)
            self._lengths = self._group.empty((n,), np.int64)
            tables = _share_kernel_tables(self._group, graph, kernel)
            self._pool = ProcessExecutor(
                self.workers, initializer=_walk_worker_init,
                initargs=(graph_handle, assignment_handle,
                          cluster.num_machines, cluster.walk_seed_root,
                          config, sources_handle, self._paths.handle,
                          self._lengths.handle, tables))
        except BaseException:
            self._group.close()
            raise
        self._ranges = split_ranges(n, self.workers)

    def run_round(self, sources: np.ndarray, round_idx: int, corpus,
                  stats, walk_machines: List[int]) -> None:
        if sources.size != self._n:
            # Workers walk from the shared snapshot taken at construction;
            # a caller varying sources per round needs a fresh runner.
            raise ValueError(
                f"round sources ({sources.size}) do not match the shared "
                f"snapshot ({self._n}) this runner was built for"
            )
        results = self._pool.run(
            _walk_round_task,
            [(round_idx, lo, hi, self._n) for lo, hi in self._ranges])
        for trials, steps, metrics in results:
            stats.total_trials += trials
            stats.total_steps += steps
            self.cluster.metrics.merge(metrics)
        lengths = self._lengths.array
        corpus.add_walks(self._paths.array, lengths)
        stats.total_walks += int(lengths.size)
        stats.walk_lengths.extend(int(length) for length in lengths)
        walk_machines.extend(
            int(m) for m in self.cluster.assignment[sources])

    def close(self) -> None:
        self._pool.shutdown()
        self._group.close()

    def __enter__(self) -> "ProcessWalkRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Walk phase, streaming (the ``execution="pipeline"`` producer)
# --------------------------------------------------------------------- #


def _stream_walk_worker_init(graph_handle, num_machines, walk_seed_root,
                             config, sources_handle, slot_handles,
                             table_handles) -> None:
    from repro.runtime.cluster import Cluster

    graph = attach_graph(graph_handle)
    # Streaming workers run under deferred accounting, which never
    # consults the node placement (the partitioner may still be running);
    # a placeholder assignment keeps the runner's plumbing intact while
    # the parity-critical walk_seed_root is the parent's real root.
    cluster = Cluster(num_machines, np.zeros(graph.num_nodes, dtype=np.int64),
                      seed=0)
    cluster.walk_seed_root = walk_seed_root
    _WORKER_STATE["stream_runner"] = _build_worker_runner(
        graph, cluster, config, table_handles)
    _WORKER_STATE["stream_sources"] = attach_shared_array(sources_handle)
    _WORKER_STATE["stream_slots"] = [
        tuple(attach_shared_array(handle) for handle in slot)
        for slot in slot_handles
    ]


def _stream_walk_round_task(round_idx: int, lo: int, hi: int, n_total: int,
                            slot: int) -> int:
    from repro.walks.walker import WalkStats

    runner = _WORKER_STATE["stream_runner"]
    paths, lengths, trials = _WORKER_STATE["stream_slots"][slot]
    walk_ids = round_idx * n_total + np.arange(lo, hi, dtype=np.int64)
    # Deferred accounting: stats/metrics are reconstructed by the parent
    # from (paths, lengths, trials) once the assignment is known, so the
    # worker-side stats object is a discarded dummy.
    runner.run_walks(_WORKER_STATE["stream_sources"][lo:hi], walk_ids,
                     WalkStats(), paths_out=paths[lo:hi],
                     lengths_out=lengths[lo:hi], trials_out=trials[lo:hi])
    return slot


class StreamingWalkRunner:
    """Bounded-queue walk producer: samples rounds *ahead* of the consumer.

    The streaming counterpart of :class:`ProcessWalkRunner`: the same
    worker pool and shared-memory buffers, but instead of one
    round-per-barrier, up to ``depth`` rounds are in flight at once over a
    ring of round slots.  The parent consumes completed rounds strictly in
    round order (:meth:`next_round`), flushes them into the corpus, and
    recycles each slot with :meth:`release_round` -- which is what admits
    the next speculative round, so a slow consumer exerts backpressure and
    a fast one keeps every worker busy while it flushes.

    Walks are pure functions of ``(walk_seed_root, walk_id)`` under the
    walker RNG protocol, so rounds sampled speculatively past a KL stop
    are simply discarded without leaving a trace, and no round's bytes
    depend on how far ahead the producer ran.  Workers run the deferred-
    accounting mode of :meth:`BatchWalkRunner.run_walks`: per-step trial
    counts land in the slot's ``trials`` buffer and the parent
    reconstructs stats and cluster metrics exactly
    (:class:`repro.runtime.pipeline.DeferredWalkAccounting`) -- which also
    means the producer never needs the node assignment, freeing the
    partitioner to run concurrently.

    Failure semantics match the executor contract: the first worker
    exception surfaces from :meth:`next_round`, cancels everything in
    flight and releases the pool and shared segments.
    """

    def __init__(self, graph, num_machines: int, walk_seed_root: int,
                 config, kernel, sources: np.ndarray, max_rounds: int,
                 depth: Optional[int] = None) -> None:
        self.workers = resolved_worker_count(config.workers)
        n = int(sources.size)
        self._n = n
        self._max_rounds = int(max_rounds)
        self.depth = max(1, min(depth if depth is not None
                                else pipeline_depth(), self._max_rounds))
        cap = config.max_length if config.mode != "routine" else \
            config.walk_length
        self._group = _SharedGroup(
            backing=getattr(config, "backing", "shm"),
            spill_dir=getattr(config, "spill_dir", None))
        self._pool: Optional[ProcessPoolExecutor] = None
        try:
            graph_handle = share_graph(self._group, graph)
            sources_handle = self._group.share(
                np.asarray(sources, dtype=np.int64))
            self._slots = []
            slot_handles = []
            for _ in range(self.depth):
                paths = self._group.empty((n, cap), np.int64)
                lengths = self._group.empty((n,), np.int64)
                trials = self._group.empty((n, cap), np.int32)
                self._slots.append((paths, lengths, trials))
                slot_handles.append(
                    (paths.handle, lengths.handle, trials.handle))
            tables = _share_kernel_tables(self._group, graph, kernel)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_stream_walk_worker_init,
                initargs=(graph_handle, num_machines, walk_seed_root,
                          config, sources_handle, slot_handles, tables))
            self._ranges = split_ranges(n, self.workers)
            self._futures: Dict[int, List] = {}
            self._next_submit = 0
            self._next_consume = 0
            for _ in range(self.depth):
                self._submit_next()
        except BaseException:
            self.close()
            raise

    def _submit_next(self) -> None:
        if self._next_submit >= self._max_rounds or self._pool is None:
            return
        r = self._next_submit
        slot = r % self.depth
        self._futures[r] = [
            self._pool.submit(_stream_walk_round_task, r, lo, hi, self._n,
                              slot)
            for lo, hi in self._ranges
        ]
        self._next_submit += 1

    def next_round(self):
        """Block until the next in-order round is resident.

        Returns ``(paths, lengths, trials)`` views into the round's slot;
        they stay valid until :meth:`release_round` recycles the slot (the
        corpus flush compacts out of them, so nothing aliases past that).
        """
        r = self._next_consume
        if r >= self._max_rounds:
            raise RuntimeError(
                f"all {self._max_rounds} rounds already consumed")
        futures = self._futures.pop(r)
        try:
            for future in futures:
                future.result()
        except BaseException:
            self.close()
            raise
        self._next_consume += 1
        paths, lengths, trials = self._slots[r % self.depth]
        return paths.array, lengths.array, trials.array

    def release_round(self) -> None:
        """Recycle the last consumed round's slot (admits the next round)."""
        self._submit_next()

    def close(self) -> None:
        """Cancel in-flight rounds, shut the pool down, free the buffers."""
        if self._pool is not None:
            for futures in getattr(self, "_futures", {}).values():
                for future in futures:
                    future.cancel()
            self._futures = {}
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._group.close()

    def __enter__(self) -> "StreamingWalkRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Partition phase, asynchronous (pipeline overlap)
# --------------------------------------------------------------------- #


def _partition_child(conn, partitioner, graph, num_parts: int) -> None:
    try:
        conn.send((True, partitioner.partition(graph, num_parts)))
    except BaseException as exc:  # propagate to the parent's result()
        conn.send((False, exc))
    finally:
        conn.close()


class AsyncPartition:
    """A partitioner running on one worker process, joined later.

    Partition assignments are pure functions of ``(graph, partitioner
    config, seed)`` -- and walk corpora are pure functions of the walk
    seed root, never of the placement -- so the pipeline executor runs
    partitioning concurrently with walk sampling and joins the result
    only where the placement is first consumed (metric attribution and
    sub-corpus shards).  ``result()`` returns the exact
    :class:`~repro.partition.base.PartitionResult` a serial call would
    have produced, then releases the worker.

    Built on a raw ``multiprocessing.Process`` (not a pool) so that
    abandoning the join -- :meth:`close` on an error elsewhere in the
    pipeline -- can *terminate* a mid-run partition instead of letting
    an orphaned worker keep computing and block interpreter exit.
    """

    def __init__(self, partitioner, graph, num_parts: int) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context()
        self._recv, send = ctx.Pipe(duplex=False)
        self._proc: Optional[object] = ctx.Process(
            target=_partition_child, args=(send, partitioner, graph,
                                           num_parts), daemon=True)
        self._proc.start()
        send.close()

    def result(self):
        """Block until the partition is done; returns the PartitionResult."""
        if self._proc is None:
            raise RuntimeError("partition worker already released")
        try:
            try:
                ok, payload = self._recv.recv()
            except EOFError:
                raise RuntimeError(
                    "partition worker died without producing a result")
        finally:
            self.close()
        if not ok:
            raise payload
        return payload

    def close(self) -> None:
        """Release the worker; terminates it if the partition still runs."""
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join()
            self._recv.close()
            self._proc = None


def run_partition_async(partitioner, graph, num_parts: int) -> AsyncPartition:
    """Start ``partitioner.partition(graph, num_parts)`` on a worker."""
    return AsyncPartition(partitioner, graph, num_parts)


# --------------------------------------------------------------------- #
# Training phase
# --------------------------------------------------------------------- #


def _train_worker_init(phi_in_handle, phi_out_handle, vocab, config,
                       learner_name, backend, corpus_handles,
                       anchor_spec=None) -> None:
    from repro.embedding.negative import NegativeSampler

    _WORKER_STATE["train_phi_in"] = attach_shared_array(phi_in_handle)
    _WORKER_STATE["train_phi_out"] = attach_shared_array(phi_out_handle)
    _WORKER_STATE["train_vocab"] = vocab
    _WORKER_STATE["train_config"] = config
    _WORKER_STATE["train_sampler"] = NegativeSampler(vocab)
    _WORKER_STATE["train_backend"] = backend
    _WORKER_STATE["train_learner_name"] = learner_name
    _WORKER_STATE["train_learners"] = {}
    # Persona anchor (row-space matrix shared read-only + λ), or None.
    _WORKER_STATE["train_anchor"] = (
        None if anchor_spec is None
        else (attach_shared_array(anchor_spec[0]), anchor_spec[1]))
    if corpus_handles is not None:
        # Flat corpus + shard indices: attach once, the slice-descriptor
        # tasks rebuild their walk batches as views into these arrays.
        tokens, offsets, shard_flat, shard_offsets = corpus_handles
        _WORKER_STATE["corpus_tokens"] = attach_shared_array(tokens)
        _WORKER_STATE["corpus_offsets"] = attach_shared_array(offsets)
        _WORKER_STATE["shard_flat"] = attach_shared_array(shard_flat)
        _WORKER_STATE["shard_offsets"] = attach_shared_array(shard_offsets)


def _train_learner_for(machine: int):
    """The worker's cached learner for ``machine`` (built on first use)."""
    from repro.embedding.model import EmbeddingModel
    from repro.embedding.trainer import LEARNERS
    from repro.embedding.vectorized import VECTORIZED_LEARNERS

    learners: Dict[int, object] = _WORKER_STATE["train_learners"]
    learner = learners.get(machine)
    if learner is None:
        model = EmbeddingModel.__new__(EmbeddingModel)
        model.phi_in = _WORKER_STATE["train_phi_in"][machine]
        model.phi_out = _WORKER_STATE["train_phi_out"][machine]
        model.vocab = _WORKER_STATE["train_vocab"]
        model.dim = int(model.phi_in.shape[1])
        # "torch" shares the batched-learner registry: workers resolve
        # their array-ops from the (parent-validated) config, so a missing
        # torch install can never surface as an opaque worker crash here.
        registry = (VECTORIZED_LEARNERS
                    if _WORKER_STATE["train_backend"] in ("vectorized",
                                                          "torch")
                    else LEARNERS)
        # The generator argument is never consumed under the shared
        # protocol (negatives come from the counter stream; subsampling
        # happens in the parent) -- a fixed dummy keeps the signature.
        learner = registry[_WORKER_STATE["train_learner_name"]](
            model, _WORKER_STATE["train_sampler"],
            _WORKER_STATE["train_config"], np.random.default_rng(0),
            neg_stream=None)
        anchor = _WORKER_STATE.get("train_anchor")
        if anchor is not None:
            from repro.embedding.anchor import RowAnchor

            learner.anchor = RowAnchor(anchor[0], anchor[1])
        learners[machine] = learner
    return learner


def _train_slice_task(machine: int, walks, lr: float, key: int,
                      counter: int):
    """Train a pickled walk batch (the legacy payload; subsampled runs)."""
    from repro.utils.rng import CounterStream

    learner = _train_learner_for(machine)
    learner.neg_stream = CounterStream(key, counter)
    used = learner.train_walks(walks, lr)
    # Persona pull after the slice's SGNS updates -- identical order to
    # the serial path; consumes no negatives, so the counter is untouched.
    learner.apply_anchor(walks, lr)
    return machine, used, learner.neg_stream.counter


def _train_slice_range_task(machine: int, lo: int, hi: int, lr: float,
                            key: int, counter: int):
    """Train a slice described by a shard index range (zero-copy payload).

    The batch is rebuilt as views into the shared flat token block --
    walk ``shard[machine][j]`` for ``j`` in ``[lo, hi)``, empty walks
    skipped -- exactly the batch the parent's serial path materialises,
    so the descriptor protocol is a pure transport change.
    """
    tokens = _WORKER_STATE["corpus_tokens"]
    offsets = _WORKER_STATE["corpus_offsets"]
    base = int(_WORKER_STATE["shard_offsets"][machine])
    idx = _WORKER_STATE["shard_flat"][base + lo:base + hi]
    walks = [w for w in
             (tokens[offsets[j]:offsets[j + 1]] for j in idx) if w.size]
    return _train_slice_task(machine, walks, lr, key, counter)


class ProcessSliceTrainer:
    """Runs per-machine training slices on workers over shared replicas.

    The trainer repoints every replica's matrices into one shared-memory
    block ``(machines, vocab, dim)``; workers mutate their machine's block
    in place, the parent's sync strategy reads/writes the same pages
    between rounds.  Each machine's negative-stream counter is carried in
    the task messages, so any worker can train any machine's slice and the
    stream still advances exactly as in the serial interleaving.

    When a flat ``corpus`` + per-machine ``shards`` (walk-index arrays)
    are supplied, the token block, offsets and shard indices are copied
    into shared memory **once** and every sync round ships only
    ``(machine, lo, hi, lr, key, counter)`` slice descriptors -- a
    constant ~100 bytes per machine instead of the slice's pickled walks
    (the Table 3 IPC gate measures the reduction).  Without them (or when
    the parent subsamples walks) rounds fall back to pickled batches.

    ``ipc_task_bytes`` accumulates the pickled task bytes of descriptor
    rounds (always -- the tasks are ~100 bytes); pickled-batch fallback
    rounds tally theirs only under ``REPRO_IPC_AUDIT=1``, which avoids
    re-serialising whole batches just for accounting.  The audit flag
    additionally records ``ipc_batch_bytes`` -- what pickling the
    materialised batches would have cost -- which is how the IPC
    benchmark computes its reduction factor without re-deriving the
    slice plan.
    """

    def __init__(self, replicas, vocab, config, learner_name: str,
                 backend: str, neg_keys, corpus=None,
                 shards: Optional[Sequence[np.ndarray]] = None,
                 anchor=None) -> None:
        m = len(replicas)
        dim = int(replicas[0].phi_in.shape[1])
        self._group = _SharedGroup(
            backing=getattr(config, "backing", "shm"),
            spill_dir=getattr(config, "spill_dir", None))
        try:
            phi_in = self._group.empty((m, vocab.size, dim), np.float32)
            phi_out = self._group.empty((m, vocab.size, dim), np.float32)
            for i, replica in enumerate(replicas):
                phi_in.array[i] = replica.phi_in
                phi_out.array[i] = replica.phi_out
                replica.phi_in = phi_in.array[i]
                replica.phi_out = phi_out.array[i]
            corpus_handles = None
            self.ships_descriptors = corpus is not None and shards is not None
            if self.ships_descriptors:
                shard_flat = np.concatenate(
                    [np.asarray(s, dtype=np.int64) for s in shards])
                shard_offsets = np.zeros(len(shards) + 1, dtype=np.int64)
                np.cumsum([s.size for s in shards], out=shard_offsets[1:])
                if getattr(corpus, "is_spilled", False) and \
                        corpus.total_tokens:
                    # The corpus already lives on shareable .npy files:
                    # hand workers handles over those -- no O(corpus)
                    # copy into a second segment/file.
                    tokens_handle, offsets_handle = corpus.spill_handles()
                else:
                    tokens_handle = self._group.share(corpus.tokens)
                    offsets_handle = self._group.share(corpus.offsets)
                corpus_handles = (
                    tokens_handle,
                    offsets_handle,
                    self._group.share(shard_flat),
                    self._group.share(shard_offsets),
                )
            # Persona anchor matrix (row space) rides along read-only --
            # every worker pulls against the same shared bytes.
            anchor_spec = None
            if anchor is not None and anchor.lam > 0.0:
                anchor_spec = (self._group.share(anchor.matrix),
                               float(anchor.lam))
            self.workers = resolved_worker_count(config.workers)
            self._pool = ProcessExecutor(
                self.workers, initializer=_train_worker_init,
                initargs=(phi_in.handle, phi_out.handle, vocab, config,
                          learner_name, backend, corpus_handles,
                          anchor_spec))
        except BaseException:
            self._group.close()
            raise
        self._keys = [int(key) for key in neg_keys]
        self._counters = [0] * m
        self._audit = os.environ.get("REPRO_IPC_AUDIT", "") not in ("", "0")
        #: True when the IPC audit wants materialised batches in every
        #: plan (the trainer's lengths-only plan fast path checks this).
        self.audits = self._audit
        #: Pickled bytes of the per-round task messages actually shipped.
        self.ipc_task_bytes = 0
        #: Counterfactual pickled-batch bytes (only under REPRO_IPC_AUDIT).
        self.ipc_batch_bytes = 0
        self.ipc_rounds = 0

    def train_round(self, plans) -> Dict[int, int]:
        """Train one sync round's slices.

        ``plans`` = ``(machine, batch, lr, (lo, hi))`` where ``batch`` is
        the materialised walk list and ``(lo, hi)`` the slice's cursor
        range in the machine's shard -- descriptor-shipping runs send only
        the latter.  ``(lo, hi)`` may be ``None`` (subsampled batches have
        no shard range); those rounds always ship the batch.  Returns
        tokens used per machine, having advanced each machine's
        negative-stream counter to where the serial path would leave it.
        """
        import pickle

        ship_slices = self.ships_descriptors and \
            all(span is not None for _m, _b, _lr, span in plans)
        if ship_slices:
            fn = _train_slice_range_task
            tasks = [(machine, int(lo), int(hi), lr, self._keys[machine],
                      self._counters[machine])
                     for machine, _batch, lr, (lo, hi) in plans]
        else:
            fn = _train_slice_task
            tasks = [(machine, batch, lr, self._keys[machine],
                      self._counters[machine])
                     for machine, batch, lr, _span in plans]
        self.ipc_rounds += 1
        if ship_slices or self._audit:
            # Descriptor tasks are ~100 bytes, so this is free; for the
            # pickled-batch fallback the re-serialisation is real work and
            # only runs under the audit flag.
            self.ipc_task_bytes += sum(
                len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
                for task in tasks)
        if self._audit:
            self.ipc_batch_bytes += sum(
                len(pickle.dumps(
                    (machine, batch, lr, self._keys[machine],
                     self._counters[machine]),
                    protocol=pickle.HIGHEST_PROTOCOL))
                for machine, batch, lr, _span in plans)
        used: Dict[int, int] = {}
        for machine, tokens, counter in self._pool.run(fn, tasks):
            self._counters[machine] = counter
            used[machine] = tokens
        return used

    def ipc_stats(self) -> Dict[str, float]:
        """IPC accounting for :class:`TrainResult.extras` / the benches."""
        stats = {
            "ipc_rounds": float(self.ipc_rounds),
            "ipc_task_bytes": float(self.ipc_task_bytes),
        }
        if self._audit:
            stats["ipc_batch_bytes"] = float(self.ipc_batch_bytes)
        return stats

    def close(self) -> None:
        self._pool.shutdown()
        self._group.close()


# --------------------------------------------------------------------- #
# Partition phase
# --------------------------------------------------------------------- #


def _partition_worker_init(graph_handle, arc_handle, num_parts,
                           gamma) -> None:
    _WORKER_STATE["part_graph"] = attach_graph(graph_handle)
    _WORKER_STATE["part_arc"] = (None if arc_handle is None
                                 else attach_shared_array(arc_handle))
    _WORKER_STATE["part_num_parts"] = num_parts
    _WORKER_STATE["part_gamma"] = gamma


def _partition_segment_task(segment: np.ndarray) -> np.ndarray:
    from repro.partition.mpgp import _mpgp_stream

    part_of = _mpgp_stream(_WORKER_STATE["part_graph"], segment,
                           _WORKER_STATE["part_num_parts"],
                           _WORKER_STATE["part_gamma"],
                           arc_cm=_WORKER_STATE["part_arc"])
    return part_of[segment]


def run_partition_segments(graph, segments, num_parts: int, gamma: float,
                           arc_cm: Optional[np.ndarray],
                           workers: int, backing: str = "shm",
                           spill_dir: Optional[str] = None
                           ) -> List[np.ndarray]:
    """Partition parallel-MPGP's segments on worker processes.

    Returns each segment's per-node part labels (aligned with the segment
    order), exactly as the serial per-segment loop produces them --
    segments share no state, so the fan-out is a pure reordering.
    ``backing="mmap"`` ships the CSR + common-neighbour table as spill
    files instead of shm segments (same labels either way).
    """
    group = _SharedGroup(backing=backing, spill_dir=spill_dir)
    try:
        graph_handle = share_graph(group, graph)
        arc_handle = None if arc_cm is None else group.share(arc_cm)
        with ProcessExecutor(
                min(resolved_worker_count(workers), len(segments)),
                initializer=_partition_worker_init,
                initargs=(graph_handle, arc_handle, num_parts,
                          gamma)) as pool:
            return pool.run(_partition_segment_task,
                            [(segment,) for segment in segments])
    finally:
        group.close()
