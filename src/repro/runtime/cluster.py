"""The simulated cluster.

A :class:`Cluster` stands in for the paper's 8-machine testbed: it owns the
node→machine placement produced by a partitioner, per-machine RNG streams,
the metric counters, and the cost model that converts counters into a
simulated makespan.  All "distributed" components (walk engine, trainer)
take a cluster and record their work and traffic against it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.runtime.metrics import ClusterMetrics, CostModel
from repro.utils.rng import SeedLike, spawn_rngs, walker_seed_root


class Cluster:
    """A set of simulated machines with a node placement.

    Parameters
    ----------
    num_machines:
        Number of simulated machines (the paper uses 1-8).
    assignment:
        ``int64[num_nodes]`` machine id per graph node, as produced by any
        :mod:`repro.partition` partitioner.
    seed:
        Seed for the per-machine RNG streams.
    cost_model:
        Optional :class:`CostModel` override.
    """

    def __init__(
        self,
        num_machines: int,
        assignment: np.ndarray,
        seed: SeedLike = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_machines):
            raise ValueError("assignment references machines outside the cluster")
        self.num_machines = num_machines
        self.assignment = assignment
        self.metrics = ClusterMetrics(num_machines)
        self.cost_model = cost_model or CostModel()
        self.rngs: List[np.random.Generator] = spawn_rngs(seed, num_machines)
        # Root of the per-walker counter streams (the "walker" RNG protocol
        # of repro.utils.rng).  Derived after spawn_rngs so Generator seeds
        # keep producing the same per-machine streams as before.
        self.walk_seed_root: int = walker_seed_root(seed)

    # ------------------------------------------------------------------ #
    # Placement queries
    # ------------------------------------------------------------------ #

    def machine_of(self, node: int) -> int:
        """Machine hosting ``node`` (and its adjacency)."""
        return int(self.assignment[node])

    def is_local(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` live on the same machine."""
        return self.assignment[u] == self.assignment[v]

    def nodes_of(self, machine: int) -> np.ndarray:
        """All node ids placed on ``machine``."""
        return np.flatnonzero(self.assignment == machine)

    def partition_sizes(self) -> np.ndarray:
        """Node count per machine."""
        return np.bincount(self.assignment, minlength=self.num_machines)

    # ------------------------------------------------------------------ #
    # Cost reporting
    # ------------------------------------------------------------------ #

    def simulated_seconds(self) -> float:
        """Simulated makespan of everything recorded so far."""
        return self.cost_model.makespan(self.metrics)

    def reset_metrics(self) -> None:
        """Clear counters (placement and RNG streams are kept)."""
        self.metrics = ClusterMetrics(self.num_machines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = self.partition_sizes() if self.assignment.size else []
        return f"Cluster(machines={self.num_machines}, partition_sizes={list(sizes)})"
