"""Cross-machine walker messages and their byte-accurate sizes (paper §3.1).

The efficiency argument between HuGE-D and DistGER is partly a message-size
argument, so the simulator models it exactly:

* **KnightKing / node2vec** messages carry
  ``[walk_id, steps, node_id, prev_node_id]`` -- 4 × 8 B = **32 bytes**.
* **HuGE-D (full-path)** messages carry
  ``[walk_id, steps, node_id, path_info]`` -- **24 + 8·L bytes**, linear in
  the current walk length ``L``.
* **DistGER (InCoM)** messages carry
  ``[walker_id, steps, node_id, H, L, E(H), E(L), E(HL), E(H²), E(L²)]`` --
  a constant **80 bytes** regardless of walk length (Example 1: up to 8.3×
  smaller than HuGE-D at L = 80).

Each dataclass implements ``byte_size()`` with these formulas; the metrics
layer accumulates them whenever a walker hops machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

BYTES_PER_FIELD = 8


@dataclass
class WalkerMessage:
    """Base fields every walker message carries."""

    walk_id: int
    steps: int
    node_id: int

    def byte_size(self) -> int:  # pragma: no cover - abstract-ish
        raise NotImplementedError


@dataclass
class Node2VecMessage(WalkerMessage):
    """KnightKing-style second-order walk message: constant 32 bytes."""

    prev_node_id: int = -1

    def byte_size(self) -> int:
        return 4 * BYTES_PER_FIELD


@dataclass
class DeepWalkMessage(WalkerMessage):
    """First-order walk message: no previous node needed, 24 bytes."""

    def byte_size(self) -> int:
        return 3 * BYTES_PER_FIELD


@dataclass
class FullPathMessage(WalkerMessage):
    """HuGE-D message carrying the entire generated path: 24 + 8L bytes."""

    path: List[int] = field(default_factory=list)

    def byte_size(self) -> int:
        return 3 * BYTES_PER_FIELD + BYTES_PER_FIELD * len(self.path)


@dataclass
class IncrementalMessage(WalkerMessage):
    """DistGER InCoM message: constant-size incremental state, 80 bytes.

    Fields beyond the base three are the walk entropy ``H``, length ``L``
    and the five regression moments of Eq. 13.  ``entropy_s`` is the
    auxiliary ``Σ n log n`` accumulator; it rides in the same 8-byte slot
    budget as ``H`` (both derivable from one another given ``L``), so the
    wire size stays the paper's 10 fields × 8 B = 80 B.
    """

    entropy_h: float = 0.0
    entropy_s: float = 0.0
    length: int = 0
    e_h: float = 0.0
    e_l: float = 0.0
    e_hl: float = 0.0
    e_h2: float = 0.0
    e_l2: float = 0.0

    def byte_size(self) -> int:
        return 10 * BYTES_PER_FIELD


@dataclass
class SyncMessage:
    """Model-synchronisation payload between learner machines.

    ``num_vectors`` embedding rows of ``dim`` float32 entries plus the row
    ids.  Used by both full-model sync and hotness-block sync so the
    network-load comparison (§4.2, Improvement-III) is like-for-like.
    """

    num_vectors: int
    dim: int

    def byte_size(self) -> int:
        return self.num_vectors * (self.dim * 4 + BYTES_PER_FIELD)


def message_size_ratio(walk_length: int) -> float:
    """DistGER-vs-HuGE-D message size advantage at a given walk length.

    ``(24 + 8L) / 80`` -- e.g. 8.3× at the routine L = 80 (Example 1).
    """
    full = FullPathMessage(0, walk_length, 0, path=list(range(walk_length)))
    inc = IncrementalMessage(0, walk_length, 0)
    return full.byte_size() / inc.byte_size()


def incremental_state_to_message(
    walk_id: int,
    steps: int,
    node_id: int,
    entropy_state: Tuple[int, float],
    entropy_value: float,
    moments: Tuple[float, float, float, float, float, int],
) -> IncrementalMessage:
    """Pack walker-carried InCoM state into a wire message."""
    length, s = entropy_state
    e_h, e_l, e_hl, e_h2, e_l2, _count = moments
    return IncrementalMessage(
        walk_id=walk_id,
        steps=steps,
        node_id=node_id,
        entropy_h=entropy_value,
        entropy_s=s,
        length=length,
        e_h=e_h,
        e_l=e_l,
        e_hl=e_hl,
        e_h2=e_h2,
        e_l2=e_l2,
    )
