"""Topology-aware cost models: stragglers and rack-level networks.

The paper's testbed is homogeneous (8 identical machines, one flat
100 Gbps switch), and :class:`repro.runtime.metrics.CostModel` mirrors
that.  Real deployments are messier in two ways that interact directly
with DistGER's design claims:

* **Stragglers** -- machines with different effective speeds.  The BSP
  supersteps run at the pace of the slowest machine, which is why MPGP's
  dynamic load-balancing term (Eq. 15) matters:
  :class:`HeterogeneousCostModel` prices per-machine work against
  per-machine speed factors.
* **Oversubscribed racks** -- inter-rack bandwidth below intra-rack
  bandwidth.  Cross-machine messages are not all equal: traffic that
  stays inside a rack is cheap.  :class:`RackTopologyCostModel` prices
  the per-pair byte matrix (recorded by the BSP engine) against a
  two-tier network, which makes MPGP's 45% message reduction (Fig. 10(c))
  worth *more* than on a flat switch.

Both models are drop-in replacements for ``CostModel`` on a
:class:`repro.runtime.cluster.Cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.runtime.metrics import ClusterMetrics, CostModel


def rack_assignment(num_machines: int, num_racks: int) -> List[int]:
    """Contiguous machine→rack mapping (machines per rack as equal as
    possible); the conventional placement for sequential machine ids."""
    if num_machines <= 0:
        raise ValueError(f"num_machines must be positive, got {num_machines}")
    if num_racks <= 0:
        raise ValueError(f"num_racks must be positive, got {num_racks}")
    if num_racks > num_machines:
        raise ValueError("cannot have more racks than machines")
    return [min(m * num_racks // num_machines, num_racks - 1)
            for m in range(num_machines)]


@dataclass(frozen=True)
class HeterogeneousCostModel(CostModel):
    """A cluster whose machines run at different speeds.

    ``speed_factors[m]`` multiplies the base ``compute_rate`` for machine
    ``m`` (1.0 = nominal, 0.5 = half-speed straggler).  The makespan's
    compute term becomes the *slowest-weighted* machine rather than the
    busiest, so a balanced partition on an imbalanced cluster still
    straggles -- the deployment reality MPGP's γ slack trades against.
    """

    speed_factors: Sequence[float] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.speed_factors:
            raise ValueError("speed_factors must name every machine")
        if any(f <= 0 for f in self.speed_factors):
            raise ValueError("speed factors must be positive")

    def compute_seconds(self, metrics: ClusterMetrics) -> float:
        if metrics.num_machines != len(self.speed_factors):
            raise ValueError(
                f"cost model covers {len(self.speed_factors)} machines, "
                f"metrics cover {metrics.num_machines}"
            )
        return max(
            units / (self.compute_rate * factor)
            for units, factor in zip(metrics.compute_units,
                                     self.speed_factors)
        )

    def makespan(self, metrics: ClusterMetrics) -> float:
        network_time = (
            metrics.total_bytes / self.bandwidth
            + (metrics.messages_sent + metrics.sync_messages) * self.latency
        )
        return self.compute_seconds(metrics) + network_time


@dataclass(frozen=True)
class RackTopologyCostModel(CostModel):
    """Two-tier network: fast intra-rack links, oversubscribed core.

    ``racks[m]`` is machine ``m``'s rack.  Walker traffic recorded with
    endpoints (the BSP engine always provides them) is split into
    intra-rack bytes priced at ``bandwidth`` and inter-rack bytes priced
    at ``bandwidth / oversubscription``.  Traffic without endpoint
    information -- model synchronisation broadcasts and any legacy
    recording -- is priced at the inter-rack rate, the conservative
    choice for all-to-all exchanges.
    """

    racks: Sequence[int] = field(default_factory=tuple)
    oversubscription: float = 4.0

    def __post_init__(self) -> None:
        if not self.racks:
            raise ValueError("racks must name every machine")
        if min(self.racks) < 0:
            raise ValueError("rack ids must be non-negative")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    def split_bytes(self, metrics: ClusterMetrics) -> tuple:
        """``(intra_rack_bytes, inter_rack_bytes)`` of all recorded traffic."""
        if metrics.num_machines != len(self.racks):
            raise ValueError(
                f"cost model covers {len(self.racks)} machines, "
                f"metrics cover {metrics.num_machines}"
            )
        intra = 0
        inter = 0
        matrix = metrics.message_byte_matrix
        for src in range(metrics.num_machines):
            for dst in range(metrics.num_machines):
                if self.racks[src] == self.racks[dst]:
                    intra += matrix[src][dst]
                else:
                    inter += matrix[src][dst]
        # Bytes recorded without endpoints (sync broadcasts) cross the core.
        unattributed = metrics.total_bytes - intra - inter
        return intra, inter + max(0, unattributed)

    def network_seconds(self, metrics: ClusterMetrics) -> float:
        intra, inter = self.split_bytes(metrics)
        return (
            intra / self.bandwidth
            + inter / (self.bandwidth / self.oversubscription)
            + (metrics.messages_sent + metrics.sync_messages) * self.latency
        )

    def makespan(self, metrics: ClusterMetrics) -> float:
        return self.compute_seconds(metrics) + self.network_seconds(metrics)
