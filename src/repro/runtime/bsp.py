"""Bulk Synchronous Parallel superstep loop (Valiant [56], paper §2.2).

KnightKing coordinates walkers with BSP: in each superstep every machine
advances its resident walkers; walkers that hop to a node on another machine
become messages delivered at the start of the next superstep.  This module
implements that loop generically so all three walk modes (node2vec routine,
HuGE-D full-path, DistGER InCoM) share identical scheduling and differ only
in their per-step kernels and message payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from repro.runtime.cluster import Cluster

Item = TypeVar("Item")

#: A step function outcome: ``None`` terminates the item; otherwise
#: ``(destination_machine, item, message_bytes)`` re-enqueues it.  A zero
#: ``message_bytes`` with an unchanged machine means "continue locally"
#: (the engine does not count a message for it).
StepResult = Optional[Tuple[int, Item, int]]


@dataclass
class SuperstepRecord:
    """What happened during one superstep (the BSP trace unit)."""

    #: items resident per machine at the start of the superstep.
    items_per_machine: List[int]
    #: items that terminated during the superstep.
    completed: int
    #: cross-machine messages emitted during the superstep.
    messages: int

    @property
    def active_items(self) -> int:
        return sum(self.items_per_machine)

    @property
    def machine_imbalance(self) -> float:
        """Max/mean resident items; the BSP straggler indicator."""
        total = self.active_items
        if total == 0:
            return 1.0
        mean = total / len(self.items_per_machine)
        return max(self.items_per_machine) / mean


@dataclass
class BSPStats:
    """Scheduling statistics of one BSP run."""

    supersteps: int = 0
    items_completed: int = 0
    messages_delivered: int = 0
    #: per-superstep records when tracing is enabled (engine option).
    trace: List[SuperstepRecord] = None  # type: ignore[assignment]


class BSPEngine(Generic[Item]):
    """Runs items (walkers) to completion over a simulated cluster.

    The per-item ``advance`` callable keeps stepping an item while it stays
    on its current machine and returns a :data:`StepResult` when the item
    either terminates (``None``) or must migrate (destination machine plus
    the wire size of the walker message).
    """

    def __init__(self, cluster: Cluster, trace: bool = False) -> None:
        self.cluster = cluster
        self.stats = BSPStats()
        if trace:
            self.stats.trace = []

    def run(
        self,
        initial: List[Tuple[int, Item]],
        advance: Callable[[int, Item], StepResult],
        max_supersteps: int = 1_000_000,
    ) -> BSPStats:
        """Drive all items to completion.

        Parameters
        ----------
        initial:
            ``(machine, item)`` seeds, typically one walker per source node
            placed on the machine owning that node.
        advance:
            The per-item kernel; called as ``advance(machine, item)``.
        max_supersteps:
            Safety valve against non-terminating kernels.
        """
        queues: List[List[Item]] = [[] for _ in range(self.cluster.num_machines)]
        for machine, item in initial:
            queues[machine].append(item)

        metrics = self.cluster.metrics
        for _ in range(max_supersteps):
            if not any(queues):
                break
            self.stats.supersteps += 1
            step_completed = 0
            step_messages = 0
            items_per_machine = [len(q) for q in queues]
            next_queues: List[List[Item]] = [[] for _ in range(self.cluster.num_machines)]
            for machine, queue in enumerate(queues):
                for item in queue:
                    result = advance(machine, item)
                    while result is not None:
                        dest, moved, n_bytes = result
                        if dest == machine and n_bytes == 0:
                            # Kernel yielded control without leaving the
                            # machine; keep advancing within the superstep.
                            result = advance(machine, moved)
                            continue
                        metrics.record_message(n_bytes, src=machine, dst=dest)
                        self.stats.messages_delivered += 1
                        step_messages += 1
                        next_queues[dest].append(moved)
                        break
                    else:
                        self.stats.items_completed += 1
                        step_completed += 1
            if self.stats.trace is not None:
                self.stats.trace.append(SuperstepRecord(
                    items_per_machine=items_per_machine,
                    completed=step_completed,
                    messages=step_messages,
                ))
            queues = next_queues
        else:
            raise RuntimeError(
                f"BSP did not converge within {max_supersteps} supersteps"
            )
        return self.stats
