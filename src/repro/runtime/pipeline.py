"""Streaming dataflow for ``execution="pipeline"`` (walk→train overlap).

The phased executors of :mod:`repro.runtime.executor` run the three
pipeline phases behind hard barriers: partition, then every walk round
(sample on workers, flush in the parent), then training.  Real DistGER's
headline system win is *overlapping* these stages -- walks stream to the
trainer as they are produced (Fang et al., VLDB 2023 §5) -- and this
module is the reproduction's equivalent: a streaming coordinator built on
two facts the counter-based RNG protocols already guarantee:

* **Walk corpora never depend on the node placement.**  Walker streams
  are keyed by ``(walk seed root, walk_id)`` only, so the partitioner can
  run concurrently with sampling on its own worker
  (:class:`~repro.runtime.executor.AsyncPartition`) and join exactly
  where the placement is first consumed: metric attribution and
  sub-corpus shard construction.

* **Metrics are a pure function of the sampled paths.**  Workers record
  per-step trial counts instead of metric increments
  (:meth:`BatchWalkRunner.run_walks` deferred accounting), and
  :class:`DeferredWalkAccounting` reconstructs trials, steps, compute
  units and per-pair message traffic bit-for-bit once the assignment
  arrives -- every increment is an integer-valued float, so the late,
  batched reconstruction lands on the serial counters exactly.

Within the walk phase, the bounded round queue of
:class:`~repro.runtime.executor.StreamingWalkRunner` keeps workers
sampling round ``k+1`` while the parent flushes round ``k`` into the flat
corpus; rounds sampled speculatively past a KL stop are discarded without
a trace.  The training phase consumes the finished block through the same
shared-memory slice descriptors as ``execution="process"``; its
consumption is gated by :class:`repro.walks.corpus.CorpusFeed` readiness
(the ``shared`` RNG protocol's frequency-ordered vocabulary and unigram
negative table are global corpus statistics, so the feed's *finished*
event is the earliest point slice training may start without changing a
byte -- see docs/ARCHITECTURE.md for the dependency analysis).

The result is byte-identical to ``execution="process"`` and
``"serial"`` -- corpora, stats, metrics, assignments and embeddings --
with wall-clock improvements from partition/sampling overlap and
flush/sampling overlap (``benchmarks/bench_fig5_pipeline_overlap.py``
gates the end-to-end speedup; ``tests/test_runtime_executor_parity.py``
pins the bytes).

``backing="mmap"`` composes orthogonally with the overlap: the walk
engine spills the corpus before the first round, so every streamed
flush drains into the file-backed block and its pages are dropped from
the parent's residency; the runners' shared groups (CSR, kernel tables)
spill the same way.  The backing is a pure transport choice -- nothing
in the dataflow above observes it, so the byte-parity argument is
unchanged (``tests/test_ooc_backing.py`` pins pipeline×mmap against
serial×shm).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.runtime.executor import run_partition_async
from repro.utils.timer import Timer

__all__ = [
    "DeferredWalkAccounting",
    "run_pipelined_sampling",
]


class DeferredWalkAccounting:
    """Exact walk-phase accounting reconstructed after the fact.

    The in-loop accounting of :meth:`BatchWalkRunner.run_walks` credits,
    at the machine a walker currently occupies: one compute unit per
    sampling trial, one local step (plus one InCoM measurement unit in
    the information-oriented modes) per accepted step, and one
    ``message_bytes``-sized message per machine-crossing step.  All of it
    is determined by *which node* each trial/step happened at and *which
    arc* each step traversed -- so this class aggregates rounds into three
    placement-free arrays (trials per node, steps per node, traversals
    per stored arc) and maps them onto machines in one pass once the
    assignment is known.  Every counter is an integer-valued float, so
    the batched late application equals the serial increment-by-increment
    accounting bit for bit (pinned by the pipeline parity suite).
    """

    def __init__(self, graph, info_mode: bool, message_bytes: int) -> None:
        self._graph = graph
        self.info_mode = info_mode
        self.message_bytes = int(message_bytes)
        self._trials_at_node = np.zeros(graph.num_nodes, dtype=np.int64)
        self._steps_at_node = np.zeros(graph.num_nodes, dtype=np.int64)
        self._arc_traversals = np.zeros(graph.num_stored_edges,
                                        dtype=np.int64)

    def observe_round(self, paths: np.ndarray, lengths: np.ndarray,
                      trials: np.ndarray) -> Tuple[int, int]:
        """Fold one round's buffers in; returns ``(trials, steps)`` totals.

        ``paths``/``lengths``/``trials`` are the round-slot buffers of
        :class:`~repro.runtime.executor.StreamingWalkRunner`: step ``s`` of
        walk ``i`` moved from ``paths[i, s-1]`` to ``paths[i, s]`` and cost
        ``trials[i, s]`` sampling trials at the former node.
        """
        from repro.walks.vectorized import _locate_in_rows

        n, cap = paths.shape
        if n == 0 or cap <= 1:
            return 0, 0
        # Positions 1..len-1 of every walk: the step that filled them.
        valid = np.arange(1, cap)[None, :] < lengths[:, None]
        prev = paths[:, :-1][valid]
        if prev.size == 0:
            return 0, 0
        nxt = paths[:, 1:][valid]
        step_trials = trials[:, 1:][valid].astype(np.int64)
        num_nodes = self._graph.num_nodes
        self._trials_at_node += np.bincount(
            prev, weights=step_trials, minlength=num_nodes).astype(np.int64)
        self._steps_at_node += np.bincount(prev, minlength=num_nodes)
        # Flat arc index of each traversed (prev -> nxt) edge: adjacency
        # rows are sorted, so one vectorised bisection finds them all.
        pos = _locate_in_rows(self._graph.indptr, self._graph.indices,
                              prev, nxt)
        self._arc_traversals += np.bincount(
            self._graph.indptr[prev] + pos,
            minlength=self._graph.num_stored_edges)
        return int(step_trials.sum()), int(prev.size)

    def apply(self, assignment: np.ndarray, metrics) -> None:
        """Credit everything observed so far against ``assignment``."""
        m = metrics.num_machines
        trials_m = np.bincount(assignment, weights=self._trials_at_node,
                               minlength=m)
        steps_m = np.bincount(assignment, weights=self._steps_at_node,
                              minlength=m)
        for machine in np.flatnonzero(trials_m):
            # One compute unit per sampling trial.
            metrics.record_compute(int(machine), float(trials_m[machine]))
        for machine in np.flatnonzero(steps_m):
            metrics.record_local_step(int(machine), int(steps_m[machine]))
            if self.info_mode:
                # InCoM measurement cost: O(1) per accepted step.
                metrics.record_compute(int(machine), float(steps_m[machine]))
        graph = self._graph
        u_of_arc = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                             graph.degrees)
        src = assignment[u_of_arc]
        dst = assignment[graph.indices]
        crossing = (src != dst) & (self._arc_traversals > 0)
        if crossing.any():
            pair = src[crossing] * m + dst[crossing]
            counts = np.bincount(pair,
                                 weights=self._arc_traversals[crossing],
                                 minlength=m * m)
            for p in np.flatnonzero(counts):
                c = int(counts[p])
                metrics.record_messages(c, c * self.message_bytes,
                                        src=int(p // m), dst=int(p % m))


def run_pipelined_sampling(graph, partitioner, num_machines: int,
                           walk_config, cluster_seed,
                           timer: Optional[Timer] = None):
    """Run partition ∥ walk sampling as one overlapped dataflow.

    The system-level entry point behind ``execution="pipeline"``
    (:class:`repro.systems.walk_systems.RandomWalkSystem`): the
    partitioner runs on its own worker process while the walk engine
    streams rounds through the bounded queue; the partition is joined
    after the last flush, where the placement is first needed (metric
    attribution, ``walk_machines``).  Returns ``(partition, cluster,
    walk_result)`` -- byte-identical to the phased
    ``partition → Cluster → engine.run()`` sequence.

    Timer attribution keeps ``timer.total`` equal to real wall time
    despite the overlap: ``"sampling"`` covers the streamed span and
    ``"partition"`` only the non-overlapped remainder (the join wait);
    the partitioner's own wall time is still reported in
    ``PartitionResult.seconds``.
    """
    from repro.runtime.cluster import Cluster
    from repro.walks.engine import DistributedWalkEngine

    async_part = run_partition_async(partitioner, graph, num_machines)
    outcome = {}
    join_wait = [0.0]

    def partition_join() -> np.ndarray:
        wait_start = time.perf_counter()
        result = async_part.result()
        join_wait[0] = time.perf_counter() - wait_start
        outcome["partition"] = result
        return np.asarray(result.assignment, dtype=np.int64)

    try:
        # The placeholder assignment is never consulted: walker streams
        # derive from the seed alone, and the engine installs the joined
        # partition before anything placement-dependent runs.
        cluster = Cluster(num_machines,
                          np.zeros(graph.num_nodes, dtype=np.int64),
                          seed=cluster_seed)
        engine = DistributedWalkEngine(graph, cluster, walk_config)
        span_start = time.perf_counter()
        walk_result = engine.run(partition_join=partition_join)
        span = time.perf_counter() - span_start
    finally:
        async_part.close()
    if timer is not None:
        timer.add("partition", join_wait[0])
        timer.add("sampling", max(0.0, span - join_wait[0]))
    return outcome["partition"], cluster, walk_result
