"""Metric counters for the simulated cluster.

The paper's efficiency claims decompose into (a) per-machine computation,
(b) cross-machine message counts and bytes, and (c) synchronisation traffic.
:class:`ClusterMetrics` counts all three; :class:`CostModel` turns the
counts into a simulated makespan so experiments can report machine-count
scaling (Fig. 6) deterministically, independent of the host's Python speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ClusterMetrics:
    """Accumulated work and traffic of one simulated run."""

    num_machines: int
    compute_units: List[float] = field(default_factory=list)
    local_steps: List[int] = field(default_factory=list)
    messages_sent: int = 0
    message_bytes: int = 0
    sync_messages: int = 0
    sync_bytes: int = 0
    peak_memory_bytes: List[int] = field(default_factory=list)
    #: bytes sent per (src, dst) machine pair, when callers provide the
    #: endpoints -- the input of the rack-topology cost models.
    message_byte_matrix: List[List[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        m = self.num_machines
        if m <= 0:
            raise ValueError(f"num_machines must be positive, got {m}")
        if not self.compute_units:
            self.compute_units = [0.0] * m
        if not self.local_steps:
            self.local_steps = [0] * m
        if not self.peak_memory_bytes:
            self.peak_memory_bytes = [0] * m
        if not self.message_byte_matrix:
            self.message_byte_matrix = [[0] * m for _ in range(m)]

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_compute(self, machine: int, units: float) -> None:
        """Credit ``units`` of computational work to ``machine``."""
        self.compute_units[machine] += units

    def record_local_step(self, machine: int, count: int = 1) -> None:
        """Count walk steps processed locally on ``machine``."""
        self.local_steps[machine] += count

    def record_message(self, n_bytes: int, src: int | None = None,
                       dst: int | None = None) -> None:
        """Count one cross-machine walker message of ``n_bytes``.

        When the caller knows the endpoints it should pass ``src``/``dst``
        so topology-aware cost models can price intra- vs inter-rack
        traffic differently; endpoint-free recording remains valid and
        simply leaves the pair matrix untouched.
        """
        self.messages_sent += 1
        self.message_bytes += n_bytes
        if src is not None and dst is not None:
            self.message_byte_matrix[src][dst] += n_bytes

    def record_messages(self, count: int, total_bytes: int,
                        src: int | None = None, dst: int | None = None) -> None:
        """Batched form of :meth:`record_message`: ``count`` messages of
        ``total_bytes`` combined size between one (src, dst) pair.

        Lets the vectorized walk engine account a whole superstep's traffic
        with one call per machine pair while producing counters identical
        to per-message recording.
        """
        self.messages_sent += count
        self.message_bytes += total_bytes
        if src is not None and dst is not None:
            self.message_byte_matrix[src][dst] += total_bytes

    def record_sync(self, n_bytes: int, n_messages: int = 1) -> None:
        """Count model-synchronisation traffic."""
        self.sync_messages += n_messages
        self.sync_bytes += n_bytes

    def record_memory(self, machine: int, n_bytes: int) -> None:
        """Track the peak resident bytes observed on ``machine``."""
        if n_bytes > self.peak_memory_bytes[machine]:
            self.peak_memory_bytes[machine] = n_bytes

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def total_compute(self) -> float:
        return sum(self.compute_units)

    @property
    def max_compute(self) -> float:
        return max(self.compute_units) if self.compute_units else 0.0

    @property
    def total_local_steps(self) -> int:
        return sum(self.local_steps)

    @property
    def total_bytes(self) -> int:
        return self.message_bytes + self.sync_bytes

    @property
    def compute_imbalance(self) -> float:
        """Max/mean compute ratio: 1.0 means perfectly balanced."""
        total = self.total_compute
        if total <= 0:
            return 1.0
        mean = total / self.num_machines
        return self.max_compute / mean

    def merge(self, other: "ClusterMetrics") -> None:
        """Fold another run's counters into this one (same cluster size)."""
        if other.num_machines != self.num_machines:
            raise ValueError("cannot merge metrics from different cluster sizes")
        for m in range(self.num_machines):
            self.compute_units[m] += other.compute_units[m]
            self.local_steps[m] += other.local_steps[m]
            self.peak_memory_bytes[m] = max(
                self.peak_memory_bytes[m], other.peak_memory_bytes[m]
            )
            for d in range(self.num_machines):
                self.message_byte_matrix[m][d] += other.message_byte_matrix[m][d]
        self.messages_sent += other.messages_sent
        self.message_bytes += other.message_bytes
        self.sync_messages += other.sync_messages
        self.sync_bytes += other.sync_bytes

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_machines": self.num_machines,
            "total_compute": self.total_compute,
            "max_compute": self.max_compute,
            "compute_imbalance": self.compute_imbalance,
            "messages_sent": self.messages_sent,
            "message_bytes": self.message_bytes,
            "sync_messages": self.sync_messages,
            "sync_bytes": self.sync_bytes,
            "total_local_steps": self.total_local_steps,
        }


@dataclass(frozen=True)
class CostModel:
    """Turns metric counters into a simulated makespan.

    ``compute_rate`` is work-units per second per machine, ``bandwidth`` is
    bytes per second of the interconnect, ``latency`` is per-message
    overhead.  Defaults are calibrated so walk steps and message costs are
    on the same order as the paper's 100 Gbps / 72-core testbed *relative to
    each other* -- only ratios matter for the reproduced figures.
    """

    compute_rate: float = 5.0e6
    bandwidth: float = 1.25e9
    latency: float = 2.0e-6

    def makespan(self, metrics: ClusterMetrics) -> float:
        """Simulated end-to-end seconds: slowest machine + network time."""
        compute_time = metrics.max_compute / self.compute_rate
        network_time = (
            metrics.total_bytes / self.bandwidth
            + (metrics.messages_sent + metrics.sync_messages) * self.latency
        )
        return compute_time + network_time

    def compute_seconds(self, metrics: ClusterMetrics) -> float:
        return metrics.max_compute / self.compute_rate

    def network_seconds(self, metrics: ClusterMetrics) -> float:
        return self.makespan(metrics) - self.compute_seconds(metrics)
