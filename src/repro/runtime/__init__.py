"""Simulated distributed runtime.

Stands in for the paper's 8-machine cluster: machine placement, BSP walker
scheduling, byte-accurate message accounting and a cost model that converts
operation/traffic counts into a simulated makespan.  See DESIGN.md §1 for
why this substitution preserves the paper's efficiency comparisons.
"""

from repro.runtime.bsp import BSPEngine, BSPStats, SuperstepRecord
from repro.runtime.cluster import Cluster
from repro.runtime.executor import (
    ProcessExecutor,
    SharedArray,
    SharedArrayHandle,
    attach_shared_array,
    resolve_execution,
    resolved_worker_count,
)
from repro.runtime.message import (
    DeepWalkMessage,
    FullPathMessage,
    IncrementalMessage,
    Node2VecMessage,
    SyncMessage,
    WalkerMessage,
    message_size_ratio,
)
from repro.runtime.metrics import ClusterMetrics, CostModel
from repro.runtime.topology import (
    HeterogeneousCostModel,
    RackTopologyCostModel,
    rack_assignment,
)

__all__ = [
    "BSPEngine",
    "BSPStats",
    "Cluster",
    "ClusterMetrics",
    "CostModel",
    "ProcessExecutor",
    "SharedArray",
    "SharedArrayHandle",
    "attach_shared_array",
    "resolve_execution",
    "resolved_worker_count",
    "DeepWalkMessage",
    "FullPathMessage",
    "HeterogeneousCostModel",
    "IncrementalMessage",
    "Node2VecMessage",
    "RackTopologyCostModel",
    "SuperstepRecord",
    "SyncMessage",
    "WalkerMessage",
    "message_size_ratio",
    "rack_assignment",
]
