"""Distributed runtime: the simulated cluster and the real executors.

Two layers live here.  The *simulated* layer stands in for the paper's
8-machine cluster: machine placement, BSP walker scheduling, byte-accurate
message accounting and a cost model that converts operation/traffic counts
into a simulated makespan (see DESIGN.md §1 for why this substitution
preserves the paper's efficiency comparisons).  The *execution* layer
makes the pipeline phases actually run on multiple OS processes:
:mod:`repro.runtime.executor` hosts the phased ``execution="process"``
backends (shared-memory buffers, slice descriptors) and the streaming
building blocks, and :mod:`repro.runtime.pipeline` composes them into the
``execution="pipeline"`` dataflow (partition ∥ sampling, round flushes ∥
the next round, readiness-gated training) -- all byte-identical to serial
execution under the counter-based RNG protocols.
"""

from repro.runtime.bsp import BSPEngine, BSPStats, SuperstepRecord
from repro.runtime.cluster import Cluster
from repro.runtime.executor import (
    ProcessExecutor,
    SharedArray,
    SharedArrayHandle,
    attach_shared_array,
    resolve_execution,
    resolved_worker_count,
)
from repro.runtime.message import (
    DeepWalkMessage,
    FullPathMessage,
    IncrementalMessage,
    Node2VecMessage,
    SyncMessage,
    WalkerMessage,
    message_size_ratio,
)
from repro.runtime.metrics import ClusterMetrics, CostModel
from repro.runtime.topology import (
    HeterogeneousCostModel,
    RackTopologyCostModel,
    rack_assignment,
)

__all__ = [
    "BSPEngine",
    "BSPStats",
    "Cluster",
    "ClusterMetrics",
    "CostModel",
    "ProcessExecutor",
    "SharedArray",
    "SharedArrayHandle",
    "attach_shared_array",
    "resolve_execution",
    "resolved_worker_count",
    "DeepWalkMessage",
    "FullPathMessage",
    "HeterogeneousCostModel",
    "IncrementalMessage",
    "Node2VecMessage",
    "RackTopologyCostModel",
    "SuperstepRecord",
    "SyncMessage",
    "WalkerMessage",
    "message_size_ratio",
    "rack_assignment",
]
