"""Hyper-parameter search (the paper's effectiveness protocol, §6.1).

    "For task effectiveness evaluations, we find the best results from a
    grid search over learning rates from 0.001-0.1, # epochs from 1-30,
    and # dimensions from 128-512."

:class:`ParameterGrid` enumerates a cartesian product of named parameter
lists; :func:`grid_search` scores each combination with a user objective
and reports every trial plus the winner.  The objective factories build
the two protocols the paper grid-searches -- link prediction and
multi-label classification -- around any of the reproduced systems.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.tasks.classification import evaluate_classification
from repro.tasks.link_prediction import auc_from_split
from repro.tasks.split import split_edges
from repro.utils.rng import SeedLike, derive_seed


class ParameterGrid:
    """Cartesian product of named parameter value lists.

    Iterates deterministically in the insertion order of ``grid``'s keys,
    last key varying fastest (like sklearn's ``ParameterGrid``).
    """

    def __init__(self, grid: Mapping[str, Sequence]) -> None:
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for key, values in grid.items():
            if isinstance(values, (str, bytes)) or not hasattr(values, "__len__"):
                raise TypeError(f"grid[{key!r}] must be a sequence of values")
            if len(values) == 0:
                raise ValueError(f"grid[{key!r}] must not be empty")
        self._keys = list(grid.keys())
        self._values = [list(grid[k]) for k in self._keys]

    def __len__(self) -> int:
        out = 1
        for values in self._values:
            out *= len(values)
        return out

    def __iter__(self) -> Iterator[Dict]:
        for combo in itertools.product(*self._values):
            yield dict(zip(self._keys, combo))


@dataclass
class Trial:
    """One grid point: the parameters tried, its score and its cost."""

    params: Dict
    score: float
    seconds: float


@dataclass
class GridSearchReport:
    """All trials of a grid search, ordered as enumerated."""

    trials: List[Trial] = field(default_factory=list)
    maximize: bool = True

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise ValueError("grid search produced no trials")
        key = (lambda t: t.score) if self.maximize else (lambda t: -t.score)
        return max(self.trials, key=key)

    @property
    def best_params(self) -> Dict:
        return self.best.params

    @property
    def best_score(self) -> float:
        return self.best.score

    def to_rows(self) -> List[List]:
        """Tabular view (sorted best-first) for reports and examples."""
        order = sorted(self.trials, key=lambda t: t.score,
                       reverse=self.maximize)
        return [[t.params, t.score, t.seconds] for t in order]


def grid_search(
    objective: Callable[[Dict], float],
    grid: Mapping[str, Sequence],
    maximize: bool = True,
) -> GridSearchReport:
    """Score every combination in ``grid`` with ``objective``.

    ``objective`` receives one parameter dict per grid point and returns a
    scalar score (higher is better when ``maximize``).
    """
    report = GridSearchReport(maximize=maximize)
    for params in ParameterGrid(grid):
        start = time.perf_counter()
        score = float(objective(params))
        report.trials.append(
            Trial(params=params, score=score,
                  seconds=time.perf_counter() - start)
        )
    return report


def _default_embed(method: str):
    # Imported lazily: repro.api pulls in every system, and tasks must stay
    # importable without the systems layer (it is the lower-level package).
    from repro.api import embed_graph

    def embed(graph: CSRGraph, params: Dict) -> np.ndarray:
        return embed_graph(graph, method=method, **params).embeddings

    return embed


def link_prediction_objective(
    graph: CSRGraph,
    method: str = "distger",
    test_fraction: float = 0.3,
    seed: SeedLike = 0,
    embed: Callable[[CSRGraph, Dict], np.ndarray] | None = None,
    **fixed,
) -> Callable[[Dict], float]:
    """Objective: link-prediction AUC of ``method`` under given params.

    The edge split is drawn once so every grid point competes on the same
    held-out edges; ``fixed`` arguments are merged under the searched
    parameters (search values win).
    """
    split = split_edges(graph, test_fraction=test_fraction,
                        seed=derive_seed(seed if seed is not None else 0, 0))
    embed = embed or _default_embed(method)

    def objective(params: Dict) -> float:
        merged = {**fixed, **params}
        embeddings = embed(split.train_graph, merged)
        return auc_from_split(embeddings, split)

    return objective


def classification_objective(
    graph: CSRGraph,
    labels: np.ndarray,
    method: str = "distger",
    train_ratio: float = 0.5,
    trials: int = 1,
    seed: SeedLike = 0,
    embed: Callable[[CSRGraph, Dict], np.ndarray] | None = None,
    **fixed,
) -> Callable[[Dict], float]:
    """Objective: micro-F1 of multi-label classification under params."""
    labels = np.asarray(labels, dtype=bool)
    embed = embed or _default_embed(method)

    def objective(params: Dict) -> float:
        merged = {**fixed, **params}
        embeddings = embed(graph, merged)
        report = evaluate_classification(
            embeddings, labels, train_ratio=train_ratio, trials=trials,
            seed=seed,
        )
        return report.mean_micro_f1

    return objective
