"""Link prediction harness (paper §6.4, Table 4).

Pairs are scored by the dot product of their endpoint embeddings
``φ(u)·φ(v)`` and evaluated with AUC over held-out positive edges vs
sampled non-edges.  ``evaluate_link_prediction`` runs the whole protocol
(split -> embed on the residual graph -> score); repeated trials offset
the randomness of edge removal, as in the paper's 50-trial averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.tasks.metrics import auc_score
from repro.tasks.split import LinkPredictionSplit, split_edges
from repro.utils.rng import SeedLike, derive_seed


def pair_scores(embeddings: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Dot-product similarity ``φ(u)·φ(v)`` for each pair row."""
    pairs = np.asarray(pairs, dtype=np.int64)
    return np.einsum("ij,ij->i", embeddings[pairs[:, 0]],
                     embeddings[pairs[:, 1]])


def auc_from_split(embeddings: np.ndarray, split: LinkPredictionSplit) -> float:
    """AUC of the dot-product classifier on a prepared split."""
    pos = pair_scores(embeddings, split.test_positive)
    neg = pair_scores(embeddings, split.test_negative)
    return auc_score(pos, neg)


@dataclass
class LinkPredictionReport:
    """Per-trial AUCs plus the mean the paper reports."""

    aucs: List[float]

    @property
    def mean_auc(self) -> float:
        return float(np.mean(self.aucs))

    @property
    def std_auc(self) -> float:
        return float(np.std(self.aucs))


def evaluate_link_prediction(
    graph: CSRGraph,
    embed: Callable[[CSRGraph], np.ndarray],
    trials: int = 3,
    test_fraction: float = 0.5,
    seed: SeedLike = 0,
) -> LinkPredictionReport:
    """Full protocol: split, embed the residual graph, score, repeat.

    ``embed`` maps a training graph to an ``(n, d)`` embedding matrix --
    typically one of the end-to-end systems in :mod:`repro.systems`.
    """
    aucs = []
    for trial in range(trials):
        split = split_edges(graph, test_fraction=test_fraction,
                            seed=derive_seed(seed if seed is not None else 0,
                                             trial))
        embeddings = embed(split.train_graph)
        aucs.append(auc_from_split(embeddings, split))
    return LinkPredictionReport(aucs=aucs)
