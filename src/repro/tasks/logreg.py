"""L2-regularised logistic regression (own implementation).

The paper's classification protocol uses a one-vs-rest logistic regression
with L2 regularisation (LIBLINEAR [14]).  scikit-learn is not a dependency
of this reproduction, so a compact L-BFGS-fitted implementation (scipy
optimiser, analytic gradient) stands in; it matches LIBLINEAR's primal
formulation ``min_w  C·Σ log(1+exp(−y·w·x)) + ||w||²/2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize


@dataclass
class LogisticRegression:
    """Binary logistic regression with L2 penalty, fitted by L-BFGS."""

    c: float = 1.0
    max_iter: int = 200
    _weights: Optional[np.ndarray] = None  # (d + 1,) with bias last

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on ``features (n, d)`` and boolean/0-1 ``labels (n,)``."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64) * 2.0 - 1.0  # {-1, +1}
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ValueError("labels length must match feature rows")
        n, d = x.shape
        x_aug = np.concatenate([x, np.ones((n, 1))], axis=1)

        def objective(w: np.ndarray):
            margins = y * (x_aug @ w)
            # log(1 + exp(-m)) computed stably.
            loss = np.logaddexp(0.0, -margins).sum() * self.c
            loss += 0.5 * float(w[:-1] @ w[:-1])  # no penalty on bias
            sig = 1.0 / (1.0 + np.exp(np.clip(margins, -30, 30)))
            grad = -self.c * (x_aug.T @ (y * sig))
            grad[:-1] += w[:-1]
            return loss, grad

        w0 = np.zeros(d + 1)
        result = minimize(objective, w0, jac=True, method="L-BFGS-B",
                          options={"maxiter": self.max_iter})
        self._weights = result.x
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw scores ``w·x + b``."""
        if self._weights is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(features, dtype=np.float64)
        return x @ self._weights[:-1] + self._weights[-1]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1 | x)."""
        return 1.0 / (1.0 + np.exp(-np.clip(self.decision_function(features),
                                            -30, 30)))


class OneVsRestClassifier:
    """Independent binary classifiers per label (multi-label protocol)."""

    def __init__(self, c: float = 1.0, max_iter: int = 200) -> None:
        self.c = c
        self.max_iter = max_iter
        self._models: list[LogisticRegression] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsRestClassifier":
        """Fit on ``features (n, d)`` and boolean ``labels (n, L)``."""
        labels = np.asarray(labels, dtype=bool)
        if labels.ndim != 2:
            raise ValueError("labels must be a 2-D multi-label matrix")
        self._models = []
        for j in range(labels.shape[1]):
            model = LogisticRegression(c=self.c, max_iter=self.max_iter)
            column = labels[:, j]
            if column.all() or not column.any():
                # Degenerate label: decision is the prior; keep a constant
                # model by fitting on a tiny perturbed copy.
                model._weights = np.zeros(features.shape[1] + 1)
                model._weights[-1] = 30.0 if column.all() else -30.0
            else:
                model.fit(features, column)
            self._models.append(model)
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Per-label decision scores ``(n, L)``."""
        if not self._models:
            raise RuntimeError("classifier is not fitted")
        return np.stack(
            [m.decision_function(features) for m in self._models], axis=1
        )

    def predict_top_k(self, features: np.ndarray, k_per_row: np.ndarray) -> np.ndarray:
        """Standard multi-label protocol [42]: predict each node's top-k
        labels where k is its true label count."""
        scores = self.predict_scores(features)
        out = np.zeros_like(scores, dtype=bool)
        for i, k in enumerate(np.asarray(k_per_row, dtype=np.int64)):
            if k <= 0:
                continue
            top = np.argpartition(-scores[i], min(k, scores.shape[1]) - 1)[:k]
            out[i, top] = True
        return out
