"""Evaluation metrics: AUC, micro/macro F1.

AUC is computed with the Mann-Whitney rank statistic (exactly equivalent to
the area under the ROC curve, ties handled by mid-ranks).  F1 follows the
multi-label protocol of the DeepWalk/node2vec line of work [24, 58]:
micro-F1 aggregates over instances, macro-F1 averages per-label F1.
"""

from __future__ import annotations

import numpy as np


def auc_score(scores_positive: np.ndarray, scores_negative: np.ndarray) -> float:
    """Area under the ROC curve from class-separated scores [31]."""
    pos = np.asarray(scores_positive, dtype=np.float64)
    neg = np.asarray(scores_negative, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("both classes need at least one score")
    combined = np.concatenate([pos, neg])
    # Mid-ranks for ties.
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    sorted_vals = combined[order]
    # Average the ranks of tied runs.
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mean_rank = 0.5 * (i + 1 + j + 1)
            ranks[order[i:j + 1]] = mean_rank
        i = j + 1
    rank_sum_pos = ranks[:pos.size].sum()
    u = rank_sum_pos - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


def f1_binary(true: np.ndarray, pred: np.ndarray) -> float:
    """F1 of one binary label column (0.0 when degenerate)."""
    true = np.asarray(true, dtype=bool)
    pred = np.asarray(pred, dtype=bool)
    tp = float(np.sum(true & pred))
    fp = float(np.sum(~true & pred))
    fn = float(np.sum(true & ~pred))
    denom = 2 * tp + fp + fn
    return 0.0 if denom == 0 else 2 * tp / denom


def micro_f1(true: np.ndarray, pred: np.ndarray) -> float:
    """Micro-averaged F1: pooled TP/FP/FN over all labels and instances."""
    true = np.asarray(true, dtype=bool)
    pred = np.asarray(pred, dtype=bool)
    if true.shape != pred.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {pred.shape}")
    tp = float(np.sum(true & pred))
    fp = float(np.sum(~true & pred))
    fn = float(np.sum(true & ~pred))
    denom = 2 * tp + fp + fn
    return 0.0 if denom == 0 else 2 * tp / denom


def macro_f1(true: np.ndarray, pred: np.ndarray) -> float:
    """Macro-averaged F1: unweighted mean of per-label F1 scores."""
    true = np.asarray(true, dtype=bool)
    pred = np.asarray(pred, dtype=bool)
    if true.shape != pred.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {pred.shape}")
    scores = [f1_binary(true[:, j], pred[:, j]) for j in range(true.shape[1])]
    return float(np.mean(scores)) if scores else 0.0


def average_precision(
    scores_positive: np.ndarray, scores_negative: np.ndarray
) -> float:
    """Average precision (area under the precision-recall curve).

    The retrieval companion to :func:`auc_score`: AUC is insensitive to
    class imbalance while AP rewards putting positives at the very top of
    the ranking -- the regime link prediction actually operates in (a few
    true edges against a quadratic sea of non-edges).  Computed exactly
    from the ranking: ``AP = Σ_k P@k · 1[item k is positive] / #pos``,
    with ties broken pessimistically (negatives first), so reported
    scores never benefit from tie ordering luck.
    """
    pos = np.asarray(scores_positive, dtype=np.float64)
    neg = np.asarray(scores_negative, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("both classes need at least one score")
    scores = np.concatenate([pos, neg])
    labels = np.concatenate([np.ones(pos.size, dtype=bool),
                             np.zeros(neg.size, dtype=bool)])
    # Sort by descending score; among ties put negatives first
    # (pessimistic): lexsort's last key is primary.
    order = np.lexsort((labels, -scores))
    ranked = labels[order]
    hits = np.cumsum(ranked)
    ranks = np.arange(1, ranked.size + 1, dtype=np.float64)
    precision_at_hit = hits[ranked] / ranks[ranked]
    return float(precision_at_hit.sum() / pos.size)


def precision_at_k(
    scores_positive: np.ndarray, scores_negative: np.ndarray, k: int
) -> float:
    """Fraction of true positives among the ``k`` highest-scored pairs.

    Ties are again broken pessimistically.  ``k`` is capped at the total
    number of scored pairs.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    pos = np.asarray(scores_positive, dtype=np.float64)
    neg = np.asarray(scores_negative, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("both classes need at least one score")
    scores = np.concatenate([pos, neg])
    labels = np.concatenate([np.ones(pos.size, dtype=bool),
                             np.zeros(neg.size, dtype=bool)])
    order = np.lexsort((labels, -scores))
    k = min(k, scores.size)
    return float(labels[order][:k].mean())
