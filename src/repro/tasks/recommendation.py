"""Embedding-based recommendation (the paper's motivating application).

§1 motivates DistGER with recommendation on Alibaba's two-billion-edge
user-product bipartite graph [60]; this harness runs that task end to end
on the synthetic stand-in (:mod:`repro.graph.bipartite`): hold out part
of each user's interactions, embed the residual graph, rank the catalogue
by dot-product score, and report the standard top-k retrieval metrics --
precision@k, recall@k, hit-rate@k and MRR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.graph.bipartite import BipartiteInfo
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class RecommendationSplit:
    """Train graph plus per-user held-out items."""

    train_graph: CSRGraph
    #: user id -> item node ids held out for testing (non-empty lists only)
    test_items: Dict[int, np.ndarray]
    #: user id -> item node ids kept for training (to exclude from ranking)
    train_items: Dict[int, np.ndarray]


def split_interactions(
    graph: CSRGraph,
    info: BipartiteInfo,
    test_fraction: float = 0.3,
    seed: SeedLike = 0,
) -> RecommendationSplit:
    """Hold out ``test_fraction`` of every user's interactions.

    Each user keeps at least one training interaction (a user with no
    training edges cannot be embedded meaningfully); users with a single
    interaction contribute no test items.
    """
    check_probability("test_fraction", test_fraction)
    rng = default_rng(seed)
    removed: List[tuple] = []
    test_items: Dict[int, np.ndarray] = {}
    train_items: Dict[int, np.ndarray] = {}
    for user in range(info.num_users):
        items = graph.neighbors(user)
        if items.size == 0:
            continue
        num_test = int(round(items.size * test_fraction))
        num_test = min(num_test, items.size - 1)  # keep >= 1 for training
        if num_test <= 0:
            train_items[user] = items.copy()
            continue
        held = rng.choice(items, size=num_test, replace=False)
        held_set = set(int(i) for i in held)
        kept = np.array([i for i in items if int(i) not in held_set],
                        dtype=np.int64)
        test_items[user] = np.sort(held.astype(np.int64))
        train_items[user] = kept
        removed.extend((user, int(i)) for i in held)
    train_graph = graph.subgraph_without_edges(removed)
    return RecommendationSplit(
        train_graph=train_graph,
        test_items=test_items,
        train_items=train_items,
    )


def rank_items(
    embeddings: np.ndarray,
    user: int,
    item_ids: np.ndarray,
    exclude: np.ndarray,
    k: int,
) -> np.ndarray:
    """Top-``k`` item node ids for ``user`` by dot-product score.

    Items in ``exclude`` (the user's training interactions) are never
    recommended -- recommending what the user already has is the classic
    leak in this evaluation.  Ranking runs on the serving layer's
    :class:`~repro.serving.scorer.BatchTopKScorer`, so ties break
    deterministically by item id, duplicate/unsorted ``item_ids`` are
    handled, and excluded items are *dropped* rather than padded back in
    when ``k`` exceeds the admissible catalogue (the old ``-inf`` scores
    could still be "recommended").  The batch evaluation protocol
    (:func:`evaluate_recommendation`) scores all users in one call; this
    per-user wrapper builds a throwaway scorer.
    """
    from repro.serving.scorer import BatchTopKScorer

    check_positive("k", k)
    scorer = BatchTopKScorer(embeddings, candidates=item_ids)
    result = scorer.top_k(np.asarray([user], dtype=np.int64), k=k,
                          metric="dot", exclude=[exclude])
    ids = result.ids[0]
    return ids[ids >= 0]


@dataclass
class RecommendationReport:
    """Averaged top-k retrieval metrics over all evaluable users."""

    k: int
    precision_at_k: float
    recall_at_k: float
    hit_rate_at_k: float
    mrr: float
    num_users_evaluated: int
    per_user_precision: List[float] = field(default_factory=list, repr=False)


def evaluate_recommendation(
    graph: CSRGraph,
    info: BipartiteInfo,
    embed: Callable[[CSRGraph], np.ndarray],
    k: int = 10,
    test_fraction: float = 0.3,
    seed: SeedLike = 0,
) -> RecommendationReport:
    """Full protocol: split, embed the residual graph, rank, score.

    ``embed`` maps the training graph to an ``(n, d)`` matrix over *all*
    nodes (users and items) -- typically ``embed_graph(...).embeddings``.
    """
    check_positive("k", k)
    split = split_interactions(graph, info, test_fraction=test_fraction,
                               seed=seed)
    if not split.test_items:
        raise ValueError(
            "no user has enough interactions to hold any out; lower "
            "test_fraction or generate more interactions per user"
        )
    embeddings = embed(split.train_graph)
    if embeddings.shape[0] != graph.num_nodes:
        raise ValueError("embeddings must cover every node of the graph")
    item_ids = info.item_ids

    # One batched scorer call ranks every evaluable user against the
    # item catalogue -- the same kernel the serving layer runs online.
    from repro.serving.scorer import BatchTopKScorer

    users = np.fromiter(split.test_items.keys(), dtype=np.int64,
                        count=len(split.test_items))
    empty = np.empty(0, dtype=np.int64)
    excludes = [split.train_items.get(int(u), empty) for u in users]
    scorer = BatchTopKScorer(embeddings, candidates=item_ids)
    ranked = scorer.top_k(users, k=k, metric="dot", exclude=excludes)

    precisions, recalls, hits, rranks = [], [], [], []
    for row, (user, truth) in enumerate(split.test_items.items()):
        recs = ranked.ids[row]
        recs = recs[recs >= 0]
        truth_set = set(int(t) for t in truth)
        relevant = [int(r) in truth_set for r in recs]
        num_hits = sum(relevant)
        precisions.append(num_hits / len(recs))
        recalls.append(num_hits / len(truth_set))
        hits.append(1.0 if num_hits else 0.0)
        rrank = 0.0
        for rank, is_rel in enumerate(relevant, start=1):
            if is_rel:
                rrank = 1.0 / rank
                break
        rranks.append(rrank)

    return RecommendationReport(
        k=k,
        precision_at_k=float(np.mean(precisions)),
        recall_at_k=float(np.mean(recalls)),
        hit_rate_at_k=float(np.mean(hits)),
        mrr=float(np.mean(rranks)),
        num_users_evaluated=len(precisions),
        per_user_precision=[float(p) for p in precisions],
    )


def random_baseline_precision(info: BipartiteInfo, split: RecommendationSplit,
                              k: int) -> float:
    """Expected precision@k of recommending uniformly at random.

    The sanity floor every embedding must clear: with ``t`` held-out items
    out of a catalogue of ``n`` (minus training exclusions), a random
    ranker scores ``t / n`` per slot in expectation.
    """
    check_positive("k", k)
    expectations = []
    for user, truth in split.test_items.items():
        excluded = split.train_items.get(user, np.empty(0)).size
        pool = max(1, info.num_items - excluded)
        expectations.append(min(1.0, truth.size / pool))
    return float(np.mean(expectations)) if expectations else 0.0
