"""Train/test splits for downstream evaluation (paper §6.4 protocol).

Link prediction follows [17, 18, 53, 69]: remove 50% of edges uniformly at
random as positive test edges (training embeddings on the residual graph),
and sample an equal number of non-edges as negatives.  Classification
splits nodes by a training ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_fraction


@dataclass
class LinkPredictionSplit:
    """Residual training graph plus labelled node-pair sets."""

    train_graph: CSRGraph
    test_positive: np.ndarray   # (n_pos, 2)
    test_negative: np.ndarray   # (n_neg, 2)


def split_edges(
    graph: CSRGraph,
    test_fraction: float = 0.5,
    seed: SeedLike = None,
    keep_connected_sources: bool = True,
) -> LinkPredictionSplit:
    """Uniformly remove ``test_fraction`` of edges as positive test pairs.

    With ``keep_connected_sources`` an edge is retained (not removed) when
    removing it would isolate one of its endpoints -- embeddings of
    zero-degree nodes are meaningless, which would only add noise to the
    AUC; the paper's protocol implicitly relies on the giant component
    surviving the split at its graph scales.
    """
    check_fraction("test_fraction", test_fraction)
    rng = default_rng(seed)
    edges = graph.unique_edges()
    if len(edges) < 4:
        raise ValueError("graph too small for a link-prediction split")
    order = rng.permutation(len(edges))
    target_removals = int(len(edges) * test_fraction)

    residual_degree = graph.degrees.copy()
    removed_mask = np.zeros(len(edges), dtype=bool)
    removed = 0
    for idx in order:
        if removed >= target_removals:
            break
        u, v = int(edges[idx, 0]), int(edges[idx, 1])
        if keep_connected_sources and (
            residual_degree[u] <= 1 or residual_degree[v] <= 1
        ):
            continue
        removed_mask[idx] = True
        residual_degree[u] -= 1
        residual_degree[v] -= 1
        removed += 1

    test_pos = edges[removed_mask]
    train_graph = graph.subgraph_without_edges(map(tuple, test_pos))
    test_neg = sample_non_edges(graph, count=len(test_pos), rng=rng)
    return LinkPredictionSplit(
        train_graph=train_graph,
        test_positive=test_pos,
        test_negative=test_neg,
    )


def sample_non_edges(
    graph: CSRGraph, count: int, rng: SeedLike = None
) -> np.ndarray:
    """Sample ``count`` node pairs with no edge in ``graph``."""
    gen = default_rng(rng)
    n = graph.num_nodes
    out = np.empty((count, 2), dtype=np.int64)
    filled = 0
    guard = 0
    while filled < count:
        guard += 1
        if guard > 1000:
            raise RuntimeError("non-edge sampling did not converge; "
                               "graph may be too dense")
        need = count - filled
        u = gen.integers(0, n, size=2 * need + 8)
        v = gen.integers(0, n, size=2 * need + 8)
        for a, b in zip(u, v):
            if a == b or graph.has_edge(int(a), int(b)):
                continue
            out[filled] = (a, b)
            filled += 1
            if filled >= count:
                break
    return out


def split_nodes(
    num_nodes: int, train_ratio: float, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Random (train_ids, test_ids) node split for classification."""
    check_fraction("train_ratio", train_ratio)
    rng = default_rng(seed)
    perm = rng.permutation(num_nodes)
    cut = max(1, int(round(num_nodes * train_ratio)))
    cut = min(cut, num_nodes - 1)
    return np.sort(perm[:cut]), np.sort(perm[cut:])
