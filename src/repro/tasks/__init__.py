"""Downstream evaluation tasks: link prediction, node classification,
clustering, recommendation, and hyper-parameter search."""

from repro.tasks.clustering import (
    ClusteringReport,
    evaluate_clustering,
    kmeans,
    modularity,
    normalized_mutual_information,
)
from repro.tasks.classification import (
    ClassificationReport,
    evaluate_classification,
)
from repro.tasks.link_prediction import (
    LinkPredictionReport,
    auc_from_split,
    evaluate_link_prediction,
    pair_scores,
)
from repro.tasks.logreg import LogisticRegression, OneVsRestClassifier
from repro.tasks.metrics import (
    auc_score,
    average_precision,
    f1_binary,
    macro_f1,
    micro_f1,
    precision_at_k,
)
from repro.tasks.model_selection import (
    GridSearchReport,
    ParameterGrid,
    Trial,
    classification_objective,
    grid_search,
    link_prediction_objective,
)
from repro.tasks.recommendation import (
    RecommendationReport,
    RecommendationSplit,
    evaluate_recommendation,
    random_baseline_precision,
    rank_items,
    split_interactions,
)
from repro.tasks.split import (
    LinkPredictionSplit,
    sample_non_edges,
    split_edges,
    split_nodes,
)

__all__ = [
    "ClassificationReport",
    "ClusteringReport",
    "GridSearchReport",
    "LinkPredictionReport",
    "LinkPredictionSplit",
    "LogisticRegression",
    "OneVsRestClassifier",
    "ParameterGrid",
    "RecommendationReport",
    "RecommendationSplit",
    "Trial",
    "auc_from_split",
    "auc_score",
    "average_precision",
    "classification_objective",
    "evaluate_classification",
    "evaluate_clustering",
    "evaluate_link_prediction",
    "evaluate_recommendation",
    "f1_binary",
    "grid_search",
    "kmeans",
    "link_prediction_objective",
    "macro_f1",
    "micro_f1",
    "modularity",
    "normalized_mutual_information",
    "pair_scores",
    "precision_at_k",
    "random_baseline_precision",
    "rank_items",
    "sample_non_edges",
    "split_edges",
    "split_interactions",
    "split_nodes",
]
