"""Multi-label node classification harness (paper §6.4, Fig. 9).

One-vs-rest L2 logistic regression on the embeddings, evaluated with
micro- and macro-averaged F1 under the standard protocol: each test node
predicts its top-k labels where k is its true label count [42].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.tasks.logreg import OneVsRestClassifier
from repro.tasks.metrics import macro_f1, micro_f1
from repro.tasks.split import split_nodes
from repro.utils.rng import SeedLike, derive_seed


@dataclass
class ClassificationReport:
    """Micro/macro F1 means over trials (the numbers Fig. 9 plots)."""

    micro_f1_scores: List[float]
    macro_f1_scores: List[float]

    @property
    def mean_micro_f1(self) -> float:
        return float(np.mean(self.micro_f1_scores))

    @property
    def mean_macro_f1(self) -> float:
        return float(np.mean(self.macro_f1_scores))


def evaluate_classification(
    embeddings: np.ndarray,
    labels: np.ndarray,
    train_ratio: float = 0.5,
    trials: int = 3,
    c: float = 1.0,
    seed: SeedLike = 0,
) -> ClassificationReport:
    """Split nodes, fit one-vs-rest logistic regression, score F1."""
    labels = np.asarray(labels, dtype=bool)
    if labels.shape[0] != embeddings.shape[0]:
        raise ValueError("labels and embeddings must cover the same nodes")
    micro, macro = [], []
    for trial in range(trials):
        train_ids, test_ids = split_nodes(
            embeddings.shape[0], train_ratio,
            seed=derive_seed(seed if seed is not None else 0, trial),
        )
        clf = OneVsRestClassifier(c=c).fit(embeddings[train_ids],
                                           labels[train_ids])
        k_per_row = labels[test_ids].sum(axis=1)
        pred = clf.predict_top_k(embeddings[test_ids], k_per_row)
        micro.append(micro_f1(labels[test_ids], pred))
        macro.append(macro_f1(labels[test_ids], pred))
    return ClassificationReport(micro_f1_scores=micro, macro_f1_scores=macro)
