"""Node clustering on embeddings (the paper's third downstream task).

The introduction lists clustering [37] among the applications of graph
embedding alongside link prediction and classification.  This harness
closes that loop: k-means (Lloyd's algorithm with k-means++ seeding,
implemented here -- no sklearn) over the embedding vectors, scored with
normalised mutual information against ground-truth communities and with
graph modularity of the induced clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive


def kmeans(
    points: np.ndarray,
    k: int,
    max_iters: int = 100,
    tol: float = 1e-6,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's k-means with k-means++ initialisation.

    Returns ``(labels, centroids, inertia)`` where ``inertia`` is the sum
    of squared distances to assigned centroids.  Deterministic given
    ``seed``; empty clusters are re-seeded from the farthest points.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    check_positive("k", k)
    if k > n:
        raise ValueError(f"k={k} exceeds number of points {n}")
    rng = default_rng(seed)

    # k-means++ seeding: each next centre drawn ∝ squared distance.
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(0, n)]
    dist_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = dist_sq.sum()
        if total <= 0:
            centroids[i:] = points[rng.integers(0, n, size=k - i)]
            break
        probs = dist_sq / total
        centroids[i] = points[rng.choice(n, p=probs)]
        dist_sq = np.minimum(
            dist_sq, np.sum((points - centroids[i]) ** 2, axis=1)
        )

    labels = np.zeros(n, dtype=np.int64)
    inertia = np.inf
    for _ in range(max_iters):
        # Assignment step: ||x - c||² = ||x||² - 2x·c + ||c||².
        cross = points @ centroids.T
        c_norms = np.sum(centroids**2, axis=1)
        dists = c_norms[None, :] - 2.0 * cross
        labels = np.argmin(dists, axis=1)
        new_inertia = float(
            np.sum((points - centroids[labels]) ** 2)
        )
        # Update step.
        new_centroids = centroids.copy()
        for c in range(k):
            members = labels == c
            if members.any():
                new_centroids[c] = points[members].mean(axis=0)
            else:
                # Re-seed an empty cluster at the current farthest point.
                far = int(np.argmax(np.sum((points - centroids[labels]) ** 2,
                                           axis=1)))
                new_centroids[c] = points[far]
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if inertia - new_inertia < tol and shift < tol:
            inertia = new_inertia
            break
        inertia = new_inertia
    return labels, centroids, inertia


def normalized_mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """NMI between two labelings, arithmetic normalisation.

    ``NMI = 2·I(a; b) / (H(a) + H(b))`` in ``[0, 1]``: 1 for identical
    partitions (up to relabeling), ~0 for independent ones.  Degenerate
    single-cluster inputs score 1 when both sides agree, 0 otherwise.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("labelings must have identical shape")
    n = a.size
    if n == 0:
        raise ValueError("labelings must be non-empty")
    _, a_ids = np.unique(a, return_inverse=True)
    _, b_ids = np.unique(b, return_inverse=True)
    ka, kb = int(a_ids.max()) + 1, int(b_ids.max()) + 1
    contingency = np.zeros((ka, kb), dtype=np.float64)
    np.add.at(contingency, (a_ids, b_ids), 1.0)
    joint = contingency / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)

    def entropy(p: np.ndarray) -> float:
        nz = p[p > 0]
        return float(-(nz * np.log(nz)).sum())

    ha, hb = entropy(pa), entropy(pb)
    if ha == 0.0 and hb == 0.0:
        return 1.0  # both are the single-cluster partition
    if ha == 0.0 or hb == 0.0:
        return 0.0  # one side carries no information
    nz = joint > 0
    mi = float(
        (joint[nz] * np.log(joint[nz] / np.outer(pa, pb)[nz])).sum()
    )
    return float(np.clip(2.0 * mi / (ha + hb), 0.0, 1.0))


def modularity(graph: CSRGraph, labels: np.ndarray) -> float:
    """Newman modularity ``Q`` of a node partition on an undirected graph.

    ``Q = Σ_c (e_c / m − (d_c / 2m)²)`` with ``e_c`` intra-cluster edges,
    ``d_c`` total degree of cluster ``c`` and ``m`` the edge count.  Lies
    in ``[-0.5, 1)``; higher means denser-than-chance clusters.
    """
    labels = np.asarray(labels)
    if labels.size != graph.num_nodes:
        raise ValueError("labels must cover every node")
    if graph.directed:
        raise ValueError("modularity is defined here for undirected graphs")
    m = graph.num_edges
    if m == 0:
        return 0.0
    arcs = graph.edge_array()
    same = labels[arcs[:, 0]] == labels[arcs[:, 1]]
    intra_edges = float(same.sum()) / 2.0  # arcs double-count edges
    _, ids = np.unique(labels, return_inverse=True)
    cluster_degree = np.zeros(int(ids.max()) + 1, dtype=np.float64)
    np.add.at(cluster_degree, ids, graph.degrees.astype(np.float64))
    return float(
        intra_edges / m - np.sum((cluster_degree / (2.0 * m)) ** 2)
    )


@dataclass
class ClusteringReport:
    """Clustering outcome: labels plus the scores the task reports."""

    labels: np.ndarray
    inertia: float
    nmi: Optional[float]       # None when no ground truth was given
    modularity: float


def evaluate_clustering(
    graph: CSRGraph,
    embeddings: np.ndarray,
    k: int,
    ground_truth: Optional[np.ndarray] = None,
    seed: SeedLike = 0,
) -> ClusteringReport:
    """Cluster embeddings with k-means and score the partition.

    NMI is reported against ``ground_truth`` when provided (planted
    communities of the labelled stand-ins); modularity is always computed
    from the graph itself, so the task works on unlabelled graphs too.
    """
    if embeddings.shape[0] != graph.num_nodes:
        raise ValueError("embeddings must cover every node")
    labels, _, inertia = kmeans(embeddings, k, seed=seed)
    nmi = (
        normalized_mutual_information(labels, ground_truth)
        if ground_truth is not None
        else None
    )
    return ClusteringReport(
        labels=labels,
        inertia=inertia,
        nmi=nmi,
        modularity=modularity(graph, labels),
    )
