"""Command-line interface.

Eight subcommands cover the common workflows:

* ``embed``     -- run any reproduced system on a dataset stand-in or an
                   edge-list file and save embeddings in word2vec format.
* ``update``    -- embed, then apply an edge stream (a ``+/- u v`` file
                   or synthetic churn) through the dynamic path: delta-CSR
                   merge, walk invalidation, selective resampling,
                   warm-start re-training; reports the speedup over the
                   full recompute.
* ``evaluate``  -- link-prediction AUC of a method on a dataset.
* ``partition`` -- compare partitioning schemes on a dataset.
* ``cluster``   -- embed, k-means the vectors, report NMI/modularity.
* ``similar``   -- nearest embedding neighbours of a node.
* ``serve``     -- answer top-k queries from a saved embedding file,
                   in-process or on a worker pool; optionally replay a
                   Zipf trace and report QPS + latency percentiles.
* ``stats``     -- structural statistics of a dataset or edge list.

Examples::

    python -m repro embed --dataset LJ --method distger --dim 64 \
        --out /tmp/lj.emb
    python -m repro embed --edges graph.txt --method knightking
    python -m repro embed --dataset FL --persona --persona-lam 0.1 \
        --out /tmp/fl_persona.emb
    python -m repro update --dataset FL --churn 0.01 --out /tmp/fl.emb
    python -m repro update --dataset FL --stream edits.txt
    python -m repro evaluate --dataset LJ --method distger --trials 3
    python -m repro partition --dataset LJ --machines 4
    python -m repro cluster --dataset FL --k 6
    python -m repro similar --dataset LJ --node 0 --k 10
    python -m repro serve --embeddings /tmp/lj.emb --nodes 0,1,2 --k 5
    python -m repro serve --embeddings /tmp/lj.npy --workers 4 --trace 10000
    python -m repro stats --dataset TW
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.api import available_methods, embed_graph, walk_methods
from repro.graph.csr import CSRGraph
from repro.graph.datasets import ALL_DATASETS, load
from repro.graph.io import read_edge_list, save_embeddings
from repro.partition import (
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    MetisLikePartitioner,
    MPGPPartitioner,
    ParallelMPGPPartitioner,
    WorkloadBalancePartitioner,
    evaluate as evaluate_partition,
)
from repro.tasks import evaluate_link_prediction

_KERNEL_CHOICES = ["huge", "huge+", "deepwalk", "node2vec", "node2vec-alias"]


def _load_graph(args) -> CSRGraph:
    # --edges takes precedence over --dataset when both are given.
    if args.edges:
        return read_edge_list(args.edges, directed=args.directed,
                              weighted=args.weighted)
    return load(args.dataset, scale=args.scale).graph


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=list(ALL_DATASETS), default="LJ",
                        help="built-in dataset stand-in (default: LJ)")
    parser.add_argument("--edges", metavar="FILE",
                        help="whitespace edge-list file; overrides --dataset")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="stand-in size multiplier (default: 1.0)")
    parser.add_argument("--directed", action="store_true",
                        help="treat the edge list as directed")
    parser.add_argument("--weighted", action="store_true",
                        help="read a third edge-weight column")


_BACKEND_CHOICES = ["auto", "vectorized", "loop"]
#: The trainer additionally offers the torch device backend (optional
#: dependency; validated eagerly with an install hint by TrainConfig).
_TRAIN_BACKEND_CHOICES = _BACKEND_CHOICES + ["torch"]
_EXECUTION_CHOICES = ["serial", "process", "pipeline"]
_BACKING_CHOICES = ["shm", "mmap"]


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--method", choices=available_methods(),
                        default="distger")
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kernel", default=None, choices=_KERNEL_CHOICES,
                        help="walk kernel for walk-based methods (§6.6)")
    parser.add_argument("--walk-backend", default=None,
                        choices=_BACKEND_CHOICES,
                        help="walk engine execution backend (default: auto)")
    parser.add_argument("--train-backend", default=None,
                        choices=_TRAIN_BACKEND_CHOICES,
                        help="trainer execution backend; 'torch' runs the "
                             "batched slice plans on torch tensors "
                             "(optional dependency) (default: auto)")
    parser.add_argument("--torch-device", default=None,
                        choices=["auto", "cpu", "cuda"],
                        help="device for --train-backend torch: 'auto' "
                             "prefers CUDA when available (default: auto)")
    parser.add_argument("--torch-dtype", default=None,
                        choices=["auto", "float32", "float64"],
                        help="buffer dtype for --train-backend torch: "
                             "'auto' is float64 on CPU (byte-parity tier) "
                             "and float32 on CUDA (default: auto)")
    parser.add_argument("--partition-backend", default=None,
                        choices=_BACKEND_CHOICES,
                        help="MPGP partitioner backend; DistGER methods "
                             "only (default: auto)")
    parser.add_argument("--execution", default=None,
                        choices=_EXECUTION_CHOICES,
                        help="run walk rounds, training slices and MPGP "
                             "segments on worker processes ('process'), or "
                             "additionally overlap partitioning with "
                             "sampling and round flushes with the next "
                             "round ('pipeline'); byte-identical results "
                             "either way (default: serial)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --execution "
                             "process/pipeline (default: min(4, cores))")
    parser.add_argument("--backing", default=None,
                        choices=_BACKING_CHOICES,
                        help="transport of the read-only blocks workers "
                             "attach under --execution process/pipeline: "
                             "'shm' (/dev/shm segments) or 'mmap' "
                             "(file-backed .npy maps -- the out-of-core "
                             "mode; byte-identical results, bounded "
                             "resident memory; default: REPRO_BACKING or "
                             "shm)")
    parser.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="spill root for --backing mmap (default: "
                             "REPRO_SPILL_DIR or the system temp dir)")


def _backend_kwargs(args) -> dict:
    """Flat embed_graph kwargs for the backend flags that were given."""
    kwargs = {}
    if getattr(args, "walk_backend", None):
        kwargs["backend"] = args.walk_backend
    if getattr(args, "train_backend", None):
        kwargs["train_backend"] = args.train_backend
    if getattr(args, "torch_device", None):
        kwargs["torch_device"] = args.torch_device
    if getattr(args, "torch_dtype", None):
        kwargs["torch_dtype"] = args.torch_dtype
    if getattr(args, "partition_backend", None):
        kwargs["partition_backend"] = args.partition_backend
    if getattr(args, "execution", None):
        kwargs["execution"] = args.execution
    if getattr(args, "workers", None) is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "backing", None):
        kwargs["backing"] = args.backing
    if getattr(args, "spill_dir", None):
        kwargs["spill_dir"] = args.spill_dir
    return kwargs


def cmd_embed(args) -> int:
    if (args.save_corpus or args.persona) and \
            args.method not in walk_methods():
        # Fail before the (potentially long) run, not after it.
        flag = "--save-corpus" if args.save_corpus else "--persona"
        print(f"error: method {args.method!r} samples no walk corpus; "
              f"{flag} applies to {', '.join(walk_methods())}",
              file=sys.stderr)
        return 2
    graph = _load_graph(args)
    print(f"Embedding |V|={graph.num_nodes}, |E|={graph.num_edges} "
          f"with {args.method} on {args.machines} simulated machines ...")
    if args.persona:
        from repro.persona import PersonaConfig

        persona = embed_graph(graph, method=args.method,
                              num_machines=args.machines, dim=args.dim,
                              epochs=args.epochs, seed=args.seed,
                              kernel=args.kernel,
                              persona=PersonaConfig(lam=args.persona_lam),
                              **_backend_kwargs(args))
        result = persona.result
        print(f"persona split: {persona.num_personas} personas over "
              f"{graph.num_nodes} nodes (lambda={args.persona_lam})")
    else:
        persona = None
        result = embed_graph(graph, method=args.method,
                             num_machines=args.machines, dim=args.dim,
                             epochs=args.epochs, seed=args.seed,
                             kernel=args.kernel, **_backend_kwargs(args))
    print(f"done in {result.wall_seconds:.2f}s wall "
          f"({result.simulated_seconds:.3f}s simulated); "
          f"{result.metrics.messages_sent} walker messages, "
          f"{result.metrics.sync_bytes / 1e6:.1f} MB sync traffic")
    if args.out:
        if persona is not None:
            # Per-persona rows don't fit the one-row-per-node text
            # format; publish the per-base mean (the single-embedding
            # projection).  Persona-resolution consumers use the API.
            save_embeddings(args.out, persona.base_embeddings())
            print(f"base-node mean embeddings written to {args.out}")
        else:
            save_embeddings(args.out, result.embeddings)
            print(f"embeddings written to {args.out}")
    if args.save_corpus:
        result.corpus.save(args.save_corpus)
        print(f"walk corpus ({result.corpus.num_walks} walks, "
              f"{result.corpus.total_tokens} tokens) written to "
              f"{args.save_corpus}")
    return 0


def cmd_update(args) -> int:
    from repro.api import apply_edge_stream
    from repro.dynamic import EdgeStream, random_churn

    if (args.stream is None) == (args.churn is None):
        print("error: give exactly one of --stream FILE or --churn FRACTION",
              file=sys.stderr)
        return 2
    if args.method not in walk_methods():
        print(f"error: method {args.method!r} samples no walk corpus; "
              f"dynamic updates apply to {', '.join(walk_methods())}",
              file=sys.stderr)
        return 2
    graph = _load_graph(args)
    print(f"Embedding |V|={graph.num_nodes}, |E|={graph.num_edges} "
          f"with {args.method} on {args.machines} simulated machines ...")
    result = embed_graph(graph, method=args.method,
                         num_machines=args.machines, dim=args.dim,
                         epochs=args.epochs, seed=args.seed,
                         kernel=args.kernel, **_backend_kwargs(args))
    print(f"full embed: {result.wall_seconds:.2f}s wall")
    if args.stream:
        stream = EdgeStream.from_text(args.stream)
    else:
        stream = random_churn(graph, args.churn, seed=args.stream_seed)
    print(f"applying {stream.num_inserts} insertions + "
          f"{stream.num_deletes} deletions ...")
    update = apply_edge_stream(
        graph, stream, result, method=args.method,
        num_machines=args.machines, dim=args.dim, epochs=args.epochs,
        seed=args.seed, kernel=args.kernel,
        update_epochs=args.update_epochs, audit=args.audit,
        train_scope=args.train_scope, **_backend_kwargs(args))
    stale = int(update.stats.get("stale_walks", 0))
    total = int(update.stats.get("total_walks", 0))
    print(f"update: {update.wall_seconds:.2f}s wall "
          f"({stale}/{total} walks resampled; "
          f"delta {update.phase('delta'):.3f}s, "
          f"invalidate {update.phase('invalidate'):.3f}s, "
          f"resample {update.phase('resample'):.3f}s, "
          f"train {update.phase('train'):.3f}s)")
    if update.wall_seconds > 0:
        print(f"speedup vs full recompute: "
              f"{result.wall_seconds / update.wall_seconds:.1f}x")
    print(f"new graph: |V|={update.graph.num_nodes}, "
          f"|E|={update.graph.num_edges}")
    if args.out:
        save_embeddings(args.out, update.embeddings)
        print(f"updated embeddings written to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    graph = _load_graph(args)

    def embedder(train_graph: CSRGraph):
        return embed_graph(train_graph, method=args.method,
                           num_machines=args.machines, dim=args.dim,
                           epochs=args.epochs, seed=args.seed,
                           kernel=args.kernel,
                           **_backend_kwargs(args)).embeddings

    print(f"Link prediction with {args.method} "
          f"({args.trials} trials, 50% edges held out) ...")
    report = evaluate_link_prediction(graph, embedder, trials=args.trials,
                                      seed=args.seed)
    print(f"AUC = {report.mean_auc:.4f} (+- {report.std_auc:.4f})")
    return 0


_PARTITIONERS = {
    "hash": HashPartitioner,
    "workload-balancing": WorkloadBalancePartitioner,
    "ldg": LDGPartitioner,
    "fennel": FennelPartitioner,
    "metis-like": MetisLikePartitioner,
    "mpgp": MPGPPartitioner,
    "mpgp-parallel": ParallelMPGPPartitioner,
}


#: Schemes that accept the ``backend`` knob (the baselines have nothing
#: to vectorize differently).
_BACKEND_SCHEMES = ("mpgp", "mpgp-parallel")


def cmd_partition(args) -> int:
    graph = _load_graph(args)
    schemes = args.schemes or list(_PARTITIONERS)
    exec_flags = (args.backend or args.execution or args.workers is not None
                  or args.backing or args.spill_dir)
    if exec_flags:
        skipped = [n for n in schemes if n not in _BACKEND_SCHEMES]
        if skipped:
            print(f"note: --backend/--execution/--workers/--backing apply "
                  f"to {'/'.join(_BACKEND_SCHEMES)} only; ignored for "
                  f"{', '.join(skipped)}")
    print(f"{'scheme':20s} {'seconds':>8s} {'cut%':>7s} {'balance':>8s} "
          f"{'walk locality':>13s}")
    for name in schemes:
        if exec_flags and name in _BACKEND_SCHEMES:
            scheme_kwargs = {}
            if args.backend:
                scheme_kwargs["backend"] = args.backend
            if args.execution:
                scheme_kwargs["execution"] = args.execution
            if args.workers is not None:
                scheme_kwargs["workers"] = args.workers
            if args.backing:
                scheme_kwargs["backing"] = args.backing
            if args.spill_dir:
                scheme_kwargs["spill_dir"] = args.spill_dir
            partitioner = _PARTITIONERS[name](**scheme_kwargs)
        else:
            partitioner = _PARTITIONERS[name]()
        result = partitioner.partition(graph, args.machines)
        quality = evaluate_partition(graph, result.assignment, args.machines)
        print(f"{name:20s} {result.seconds:8.3f} "
              f"{quality.cut_fraction:7.1%} {quality.node_balance:8.2f} "
              f"{quality.expected_walk_locality:13.3f}")
    return 0


def _embed_for_args(graph: CSRGraph, args):
    return embed_graph(graph, method=args.method,
                       num_machines=args.machines, dim=args.dim,
                       epochs=args.epochs, seed=args.seed,
                       kernel=args.kernel,
                       **_backend_kwargs(args)).embeddings


def cmd_cluster(args) -> int:
    from repro.tasks import evaluate_clustering

    dataset = None if args.edges else load(args.dataset, scale=args.scale)
    graph = _load_graph(args)
    truth = dataset.communities if dataset is not None else None
    print(f"Embedding |V|={graph.num_nodes} with {args.method}, then "
          f"k-means with k={args.k} ...")
    emb = _embed_for_args(graph, args)
    report = evaluate_clustering(graph, emb, k=args.k, ground_truth=truth,
                                 seed=args.seed)
    print(f"modularity = {report.modularity:.4f}")
    if report.nmi is not None:
        print(f"NMI vs planted communities = {report.nmi:.4f}")
    return 0


def cmd_similar(args) -> int:
    from repro.embedding import top_k_similar
    from repro.graph.io import load_embeddings

    graph = _load_graph(args)
    if args.node < 0 or args.node >= graph.num_nodes:
        print(f"error: node {args.node} outside |V|={graph.num_nodes}",
              file=sys.stderr)
        return 2
    if args.embeddings:
        emb = load_embeddings(args.embeddings)
    else:
        emb = _embed_for_args(graph, args)
    neighbors = set(int(v) for v in graph.neighbors(args.node))
    print(f"top-{args.k} nodes most similar to {args.node} "
          f"(graph degree {graph.degree(args.node)}):")
    for node, score in top_k_similar(emb, args.node, k=args.k):
        tag = " (graph neighbour)" if node in neighbors else ""
        print(f"  {node:8d}  {score:+.4f}{tag}")
    return 0


def cmd_serve(args) -> int:
    import numpy as np

    from repro.api import serve_embeddings
    from repro.serving.trace import zipf_query_trace

    if args.nodes is None and args.trace is None:
        print("error: give --nodes to answer queries or --trace N to "
              "replay a synthetic trace", file=sys.stderr)
        return 2
    with serve_embeddings(args.embeddings, workers=args.workers,
                          metric=args.metric) as engine:
        n = engine.store.num_nodes
        kind = engine.store.mode
        print(f"serving {n} x {engine.store.dim} embeddings "
              f"({kind} store, "
              f"{'in-process' if not args.workers else f'{args.workers} workers'})")
        if args.nodes is not None:
            nodes = np.asarray([int(x) for x in args.nodes.split(",")],
                               dtype=np.int64)
            bad = nodes[(nodes < 0) | (nodes >= n)]
            if bad.size:
                print(f"error: node {int(bad[0])} outside |V|={n}",
                      file=sys.stderr)
                return 2
            result = engine.query(nodes, k=args.k)
            for row, node in enumerate(nodes):
                hits = ", ".join(f"{nid}:{score:+.4f}"
                                 for nid, score in result.as_lists()[row])
                print(f"  {int(node):8d} -> {hits}")
            return 0
        batches = zipf_query_trace(args.trace, n, batch_size=args.batch,
                                   seed=args.seed)
        # Keep the pool busy: pipeline up to 2 x workers requests.
        depth = max(1, 2 * args.workers)
        pending, answered = [], 0
        start = time.perf_counter()
        for batch in batches:
            pending.append((engine.submit(batch, k=args.k), batch.size))
            while len(pending) >= depth:
                handle, size = pending.pop(0)
                handle.result()
                answered += size
        for handle, size in pending:
            handle.result()
            answered += size
        wall = time.perf_counter() - start
        print(f"replayed {answered} queries in {len(batches)} batches "
              f"of <= {args.batch}: {answered / wall:,.0f} queries/s "
              f"({wall:.2f}s wall)")
        for worker, stats in engine.latency_summary().items():
            print(f"  {worker:16s} n={int(stats['count']):6d} "
                  f"mean={stats['mean'] * 1e3:7.2f}ms "
                  f"p50={stats['p50'] * 1e3:7.2f}ms "
                  f"p99={stats['p99'] * 1e3:7.2f}ms")
    return 0


def cmd_stats(args) -> int:
    from repro.graph import (
        approximate_diameter,
        average_degree,
        clustering_coefficient,
        connected_components,
        degree_assortativity,
        degree_gini,
        density,
        power_law_exponent,
    )

    graph = _load_graph(args)
    comp = connected_components(graph)
    num_components = int(comp.max()) + 1 if comp.size else 0
    rows = [
        ("nodes", graph.num_nodes),
        ("edges", graph.num_edges),
        ("directed", graph.directed),
        ("weighted", graph.is_weighted),
        ("average degree", f"{average_degree(graph):.2f}"),
        ("density", f"{density(graph):.3g}"),
        ("components", num_components),
        ("degree gini", f"{degree_gini(graph):.3f}"),
        ("assortativity", f"{degree_assortativity(graph):.3f}"),
        ("approx. diameter", approximate_diameter(graph, seed=args.seed)),
    ]
    if not graph.directed:
        rows.append(("clustering coeff", f"{clustering_coefficient(graph):.3f}"))
    try:
        rows.append(("power-law exponent", f"{power_law_exponent(graph):.2f}"))
    except ValueError:
        rows.append(("power-law exponent", "n/a (no tail)"))
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"{name:{width}s}  {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DistGER reproduction: distributed graph embedding "
                    "with information-oriented random walks (VLDB 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_embed = sub.add_parser("embed", help="embed a graph, save vectors")
    _add_graph_args(p_embed)
    _add_system_args(p_embed)
    p_embed.add_argument("--out", metavar="FILE",
                         help="write embeddings (word2vec text format)")
    p_embed.add_argument("--save-corpus", metavar="FILE",
                         help="write the sampled walk corpus: flat npz "
                              "(token block + offsets) by default, legacy "
                              "text when FILE ends in .txt")
    p_embed.add_argument("--persona", action="store_true",
                         help="Splitter persona workload: ego-net split "
                              "the graph, train persona embeddings "
                              "anchored to a base-graph prior (walk-based "
                              "methods only); --out saves the per-base "
                              "mean vectors")
    p_embed.add_argument("--persona-lam", type=float, default=0.1,
                         metavar="LAMBDA",
                         help="anchor regularizer weight for --persona "
                              "(default: 0.1; 0 disables anchoring)")
    p_embed.set_defaults(func=cmd_embed)

    p_update = sub.add_parser(
        "update", help="embed, then apply an edge stream incrementally")
    _add_graph_args(p_update)
    _add_system_args(p_update)
    p_update.add_argument("--stream", metavar="FILE",
                          help="edge-edit file: one '+ u v [w]' or '- u v' "
                               "per line ('#' comments)")
    p_update.add_argument("--churn", type=float, metavar="FRACTION",
                          help="synthetic churn instead of --stream: "
                               "FRACTION of |E| edits, half insertions "
                               "half deletions")
    p_update.add_argument("--stream-seed", type=int, default=1,
                          help="seed for --churn (default: 1)")
    p_update.add_argument("--update-epochs", type=int, default=1,
                          help="warm-start refinement epochs (default: 1)")
    p_update.add_argument("--audit", default="auto",
                          choices=["auto", "node", "arc"],
                          help="walk invalidation audit: kernel-aware node "
                               "scan (auto/node) or traversed-pair arc scan "
                               "(fast, incomplete under insertions)")
    p_update.add_argument("--train-scope", default="stale",
                          choices=["stale", "full"],
                          help="what the refinement epochs sweep: only the "
                               "resampled walks under full-corpus stats "
                               "(stale, default) or the whole corpus (full)")
    p_update.add_argument("--out", metavar="FILE",
                          help="write updated embeddings (word2vec text)")
    p_update.set_defaults(func=cmd_update)

    p_eval = sub.add_parser("evaluate", help="link-prediction AUC")
    _add_graph_args(p_eval)
    _add_system_args(p_eval)
    p_eval.add_argument("--trials", type=int, default=3)
    p_eval.set_defaults(func=cmd_evaluate)

    p_part = sub.add_parser("partition", help="compare partitioners")
    _add_graph_args(p_part)
    p_part.add_argument("--machines", type=int, default=4)
    p_part.add_argument("--schemes", nargs="*",
                        choices=list(_PARTITIONERS), default=None)
    p_part.add_argument("--backend", default=None, choices=_BACKEND_CHOICES,
                        help="MPGP scoring backend (default: auto)")
    p_part.add_argument("--execution", default=None,
                        choices=_EXECUTION_CHOICES,
                        help="partition parallel-MPGP segments on worker "
                             "processes (default: serial)")
    p_part.add_argument("--workers", type=int, default=None,
                        help="worker processes for --execution process")
    p_part.add_argument("--backing", default=None, choices=_BACKING_CHOICES,
                        help="segment-worker transport: shm segments or "
                             "file-backed mmaps (default: REPRO_BACKING)")
    p_part.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="spill root for --backing mmap")
    p_part.set_defaults(func=cmd_partition)

    p_cluster = sub.add_parser("cluster",
                               help="k-means clustering of the embeddings")
    _add_graph_args(p_cluster)
    _add_system_args(p_cluster)
    p_cluster.add_argument("--k", type=int, default=5,
                           help="number of clusters (default: 5)")
    p_cluster.set_defaults(func=cmd_cluster)

    p_sim = sub.add_parser("similar",
                           help="nearest embedding neighbours of a node")
    _add_graph_args(p_sim)
    _add_system_args(p_sim)
    p_sim.add_argument("--node", type=int, required=True)
    p_sim.add_argument("--k", type=int, default=10)
    p_sim.add_argument("--embeddings", metavar="FILE",
                       help="reuse saved embeddings instead of re-embedding")
    p_sim.set_defaults(func=cmd_similar)

    p_serve = sub.add_parser("serve",
                             help="top-k query serving from saved embeddings")
    p_serve.add_argument("--embeddings", metavar="FILE", required=True,
                         help="saved embeddings: .npy (memory-mapped "
                              "zero-copy) or word2vec text")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="query worker processes; 0 = in-process "
                              "(default: 0)")
    p_serve.add_argument("--k", type=int, default=10)
    p_serve.add_argument("--metric", default="cosine",
                         choices=["cosine", "dot"])
    p_serve.add_argument("--nodes", metavar="ID,ID,...",
                         help="answer one batch for these node ids")
    p_serve.add_argument("--trace", type=int, metavar="N",
                         help="replay a Zipf-skewed trace of N queries and "
                              "report QPS + latency percentiles")
    p_serve.add_argument("--batch", type=int, default=64,
                         help="request batch size for --trace (default: 64)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="trace seed (default: 0)")
    p_serve.set_defaults(func=cmd_serve)

    p_stats = sub.add_parser("stats", help="structural graph statistics")
    _add_graph_args(p_stats)
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
