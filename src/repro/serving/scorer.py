"""Batched, deterministic top-k similarity scoring (the serving hot path).

Every online query against a trained embedding matrix reduces to "score
one query vector against a catalogue, return the best k" -- the
recommendation workload of the paper's §1 and the similarity-ranking
evaluation protocol shared by the random-walk embedding literature.
:class:`BatchTopKScorer` is that kernel, built for sustained traffic:

* **batched** -- a request carries ``q`` query nodes and is scored with
  one matmul against the catalogue, not ``q`` scans;
* **cached** -- row norms (and optionally the normalised matrix) are
  computed once at construction, never per query, and a fixed candidate
  catalogue is gathered once;
* **deterministic** -- top-k selection breaks score ties by smallest
  node id (:func:`deterministic_top_k`), so equal-score results are
  byte-identical run to run and across serving processes.  This is the
  fix for the ``np.argpartition`` tie nondeterminism that
  ``top_k_similar`` inherited: argpartition picks an *arbitrary* subset
  when ties straddle the k-boundary;
* **well-defined on cold nodes** -- zero-norm embeddings score 0 under
  cosine (never NaN), duplicate candidate ids are deduplicated, a query
  node absent from the catalogue simply is not self-excluded, and
  ``k`` larger than the catalogue pads with ``(-1, -inf)``.

Scoring works on whatever array the store exposes -- an in-process
matrix, a shared-memory segment or a read-only ``.npy`` mmap -- without
copying it.  Float contract: a given *request batch* is scored by one
matmul, so identical batches produce identical bytes wherever they run;
the multi-worker front end (:mod:`repro.serving.engine`) dispatches whole
request batches to single workers to inherit that guarantee.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "BatchTopKScorer",
    "TopKResult",
    "deterministic_top_k",
    "row_norms",
]

METRICS = ("cosine", "dot")


def row_norms(matrix: np.ndarray) -> np.ndarray:
    """L2 norm of every row, as float64 (exact and dtype-stable)."""
    matrix = np.asarray(matrix)
    return np.sqrt(np.einsum("ij,ij->i", matrix, matrix,
                             dtype=np.float64))


def deterministic_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, ties broken by smallest index.

    Returns indices ordered best-first by ``(-score, index)``.  Unlike a
    bare ``np.argpartition`` -- which picks an arbitrary subset when
    equal scores straddle the k-boundary -- the selection *and* the
    ordering are pure functions of the score array, which is what lets
    serving parity tests demand byte-equal responses under ties.
    """
    scores = np.asarray(scores)
    n = scores.size
    if k >= n:
        sel = np.arange(n, dtype=np.int64)
        order = np.lexsort((sel, -scores))
        return sel[order]
    # kth largest value; everything strictly above it is in, ties at the
    # boundary are admitted in ascending-index order until k is full.
    kth = -np.partition(-scores, k - 1)[k - 1]
    above = np.flatnonzero(scores > kth)
    ties = np.flatnonzero(scores == kth)
    sel = np.concatenate([above, ties[:k - above.size]])
    order = np.lexsort((sel, -scores[sel]))
    return sel[order].astype(np.int64, copy=False)


class TopKResult(NamedTuple):
    """Batched top-k answer: ``(q, k)`` node ids and scores, best first.

    Rows with fewer than ``k`` admissible candidates are padded with
    id ``-1`` / score ``-inf`` (a fixed, comparable padding so responses
    stay byte-comparable).
    """

    ids: np.ndarray
    scores: np.ndarray

    def as_lists(self) -> List[List[Tuple[int, float]]]:
        """Per-query ``[(node_id, score), ...]`` lists, padding trimmed."""
        out: List[List[Tuple[int, float]]] = []
        for row_ids, row_scores in zip(self.ids, self.scores):
            out.append([(int(i), float(s))
                        for i, s in zip(row_ids, row_scores) if i >= 0])
        return out


def _checked_candidates(candidates: np.ndarray,
                        num_nodes: int) -> np.ndarray:
    """Sorted, deduplicated, bounds-checked candidate ids."""
    candidates = np.unique(np.asarray(candidates, dtype=np.int64))
    if candidates.size and (candidates[0] < 0
                            or candidates[-1] >= num_nodes):
        raise ValueError(
            f"candidate ids must lie in [0, {num_nodes}); got range "
            f"[{candidates[0]}, {candidates[-1]}]")
    return candidates


class BatchTopKScorer:
    """Vectorized top-k scorer over a (possibly shared) embedding matrix.

    Parameters
    ----------
    embeddings:
        The ``(n, d)`` matrix.  Never copied; a read-only mmap or a
        shared-memory view works as-is.
    candidates:
        Optional fixed catalogue (e.g. the item side of a bipartite
        graph).  Deduplicated, sorted and gathered **once**; per-call
        ``candidates`` still override it.  ``None`` means all nodes.
    normalized_cache:
        Precompute the row-normalised matrix once (extra ``n * d``
        memory) so cosine queries skip the per-batch norm division.
        Numerically this is the same deterministic elementwise division
        either way -- the cache only moves it out of the hot path.
    norms:
        Precomputed :func:`row_norms` of ``embeddings`` (e.g. shipped by
        the store so workers skip the O(n d) pass); computed here when
        omitted.
    groups:
        Optional length-``n`` int array mapping each embedding row to a
        *group* id (e.g. ``PersonaResult.base_of``, mapping personas to
        base nodes).  Enables :meth:`top_k_bases`: group-level queries
        answered as the max over member-pair scores -- Splitter's
        best-persona-pair lookup.
    """

    def __init__(self, embeddings: np.ndarray,
                 candidates: Optional[np.ndarray] = None,
                 normalized_cache: bool = False,
                 norms: Optional[np.ndarray] = None,
                 groups: Optional[np.ndarray] = None) -> None:
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2:
            raise ValueError(
                f"embeddings must be 2-D, got shape {embeddings.shape}")
        self.embeddings = embeddings
        self.num_nodes = int(embeddings.shape[0])
        self.norms = (np.asarray(norms, dtype=np.float64)
                      if norms is not None else row_norms(embeddings))
        if self.norms.shape != (self.num_nodes,):
            raise ValueError("norms must have one entry per node")
        # Zero-norm (cold/untrained) rows divide by 1 instead of 0: their
        # dot products are exactly 0, so cosine is defined as 0, not NaN.
        self._safe_norms = np.where(self.norms > 0.0, self.norms, 1.0)
        self._normalized: Optional[np.ndarray] = None
        if normalized_cache:
            self._normalized = embeddings / \
                self._safe_norms[:, None].astype(embeddings.dtype)
        self.groups: Optional[np.ndarray] = None
        self.num_groups = 0
        self._group_rows_order: Optional[np.ndarray] = None
        self._group_rows_bounds: Optional[np.ndarray] = None
        if groups is not None:
            groups = np.asarray(groups, dtype=np.int64)
            if groups.shape != (self.num_nodes,):
                raise ValueError(
                    f"groups must map every row; expected shape "
                    f"({self.num_nodes},), got {groups.shape}")
            if groups.size and groups.min() < 0:
                raise ValueError("group ids must be non-negative")
            self.groups = groups
            self.num_groups = int(groups.max()) + 1 if groups.size else 0
            # Group -> member rows: stable row order within each group so
            # the gathered query blocks are deterministic.
            self._group_rows_order = np.argsort(groups, kind="stable")
            self._group_rows_bounds = np.searchsorted(
                groups[self._group_rows_order],
                np.arange(self.num_groups + 1, dtype=np.int64))
        self._default_cand: Optional[np.ndarray] = None
        self._default_gather: Optional[dict] = None
        if candidates is not None:
            self._default_cand = _checked_candidates(candidates,
                                                     self.num_nodes)
            self._default_gather = self._gather(self._default_cand)

    # ------------------------------------------------------------- #
    # Candidate gathering
    # ------------------------------------------------------------- #

    def _gather(self, cand: np.ndarray) -> dict:
        """Materialise the catalogue's matrices (full-matrix = views)."""
        full = cand.size == self.num_nodes
        return {
            "ids": cand,
            "matrix": self.embeddings if full else self.embeddings[cand],
            "safe_norms": (self._safe_norms if full
                           else self._safe_norms[cand]),
            "normalized": (None if self._normalized is None
                           else (self._normalized if full
                                 else self._normalized[cand])),
            # Norm-descending scan order for ANN-style pruning (stable,
            # ids break norm ties, so the order is deterministic).
            "prune_order": None,
            # Group-sorted column structure for top_k_bases (lazy).
            "group_cols": None,
        }

    def _group_columns(self, gathered: dict):
        """Candidate columns bucketed by group, for reduceat reductions.

        Returns ``(col_order, seg_starts, seg_gids)``: scoring columns
        permuted group-ascending, each group's segment start, and the
        (sorted, unique) group ids present in the catalogue.  Computed
        once per gather and cached -- the grouped hot path then costs one
        column permutation plus one ``maximum.reduceat`` per request.
        """
        if gathered["group_cols"] is None:
            cand = gathered["ids"]
            gids = self.groups[cand]
            col_order = np.lexsort((cand, gids))
            sorted_gids = gids[col_order]
            seg_gids = np.unique(sorted_gids)
            seg_starts = np.searchsorted(sorted_gids, seg_gids)
            gathered["group_cols"] = (col_order, seg_starts, seg_gids)
        return gathered["group_cols"]

    def _resolve_candidates(self, candidates) -> dict:
        if candidates is None:
            if self._default_gather is not None:
                return self._default_gather
            self._default_cand = np.arange(self.num_nodes,
                                           dtype=np.int64)
            self._default_gather = self._gather(self._default_cand)
            return self._default_gather
        return self._gather(_checked_candidates(candidates,
                                                self.num_nodes))

    # ------------------------------------------------------------- #
    # Scoring
    # ------------------------------------------------------------- #

    def top_k(self, nodes: np.ndarray, k: int = 10,
              metric: str = "cosine",
              candidates: Optional[np.ndarray] = None,
              exclude_self: bool = True,
              exclude: Optional[Sequence[np.ndarray]] = None,
              prune: bool = False) -> TopKResult:
        """Top-``k`` catalogue nodes for each query node, best first.

        ``exclude`` optionally bars per-query node-id arrays (e.g. each
        user's training interactions) from that query's results;
        ``exclude_self`` bars the query node itself when it appears in
        the catalogue.  ``prune=True`` enables exact norm-bound pruning
        for the ``dot`` metric (see :meth:`_top_k_pruned`).
        """
        check_positive("k", k)
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; use "
                             f"{' or '.join(repr(m) for m in METRICS)}")
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if nodes.size and (nodes.min() < 0
                           or nodes.max() >= self.num_nodes):
            raise ValueError(
                f"query nodes must lie in [0, {self.num_nodes})")
        if exclude is not None and len(exclude) != nodes.size:
            raise ValueError("exclude must hold one id array per query")
        gathered = self._resolve_candidates(candidates)
        if prune and metric == "dot" and gathered["ids"].size > k:
            return self._top_k_pruned(nodes, k, gathered, exclude_self,
                                      exclude)
        queries = self.embeddings[nodes]
        scores = self._score(queries, nodes, metric, gathered)
        return self._select(scores, nodes, k, gathered, exclude_self,
                            exclude)

    def top_k_vectors(self, vectors: np.ndarray, k: int = 10,
                      metric: str = "cosine",
                      candidates: Optional[np.ndarray] = None,
                      exclude: Optional[Sequence[np.ndarray]] = None
                      ) -> TopKResult:
        """Top-``k`` for raw query *vectors* (analogy-style queries)."""
        check_positive("k", k)
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; use "
                             f"{' or '.join(repr(m) for m in METRICS)}")
        vectors = np.atleast_2d(np.asarray(vectors))
        if exclude is not None and len(exclude) != vectors.shape[0]:
            raise ValueError("exclude must hold one id array per query")
        gathered = self._resolve_candidates(candidates)
        scores = self._score(vectors, None, metric, gathered)
        return self._select(scores, None, k, gathered, False, exclude)

    def top_k_bases(self, bases: np.ndarray, k: int = 10,
                    metric: str = "cosine",
                    candidates: Optional[np.ndarray] = None,
                    exclude_self: bool = True) -> TopKResult:
        """Top-``k`` *groups* for each query group (persona-aware lookup).

        Requires ``groups`` at construction.  A query group (e.g. a base
        node whose personas are the member rows) scores a candidate
        group as the **max over member-pair scores** -- Splitter's
        best-persona-pair semantics -- and the returned ids are group
        ids, deterministic with smallest-group-id tie-breaks and the
        usual ``(-1, -inf)`` padding.  ``candidates`` (member-row ids,
        e.g. a persona catalogue) restricts the candidate side; a group
        with no candidate rows cannot be returned.  The whole batch is
        still one matmul: all query members score at once, then two
        ``maximum`` reductions collapse member rows/columns to groups.
        """
        check_positive("k", k)
        if self.groups is None:
            raise ValueError(
                "top_k_bases needs the groups row->group mapping at "
                "construction")
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; use "
                             f"{' or '.join(repr(m) for m in METRICS)}")
        bases = np.atleast_1d(np.asarray(bases, dtype=np.int64))
        if bases.size and (bases.min() < 0
                           or bases.max() >= self.num_groups):
            raise ValueError(
                f"query groups must lie in [0, {self.num_groups})")
        gathered = self._resolve_candidates(candidates)
        col_order, seg_starts, seg_gids = self._group_columns(gathered)

        # Query side: every member row of every queried group, scored in
        # one batch; q_bounds marks each group's row block.
        lo = self._group_rows_bounds[bases]
        hi = self._group_rows_bounds[bases + 1]
        q_counts = hi - lo
        q_rows = np.concatenate(
            [self._group_rows_order[a:b] for a, b in zip(lo, hi)]) \
            if bases.size else np.empty(0, dtype=np.int64)
        q_bounds = np.zeros(bases.size + 1, dtype=np.int64)
        np.cumsum(q_counts, out=q_bounds[1:])

        out_ids = np.full((bases.size, k), -1, dtype=np.int64)
        out_scores = np.full((bases.size, k), -np.inf, dtype=np.float64)
        if seg_gids.size == 0 or q_rows.size == 0:
            return TopKResult(out_ids, out_scores)
        member_scores = self._score(self.embeddings[q_rows], q_rows,
                                    metric, gathered)
        # Columns to groups, then member rows to query groups (max-max).
        grouped_cols = np.maximum.reduceat(
            member_scores[:, col_order], seg_starts, axis=1)
        nonempty = np.flatnonzero(q_counts > 0)
        scores = np.full((bases.size, seg_gids.size), -np.inf,
                         dtype=np.float64)
        if nonempty.size:
            # Start offsets of the nonempty query groups are strictly
            # increasing (empty groups contribute no rows), so reduceat
            # segments cover exactly each group's member block.
            reduced = np.maximum.reduceat(grouped_cols,
                                          q_bounds[:-1][nonempty], axis=0)
            scores[nonempty] = reduced
        if exclude_self:
            pos = np.searchsorted(seg_gids, bases)
            hit = (pos < seg_gids.size) & \
                (seg_gids[np.minimum(pos, seg_gids.size - 1)] == bases)
            scores[np.flatnonzero(hit), pos[hit]] = -np.inf
        for row in range(bases.size):
            row_scores = scores[row]
            top = deterministic_top_k(row_scores, k)
            keep = row_scores[top] > -np.inf
            top = top[keep]
            out_ids[row, :top.size] = seg_gids[top]
            out_scores[row, :top.size] = row_scores[top]
        return TopKResult(out_ids, out_scores)

    def _score(self, queries: np.ndarray, nodes: Optional[np.ndarray],
               metric: str, gathered: dict) -> np.ndarray:
        """``(q, c)`` score matrix: one matmul per request batch."""
        if metric == "cosine" and gathered["normalized"] is not None:
            scores = np.asarray(gathered["normalized"] @ queries.T,
                                dtype=np.float64).T
            qn = (self.norms[nodes] if nodes is not None
                  else row_norms(queries))
            scores /= np.where(qn > 0.0, qn, 1.0)[:, None]
            return scores
        scores = np.asarray(gathered["matrix"] @ queries.T,
                            dtype=np.float64).T
        if metric == "cosine":
            scores /= gathered["safe_norms"][None, :]
            qn = (self.norms[nodes] if nodes is not None
                  else row_norms(queries))
            scores /= np.where(qn > 0.0, qn, 1.0)[:, None]
        return scores

    def _select(self, scores: np.ndarray, nodes: Optional[np.ndarray],
                k: int, gathered: dict, exclude_self: bool,
                exclude: Optional[Sequence[np.ndarray]]) -> TopKResult:
        """Mask exclusions, then deterministic per-row top-k."""
        cand = gathered["ids"]
        if exclude_self and nodes is not None and cand.size:
            pos = np.searchsorted(cand, nodes)
            hit = (pos < cand.size) & \
                (cand[np.minimum(pos, cand.size - 1)] == nodes)
            scores[np.flatnonzero(hit), pos[hit]] = -np.inf
        if exclude is not None and cand.size:
            for row, barred in enumerate(exclude):
                barred = np.asarray(barred, dtype=np.int64)
                if not barred.size:
                    continue
                pos = np.searchsorted(cand, barred)
                hit = (pos < cand.size) & \
                    (cand[np.minimum(pos, cand.size - 1)] == barred)
                scores[row, pos[hit]] = -np.inf
        q = scores.shape[0]
        out_ids = np.full((q, k), -1, dtype=np.int64)
        out_scores = np.full((q, k), -np.inf, dtype=np.float64)
        for row in range(q):
            row_scores = scores[row]
            top = deterministic_top_k(row_scores, k)
            keep = row_scores[top] > -np.inf
            top = top[keep]
            out_ids[row, :top.size] = cand[top]
            out_scores[row, :top.size] = row_scores[top]
        return TopKResult(out_ids, out_scores)

    # ------------------------------------------------------------- #
    # ANN-style norm pruning (dot metric, exact)
    # ------------------------------------------------------------- #

    def _top_k_pruned(self, nodes: np.ndarray, k: int, gathered: dict,
                      exclude_self: bool,
                      exclude: Optional[Sequence[np.ndarray]],
                      chunk: int = 4096) -> TopKResult:
        """Exact dot-product top-k scanning candidates by descending norm.

        Cauchy-Schwarz bounds every unseen candidate's dot product by
        ``||c|| * ||q||``; scanning in norm-descending order, once that
        bound falls *strictly* below the current kth-best score no
        remaining candidate can enter the top-k -- ties at the bound are
        kept scanning, so the smallest-id tie-break is preserved and the
        result equals the full scan's bytes.
        """
        cand = gathered["ids"]
        if gathered["prune_order"] is None:
            norms = gathered["safe_norms"] * (self.norms[cand] > 0.0)
            gathered["prune_order"] = np.lexsort((cand, -norms))
        order = gathered["prune_order"]
        cand_norms = self.norms[cand]
        q = nodes.size
        out_ids = np.full((q, k), -1, dtype=np.int64)
        out_scores = np.full((q, k), -np.inf, dtype=np.float64)
        for row, node in enumerate(nodes):
            query = self.embeddings[node]
            qnorm = float(self.norms[node])
            barred = set()
            if exclude_self:
                barred.add(int(node))
            if exclude is not None:
                barred.update(int(b) for b in np.asarray(exclude[row]))
            kept_ids: List[np.ndarray] = []
            kept_scores: List[np.ndarray] = []
            kth_best = -np.inf
            n_kept = 0
            for lo in range(0, order.size, chunk):
                idx = order[lo:lo + chunk]
                if n_kept >= k and \
                        float(cand_norms[idx[0]]) * qnorm < kth_best:
                    break  # bound strictly below kth best: done
                chunk_scores = np.asarray(
                    self.embeddings[cand[idx]] @ query, dtype=np.float64)
                if barred:
                    mask = np.fromiter(
                        (int(c) not in barred for c in cand[idx]),
                        dtype=bool, count=idx.size)
                    idx, chunk_scores = idx[mask], chunk_scores[mask]
                if not idx.size:
                    continue
                kept_ids.append(cand[idx])
                kept_scores.append(chunk_scores)
                n_kept += idx.size
                if n_kept >= k:
                    flat_scores = np.concatenate(kept_scores)
                    kth_best = float(
                        -np.partition(-flat_scores, k - 1)[k - 1])
            if not kept_ids:
                continue
            ids = np.concatenate(kept_ids)
            scores = np.concatenate(kept_scores)
            # Tie-break on the original node id, not scan position.
            by_id = np.argsort(ids, kind="stable")
            ids, scores = ids[by_id], scores[by_id]
            top = deterministic_top_k(scores, k)
            out_ids[row, :top.size] = ids[top]
            out_scores[row, :top.size] = scores[top]
        return TopKResult(out_ids, out_scores)
