"""Multi-worker query front end (the online half of the reproduction).

The paper motivates billion-edge embedding with online recommendation
(§1); this module serves sustained query traffic from a trained matrix.
A :class:`QueryEngine` wraps an :class:`~repro.serving.store.
EmbeddingStore` and a :class:`~repro.serving.scorer.BatchTopKScorer`
behind one call -- ``engine.query(nodes, k)`` -- in two execution modes:

* ``workers=0`` -- in-process: the scorer runs on the caller's thread.
* ``workers>=1`` -- a :class:`~repro.runtime.executor.ProcessExecutor`
  pool whose initializer attaches the store **once** per worker
  (zero-copy, shared pages); each request batch then ships only its
  query ids and returns only its ``(k ids, k scores)`` rows.

Request batches are the unit of dispatch: a batch is scored wholly by
one worker with the same matmul the in-process path runs, so multi-worker
responses are **byte-identical** to in-process responses -- including
under tied scores, thanks to the scorer's id tie-break.  ``submit``
returns a pending handle for pipelined load (the QPS bench keeps
``2 x workers`` requests in flight); per-request failures surface from
``result()`` without tearing the pool down.

Per-worker latency accounting rides on the responses: every worker
stamps its pid and scoring time, and :meth:`QueryEngine.latency_summary`
aggregates count / mean / p50 / p99 per worker and overall -- the
numbers ``bench_serving_qps.py`` gates.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.executor import ProcessExecutor
from repro.serving.scorer import METRICS, BatchTopKScorer, TopKResult
from repro.serving.store import EmbeddingStore
from repro.utils.sharedmem import SharedGroup, attach_shared_array

__all__ = ["PendingQuery", "QueryEngine"]

#: Worker-side serving state installed by the pool initializer.
_SERVE_STATE: Dict[str, object] = {}


def _serving_worker_init(store_handle, candidates_handle,
                         normalized_cache: bool) -> None:
    store = EmbeddingStore.attach(store_handle)
    candidates = (None if candidates_handle is None
                  else attach_shared_array(candidates_handle))
    _SERVE_STATE["store"] = store
    _SERVE_STATE["candidates"] = candidates
    _SERVE_STATE["normalized_cache"] = normalized_cache
    _SERVE_STATE["generation"] = store.generation
    _SERVE_STATE["scorer"] = BatchTopKScorer(
        store.embeddings, candidates=candidates,
        normalized_cache=normalized_cache, norms=store.norms)


def _serving_query_task(nodes, k, metric, candidates, exclude_self,
                        exclude, prune):
    # The scorer's construction-time caches (safe norms, normalised
    # matrix, gathered catalogues) are only valid for the generation of
    # the matrix they were built from; a store update in the owner bumps
    # the shared generation slot, and the worker rebuilds before scoring
    # rather than mixing new vectors with stale norms.
    store: EmbeddingStore = _SERVE_STATE["store"]
    if store.generation != _SERVE_STATE["generation"]:
        _SERVE_STATE["generation"] = store.generation
        _SERVE_STATE["scorer"] = BatchTopKScorer(
            store.embeddings, candidates=_SERVE_STATE["candidates"],
            normalized_cache=_SERVE_STATE["normalized_cache"],
            norms=store.norms)
    scorer: BatchTopKScorer = _SERVE_STATE["scorer"]
    start = time.perf_counter()
    result = scorer.top_k(nodes, k=k, metric=metric,
                          candidates=candidates,
                          exclude_self=exclude_self, exclude=exclude,
                          prune=prune)
    elapsed = time.perf_counter() - start
    return result.ids, result.scores, os.getpid(), elapsed


class PendingQuery:
    """Handle of an in-flight request; ``result()`` blocks for the answer."""

    def __init__(self, engine: "QueryEngine", future=None,
                 ready: Optional[TopKResult] = None) -> None:
        self._engine = engine
        self._future = future
        self._ready = ready

    def result(self) -> TopKResult:
        if self._ready is not None:
            return self._ready
        ids, scores, pid, elapsed = self._future.result()
        self._engine._record(f"worker-{pid}", elapsed)
        self._ready = TopKResult(ids, scores)
        self._future = None
        return self._ready


class QueryEngine:
    """Batched top-k query serving over a shared embedding store.

    Parameters
    ----------
    store:
        An :class:`EmbeddingStore`, or a bare ``(n, d)`` matrix (wrapped
        into a store automatically -- ``mode="shared"`` when workers are
        requested, ``"memory"`` otherwise).
    workers:
        0 serves in-process; ``>= 1`` starts that many query worker
        processes attached to the store.
    metric:
        Default similarity metric (``"cosine"`` or ``"dot"``); per-call
        override available.
    candidates:
        Engine-wide catalogue restriction (e.g. the item side of a
        bipartite graph); shipped to workers through shared memory once.
    normalized_cache:
        Precompute the row-normalised matrix in every scorer (see
        :class:`BatchTopKScorer`).
    """

    def __init__(self, store, workers: int = 0, metric: str = "cosine",
                 candidates: Optional[np.ndarray] = None,
                 normalized_cache: bool = False,
                 close_store: bool = False) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; use "
                             f"{' or '.join(repr(m) for m in METRICS)}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if not isinstance(store, EmbeddingStore):
            store = EmbeddingStore.from_array(
                np.asarray(store),
                mode="shared" if workers else "memory")
            close_store = True
        self.store = store
        self.workers = workers
        self.metric = metric
        self._close_store = close_store
        self._closed = False
        self.latencies: Dict[str, List[float]] = {}
        self._group: Optional[SharedGroup] = None
        self._pool: Optional[ProcessExecutor] = None
        self._scorer: Optional[BatchTopKScorer] = None
        self._candidates = candidates
        self._normalized_cache = normalized_cache
        self._scorer_generation = store.generation
        try:
            if workers == 0:
                self._scorer = BatchTopKScorer(
                    store.embeddings, candidates=candidates,
                    normalized_cache=normalized_cache, norms=store.norms)
            else:
                candidates_handle = None
                if candidates is not None:
                    self._group = SharedGroup()
                    candidates_handle = self._group.share(
                        np.asarray(candidates, dtype=np.int64))
                self._pool = ProcessExecutor(
                    workers, initializer=_serving_worker_init,
                    initargs=(store.handle, candidates_handle,
                              normalized_cache))
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("query engine already shut down")

    def submit(self, nodes: np.ndarray, k: int = 10,
               metric: Optional[str] = None,
               candidates: Optional[np.ndarray] = None,
               exclude_self: bool = True,
               exclude: Optional[Sequence[np.ndarray]] = None,
               prune: bool = False) -> PendingQuery:
        """Dispatch one request batch; returns a :class:`PendingQuery`.

        In-process engines answer immediately; multi-worker engines ship
        the whole batch to one worker, keeping request pipelining (and
        byte parity with in-process scoring) intact.
        """
        self._check_open()
        metric = metric if metric is not None else self.metric
        nodes = np.asarray(nodes, dtype=np.int64)
        if self._pool is None:
            if self.store.generation != self._scorer_generation:
                # The store was updated under us (dynamic re-embedding);
                # the scorer's norm/normalised/catalogue caches belong
                # to the old matrix.  Rebuild before scoring.
                self._scorer_generation = self.store.generation
                self._scorer = BatchTopKScorer(
                    self.store.embeddings, candidates=self._candidates,
                    normalized_cache=self._normalized_cache,
                    norms=self.store.norms)
            start = time.perf_counter()
            result = self._scorer.top_k(nodes, k=k, metric=metric,
                                        candidates=candidates,
                                        exclude_self=exclude_self,
                                        exclude=exclude, prune=prune)
            self._record("inprocess", time.perf_counter() - start)
            return PendingQuery(self, ready=result)
        future = self._pool.submit(
            _serving_query_task, nodes, k, metric, candidates,
            exclude_self, exclude, prune)
        return PendingQuery(self, future=future)

    def query(self, nodes: np.ndarray, k: int = 10,
              metric: Optional[str] = None,
              candidates: Optional[np.ndarray] = None,
              exclude_self: bool = True,
              exclude: Optional[Sequence[np.ndarray]] = None,
              prune: bool = False) -> TopKResult:
        """Synchronous :meth:`submit` -- blocks for the batch's answer."""
        return self.submit(nodes, k=k, metric=metric,
                           candidates=candidates,
                           exclude_self=exclude_self, exclude=exclude,
                           prune=prune).result()

    # ------------------------------------------------------------- #
    # Latency accounting
    # ------------------------------------------------------------- #

    def _record(self, worker: str, elapsed: float) -> None:
        self.latencies.setdefault(worker, []).append(elapsed)

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-worker and overall scoring-latency stats (seconds).

        Keys are worker tags (``inprocess`` / ``worker-<pid>``) plus
        ``"overall"``; values hold ``count``, ``mean``, ``p50``, ``p99``.
        """
        summary: Dict[str, Dict[str, float]] = {}
        all_samples: List[float] = []
        for worker, samples in sorted(self.latencies.items()):
            arr = np.asarray(samples, dtype=np.float64)
            summary[worker] = {
                "count": float(arr.size),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99)),
            }
            all_samples.extend(samples)
        if all_samples:
            arr = np.asarray(all_samples, dtype=np.float64)
            summary["overall"] = {
                "count": float(arr.size),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99)),
            }
        return summary

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def close(self) -> None:
        """Graceful shutdown: drain the pool, release shared segments."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._group is not None:
            self._group.close()
            self._group = None
        if self._close_store and self.store is not None:
            self.store.close()
        self._scorer = None

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
