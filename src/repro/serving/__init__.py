"""Embedding serving layer: from batch artifact to query engine.

The offline pipeline (partition -> sample -> train) produces an
``(n, d)`` matrix; this package serves it under sustained traffic --
the online recommendation workload the paper opens with (§1):

* :mod:`repro.serving.store`  -- :class:`EmbeddingStore`: the matrix in
  shared memory or a file-backed mmap, opened once, viewed zero-copy by
  every query worker.
* :mod:`repro.serving.scorer` -- :class:`BatchTopKScorer`: batched
  dot/cosine top-k with cached norms, candidate catalogues, exact
  norm-bound pruning, and deterministic id tie-breaks.
* :mod:`repro.serving.engine` -- :class:`QueryEngine`: the in-process /
  multi-worker front end with request pipelining, per-worker latency
  accounting and graceful shutdown.
* :mod:`repro.serving.trace`  -- :func:`zipf_query_trace`: the skewed
  synthetic request trace the QPS benchmark replays.

Quickstart::

    from repro.serving import EmbeddingStore, QueryEngine

    store = EmbeddingStore.from_array(result.embeddings)   # shared memory
    with QueryEngine(store, workers=4) as engine:
        response = engine.query([42, 7], k=10)             # (2, 10) ids
"""

from repro.serving.engine import PendingQuery, QueryEngine
from repro.serving.scorer import (
    BatchTopKScorer,
    TopKResult,
    deterministic_top_k,
    row_norms,
)
from repro.serving.store import EmbeddingStore, StoreHandle
from repro.serving.trace import zipf_query_trace

__all__ = [
    "BatchTopKScorer",
    "EmbeddingStore",
    "PendingQuery",
    "QueryEngine",
    "StoreHandle",
    "TopKResult",
    "deterministic_top_k",
    "row_norms",
    "zipf_query_trace",
]
