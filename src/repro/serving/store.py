"""Shared embedding store: open a trained matrix once, query it anywhere.

The batch pipeline ends with an ``(n, d)`` embedding matrix; the serving
layer starts with it.  :class:`EmbeddingStore` owns that matrix in one of
three backing modes and hands query workers zero-copy views:

* ``"shared"`` -- a POSIX shared-memory segment
  (:class:`~repro.utils.sharedmem.SharedArray`).  One copy in RAM total,
  however many query workers attach; the default for serving a matrix
  that is already in memory.
* ``"mmap"`` -- a file-backed ``.npy`` map (the new
  :meth:`SharedArray.create_file` / :meth:`SharedArray.from_file` mode).
  The matrix is opened straight from disk, pages are shared read-only
  through the OS cache, nothing is loaded up front -- matrices larger
  than RAM serve fine, which is also the first step of the out-of-core
  roadmap item.
* ``"memory"`` -- a plain in-process array; no cross-process handle, for
  single-process use and tests.

The store also owns the scorer's warm-up artifacts: row norms are
computed **once** in the parent and shipped through shared memory, so no
query worker pays the O(n d) pass.  ``handle`` is the picklable
descriptor the multi-worker front end passes to
:meth:`EmbeddingStore.attach`.

Mutable stores carry a **generation counter** so those warm-up caches
cannot go stale.  :meth:`update` rewrites the matrix in place (the
dynamic-update pipeline's re-embedding lands here), recomputes the norm
cache, and bumps ``generation`` -- a shared ``int64[1]`` slot that
attached workers see instantly.  Anything that derives state from the
matrix (the scorer's ``_safe_norms`` / normalised-matrix / gathered
catalogues) keys its caches on ``generation`` and rebuilds on change;
:class:`~repro.serving.engine.QueryEngine` does exactly that on both the
in-process and the worker path, so a :class:`~repro.serving.scorer.
BatchTopKScorer` never scores post-update vectors against pre-update
norms.
"""

from __future__ import annotations

import os
from typing import NamedTuple, Optional

import numpy as np

from repro.serving.scorer import row_norms
from repro.utils.sharedmem import (
    SharedArray,
    SharedArrayHandle,
    SharedGroup,
    attach_shared_array,
)

__all__ = ["EmbeddingStore", "StoreHandle"]

MODES = ("shared", "mmap", "memory")


class StoreHandle(NamedTuple):
    """Picklable descriptor of a store (embedding matrix + norm cache).

    ``meta`` names the shared ``int64[1]`` generation slot; it defaults
    to ``None`` so handles pickled before the slot existed still attach
    (such stores simply report generation 0 forever).
    """

    embeddings: SharedArrayHandle
    norms: SharedArrayHandle
    meta: Optional[SharedArrayHandle] = None


class EmbeddingStore:
    """Owner of a served embedding matrix and its norm cache.

    Build with :meth:`from_array` (serve a matrix you already hold),
    :meth:`open` (map a saved ``.npy`` / load a word2vec text file), or
    :meth:`attach` (worker side).  ``close`` releases the owner's
    segments exactly once; attached stores never unlink.
    """

    def __init__(self, embeddings: np.ndarray, norms: np.ndarray,
                 mode: str, group: Optional[SharedGroup],
                 handle: Optional[StoreHandle],
                 meta: Optional[np.ndarray] = None) -> None:
        self.embeddings = embeddings
        self.norms = norms
        self.mode = mode
        self._group = group
        self._handle = handle
        # Shared int64[1] generation slot; memory-mode stores (no
        # cross-process surface) fall back to a plain local counter.
        self._meta = meta
        self._local_generation = 0

    # ------------------------------------------------------------- #
    # Constructors
    # ------------------------------------------------------------- #

    @classmethod
    def from_array(cls, embeddings: np.ndarray, mode: str = "shared",
                   path: Optional[str] = None) -> "EmbeddingStore":
        """Serve ``embeddings`` from the chosen backing ``mode``.

        ``mode="mmap"`` writes the matrix to ``path`` (``.npy``) and maps
        it back, leaving a reusable on-disk artifact; ``"shared"`` copies
        it into a shared-memory segment; ``"memory"`` keeps the array
        as-is (no cross-process handle).
        """
        if mode not in MODES:
            raise ValueError(f"unknown store mode {mode!r}; options: "
                             f"{'/'.join(MODES)}")
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2:
            raise ValueError(
                f"embeddings must be 2-D, got shape {embeddings.shape}")
        norms = row_norms(embeddings)
        if mode == "memory":
            return cls(embeddings, norms, mode, None, None)
        group = SharedGroup()
        try:
            if mode == "mmap":
                if path is None:
                    raise ValueError("mode='mmap' needs a path to map")
                emb_shared = group.adopt(
                    SharedArray.create_file(path, embeddings))
            else:
                emb_shared = group.adopt(SharedArray.create(embeddings))
            norms_shared = group.adopt(SharedArray.create(norms))
            meta_shared = group.adopt(
                SharedArray.create(np.zeros(1, dtype=np.int64)))
            handle = StoreHandle(emb_shared.handle, norms_shared.handle,
                                 meta_shared.handle)
            return cls(emb_shared.array, norms_shared.array, mode, group,
                       handle, meta=meta_shared.array)
        except BaseException:
            group.close()
            raise

    @classmethod
    def open(cls, path: str, mode: str = "mmap") -> "EmbeddingStore":
        """Open a saved matrix for serving.

        ``.npy`` files are memory-mapped zero-copy (or copied into shared
        memory under ``mode="shared"``); anything else is parsed as the
        word2vec text format of :func:`repro.graph.io.save_embeddings`
        and then backed per ``mode``.
        """
        if path.endswith(".npy"):
            if mode == "mmap":
                group = SharedGroup()
                try:
                    shared = group.adopt(SharedArray.from_file(path,
                                                               mode="r"))
                    norms_shared = group.adopt(
                        SharedArray.create(row_norms(shared.array)))
                    meta_shared = group.adopt(
                        SharedArray.create(np.zeros(1, dtype=np.int64)))
                    handle = StoreHandle(shared.handle,
                                         norms_shared.handle,
                                         meta_shared.handle)
                    return cls(shared.array, norms_shared.array, "mmap",
                               group, handle, meta=meta_shared.array)
                except BaseException:
                    group.close()
                    raise
            return cls.from_array(np.load(path), mode=mode, path=None)
        from repro.graph.io import load_embeddings

        return cls.from_array(load_embeddings(path), mode=mode,
                              path=path + ".npy" if mode == "mmap"
                              else None)

    @classmethod
    def attach(cls, handle: StoreHandle) -> "EmbeddingStore":
        """Worker-side view of a parent-owned store (never unlinks)."""
        meta = getattr(handle, "meta", None)
        return cls(attach_shared_array(handle.embeddings),
                   attach_shared_array(handle.norms),
                   "attached", None, handle,
                   meta=None if meta is None
                   else attach_shared_array(meta))

    # ------------------------------------------------------------- #
    # Introspection
    # ------------------------------------------------------------- #

    @property
    def num_nodes(self) -> int:
        return int(self.embeddings.shape[0])

    @property
    def dim(self) -> int:
        return int(self.embeddings.shape[1])

    @property
    def handle(self) -> StoreHandle:
        """Picklable descriptor for :meth:`attach` (shared/mmap only)."""
        if self._handle is None:
            raise ValueError(
                "a mode='memory' store has no cross-process handle; "
                "build it with mode='shared' or 'mmap'")
        return self._handle

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every :meth:`update` /
        :meth:`refresh_norms`.

        Shared across processes for shared/mmap stores (attached workers
        read the owner's bumps instantly); derived-cache owners compare
        it against the generation they built at and rebuild on change.
        Stores attached through a pre-generation handle report 0.
        """
        if self._meta is not None:
            return int(self._meta[0])
        return self._local_generation

    # ------------------------------------------------------------- #
    # Mutation (the dynamic-update seam)
    # ------------------------------------------------------------- #

    def _bump_generation(self) -> int:
        if self._meta is not None:
            self._meta[0] += 1
            return int(self._meta[0])
        self._local_generation += 1
        return self._local_generation

    def refresh_norms(self) -> int:
        """Recompute the norm cache from the current matrix, bump
        generation.

        For callers that mutated ``embeddings`` directly (in-place
        writes through the shared view) instead of going through
        :meth:`update`.  Returns the new generation.
        """
        if self.mode == "attached":
            raise RuntimeError(
                "attached stores are read-only views; only the owning "
                "store may refresh norms")
        fresh = row_norms(self.embeddings)
        if self.mode == "memory":
            self.norms = fresh
        else:
            self.norms[...] = fresh
        return self._bump_generation()

    def update(self, new_embeddings: np.ndarray) -> int:
        """Replace the served matrix, refresh norms, bump generation.

        The write is **in place** for shared/mmap stores -- attached
        workers keep their zero-copy views and observe the new vectors
        plus the bumped generation without re-attaching -- so the new
        matrix must match the current shape and the backing must be
        writable (a store ``open``\\ ed read-only from ``.npy`` cannot be
        updated in place; rebuild it with :meth:`from_array`).
        Memory-mode stores simply adopt the new array, any shape.
        Returns the new generation.
        """
        if self.mode == "attached":
            raise RuntimeError(
                "attached stores are read-only views; updates go "
                "through the owning store")
        new_embeddings = np.asarray(new_embeddings)
        if new_embeddings.ndim != 2:
            raise ValueError(f"embeddings must be 2-D, got shape "
                             f"{new_embeddings.shape}")
        if self.mode == "memory":
            self.embeddings = new_embeddings
            return self.refresh_norms()
        if new_embeddings.shape != self.embeddings.shape:
            raise ValueError(
                f"in-place update needs shape {self.embeddings.shape}, "
                f"got {new_embeddings.shape}; rebuild the store with "
                f"from_array for a resized matrix")
        if not self.embeddings.flags.writeable:
            raise ValueError(
                "store matrix is a read-only map; reopen writable or "
                "rebuild with from_array before updating")
        self.embeddings[...] = new_embeddings.astype(
            self.embeddings.dtype, copy=False)
        if isinstance(self.embeddings, np.memmap):
            self.embeddings.flush()
        return self.refresh_norms()

    def save(self, path: str) -> None:
        """Persist the matrix as ``.npy`` (the mmap-openable format)."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        np.save(path, np.asarray(self.embeddings))

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def close(self) -> None:
        """Release owned segments/maps (idempotent; no-op when attached)."""
        if self._group is not None:
            group, self._group = self._group, None
            group.close()
        self.embeddings = None
        self.norms = None
        self._meta = None

    def __enter__(self) -> "EmbeddingStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
