"""Shared embedding store: open a trained matrix once, query it anywhere.

The batch pipeline ends with an ``(n, d)`` embedding matrix; the serving
layer starts with it.  :class:`EmbeddingStore` owns that matrix in one of
three backing modes and hands query workers zero-copy views:

* ``"shared"`` -- a POSIX shared-memory segment
  (:class:`~repro.utils.sharedmem.SharedArray`).  One copy in RAM total,
  however many query workers attach; the default for serving a matrix
  that is already in memory.
* ``"mmap"`` -- a file-backed ``.npy`` map (the new
  :meth:`SharedArray.create_file` / :meth:`SharedArray.from_file` mode).
  The matrix is opened straight from disk, pages are shared read-only
  through the OS cache, nothing is loaded up front -- matrices larger
  than RAM serve fine, which is also the first step of the out-of-core
  roadmap item.
* ``"memory"`` -- a plain in-process array; no cross-process handle, for
  single-process use and tests.

The store also owns the scorer's warm-up artifacts: row norms are
computed **once** in the parent and shipped through shared memory, so no
query worker pays the O(n d) pass.  ``handle`` is the picklable
descriptor the multi-worker front end passes to
:meth:`EmbeddingStore.attach`.
"""

from __future__ import annotations

import os
from typing import NamedTuple, Optional

import numpy as np

from repro.serving.scorer import row_norms
from repro.utils.sharedmem import (
    SharedArray,
    SharedArrayHandle,
    SharedGroup,
    attach_shared_array,
)

__all__ = ["EmbeddingStore", "StoreHandle"]

MODES = ("shared", "mmap", "memory")


class StoreHandle(NamedTuple):
    """Picklable descriptor of a store (embedding matrix + norm cache)."""

    embeddings: SharedArrayHandle
    norms: SharedArrayHandle


class EmbeddingStore:
    """Owner of a served embedding matrix and its norm cache.

    Build with :meth:`from_array` (serve a matrix you already hold),
    :meth:`open` (map a saved ``.npy`` / load a word2vec text file), or
    :meth:`attach` (worker side).  ``close`` releases the owner's
    segments exactly once; attached stores never unlink.
    """

    def __init__(self, embeddings: np.ndarray, norms: np.ndarray,
                 mode: str, group: Optional[SharedGroup],
                 handle: Optional[StoreHandle]) -> None:
        self.embeddings = embeddings
        self.norms = norms
        self.mode = mode
        self._group = group
        self._handle = handle

    # ------------------------------------------------------------- #
    # Constructors
    # ------------------------------------------------------------- #

    @classmethod
    def from_array(cls, embeddings: np.ndarray, mode: str = "shared",
                   path: Optional[str] = None) -> "EmbeddingStore":
        """Serve ``embeddings`` from the chosen backing ``mode``.

        ``mode="mmap"`` writes the matrix to ``path`` (``.npy``) and maps
        it back, leaving a reusable on-disk artifact; ``"shared"`` copies
        it into a shared-memory segment; ``"memory"`` keeps the array
        as-is (no cross-process handle).
        """
        if mode not in MODES:
            raise ValueError(f"unknown store mode {mode!r}; options: "
                             f"{'/'.join(MODES)}")
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2:
            raise ValueError(
                f"embeddings must be 2-D, got shape {embeddings.shape}")
        norms = row_norms(embeddings)
        if mode == "memory":
            return cls(embeddings, norms, mode, None, None)
        group = SharedGroup()
        try:
            if mode == "mmap":
                if path is None:
                    raise ValueError("mode='mmap' needs a path to map")
                emb_shared = group.adopt(
                    SharedArray.create_file(path, embeddings))
            else:
                emb_shared = group.adopt(SharedArray.create(embeddings))
            norms_shared = group.adopt(SharedArray.create(norms))
            handle = StoreHandle(emb_shared.handle, norms_shared.handle)
            return cls(emb_shared.array, norms_shared.array, mode, group,
                       handle)
        except BaseException:
            group.close()
            raise

    @classmethod
    def open(cls, path: str, mode: str = "mmap") -> "EmbeddingStore":
        """Open a saved matrix for serving.

        ``.npy`` files are memory-mapped zero-copy (or copied into shared
        memory under ``mode="shared"``); anything else is parsed as the
        word2vec text format of :func:`repro.graph.io.save_embeddings`
        and then backed per ``mode``.
        """
        if path.endswith(".npy"):
            if mode == "mmap":
                group = SharedGroup()
                try:
                    shared = group.adopt(SharedArray.from_file(path,
                                                               mode="r"))
                    norms_shared = group.adopt(
                        SharedArray.create(row_norms(shared.array)))
                    handle = StoreHandle(shared.handle,
                                         norms_shared.handle)
                    return cls(shared.array, norms_shared.array, "mmap",
                               group, handle)
                except BaseException:
                    group.close()
                    raise
            return cls.from_array(np.load(path), mode=mode, path=None)
        from repro.graph.io import load_embeddings

        return cls.from_array(load_embeddings(path), mode=mode,
                              path=path + ".npy" if mode == "mmap"
                              else None)

    @classmethod
    def attach(cls, handle: StoreHandle) -> "EmbeddingStore":
        """Worker-side view of a parent-owned store (never unlinks)."""
        return cls(attach_shared_array(handle.embeddings),
                   attach_shared_array(handle.norms),
                   "attached", None, handle)

    # ------------------------------------------------------------- #
    # Introspection
    # ------------------------------------------------------------- #

    @property
    def num_nodes(self) -> int:
        return int(self.embeddings.shape[0])

    @property
    def dim(self) -> int:
        return int(self.embeddings.shape[1])

    @property
    def handle(self) -> StoreHandle:
        """Picklable descriptor for :meth:`attach` (shared/mmap only)."""
        if self._handle is None:
            raise ValueError(
                "a mode='memory' store has no cross-process handle; "
                "build it with mode='shared' or 'mmap'")
        return self._handle

    def save(self, path: str) -> None:
        """Persist the matrix as ``.npy`` (the mmap-openable format)."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        np.save(path, np.asarray(self.embeddings))

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def close(self) -> None:
        """Release owned segments/maps (idempotent; no-op when attached)."""
        if self._group is not None:
            group, self._group = self._group, None
            group.close()
        self.embeddings = None
        self.norms = None

    def __enter__(self) -> "EmbeddingStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
