"""Simulated query traces (the serving benchmark's traffic model).

Real recommendation traffic is heavily skewed -- a small fraction of
users generates most requests.  :func:`zipf_query_trace` reproduces that
shape deterministically: node popularity follows a Zipf law over a
seeded random rank assignment, and queries arrive in fixed-size request
batches (the unit the front end dispatches to workers).  The QPS bench
replays a scaled-down "million-user" trace through
:class:`~repro.serving.engine.QueryEngine` and gates sustained
queries/sec and p99 latency.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive

__all__ = ["zipf_query_trace"]


def zipf_query_trace(
    num_queries: int,
    num_nodes: int,
    batch_size: int = 64,
    exponent: float = 1.1,
    seed: SeedLike = 0,
    nodes: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Zipf-skewed query batches over ``num_nodes`` (or given ``nodes``).

    Popularity rank ``r`` gets weight ``r ** -exponent``; which node
    holds which rank is a seeded permutation, so the trace is a pure
    function of ``(seed, sizes)``.  Returns ``ceil(num_queries /
    batch_size)`` int64 arrays; the last may be short.
    """
    check_positive("num_queries", num_queries)
    check_positive("batch_size", batch_size)
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    if nodes is not None:
        nodes = np.asarray(nodes, dtype=np.int64)
        num_nodes = int(nodes.size)
    check_positive("num_nodes", num_nodes)
    rng = default_rng(seed)
    weights = np.arange(1, num_nodes + 1, dtype=np.float64) ** -exponent
    probs = weights / weights.sum()
    rank_of = rng.permutation(num_nodes)
    draws = rng.choice(num_nodes, size=num_queries, p=probs)
    queries = rank_of[draws].astype(np.int64)
    if nodes is not None:
        queries = nodes[queries]
    return [queries[lo:lo + batch_size]
            for lo in range(0, num_queries, batch_size)]
