"""O(1) streaming statistics -- the mathematical core of InCoM (paper §3.1).

The baseline HuGE-D recomputes the walk entropy ``H(W_L)`` and the linear
determination coefficient ``R²(H, L)`` from the full path at every step,
costing O(L) per step and O(L²) per walk.  DistGER's InCoM observes that both
quantities admit exact O(1) incremental updates:

* **Entropy** (Theorem 1).  With ``n(v)`` the occurrence count of node ``v``
  in the walk and ``S = Σ_v n(v)·log₂ n(v)``, the walk entropy is
  ``H(W_L) = log₂ L − S / L``.  Appending a node whose prior count is ``n``
  changes ``S`` by ``(n+1)log₂(n+1) − n log₂ n`` -- an O(1) update.  The
  paper states the equivalent multiplicative ``T`` form
  (``H_{L+1} = (H_L·L − log₂ T)/(L+1)``); both are implemented and
  property-tested equal.

* **Regression** (Eq. 12/13).  ``R(H, L)`` needs only the five running
  moments ``E(H), E(L), E(HL), E(H²), E(L²)``; each is a mean and updates in
  O(1) via ``E_p = ((p−1)/p)·E_{p−1} + x_p/p``.

These classes are also exactly the per-walk state a walker carries in a
constant-size cross-machine message (10 numbers, 80 bytes -- see
:mod:`repro.runtime.message`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple

import numpy as np


def _xlog2x(n: float) -> float:
    """Return ``n * log2(n)`` with the conventional ``0·log 0 = 0``.

    Uses ``np.log2`` (not ``math.log2``): NumPy's scalar ufunc path is
    bit-identical to its array path, so the vectorized walk engine's batch
    entropy accumulators reproduce these scalar updates exactly -- libm's
    ``math.log2`` differs from NumPy's in the last ulp on some platforms,
    which would break the loop/vectorized reference-parity suite.
    """
    return 0.0 if n <= 0 else float(n * np.log2(n))


@dataclass
class IncrementalEntropy:
    """Streaming Shannon entropy (base 2) of a sequence of symbols.

    Maintains ``S = Σ_v n(v) log₂ n(v)`` and the length ``L`` so that the
    entropy of everything seen so far is ``log₂ L − S/L``.  This *is* the
    per-machine "local frequency list" of the paper: :attr:`counts` holds the
    occurrence counts of locally-stored nodes, while ``S`` and ``L`` travel
    with the walker across machines.
    """

    length: int = 0
    _s: float = 0.0
    counts: Dict[Hashable, int] = field(default_factory=dict)

    def add(self, symbol: Hashable) -> float:
        """Append ``symbol``; return the new entropy.  O(1)."""
        n = self.counts.get(symbol, 0)
        self.counts[symbol] = n + 1
        self._s += _xlog2x(n + 1) - _xlog2x(n)
        self.length += 1
        return self.value

    @property
    def value(self) -> float:
        """Entropy (bits) of the sequence observed so far."""
        if self.length <= 0:
            return 0.0
        # np.log2 for bit-parity with the vectorized engine (see _xlog2x).
        return float(np.log2(self.length) - self._s / self.length)

    def merge_count_state(self, length: int, s: float) -> None:
        """Adopt walker-carried ``(L, S)`` state (used after machine hops)."""
        self.length = length
        self._s = s

    @property
    def carried_state(self) -> Tuple[int, float]:
        """The ``(L, S)`` pair a walker message carries across machines."""
        return self.length, self._s

    @staticmethod
    def theorem1_step(h_prev: float, length: int, n_prev: int) -> float:
        """One update via the paper's Theorem 1 ``T`` formulation.

        Parameters
        ----------
        h_prev:
            ``H(W_L)`` before appending the node.
        length:
            Current walk length ``L`` (before appending).
        n_prev:
            Occurrences ``n_L(v)`` of the appended node in ``W_L``
            (0 when the node is new).

        Returns
        -------
        float
            ``H(W_{L+1})``.
        """
        if length == 0:
            return 0.0
        log_t = (
            length * math.log2(length)
            - (length + 1) * math.log2(length + 1)
            + _xlog2x(n_prev + 1)
            - _xlog2x(n_prev)
        )
        return (h_prev * length - log_t) / (length + 1)


@dataclass
class IncrementalMean:
    """Streaming mean ``E_p(X) = ((p−1)/p)E_{p−1}(X) + x_p/p`` (Eq. 13)."""

    count: int = 0
    value: float = 0.0

    def add(self, x: float) -> float:
        self.count += 1
        self.value += (x - self.value) / self.count
        return self.value


@dataclass
class IncrementalCorrelation:
    """Streaming Pearson correlation / R² from five running moments.

    Implements Eq. 12 with every expectation maintained per Eq. 13.  Feeding
    the pairs ``(H(W_1), 1), (H(W_2), 2), ...`` reproduces HuGE's
    walk-termination statistic ``R²(H, L)`` in O(1) per step.
    """

    e_x: IncrementalMean = field(default_factory=IncrementalMean)
    e_y: IncrementalMean = field(default_factory=IncrementalMean)
    e_xy: IncrementalMean = field(default_factory=IncrementalMean)
    e_x2: IncrementalMean = field(default_factory=IncrementalMean)
    e_y2: IncrementalMean = field(default_factory=IncrementalMean)

    def add(self, x: float, y: float) -> None:
        self.e_x.add(x)
        self.e_y.add(y)
        self.e_xy.add(x * y)
        self.e_x2.add(x * x)
        self.e_y2.add(y * y)

    @property
    def count(self) -> int:
        return self.e_x.count

    @property
    def correlation(self) -> float:
        """Pearson ``R``; 1.0 while degenerate (fewer than 2 points or a
        zero-variance series), matching HuGE's "keep walking" behaviour."""
        if self.count < 2:
            return 1.0
        # Explicit multiplication rather than ``**2``: CPython's float pow
        # rounds differently from NumPy's squaring in the last ulp, and the
        # vectorized walk engine must reproduce these moments bit-exactly.
        var_x = self.e_x2.value - self.e_x.value * self.e_x.value
        var_y = self.e_y2.value - self.e_y.value * self.e_y.value
        if var_x <= 1e-15 or var_y <= 1e-15:
            return 1.0
        cov = self.e_xy.value - self.e_x.value * self.e_y.value
        r = cov / math.sqrt(var_x * var_y)
        return max(-1.0, min(1.0, r))

    @property
    def r_squared(self) -> float:
        """Coefficient of determination ``R²`` of the streamed pairs."""
        r = self.correlation
        return r * r

    @property
    def carried_state(self) -> Tuple[float, float, float, float, float, int]:
        """Moments a walker message carries: (E(H),E(L),E(HL),E(H²),E(L²),p)."""
        return (
            self.e_x.value,
            self.e_y.value,
            self.e_xy.value,
            self.e_x2.value,
            self.e_y2.value,
            self.count,
        )

    def load_state(
        self, e_x: float, e_y: float, e_xy: float, e_x2: float, e_y2: float, count: int
    ) -> None:
        """Adopt walker-carried moment state (after a machine hop)."""
        self.e_x = IncrementalMean(count, e_x)
        self.e_y = IncrementalMean(count, e_y)
        self.e_xy = IncrementalMean(count, e_xy)
        self.e_x2 = IncrementalMean(count, e_x2)
        self.e_y2 = IncrementalMean(count, e_y2)
