"""Argument-checking helpers shared by public entry points.

Raising early with a precise message is cheaper than debugging a silent
mis-parameterised experiment; these helpers keep the checks uniform.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number, allow_zero: bool = False) -> Number:
    """Validate ``value > 0`` (or ``>= 0`` with ``allow_zero``)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate ``0 < value < 1`` (strict, e.g. train/test split ratios)."""
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_int_in_range(name: str, value: int, low: int, high: int) -> int:
    """Validate ``low <= value <= high`` for an integer parameter."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
