"""Shared-memory and file-backed ndarrays (the zero-copy substrate).

Every multi-process component of the reproduction moves bulk data the
same way: the owner materialises an array once -- in a POSIX shared
memory segment or a file-backed ``.npy`` mmap -- and ships only a tiny
picklable :class:`SharedArrayHandle`; workers attach and get a zero-copy
ndarray view.  The process executor shares CSR graphs, kernel tables and
replica matrices like this (:mod:`repro.runtime.executor`), and the
serving layer shares trained embedding matrices across query workers
(:mod:`repro.serving.store`).

Two backing modes, same handles, same views:

* **shm** (:meth:`SharedArray.empty` / :meth:`SharedArray.create`) --
  anonymous ``multiprocessing.shared_memory`` segments.  Strictly
  parent-owned: only the creating :class:`SharedArray` unlinks, exactly
  once, and attachers never register with the resource tracker (see
  :func:`_attach_untracked`).
* **mmap** (:meth:`SharedArray.create_file` / :meth:`SharedArray.
  from_file`) -- a standard ``.npy`` file opened as a memory map.  The
  file persists across processes *and runs* (nothing to unlink), pages
  are shared read-only by every attacher through the OS page cache, and
  matrices larger than RAM stay usable -- the first step of the
  out-of-core roadmap item.  Workers always attach read-only; writes are
  the owner's business.

The mode every executor uses is one knob: ``backing="shm"`` (default)
or ``"mmap"`` -- env ``REPRO_BACKING``, CLI ``--backing`` -- resolved by
:func:`default_backing`/:func:`resolve_backing` and consumed by
:class:`SharedGroup`.  Under ``mmap`` backing a group materialises its
``share``\\ d (read-only input) arrays as temp-spill ``.npy`` files and
``madvise``\\ s the owner's pages away, so the resident cost of sharing
a CSR graph, kernel table, or corpus block drops to near zero; mutable
worker-written buffers (``empty``) always stay shm.

Leak discipline: allocation is atomic-or-unlinked.  Every classmethod
constructor unlinks its segment (closing the mapping first, for files)
if anything raises between the raw allocation and the returned wrapper,
``close()`` is idempotent and really releases mmap file descriptors, and
a ``__del__`` backstop reclaims segments whose owner forgot (or crashed
past) the explicit close -- so a failure mid-``attach``/``create`` or a
dying serving worker cannot orphan ``/dev/shm`` entries
(``tests/test_serving_store.py`` counts segments around forced crashes,
``tests/test_sharedmem_lifecycle.py`` counts mmap fds the same way).
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

__all__ = [
    "BACKING_CHOICES",
    "SharedArray",
    "SharedArrayHandle",
    "SharedGroup",
    "attach_shared_array",
    "attached_count",
    "default_backing",
    "default_spill_dir",
    "detach_shared_array",
    "resolve_backing",
]

#: Where the big shared structures live: ``/dev/shm`` segments or
#: file-backed ``.npy`` spill mmaps.
BACKING_CHOICES = ("shm", "mmap")


def default_backing() -> str:
    """Backing mode from ``REPRO_BACKING`` (default ``"shm"``)."""
    return os.environ.get("REPRO_BACKING", "shm")


def resolve_backing(backing: str) -> str:
    """Validate a backing-mode knob value."""
    if backing not in BACKING_CHOICES:
        raise ValueError(
            f"backing must be one of {BACKING_CHOICES}, got {backing!r}")
    return backing


def default_spill_dir() -> Optional[str]:
    """Spill root from ``REPRO_SPILL_DIR`` (None: system temp dir)."""
    return os.environ.get("REPRO_SPILL_DIR") or None


class SharedArrayHandle(NamedTuple):
    """Picklable descriptor of a shared ndarray.

    ``path is None`` names a shared-memory segment; otherwise the handle
    describes a file-backed ``.npy`` mmap (``name`` is unused then).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    path: Optional[str] = None


def _attach_untracked(name: str):
    """Open an existing segment without telling the resource tracker.

    CPython registers attached segments with the resource tracker too
    (bpo-39959); since forked workers share the parent's tracker and its
    per-name registry is a set, every attach/unregister pair from a worker
    would silently drop (or noisily double-drop) the *parent's* tracking
    entry.  Ownership here is strict -- only the creating
    :class:`SharedArray` unlinks -- so worker attaches suppress the
    registration instead.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


#: Worker-side registry keeping attached segments (and their buffers) alive
#: for the life of the process.  Keyed by segment name or mmap path.
_ATTACHED: Dict[str, "object"] = {}

#: Stat signature of each cached mmap's backing file at attach time.
#: A path whose current signature differs was rewritten or replaced
#: since the cached map was opened -- the cache entry is stale even when
#: shape and dtype still agree with the handle.
_ATTACH_SIG: Dict[str, Optional[Tuple[int, int, int]]] = {}


def _stat_signature(path: str) -> Optional[Tuple[int, int, int]]:
    """``(st_ino, st_size, st_mtime_ns)`` of ``path``, None if unstatable.

    Inode catches unlink-and-recreate (the old map silently keeps serving
    the dead file's pages); size and mtime catch in-place rewrites of the
    same inode.
    """
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_ino, st.st_size, st.st_mtime_ns)


def _close_memmap(mm: Optional[np.memmap], force: bool = False) -> None:
    """Close a memmap's raw ``mmap.mmap`` (releasing its fd) if safe.

    numpy does **not** keep a buffer export on the underlying mmap
    object, so ``mmap.close()`` always succeeds -- and any ndarray still
    pointing into the mapping would read unmapped memory afterwards
    (a segfault, not an exception).  The caller hands over its *only*
    reference; if anything else still references the memmap (escaped
    views hold it via ``.base``), the close is skipped and reclamation
    falls back to GC: when the last view dies, the memmap deallocates,
    the raw map loses its final reference, and the fd closes.

    Contract: the caller holds **exactly one** reference (a local it
    will drop right after this returns) and passes it here.  Expected
    count is therefore 3: caller's local + the parameter binding +
    ``getrefcount``'s own argument; anything above that is an escaped
    reference and vetoes the close.  ``force=True`` skips the veto --
    for failure paths where no view can have escaped but the in-flight
    exception's traceback frames still reference the memmap (a raising
    ``flush`` holds it as ``self``).
    """
    if mm is None:
        return
    if not force and sys.getrefcount(mm) > 3:
        return
    underlying = getattr(mm, "_mmap", None)
    del mm
    if underlying is not None:
        try:
            underlying.close()
        except BufferError:  # pragma: no cover - exported elsewhere
            pass


def _handle_matches(mm: np.ndarray, handle: SharedArrayHandle) -> bool:
    return tuple(mm.shape) == tuple(handle.shape) and \
        mm.dtype == np.dtype(handle.dtype)


def attach_shared_array(handle: SharedArrayHandle) -> np.ndarray:
    """Attach to a shared array and view it as an ndarray (worker side).

    Shared-memory handles keep the underlying segment open in a
    process-wide registry, so the returned array stays valid for the
    attaching process's lifetime; attaching the same handle twice reuses
    the mapping.  File-backed handles are opened as **read-only** memory
    maps -- attachers share pages through the OS cache and cannot
    corrupt the owner's data.  A cached mmap is detached and reopened
    when the handle no longer matches its shape/dtype **or** when the
    backing file's stat signature (inode, size, mtime) changed since the
    map was opened -- the owner rewrote or replaced the file (a new
    spill generation, an updated store), and shape/dtype alone cannot
    see a same-shape rewrite, so a stale map would keep serving the old
    bytes forever.
    """
    if handle.path is not None:
        sig = _stat_signature(handle.path)
        mm = _ATTACHED.get(handle.path)
        if mm is not None and (not _handle_matches(mm, handle)
                               or sig != _ATTACH_SIG.get(handle.path)):
            detach_shared_array(handle.path)
            mm = None
        if mm is None:
            # Signature taken *before* the open: a rewrite racing the
            # attach leaves a too-old signature behind, so the next
            # attach re-detects staleness and reopens -- the safe side.
            mm = np.lib.format.open_memmap(handle.path, mode="r")
            if not _handle_matches(mm, handle):
                # Genuine mismatch: the file on disk disagrees with the
                # handle.  Close the fresh map before raising -- a failed
                # attach must not leak an fd or poison the cache.
                shape, dtype = tuple(mm.shape), mm.dtype.str
                _close_memmap(mm)
                del mm
                raise ValueError(
                    f"mmap file {handle.path!r} holds "
                    f"{dtype}{shape}, handle expects "
                    f"{handle.dtype}{tuple(handle.shape)}")
            _ATTACHED[handle.path] = mm
            _ATTACH_SIG[handle.path] = sig
        return mm
    shm = _ATTACHED.get(handle.name)
    if shm is None:
        shm = _attach_untracked(handle.name)
        _ATTACHED[handle.name] = shm
    return np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                      buffer=shm.buf)


def detach_shared_array(key: str) -> bool:
    """Drop one cached attach (segment name or mmap path) from the registry.

    Closes the cached mapping -- for mmaps the underlying map *and its
    file descriptor* -- so long-lived processes that reopen stores do
    not accumulate mappings, and tests can assert none dangle.  Returns
    False when nothing was attached under ``key``.  A detached mmap that
    callers still hold views into is left for GC instead of closed (a
    closed map would read as unmapped memory under them); the registry
    entry is dropped either way.
    """
    obj = _ATTACHED.pop(key, None)
    _ATTACH_SIG.pop(key, None)
    if obj is None:
        return False
    if isinstance(obj, np.memmap):
        _close_memmap(obj)
        del obj
    else:
        obj.close()
    return True


def attached_count() -> int:
    """Number of live entries in the attach registry (test observability)."""
    return len(_ATTACHED)


class SharedArray:
    """An owner-held shared ndarray (shm segment or ``.npy`` mmap).

    ``empty``/``create`` allocate a shared-memory segment;
    ``create_file``/``from_file`` write/open a file-backed mmap.
    ``handle`` is the picklable descriptor workers pass to
    :func:`attach_shared_array`; ``close`` releases the mapping and (for
    shm segments) unlinks it -- owner's responsibility, exactly once,
    with a ``__del__`` backstop so failure paths cannot leak segments.
    """

    def __init__(self, shm, handle: SharedArrayHandle,
                 mmap: Optional[np.memmap] = None,
                 delete_on_close: bool = False) -> None:
        self._shm = shm
        self._mmap = mmap
        self._delete_on_close = delete_on_close
        self.handle = handle
        if mmap is not None:
            self.array: Optional[np.ndarray] = mmap
        else:
            self.array = self._wrap_buffer(handle.shape, handle.dtype,
                                           shm.buf)

    @staticmethod
    def _wrap_buffer(shape, dtype, buf) -> np.ndarray:
        """View ``buf`` as an ndarray (separate for fault injection)."""
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf)

    @property
    def kind(self) -> str:
        """``"shm"`` or ``"mmap"``."""
        return "mmap" if self.handle.path is not None else "shm"

    # ------------------------------------------------------------- #
    # Shared-memory mode
    # ------------------------------------------------------------- #

    @classmethod
    def empty(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        from multiprocessing import shared_memory

        dt = np.dtype(dtype)
        size = max(1, int(np.prod(shape)) * dt.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        try:
            return cls(shm, SharedArrayHandle(shm.name, tuple(shape),
                                              dt.str))
        except BaseException:
            # Anything failing between allocation and the returned
            # wrapper (ndarray construction, handle build) must not
            # orphan the segment.
            shm.close()
            shm.unlink()
            raise

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        """Allocate a segment holding a copy of ``source``."""
        source = np.asarray(source)
        out = cls.empty(source.shape, source.dtype)
        try:
            out.array[...] = source
        except BaseException:
            out.close()
            raise
        return out

    # ------------------------------------------------------------- #
    # File-backed mmap mode
    # ------------------------------------------------------------- #

    @classmethod
    def create_file(cls, path: str, source: np.ndarray,
                    delete_on_close: bool = False) -> "SharedArray":
        """Write ``source`` to ``path`` as ``.npy`` and map it back.

        The returned array is the (read-write) mmap, already flushed, so
        the bytes on disk equal ``source`` before any worker attaches.
        A failure mid-write closes the mapping and removes the partial
        file -- in that order, because unlinking a file that is still
        mapped leaks the mapping and fails outright on platforms that
        refuse to unlink open files.  ``delete_on_close=True`` marks the
        file a temp spill artifact that ``close`` removes.
        """
        source = np.asarray(source)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        mm = None
        try:
            mm = np.lib.format.open_memmap(
                path, mode="w+", dtype=source.dtype, shape=source.shape)
            mm[...] = source
            mm.flush()
        except BaseException:
            if mm is not None:
                # Close before unlinking: removing a still-mapped file
                # leaks the mapping (and fails outright on platforms
                # that refuse to unlink open files).  Forced -- nothing
                # has seen this array yet, only the exception's own
                # traceback frames still reference it.
                _close_memmap(mm, force=True)
                mm = None
            if os.path.exists(path):
                os.unlink(path)
            raise
        handle = SharedArrayHandle("", tuple(source.shape),
                                   source.dtype.str, path=os.fspath(path))
        return cls(None, handle, mmap=mm, delete_on_close=delete_on_close)

    @classmethod
    def from_file(cls, path: str, mode: str = "r") -> "SharedArray":
        """Map an existing ``.npy`` file (``mode="r"`` or ``"r+"``)."""
        if mode not in ("r", "r+"):
            raise ValueError(f"mode must be 'r' or 'r+', got {mode!r}")
        mm = np.lib.format.open_memmap(path, mode=mode)
        handle = SharedArrayHandle("", tuple(mm.shape), mm.dtype.str,
                                   path=os.fspath(path))
        return cls(None, handle, mmap=mm)

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def flush(self) -> None:
        """Flush a writable mmap's dirty pages to disk (no-op for shm)."""
        if self._mmap is not None and getattr(self._mmap, "mode", "r") \
                != "r":
            self._mmap.flush()

    def release_pages(self) -> None:
        """Drop the owner's resident pages of a file-backed array.

        Flushes dirty pages, then ``madvise(MADV_DONTNEED)``\\ s the
        mapping: the data stays in the file (and the OS page cache) and
        every attacher re-faults it on demand, but the owner's RSS no
        longer charges for bytes it only wrote once to share.  No-op for
        shm arrays and on platforms without ``madvise``.
        """
        if self._mmap is None:
            return
        self.flush()
        import mmap as _mmap_module

        underlying = getattr(self._mmap, "_mmap", None)
        if underlying is not None and hasattr(underlying, "madvise") and \
                hasattr(_mmap_module, "MADV_DONTNEED"):
            underlying.madvise(_mmap_module.MADV_DONTNEED)

    def close(self) -> None:
        """Release the mapping; unlink shm segments (idempotent).

        File-backed arrays really close the underlying map and its file
        descriptor (escaped views fall back to GC), so long-lived
        processes that cycle through stores do not accumulate mappings.
        The file itself is kept -- it is the persistent artifact other
        processes (and future runs) open -- unless the array was created
        with ``delete_on_close=True`` (temp spill files).
        """
        if self._mmap is not None:
            self.flush()
            mm = self._mmap
            self._mmap = None
            self.array = None
            _close_memmap(mm)
            del mm
            if self._delete_on_close and self.handle.path is not None:
                try:
                    os.unlink(self.handle.path)
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            return
        if self._shm is None:
            return
        self.array = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __del__(self) -> None:  # leak backstop, not the contract
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SharedGroup:
    """Owner-side bundle of shared arrays with one-shot cleanup.

    ``backing`` routes the **read-only inputs** (``share``): under
    ``"shm"`` they become ``/dev/shm`` segments, under ``"mmap"`` they
    are spilled as ``.npy`` files into a private temp directory under
    ``spill_dir`` (default: ``REPRO_SPILL_DIR`` or the system temp dir)
    and the owner's pages are released immediately -- workers attach
    read-only through the page cache.  Mutable worker-*written* buffers
    (``empty``) always stay shm: they are small (round slots, replica
    matrices) and need write access from attachers.

    ``close`` releases every member even if one of them fails, removes
    the spill directory, then re-raises the first error -- a partial
    cleanup may not strand the remaining segments or files.
    """

    def __init__(self, backing: str = "shm",
                 spill_dir: Optional[str] = None) -> None:
        self.backing = resolve_backing(backing)
        self._spill_root = spill_dir
        self._spill_dir: Optional[str] = None
        self._counter = 0
        self._arrays: List[SharedArray] = []

    def _next_spill_path(self) -> str:
        if self._spill_dir is None:
            root = self._spill_root or default_spill_dir() or \
                tempfile.gettempdir()
            os.makedirs(root, exist_ok=True)
            self._spill_dir = tempfile.mkdtemp(prefix="repro-spill-",
                                               dir=root)
        self._counter += 1
        return os.path.join(self._spill_dir, f"a{self._counter:04d}.npy")

    def share(self, source: np.ndarray) -> SharedArrayHandle:
        source = np.asarray(source)
        if self.backing == "mmap" and source.size:
            shared = SharedArray.create_file(self._next_spill_path(),
                                             source, delete_on_close=True)
            # The owner only wrote this copy to share it; drop its pages.
            shared.release_pages()
        else:
            # Zero-size arrays cannot be mmapped; shm pads to one byte.
            shared = SharedArray.create(source)
        self._arrays.append(shared)
        return shared.handle

    def empty(self, shape, dtype) -> SharedArray:
        shared = SharedArray.empty(shape, dtype)
        self._arrays.append(shared)
        return shared

    def adopt(self, shared: SharedArray) -> SharedArray:
        """Take ownership of an externally-built array's cleanup."""
        self._arrays.append(shared)
        return shared

    def close(self) -> None:
        arrays, self._arrays = self._arrays, []
        first_error: Optional[BaseException] = None
        for shared in arrays:
            try:
                shared.close()
            except BaseException as exc:  # pragma: no cover - defensive
                if first_error is None:
                    first_error = exc
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
        if first_error is not None:  # pragma: no cover - defensive
            raise first_error
